"""Topology builders for the paper's evaluation scenarios."""

from .builders import fat_tree, leaf_spine, multi_rack, paper_fabric, star

__all__ = ["star", "fat_tree", "leaf_spine", "multi_rack", "paper_fabric"]
