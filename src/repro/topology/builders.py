"""Topology builders for every scenario in the paper's evaluation (§6).

* :func:`star` — N senders, one receiver, one bottleneck switch port
  (micro-benchmarks, §3 and §6.1; also the Fig 8 testbed tree).
* :func:`fat_tree` — standard k-ary fat-tree (flow-scheduling scenario).
* :func:`leaf_spine` — leaf/spine with a configurable oversubscription
  ratio (ML-training scenario, CASSINI-style).
* :func:`multi_rack` — hosts under ToRs joined by a non-blocking core with
  faster inter-switch links (coflow scenario: 100 G host links, 400 G core).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.host import Host
from ..sim.network import Network
from ..sim.switch import SwitchConfig

__all__ = ["star", "fat_tree", "leaf_spine", "multi_rack", "paper_fabric"]


def star(
    sim: Simulator,
    n_senders: int,
    rate_bps: float = 100e9,
    link_delay_ns: int = 1_000,
    switch_cfg: Optional[SwitchConfig] = None,
    receiver_delay_ns: Optional[int] = None,
) -> Tuple[Network, List[Host], Host]:
    """N senders -> one switch -> one receiver (the bottleneck port).

    With the paper's micro-benchmark parameters (100 Gbps, per-hop 3 µs the
    base RTT lands near the typical 12 µs datacenter figure).
    """
    net = Network(sim, switch_cfg or SwitchConfig())
    sw = net.add_switch(name="bottleneck")
    senders = [net.add_host(name=f"s{i}") for i in range(n_senders)]
    receiver = net.add_host(name="recv")
    for host in senders:
        net.connect(host, sw, rate_bps, link_delay_ns)
    net.connect(receiver, sw, rate_bps, receiver_delay_ns or link_delay_ns)
    net.build_routes()
    return net, senders, receiver


def fat_tree(
    sim: Simulator,
    k: int = 4,
    rate_bps: float = 100e9,
    link_delay_ns: int = 1_000,
    switch_cfg: Optional[SwitchConfig] = None,
    hosts_per_edge: Optional[List[int]] = None,
) -> Tuple[Network, List[Host]]:
    """Standard k-ary fat-tree: (k/2)^2 cores, k pods, (k/2)^2 hosts per pod.

    ``hosts_per_edge`` overrides the standard k/2 hosts under each of the
    k²/2 edge switches (one entry per edge, pod-major order) — the paper's
    flow-scheduling fabric packs 320 hosts under a k=6 tree this way.
    """
    if k % 2 != 0 or k < 2:
        raise ValueError("fat-tree k must be even and >= 2")
    half = k // 2
    n_edges = k * half
    if hosts_per_edge is not None:
        if len(hosts_per_edge) != n_edges:
            raise ValueError(
                f"hosts_per_edge needs one entry per edge switch "
                f"({n_edges} for k={k}), got {len(hosts_per_edge)}"
            )
        if any(n < 1 for n in hosts_per_edge):
            raise ValueError("hosts_per_edge entries must be >= 1")
    net = Network(sim, switch_cfg or SwitchConfig())
    cores = [[net.add_switch(name=f"core{i}_{j}") for j in range(half)] for i in range(half)]
    hosts: List[Host] = []
    links = 0
    for pod in range(k):
        aggs = [net.add_switch(name=f"agg{pod}_{a}") for a in range(half)]
        edges = [net.add_switch(name=f"edge{pod}_{e}") for e in range(half)]
        for a, agg in enumerate(aggs):
            for edge in edges:
                net.connect(agg, edge, rate_bps, link_delay_ns)
            for j in range(half):
                net.connect(cores[a][j], agg, rate_bps, link_delay_ns)
            links += 2 * half
        for e, edge in enumerate(edges):
            n_here = half if hosts_per_edge is None else hosts_per_edge[pod * half + e]
            for h in range(n_here):
                host = net.add_host(name=f"h{pod}_{e}_{h}")
                hosts.append(host)
                net.connect(host, edge, rate_bps, link_delay_ns)
                links += 1
    # structural self-check: the standard formulas pin host/switch/link counts
    want_hosts = (
        k * half * half if hosts_per_edge is None else sum(hosts_per_edge)
    )
    want_switches = half * half + k * 2 * half
    want_links = k * (2 * half * half) + want_hosts
    n_switches = sum(1 for n in net.nodes if not isinstance(n, Host))
    if len(hosts) != want_hosts or n_switches != want_switches or links != want_links:
        raise AssertionError(
            f"fat_tree(k={k}) built {len(hosts)} hosts / {n_switches} switches "
            f"/ {links} links, expected {want_hosts} / {want_switches} / {want_links}"
        )
    net.build_routes()
    return net, hosts


#: the paper's flow-scheduling fabric (§6.1): 320 hosts on a k=6 tree
PAPER_FABRIC_HOSTS = 320
#: Broadcom-style shared buffer sizing: 4.4 MB of chip buffer per Tbps
PAPER_BUFFER_BYTES_PER_TBPS = 4.4e6


def paper_fabric(
    sim: Simulator,
    rate_bps: float = 100e9,
    link_delay_ns: int = 1_000,
    switch_cfg: Optional[SwitchConfig] = None,
) -> Tuple[Network, List[Host]]:
    """The paper's full-scale flow-scheduling fabric: k=6, 320 hosts, 100 Gbps.

    A standard k=6 fat-tree carries only k³/4 = 54 hosts, so the paper's 320
    hosts are packed by widening the edge layer: the 18 edge switches carry
    17–18 hosts each (14×18 + 4×17 = 320), the closest uniform layout.  Edge
    downlink capacity is therefore oversubscribed ~6:1 versus the 3 uplinks —
    matching large-scale evaluation practice where the edge, not the core, is
    the contention point.

    Switch buffers follow the 4.4 MB/Tbps sizing rule over the switch's port
    count at ``rate_bps`` (≈9.7 MB for a 22-port edge at 100 Gbps); with the
    default 1 µs per-hop propagation delay the 6-hop host-to-host base RTT
    lands near the paper's ~12 µs datacenter figure.
    """
    n_edges = 6 * 3  # k * k/2
    base, extra = divmod(PAPER_FABRIC_HOSTS, n_edges)  # 17 remainder 14
    hosts_per_edge = [base + 1] * extra + [base] * (n_edges - extra)
    if switch_cfg is None:
        # widest switch: an edge with `base+1` downlinks + 3 uplinks
        ports = (base + 1) + 3
        buffer_bytes = int(PAPER_BUFFER_BYTES_PER_TBPS * ports * rate_bps / 1e12)
        switch_cfg = SwitchConfig(buffer_bytes=buffer_bytes)
    net, hosts = fat_tree(
        sim,
        k=6,
        rate_bps=rate_bps,
        link_delay_ns=link_delay_ns,
        switch_cfg=switch_cfg,
        hosts_per_edge=hosts_per_edge,
    )
    if len(hosts) != PAPER_FABRIC_HOSTS:
        raise AssertionError(f"paper_fabric built {len(hosts)} hosts, wanted 320")
    return net, hosts


def leaf_spine(
    sim: Simulator,
    n_leaves: int = 4,
    hosts_per_leaf: int = 6,
    n_spines: int = 3,
    host_rate_bps: float = 100e9,
    oversubscription: float = 2.0,
    link_delay_ns: int = 1_000,
    switch_cfg: Optional[SwitchConfig] = None,
) -> Tuple[Network, List[Host]]:
    """Leaf-spine with a downlink:uplink capacity ratio of ``oversubscription``.

    The ML-training scenario (§6.2) uses 24 servers at 100 Gbps with a 2:1
    subscription ratio, i.e. 4 leaves x 6 hosts and uplink capacity equal to
    half the downlink capacity per leaf.
    """
    net = Network(sim, switch_cfg or SwitchConfig())
    spines = [net.add_switch(name=f"spine{s}") for s in range(n_spines)]
    hosts: List[Host] = []
    uplink_total = hosts_per_leaf * host_rate_bps / oversubscription
    uplink_rate = uplink_total / n_spines
    for li in range(n_leaves):
        leaf = net.add_switch(name=f"leaf{li}")
        for s in spines:
            net.connect(leaf, s, uplink_rate, link_delay_ns)
        for h in range(hosts_per_leaf):
            host = net.add_host(name=f"h{li}_{h}")
            hosts.append(host)
            net.connect(host, leaf, host_rate_bps, link_delay_ns)
    net.build_routes()
    return net, hosts


def multi_rack(
    sim: Simulator,
    n_racks: int = 5,
    hosts_per_rack: int = 8,
    host_rate_bps: float = 100e9,
    core_rate_bps: float = 400e9,
    link_delay_ns: int = 1_000,
    switch_cfg: Optional[SwitchConfig] = None,
    core_count: Optional[int] = None,
) -> Tuple[Network, List[Host]]:
    """Non-blocking multi-rack fabric (coflow scenario: 5 pods, 400 G core)."""
    net = Network(sim, switch_cfg or SwitchConfig())
    if core_count is None:
        # enough core links to keep the fabric non-blocking
        need = hosts_per_rack * host_rate_bps
        core_count = max(1, int(-(-need // core_rate_bps)))
    cores = [net.add_switch(name=f"core{c}") for c in range(core_count)]
    hosts: List[Host] = []
    for r in range(n_racks):
        tor = net.add_switch(name=f"tor{r}")
        for c in cores:
            net.connect(tor, c, core_rate_bps, link_delay_ns)
        for h in range(hosts_per_rack):
            host = net.add_host(name=f"h{r}_{h}")
            hosts.append(host)
            net.connect(host, tor, host_rate_bps, link_delay_ns)
    net.build_routes()
    return net, hosts
