"""Topology builders for every scenario in the paper's evaluation (§6).

* :func:`star` — N senders, one receiver, one bottleneck switch port
  (micro-benchmarks, §3 and §6.1; also the Fig 8 testbed tree).
* :func:`fat_tree` — standard k-ary fat-tree (flow-scheduling scenario).
* :func:`leaf_spine` — leaf/spine with a configurable oversubscription
  ratio (ML-training scenario, CASSINI-style).
* :func:`multi_rack` — hosts under ToRs joined by a non-blocking core with
  faster inter-switch links (coflow scenario: 100 G host links, 400 G core).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.host import Host
from ..sim.network import Network
from ..sim.switch import SwitchConfig

__all__ = ["star", "fat_tree", "leaf_spine", "multi_rack"]


def star(
    sim: Simulator,
    n_senders: int,
    rate_bps: float = 100e9,
    link_delay_ns: int = 1_000,
    switch_cfg: Optional[SwitchConfig] = None,
    receiver_delay_ns: Optional[int] = None,
) -> Tuple[Network, List[Host], Host]:
    """N senders -> one switch -> one receiver (the bottleneck port).

    With the paper's micro-benchmark parameters (100 Gbps, per-hop 3 µs the
    base RTT lands near the typical 12 µs datacenter figure).
    """
    net = Network(sim, switch_cfg or SwitchConfig())
    sw = net.add_switch(name="bottleneck")
    senders = [net.add_host(name=f"s{i}") for i in range(n_senders)]
    receiver = net.add_host(name="recv")
    for host in senders:
        net.connect(host, sw, rate_bps, link_delay_ns)
    net.connect(receiver, sw, rate_bps, receiver_delay_ns or link_delay_ns)
    net.build_routes()
    return net, senders, receiver


def fat_tree(
    sim: Simulator,
    k: int = 4,
    rate_bps: float = 100e9,
    link_delay_ns: int = 1_000,
    switch_cfg: Optional[SwitchConfig] = None,
) -> Tuple[Network, List[Host]]:
    """Standard k-ary fat-tree: (k/2)^2 cores, k pods, (k/2)^2 hosts per pod."""
    if k % 2 != 0 or k < 2:
        raise ValueError("fat-tree k must be even and >= 2")
    half = k // 2
    net = Network(sim, switch_cfg or SwitchConfig())
    cores = [[net.add_switch(name=f"core{i}_{j}") for j in range(half)] for i in range(half)]
    hosts: List[Host] = []
    for pod in range(k):
        aggs = [net.add_switch(name=f"agg{pod}_{a}") for a in range(half)]
        edges = [net.add_switch(name=f"edge{pod}_{e}") for e in range(half)]
        for a, agg in enumerate(aggs):
            for edge in edges:
                net.connect(agg, edge, rate_bps, link_delay_ns)
            for j in range(half):
                net.connect(cores[a][j], agg, rate_bps, link_delay_ns)
        for edge in edges:
            for h in range(half):
                host = net.add_host(name=f"h{pod}_{edges.index(edge)}_{h}")
                hosts.append(host)
                net.connect(host, edge, rate_bps, link_delay_ns)
    net.build_routes()
    return net, hosts


def leaf_spine(
    sim: Simulator,
    n_leaves: int = 4,
    hosts_per_leaf: int = 6,
    n_spines: int = 3,
    host_rate_bps: float = 100e9,
    oversubscription: float = 2.0,
    link_delay_ns: int = 1_000,
    switch_cfg: Optional[SwitchConfig] = None,
) -> Tuple[Network, List[Host]]:
    """Leaf-spine with a downlink:uplink capacity ratio of ``oversubscription``.

    The ML-training scenario (§6.2) uses 24 servers at 100 Gbps with a 2:1
    subscription ratio, i.e. 4 leaves x 6 hosts and uplink capacity equal to
    half the downlink capacity per leaf.
    """
    net = Network(sim, switch_cfg or SwitchConfig())
    spines = [net.add_switch(name=f"spine{s}") for s in range(n_spines)]
    hosts: List[Host] = []
    uplink_total = hosts_per_leaf * host_rate_bps / oversubscription
    uplink_rate = uplink_total / n_spines
    for li in range(n_leaves):
        leaf = net.add_switch(name=f"leaf{li}")
        for s in spines:
            net.connect(leaf, s, uplink_rate, link_delay_ns)
        for h in range(hosts_per_leaf):
            host = net.add_host(name=f"h{li}_{h}")
            hosts.append(host)
            net.connect(host, leaf, host_rate_bps, link_delay_ns)
    net.build_routes()
    return net, hosts


def multi_rack(
    sim: Simulator,
    n_racks: int = 5,
    hosts_per_rack: int = 8,
    host_rate_bps: float = 100e9,
    core_rate_bps: float = 400e9,
    link_delay_ns: int = 1_000,
    switch_cfg: Optional[SwitchConfig] = None,
    core_count: Optional[int] = None,
) -> Tuple[Network, List[Host]]:
    """Non-blocking multi-rack fabric (coflow scenario: 5 pods, 400 G core)."""
    net = Network(sim, switch_cfg or SwitchConfig())
    if core_count is None:
        # enough core links to keep the fabric non-blocking
        need = hosts_per_rack * host_rate_bps
        core_count = max(1, int(-(-need // core_rate_bps)))
    cores = [net.add_switch(name=f"core{c}") for c in range(core_count)]
    hosts: List[Host] = []
    for r in range(n_racks):
        tor = net.add_switch(name=f"tor{r}")
        for c in cores:
            net.connect(tor, c, core_rate_bps, link_delay_ns)
        for h in range(hosts_per_rack):
            host = net.add_host(name=f"h{r}_{h}")
            hosts.append(host)
            net.connect(host, tor, host_rate_bps, link_delay_ns)
    net.build_routes()
    return net, hosts
