"""Command-line entry point: ``python -m repro <experiment> [options]``.

Lists and runs individual paper experiments without writing a script:

    python -m repro --list
    python -m repro fig8
    python -m repro fig10c
    python -m repro table2

Observability (see docs/OBSERVABILITY.md): any experiment can be run with the
flight recorder on, producing a Perfetto-loadable trace and/or structured
event and metric dumps:

    python -m repro quickstart --trace run.json      # open in ui.perfetto.dev
    python -m repro fig6 --events run.jsonl          # JSONL event dump
    python -m repro fig8 --metrics                   # embed metrics in output
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

from .experiments.ablations import (
    run_cardinality_ablation,
    run_collision_avoidance_ablation,
    run_filter_ablation,
)
from .experiments.common import Mode
from .experiments.ecn_priority import run_ecn_priority
from .experiments.fig3_micro import run_fig3a, run_fig3b, run_fig3c, run_fig3d
from .experiments.fig6_dualrtt import run_fig6
from .experiments.fig8_testbed import run_fig8
from .experiments.fig9_fluct import run_fig9
from .experiments.fig10_micro import run_fig10a, run_fig10b, run_fig10c, run_fig10d
from .experiments.fig12_coflow import ci_config, run_fig12ab, run_fig17, run_fig18
from .experiments.fig13_noncongestive import run_fig13_point
from .experiments.mltrain import run_mltrain_comparison
from .experiments.quickstart import run_quickstart
from .experiments.table2_validation import run_table2_validation
from .telemetry import Recorder, set_default_recorder, write_events_jsonl, write_perfetto


def _fig8_both() -> dict:
    return {
        "prioplus": run_fig8(Mode.PRIOPLUS, stagger_ns=2_000_000),
        "swift_targets": run_fig8(Mode.SWIFT_TARGETS, stagger_ns=2_000_000),
    }


def _fig9_both() -> dict:
    return {
        "prioplus": run_fig9(Mode.PRIOPLUS),
        "swift_targets": run_fig9(Mode.SWIFT_TARGETS),
    }


def _fig10c_both() -> dict:
    return {
        "dual_rtt": run_fig10c(True),
        "every_rtt": run_fig10c(False),
    }


def _ablations() -> dict:
    return {
        "collision_avoidance": [run_collision_avoidance_ablation(v) for v in (True, False)],
        "filter": [run_filter_ablation(v) for v in (2, 1)],
        "cardinality": [run_cardinality_ablation(v) for v in (True, False)],
    }


def _ecn() -> dict:
    return {
        "uniform": run_ecn_priority(False),
        "per_priority": run_ecn_priority(True),
    }


EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "fig3a": run_fig3a,
    "fig3b": run_fig3b,
    "fig3c": run_fig3c,
    "fig3d": run_fig3d,
    "fig6": run_fig6,
    "fig8": _fig8_both,
    "fig9": _fig9_both,
    "fig10a": run_fig10a,
    "fig10b": run_fig10b,
    "fig10c": _fig10c_both,
    "fig10d": run_fig10d,
    "fig12": lambda: run_fig12ab(cfg=ci_config(load=0.7, duration_ns=1_500_000)),
    "fig13": lambda: {"gap@6us": run_fig13_point(10.0, 6.0, stagger_ns=500_000),
                      "gap@40us": run_fig13_point(10.0, 40.0, stagger_ns=500_000)},
    "fig12c": run_mltrain_comparison,
    "fig17": lambda: run_fig17(ci_config(load=0.7, duration_ns=1_200_000, lossy=True)),
    "fig18": lambda: run_fig18(ci_config(load=0.7, duration_ns=1_200_000)),
    "table2": run_table2_validation,
    "ablations": _ablations,
    "ecn-priority": _ecn,
    "quickstart": run_quickstart,
}


def _jsonable(obj):
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (int, float, str, bool)) or obj is None:
        return obj
    return repr(obj)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run individual PrioPlus-paper experiments at benchmark scale.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment name (see --list)")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record the run and write a Perfetto/Chrome trace JSON to PATH "
        "(open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        help="record the run and write the raw event stream as JSONL to PATH",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="record the run and embed the telemetry metrics snapshot in the output",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    runner = EXPERIMENTS.get(args.experiment)
    if runner is None:
        print(f"unknown experiment {args.experiment!r}; use --list", file=sys.stderr)
        return 2

    recorder = None
    if args.trace or args.events or args.metrics:
        # event lists are only needed when a trace/event dump was requested
        recorder = Recorder(events=bool(args.trace or args.events))
        set_default_recorder(recorder)
    try:
        result = runner()
    finally:
        if recorder is not None:
            set_default_recorder(None)
    if recorder is not None:
        if args.trace:
            n = write_perfetto(recorder, args.trace)
            print(f"wrote {n} trace events to {args.trace}", file=sys.stderr)
        if args.events:
            n = write_events_jsonl(recorder, args.events)
            print(f"wrote {n} events to {args.events}", file=sys.stderr)
        if args.metrics and isinstance(result, dict) and "telemetry" not in result:
            result = dict(result)
            result["telemetry"] = recorder.snapshot()
    print(json.dumps(_jsonable(result), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
