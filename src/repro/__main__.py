"""Command-line entry point: ``python -m repro [run] <experiment> [options]``.

Lists and runs individual paper experiments without writing a script:

    python -m repro --list
    python -m repro fig8
    python -m repro run fig10c --jobs 4          # shard points across cores
    python -m repro run fig12 --jobs 4 --cache .cache/repro

Serving (see docs/SERVE.md): a long-running daemon keeps a warm worker fleet
and dedupes work across clients; ``run``/``submit``/``status`` talk to it:

    python -m repro serve --unix /tmp/repro.sock --cache .cache/repro &
    python -m repro run fig10c --server /tmp/repro.sock
    python -m repro submit fig12 --server /tmp/repro.sock
    python -m repro status --server /tmp/repro.sock [job-000001]

All execution goes through :mod:`repro.api`, the stable programmatic facade
(the CLI is a thin shell around it).

Every experiment is a registered :class:`repro.experiments.common.Experiment`
dispatched through :func:`repro.runner.run_experiment`; ``--jobs N`` fans the
experiment's independent points over a process pool and ``--cache DIR`` skips
points whose results are already on disk (see docs/RUNNER.md).

Fault injection (see docs/FAULTS.md): any experiment runs under a declarative
fault plan, and ``--quick`` selects an experiment's CI-scale variant:

    python -m repro run fig8 --faults plan.json
    python -m repro run fault_flap --quick --jobs 2

Observability (see docs/OBSERVABILITY.md): any experiment can be run with the
flight recorder on, producing a Perfetto-loadable trace and/or structured
event and metric dumps:

    python -m repro quickstart --trace run.json      # open in ui.perfetto.dev
    python -m repro fig6 --events run.jsonl          # JSONL event dump
    python -m repro fig8 --metrics                   # embed metrics in output

The runner itself can be benchmarked (serial vs parallel wall time), and the
simulation core has its own microbenchmark suite with a CI regression gate
(see docs/PERFORMANCE.md):

    python -m repro bench --quick --out BENCH_runner.json
    python -m repro bench --core --out BENCH_core.json
    python -m repro bench --core --quick --check benchmarks/baseline_core.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

from . import api
from .client import ServeError
from .experiments.common import REGISTRY
from .obs import (
    ChannelInspector,
    EngineProfiler,
    PacketTracer,
    TimeSeriesSampler,
    set_default_inspector,
    set_default_profiler,
    set_default_sampler,
    set_default_tracer,
)
from .runner import RunnerError, run_bench, write_bench
from .runner.cache import json_safe
from .telemetry import (
    JsonlEventStream,
    Recorder,
    set_default_recorder,
    write_events_jsonl,
    write_perfetto,
)

REGISTRY.load_all()

#: Deprecated compatibility surface: experiment name -> zero-argument callable.
#: Prefer ``REGISTRY.get(name)`` + :func:`repro.runner.run_experiment`.
EXPERIMENTS: Dict[str, Callable[[], object]] = {
    name: REGISTRY.get(name).run_serial for name in REGISTRY.names()
}


def _bench_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Benchmark the parallel runner (serial vs sharded wall time), or the "
            "simulation core itself with --core."
        ),
    )
    parser.add_argument("--quick", action="store_true", help="small CI-scale suite")
    parser.add_argument("--jobs", type=int, default=None, help="parallel worker count")
    parser.add_argument(
        "--core",
        action="store_true",
        help="run the simulation-core microbenchmarks instead of the runner bench",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N repeats per core bench (default: 3)"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare normalized core events/sec against a committed baseline "
        "snapshot; exit 1 on a >20%% regression (implies --core)",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="run the hybrid fluid/packet scale benchmark (320-host k=6 "
        "speedup + mid-scale agreement) instead of the runner bench",
    )
    parser.add_argument(
        "--longtrace",
        action="store_true",
        help="run the multi-second paper-scale smoke (streaming admission + "
        "hybrid core on 320 hosts; gates peak RSS and long-run liveness)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="benchmark artifact path"
    )
    args = parser.parse_args(argv)

    if args.longtrace:
        from .runner.bench_longtrace import (
            check_longtrace,
            run_longtrace_bench,
            write_longtrace_bench,
        )

        snapshot = run_longtrace_bench(quick=args.quick)
        out = args.out or "BENCH_longtrace.json"
        write_longtrace_bench(snapshot, out)
        print(json.dumps(json_safe(snapshot), indent=2))
        failures = check_longtrace(snapshot)
        for failure in failures:
            print(f"LONGTRACE GATE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("long-trace gates passed (bounded RSS + liveness)", file=sys.stderr)
        return 0

    if args.scale:
        from .runner.bench_scale import check_scale, run_scale_bench, write_scale_bench

        snapshot = run_scale_bench(quick=args.quick)
        out = args.out or "BENCH_scale.json"
        write_scale_bench(snapshot, out)
        print(json.dumps(json_safe(snapshot), indent=2))
        failures = check_scale(snapshot)
        for failure in failures:
            print(f"SCALE GATE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("scale gates passed (speedup + agreement)", file=sys.stderr)
        return 0

    if args.core or args.check:
        from .runner.bench_core import check_regression, run_core_bench, write_core_bench

        snapshot = run_core_bench(quick=args.quick, repeats=args.repeats)
        out = args.out or "BENCH_core.json"
        write_core_bench(snapshot, out)
        print(json.dumps(json_safe(snapshot), indent=2))
        if args.check:
            failures = check_regression(snapshot, args.check)
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            if failures:
                return 1
            print(f"no regression vs {args.check}", file=sys.stderr)
        return 0

    snapshot = run_bench(quick=args.quick, jobs=args.jobs)
    out = args.out or "BENCH_runner.json"
    write_bench(snapshot, out)
    print(f"wrote {out}", file=sys.stderr)
    print(json.dumps(json_safe(snapshot), indent=2))
    return 0


def _submit_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit an experiment to a running daemon without waiting.",
    )
    parser.add_argument("experiment", help="experiment name (see --list)")
    parser.add_argument("--server", required=True, metavar="ADDR",
                        help="daemon address: host:port or a unix socket path")
    parser.add_argument("--quick", action="store_true", help="CI-scale variant")
    parser.add_argument("--faults", metavar="PLAN", help="fault plan JSON path")
    parser.add_argument("--audit", nargs="?", const="strict", choices=("strict", "warn"),
                        default=None, help="run points under the invariant auditor")
    parser.add_argument("--tag", default="", help="free-form label shown in status")
    args = parser.parse_args(argv)
    try:
        job_id = api.submit(
            args.experiment, server=args.server, quick=args.quick,
            faults=args.faults, audit=args.audit, tag=args.tag,
        )
    except (ServeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(job_id)
    return 0


def _status_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro status",
        description="Server-wide stats, or one job's point-granular status.",
    )
    parser.add_argument("job", nargs="?", help="job id (omit for server stats)")
    parser.add_argument("--server", required=True, metavar="ADDR",
                        help="daemon address: host:port or a unix socket path")
    args = parser.parse_args(argv)
    try:
        payload = api.status(args.server, args.job)
    except (ServeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(json_safe(payload.to_dict()), indent=2))
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    if argv and argv[0] == "serve":
        from .serve import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "tune":
        from .tune.cli import tune_main

        return tune_main(argv[1:])
    if argv and argv[0] == "submit":
        return _submit_main(argv[1:])
    if argv and argv[0] == "status":
        return _status_main(argv[1:])
    if argv and argv[0] == "report":
        from .obs.report import report_main

        return report_main(argv[1:])
    if argv and argv[0] == "run":
        # `run` is an optional explicit subcommand: `repro run fig8 --jobs 4`
        argv = argv[1:]

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run individual PrioPlus-paper experiments at benchmark scale.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment name (see --list)")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run the experiment's points on N worker processes (default: 1, in-process)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="reuse/store per-point results in the content-addressed cache at DIR",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-point progress and ETA to stderr",
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN",
        help="apply the fault plan at PLAN (JSON, see docs/FAULTS.md) to every "
        "point; the plan hash enters the result-cache key",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the experiment's CI-scale variant (a no-op for experiments "
        "without one)",
    )
    parser.add_argument(
        "--audit",
        nargs="?",
        const="strict",
        choices=("strict", "warn"),
        default=None,
        metavar="MODE",
        help="run every executed point under the invariant auditor (see "
        "docs/AUDIT.md); 'strict' (the default when the flag is bare) fails "
        "at the first violation, 'warn' aggregates violations into the "
        "result's 'audit' key",
    )
    parser.add_argument(
        "--server",
        metavar="ADDR",
        help="run on a serving daemon (host:port or unix socket path) instead "
        "of in-process; --jobs/--cache are then the daemon's concern "
        "(see docs/SERVE.md)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record the run and write a Perfetto/Chrome trace JSON to PATH "
        "(open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        help="record the run and write the raw event stream as JSONL to PATH",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="record the run and embed the telemetry metrics snapshot in the output",
    )
    parser.add_argument(
        "--trace-packets",
        metavar="PATH",
        help="causally trace deterministically-sampled packets and write the "
        "per-hop latency spans as JSONL to PATH (see docs/TRACING.md); with "
        "--trace, the Perfetto file also gains a 'packets' process",
    )
    parser.add_argument(
        "--trace-every",
        type=int,
        default=16,
        metavar="N",
        help="trace one in N (flow, seq) identities (default: 16; 1 = all)",
    )
    parser.add_argument(
        "--sample",
        metavar="PATH",
        help="snapshot queue depths, buffer occupancy and per-flow rates at a "
        "fixed virtual-time stride; written to PATH (.csv, else JSONL)",
    )
    parser.add_argument(
        "--sample-stride",
        type=int,
        default=100_000,
        metavar="NS",
        help="sampling stride in virtual ns (default: 100000)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attribute wall time and event counts per engine callback and "
        "embed the profile in the output",
    )
    parser.add_argument(
        "--inspect",
        metavar="PATH",
        help="record every PrioPlus state transition, channel occupancy and "
        "virtual-priority inversions; structured report written to PATH",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for name in REGISTRY.names():
            print(name)
        return 0
    try:
        experiment = REGISTRY.get(args.experiment)
    except KeyError:
        print(f"unknown experiment {args.experiment!r}; use --list", file=sys.stderr)
        return 2
    if args.quick:
        experiment = experiment.quick()

    obs_requested = bool(args.trace_packets or args.sample or args.profile or args.inspect)
    if args.server and (args.trace or args.events or obs_requested):
        print(
            "error: --trace/--events/--trace-packets/--sample/--profile/--inspect "
            "record in-process simulator state and cannot be combined with --server",
            file=sys.stderr,
        )
        return 2
    if (args.trace or args.events or obs_requested) and args.jobs > 1:
        print(
            "note: --trace/--events/--trace-packets/--sample/--profile/--inspect "
            "record simulator state only for in-process execution; forcing --jobs 1",
            file=sys.stderr,
        )
        args.jobs = 1

    recorder = None
    stream = None
    if args.trace or args.events or args.metrics:
        # event lists are only needed when a trace/event dump was requested
        recorder = Recorder(events=bool(args.trace or args.events))
        set_default_recorder(recorder)
        if args.events and not args.trace:
            # no in-memory consumer: stream events to disk as they happen
            stream = JsonlEventStream(recorder, args.events)
    tracer = inspector = sampler = profiler = None
    if args.trace_packets:
        tracer = PacketTracer(sample_every=max(1, args.trace_every))
        set_default_tracer(tracer)
    if args.inspect:
        inspector = ChannelInspector()
        set_default_inspector(inspector)
    if args.sample:
        sampler = TimeSeriesSampler(stride_ns=max(1, args.sample_stride))
        set_default_sampler(sampler)
    if args.profile:
        profiler = EngineProfiler()
        set_default_profiler(profiler)
    try:
        if args.server:
            def _remote_progress(point, source):
                print(f"[serve] {args.experiment}: {point} ({source})",
                      file=sys.stderr, flush=True)

            result = api.run(
                args.experiment,
                quick=args.quick,
                server=args.server,
                faults=args.faults,
                audit=args.audit,
                progress=_remote_progress if args.progress else False,
            )
        else:
            result = api.run(
                experiment,
                jobs=args.jobs,
                cache=args.cache,
                progress=args.progress,
                faults=args.faults,
                audit=args.audit,
            )
    except (RunnerError, ServeError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if recorder is not None:
            set_default_recorder(None)
        if stream is not None:
            stream.finalize()
        if tracer is not None:
            set_default_tracer(None)
            tracer.finalize()
        if inspector is not None:
            set_default_inspector(None)
        if sampler is not None:
            set_default_sampler(None)
            sampler.finalize()
        if profiler is not None:
            set_default_profiler(None)
            profiler.finalize()
    if recorder is not None:
        if args.trace:
            n = write_perfetto(recorder, args.trace, tracer=tracer)
            print(f"wrote {n} trace events to {args.trace}", file=sys.stderr)
        if args.events:
            if stream is not None:
                n = stream.lines
            else:
                n = write_events_jsonl(recorder, args.events)
            print(f"wrote {n} events to {args.events}", file=sys.stderr)
        if args.metrics and isinstance(result, dict) and "telemetry" not in result:
            result = dict(result)
            result["telemetry"] = recorder.snapshot()
    if tracer is not None:
        n = tracer.write_spans_jsonl(args.trace_packets)
        print(f"wrote {n} span lines to {args.trace_packets}", file=sys.stderr)
        if isinstance(result, dict) and "packet_traces" not in result:
            result = dict(result)
            result["packet_traces"] = tracer.snapshot()
    if inspector is not None:
        inspector.write_report_json(args.inspect)
        print(f"wrote channel report to {args.inspect}", file=sys.stderr)
    if sampler is not None:
        n = sampler.write(args.sample)
        print(f"wrote {n} sample rows to {args.sample}", file=sys.stderr)
    if profiler is not None and isinstance(result, dict) and "profile" not in result:
        result = dict(result)
        result["profile"] = profiler.snapshot()
    print(json.dumps(json_safe(result), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
