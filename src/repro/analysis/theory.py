"""Closed-form results from the paper: Table 2, Appendix C and Appendix D.

* :func:`start_strategy_costs` — Table 2: bytes delayed and maximum extra
  buffer for line-rate, exponential and linear start, in BDP units, as a
  function of the number of RTTs ``n`` taken to reach line rate.
* :func:`potential_backlog` / :func:`linear_start_is_optimal` — numeric
  verification of Theorem 4.1 (Appendix C): among monotone start schedules
  r(t) from 0 to R over [0, T], the linear ramp minimises the worst-case
  potential backlog  b(a) = ∫_a^{a+τ} [r(t) − r(a)] dt.
* :func:`swift_fluctuation_ns` — Appendix D: the worst-case delay
  fluctuation of n synchronised Swift flows,
  ``n·W_AI/R + max(n·β·W_AI/(R·T), max_mdf) · T``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

__all__ = [
    "start_strategy_costs",
    "potential_backlog",
    "linear_start_is_optimal",
    "swift_fluctuation_ns",
    "channel_width_ns",
]


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
def start_strategy_costs(n_rtts: float) -> Dict[str, Dict[str, float]]:
    """Bytes delayed and max extra buffer (in BDP) per start strategy.

    ``n_rtts`` is the number of RTTs the strategy takes to reach line rate
    (Table 2 and Figure 5 of the paper).
    """
    if n_rtts < 1:
        raise ValueError("a start strategy needs at least one RTT")
    return {
        "line_rate": {"bytes_delayed_bdp": 0.0, "max_extra_buffer_bdp": 1.0},
        "exponential": {
            "bytes_delayed_bdp": n_rtts - 1.5,
            "max_extra_buffer_bdp": 0.5,
        },
        "linear": {
            "bytes_delayed_bdp": n_rtts / 2.0,
            "max_extra_buffer_bdp": 1.0 / n_rtts,
        },
    }


# ----------------------------------------------------------------------
# Appendix C — Theorem 4.1
# ----------------------------------------------------------------------
def potential_backlog(
    rate_fn: Callable[[float], float], T: float, tau: float, samples: int = 400
) -> float:
    """Worst-case potential buffer backlog of a start schedule.

    ``rate_fn(t)`` gives the send rate at time t (0 <= t <= T), with
    rate_fn(0) = 0 and rate_fn(T) = R.  The backlog sensed one RTT (τ) late
    at time ``a`` is ``∫_a^{a+τ} [r(t) − r(a)] dt``; the theorem concerns its
    maximum over ``a``.
    """
    if tau <= 0 or T <= tau:
        raise ValueError("need 0 < tau < T")
    worst = 0.0
    n_inner = 64
    for i in range(samples + 1):
        a = (T - tau) * i / samples
        r_a = rate_fn(a)
        acc = 0.0
        dt = tau / n_inner
        for j in range(n_inner):
            t = a + (j + 0.5) * dt
            acc += max(0.0, rate_fn(t) - r_a) * dt
        if acc > worst:
            worst = acc
    return worst


def linear_start_is_optimal(
    T: float = 10.0, tau: float = 1.0, R: float = 1.0, n_alternatives: int = 25, seed: int = 7
) -> Tuple[float, float]:
    """Numerically check Theorem 4.1.

    Returns ``(linear_backlog, best_alternative_backlog)``; the theorem holds
    when the first is <= the second (within numeric tolerance).  Alternatives
    are random monotone schedules through (0,0) and (T,R) built from convex
    combinations of power curves.
    """
    import random

    rng = random.Random(seed)

    def linear(t: float) -> float:
        return R * t / T

    best_alt = math.inf
    for _ in range(n_alternatives):
        p1 = rng.uniform(0.3, 3.0)
        p2 = rng.uniform(0.3, 3.0)
        w = rng.random()

        def alt(t: float, p1=p1, p2=p2, w=w) -> float:
            x = t / T
            return R * (w * x**p1 + (1 - w) * x**p2)

        best_alt = min(best_alt, potential_backlog(alt, T, tau))
    return potential_backlog(linear, T, tau), best_alt


# ----------------------------------------------------------------------
# Appendix D — Swift fluctuation bound
# ----------------------------------------------------------------------
def swift_fluctuation_ns(
    n_flows: int,
    ai_bytes: float,
    line_rate_bps: float,
    target_ns: float,
    beta: float = 0.8,
    max_mdf: float = 0.5,
) -> float:
    """Worst-case (synchronised) Swift delay fluctuation in ns.

    ``n·W_AI/R + max(n·β·W_AI/(R·T), max_mdf) · T``  (Appendix D).
    """
    if n_flows < 1:
        raise ValueError("need at least one flow")
    rate_byte_per_ns = line_rate_bps / 8e9
    above = n_flows * ai_bytes / rate_byte_per_ns
    below = max(n_flows * beta * ai_bytes / (rate_byte_per_ns * target_ns), max_mdf) * target_ns
    return above + below


def channel_width_ns(fluctuation_ns: float, noise_ns: float) -> Tuple[float, float]:
    """(target gap, limit gap) per §4.3.2: A+B between targets, A/2+B to limit."""
    return fluctuation_ns + noise_ns, fluctuation_ns / 2.0 + noise_ns
