"""Flow/coflow completion-time statistics used across all experiments."""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Sequence

from ..transport.flow import Flow

__all__ = ["percentile", "FctStats", "summarize", "group_by", "speedup", "SIZE_CLASSES", "size_class"]

#: the paper's flow-size breakdown (Fig 11): small / middle / large
SIZE_CLASSES = (
    ("small", 0, 300 * 1000),
    ("middle", 300 * 1000, 6 * 1000 * 1000),
    ("large", 6 * 1000 * 1000, 1 << 62),
)


def size_class(size_bytes: int) -> str:
    for name, lo, hi in SIZE_CLASSES:
        if lo <= size_bytes < hi:
            return name
    return "large"


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("p must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi or ordered[lo] == ordered[hi]:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


class FctStats:
    """Mean / median / tail summary of a set of completion times (ns)."""

    __slots__ = ("count", "mean", "p50", "p95", "p99", "max")

    def __init__(self, values: Sequence[float]):
        if not values:
            raise ValueError("no completion times to summarise")
        self.count = len(values)
        self.mean = sum(values) / len(values)
        self.p50 = percentile(values, 50)
        self.p95 = percentile(values, 95)
        self.p99 = percentile(values, 99)
        self.max = max(values)

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FctStats(n={self.count}, mean={self.mean / 1e3:.1f}us, "
            f"p99={self.p99 / 1e3:.1f}us)"
        )


def summarize(flows: Iterable[Flow], require_done: bool = True) -> FctStats:
    values: List[float] = []
    unfinished = 0
    for f in flows:
        if f.done:
            values.append(f.fct_ns())
        else:
            unfinished += 1
    if unfinished and require_done:
        raise RuntimeError(f"{unfinished} flows did not complete")
    return FctStats(values)


def group_by(flows: Iterable[Flow], key: Callable[[Flow], object]) -> Dict[object, List[Flow]]:
    groups: Dict[object, List[Flow]] = {}
    for f in flows:
        groups.setdefault(key(f), []).append(f)
    return groups


def speedup(baseline_ns: float, measured_ns: float) -> float:
    """Paper's speedup ratio: baseline time / measured time (>1 is faster)."""
    if measured_ns <= 0:
        raise ValueError("measured time must be positive")
    return baseline_ns / measured_ns
