"""CSV export of experiment data — plot the figures with your own tools.

Experiment runners return dicts and samplers hold ``(time, value)`` series;
these helpers write them as tidy CSV so the paper's figures can be drawn
with matplotlib/gnuplot/R outside this repo (no plotting dependency here).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

__all__ = ["write_series_csv", "write_rows_csv", "flatten_result"]

PathLike = Union[str, Path]


def write_series_csv(
    series_by_key: Mapping[object, Sequence[Tuple[int, float]]],
    path: PathLike,
    time_unit_ns: float = 1_000.0,
    value_name: str = "value",
) -> int:
    """Write ``{key: [(time_ns, value), ...]}`` (RateSampler/DelaySampler
    shape) as long-format CSV: ``key,time,<value_name>``.

    ``time_unit_ns`` scales the time column (default: microseconds).
    Returns the number of data rows written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", f"time_{_unit_suffix(time_unit_ns)}", value_name])
        for key in sorted(series_by_key, key=str):
            for t, v in series_by_key[key]:
                writer.writerow([key, t / time_unit_ns, v])
                rows += 1
    return rows


def write_rows_csv(
    rows: Iterable[Mapping[str, object]],
    path: PathLike,
) -> int:
    """Write a list of flat dicts (experiment results) as CSV.

    The header is the union of keys, in first-seen order; missing cells are
    left empty.  Returns the number of data rows written.
    """
    rows = list(rows)
    if not rows:
        raise ValueError("nothing to export")
    header: List[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=header)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def flatten_result(result: Mapping[str, object], prefix: str = "") -> Dict[str, object]:
    """Flatten nested experiment-result dicts into dotted-key scalars.

    Lists/tuples become ``key.0``, ``key.1``, ...; everything non-scalar is
    stringified.  Useful before :func:`write_rows_csv`.
    """
    flat: Dict[str, object] = {}
    for key, value in result.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_result(value, prefix=f"{name}."))
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                if isinstance(item, Mapping):
                    flat.update(flatten_result(item, prefix=f"{name}.{i}."))
                else:
                    flat[f"{name}.{i}"] = _scalar(item)
        else:
            flat[name] = _scalar(value)
    return flat


def _scalar(value: object) -> object:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def _unit_suffix(time_unit_ns: float) -> str:
    return {1.0: "ns", 1_000.0: "us", 1_000_000.0: "ms", 1_000_000_000.0: "s"}.get(
        time_unit_ns, f"per_{time_unit_ns:g}ns"
    )
