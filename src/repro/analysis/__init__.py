"""Statistics and closed-form analysis used by the experiment harness."""

from .fct import SIZE_CLASSES, FctStats, group_by, percentile, size_class, speedup, summarize
from .streaming import P2Quantile, StreamingStats
from .export import flatten_result, write_rows_csv, write_series_csv
from .convergence import jain_index, stability, time_to_share, utilization
from .switch_chips import SWITCH_CHIPS, buffer_bandwidth_ratios
from .trace import PfcLogger, PortTracer, occupancy_stats
from .theory import (
    channel_width_ns,
    linear_start_is_optimal,
    potential_backlog,
    start_strategy_costs,
    swift_fluctuation_ns,
)

__all__ = [
    "FctStats",
    "summarize",
    "group_by",
    "percentile",
    "speedup",
    "SIZE_CLASSES",
    "size_class",
    "P2Quantile",
    "StreamingStats",
    "SWITCH_CHIPS",
    "buffer_bandwidth_ratios",
    "write_series_csv",
    "write_rows_csv",
    "flatten_result",
    "jain_index",
    "time_to_share",
    "utilization",
    "stability",
    "PortTracer",
    "PfcLogger",
    "occupancy_stats",
    "start_strategy_costs",
    "potential_backlog",
    "linear_start_is_optimal",
    "swift_fluctuation_ns",
    "channel_width_ns",
]
