"""Bounded-memory streaming statistics for long-trace result accumulation.

Multi-second paper-scale runs complete millions of flows; keeping every FCT
in a Python list (the historical ``_stats`` path) costs ~100 bytes per
float-in-list and an O(n log n) sort per percentile query.  This module
provides O(1)-memory accumulators the experiment layer feeds one completion
at a time:

* :class:`P2Quantile` — the Jain/Chlamtac P² algorithm: a single quantile
  estimated from five markers updated with a piecewise-parabolic fit.  No
  samples are retained.  For n <= 5 observations the estimate is *exact*
  (the markers still hold the raw samples).
* :class:`StreamingStats` — count / mean / min / max plus P² sketches for
  p50 and p99, exporting the same record shape as the per-figure ``_stats``
  helpers (``count`` / ``mean_us`` / ``p50_us`` / ``p99_us``), with a
  well-defined ``n=0`` record (``None`` metrics) so empty groups are
  first-class rather than a :class:`ZeroDivisionError`.

Accuracy envelope: P² is an approximation.  On the heavy-tailed FCT
populations these experiments produce, p50/p99 land within a few percent of
the exact sample percentile for n >= ~100 (pinned in
``tests/test_analysis.py``); per-figure tables quoting long-trace
percentiles say so in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["P2Quantile", "StreamingStats"]


class P2Quantile:
    """P² streaming quantile estimator (Jain & Chlamtac, CACM 1985).

    Tracks one quantile ``p`` (0 < p < 1) with five markers; O(1) memory
    and O(1) per observation.  Exact for the first five observations.
    """

    __slots__ = ("p", "_q", "_n", "_np", "_dn", "count")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._q: List[float] = []  # marker heights
        self._n: List[float] = []  # marker positions (1-based)
        self._np: List[float] = []  # desired positions
        self._dn = [0.0, p / 2, p, (1 + p) / 2, 1.0]  # desired increments

    def add(self, x: float) -> None:
        self.count += 1
        q, n = self._q, self._n
        if self.count <= 5:
            q.append(float(x))
            q.sort()
            if self.count == 5:
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                p = self.p
                self._np = [1.0, 1 + 2 * p, 1 + 4 * p, 3 + 2 * p, 5.0]
            return
        # locate cell k: q[k] <= x < q[k+1]
        if x < q[0]:
            q[0] = float(x)
            k = 0
        elif x >= q[4]:
            q[4] = float(x)
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        np_ = self._np
        for i in range(5):
            np_[i] += self._dn[i]
        # adjust interior markers toward their desired positions
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                d = 1.0 if d > 0 else -1.0
                qi = self._parabolic(i, d)
                if not q[i - 1] < qi < q[i + 1]:
                    qi = self._linear(i, d)
                q[i] = qi
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> Optional[float]:
        """Current estimate; ``None`` before any observation."""
        if self.count == 0:
            return None
        if self.count <= 5:
            # markers are the raw sorted sample: interpolate exactly
            q = self._q
            if len(q) == 1:
                return q[0]
            rank = self.p * (len(q) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(q) - 1)
            frac = rank - lo
            return q[lo] * (1 - frac) + q[hi] * frac
        return self._q[2]


class StreamingStats:
    """count/mean/min/max + P² p50/p99 over a stream of values (ns).

    The export shape (:meth:`as_dict`) matches the per-figure ``_stats``
    record — ``count`` / ``mean_us`` / ``p50_us`` / ``p99_us`` — so list
    and streaming result paths are drop-in interchangeable.  An empty
    accumulator exports the canonical *empty record*: ``count == 0`` with
    every metric ``None``.
    """

    __slots__ = ("count", "_sum", "min", "max", "_p50", "_p99")

    def __init__(self):
        self.count = 0
        self._sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._p50 = P2Quantile(0.50)
        self._p99 = P2Quantile(0.99)

    def add(self, value: float) -> None:
        self.count += 1
        self._sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._p50.add(value)
        self._p99.add(value)

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self.count if self.count else None

    def p50(self) -> Optional[float]:
        return self._p50.value()

    def p99(self) -> Optional[float]:
        return self._p99.value()

    def as_dict(self) -> Dict[str, Optional[float]]:
        """The ``_stats`` record shape (µs), with a well-defined n=0 form."""
        if self.count == 0:
            return {"count": 0, "mean_us": None, "p50_us": None, "p99_us": None}
        return {
            "count": self.count,
            "mean_us": self._sum / self.count / 1e3,
            "p50_us": self._p50.value() / 1e3,
            "p99_us": self._p99.value() / 1e3,
        }
