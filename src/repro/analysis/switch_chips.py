"""Figure 2: buffer-to-bandwidth ratios of commodity switch chips.

Static data reproducing the declining-ratio trend the paper uses to motivate
virtual priority (buffer growth lags bandwidth growth, squeezing PFC
headroom).  Values are public datasheet figures (MB of packet buffer,
Tbps of switching capacity).
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["SWITCH_CHIPS", "buffer_bandwidth_ratios"]

#: (chip, year, buffer_MB, bandwidth_Tbps)
SWITCH_CHIPS: List[Tuple[str, int, float, float]] = [
    ("Trident+", 2010, 9.0, 0.64),
    ("Trident2", 2013, 12.0, 1.28),
    ("Tomahawk", 2014, 16.0, 3.2),
    ("Tomahawk2", 2016, 42.0, 6.4),
    ("Tomahawk3", 2018, 64.0, 12.8),
    ("Tomahawk4", 2020, 113.0, 25.6),
]


def buffer_bandwidth_ratios() -> List[Tuple[str, int, float]]:
    """(chip, year, MB-per-Tbps), newest chips have the smallest ratio."""
    return [(name, year, buf / bw) for name, year, buf, bw in SWITCH_CHIPS]
