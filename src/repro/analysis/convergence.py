"""Convergence and fairness metrics for rate time-series.

Operate on the ``(time, rate)`` series produced by
:class:`repro.experiments.common.RateSampler`:

* :func:`jain_index` — Jain's fairness index over per-entity allocations;
* :func:`time_to_share` — how long an entity takes to first reach a target
  share of capacity (the Fig 8 takeover/reclaim measurements generalised);
* :func:`utilization` — mean aggregate share of capacity over a window;
* :func:`stability` — coefficient of variation of the aggregate rate.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = ["jain_index", "time_to_share", "utilization", "stability"]

Series = Sequence[Tuple[int, float]]


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: 1 = perfectly fair, 1/n = one entity hogs all."""
    if not allocations:
        raise ValueError("no allocations")
    if any(a < 0 for a in allocations):
        raise ValueError("allocations must be non-negative")
    total = sum(allocations)
    if total == 0:
        return 1.0  # nobody got anything: vacuously fair
    squares = sum(a * a for a in allocations)
    return total * total / (len(allocations) * squares)


def time_to_share(
    series: Series, capacity: float, share: float, t_from: int = 0
) -> Optional[int]:
    """First time >= ``t_from`` the series reaches ``share`` of capacity."""
    if not 0 < share <= 1:
        raise ValueError("share must be in (0, 1]")
    threshold = share * capacity
    for t, r in series:
        if t >= t_from and r >= threshold:
            return t
    return None


def utilization(series_list: Iterable[Series], capacity: float, t_from: int = 0, t_to: int = 1 << 62) -> float:
    """Mean aggregate share of capacity across entities over a window."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    per_time: Dict[int, float] = {}
    for series in series_list:
        for t, r in series:
            if t_from <= t <= t_to:
                per_time[t] = per_time.get(t, 0.0) + r
    if not per_time:
        return 0.0
    return sum(per_time.values()) / len(per_time) / capacity


def stability(series: Series, t_from: int = 0, t_to: int = 1 << 62) -> float:
    """Coefficient of variation (σ/μ) of the rate in a window; 0 = rock solid."""
    vals = [r for t, r in series if t_from <= t <= t_to]
    if not vals:
        raise ValueError("empty window")
    mean = sum(vals) / len(vals)
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in vals) / len(vals)
    return math.sqrt(var) / mean
