"""Port-level telemetry: queue-occupancy traces and PFC event logs.

The figure experiments mostly sample sender-side delay; debugging switch
behaviour needs the other side — what the queues actually did.  A
:class:`PortTracer` samples one port's per-queue byte occupancy on a fixed
grid; :class:`PfcLogger` timestamps every PAUSE/RESUME a switch emits.
Both are pure observers (no effect on the simulation).

Both are thin conveniences over the first-class observability layer:
:class:`PfcLogger` subscribes to ``Switch.pfc_listeners`` (so it can be
installed at any time, including after traffic has started), and
:class:`PortTracer` schedules itself through the engine's cancellable event
handles, with an optional ``horizon_ns`` and a :meth:`PortTracer.stop` method
so it cannot pin the event heap and run ``sim.run()`` forever.  For full
event traces (Perfetto export, metrics), use :mod:`repro.telemetry` instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.port import Port
from ..sim.switch import Switch

__all__ = ["PortTracer", "PfcLogger", "occupancy_stats"]


class PortTracer:
    """Samples a port's total and per-queue occupancy every ``interval_ns``.

    Parameters
    ----------
    horizon_ns:
        Stop sampling (and stop rescheduling) past this absolute time.  With
        the default ``None`` the tracer keeps itself scheduled until
        :meth:`stop` is called — call it before an open-ended ``sim.run()``,
        otherwise the self-rescheduling tick keeps the simulation alive.
    """

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        interval_ns: int = 10_000,
        horizon_ns: Optional[int] = None,
    ):
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.port = port
        self.interval_ns = interval_ns
        self.horizon_ns = horizon_ns
        #: list of (time_ns, total_bytes, tuple(per-queue bytes))
        self.samples: List[Tuple[int, int, Tuple[int, ...]]] = []
        self._stopped = False
        self._ev = sim.after(interval_ns, self._tick)

    def _tick(self) -> None:
        self._ev = None
        self.samples.append((self.sim.now, self.port.total_bytes, tuple(self.port.qbytes)))
        if self._stopped:
            return
        if self.horizon_ns is not None and self.sim.now + self.interval_ns > self.horizon_ns:
            return
        self._ev = self.sim.after(self.interval_ns, self._tick)

    def stop(self) -> None:
        """Cease sampling; cancels the pending tick so the heap drains."""
        self._stopped = True
        if self._ev is not None:
            self._ev.cancel()
            self._ev = None

    def peak_bytes(self, t_from: int = 0, t_to: int = 1 << 62) -> int:
        vals = [total for (t, total, _) in self.samples if t_from <= t <= t_to]
        return max(vals) if vals else 0

    def mean_bytes(self, t_from: int = 0, t_to: int = 1 << 62) -> float:
        vals = [total for (t, total, _) in self.samples if t_from <= t <= t_to]
        return sum(vals) / len(vals) if vals else 0.0

    def occupancy_series(self, queue: Optional[int] = None) -> List[Tuple[int, int]]:
        if queue is None:
            return [(t, total) for (t, total, _) in self.samples]
        return [(t, per[queue]) for (t, _, per) in self.samples]


class PfcLogger:
    """Records every PFC PAUSE/RESUME decision a switch makes.

    Registers on :attr:`Switch.pfc_listeners`, which is consulted at signal
    time — installation order relative to traffic no longer matters.
    """

    def __init__(self, sim: Simulator, switch: Switch):
        self.sim = sim
        self.switch = switch
        #: list of (time_ns, ingress_idx, priority, paused: bool)
        self.events: List[Tuple[int, int, int, bool]] = []
        switch.pfc_listeners.append(self._on_signal)

    def _on_signal(self, t: int, in_idx: int, prio: int, paused: bool) -> None:
        self.events.append((t, in_idx, prio, paused))

    def detach(self) -> None:
        """Stop observing the switch."""
        try:
            self.switch.pfc_listeners.remove(self._on_signal)
        except ValueError:
            pass

    def pause_count(self) -> int:
        return sum(1 for *_rest, paused in self.events if paused)

    def resume_count(self) -> int:
        return sum(1 for *_rest, paused in self.events if not paused)

    def paused_duration_ns(self, horizon_ns: int) -> int:
        """Total (ingress, priority)-paused time up to ``horizon_ns``."""
        open_since: Dict[Tuple[int, int], int] = {}
        total = 0
        for t, in_idx, prio, paused in sorted(self.events):
            key = (in_idx, prio)
            if paused:
                open_since.setdefault(key, t)
            elif key in open_since:
                total += t - open_since.pop(key)
        for t0 in open_since.values():
            total += max(0, horizon_ns - t0)
        return total


def occupancy_stats(tracer: PortTracer, bdp_bytes: float) -> Dict[str, float]:
    """Peak/mean occupancy normalised by a BDP, for reports."""
    if bdp_bytes <= 0:
        raise ValueError("BDP must be positive")
    return {
        "peak_bdp": tracer.peak_bytes() / bdp_bytes,
        "mean_bdp": tracer.mean_bytes() / bdp_bytes,
        "samples": float(len(tracer.samples)),
    }
