"""PrioPlus: virtual priority as a congestion-control enhancement.

Core algorithm (:class:`PrioPlusCC`, :class:`ChannelConfig`) plus the
paper's discussed extensions: weighted virtual priority (§7) and
per-priority ECN marking (Appendix B), and the start-strategy instruments
behind Table 2.
"""

from .channels import PAPER_A_NS, PAPER_B_NS, ChannelConfig
from .ecn_extension import EcnPriorityConfig, install_priority_marking, thresholds_for
from .prioplus import W_LS_FRACTION, PrioPlusCC, StartTier
from .start_strategies import EXPONENTIAL, LINEAR, LINE_RATE, StartRampCC
from .planner import PlanError, QueuePlan, TrafficClass, plan_queues
from .weighted import WeightedPrioPlusCC, aggregate_floor_share

__all__ = [
    "ChannelConfig",
    "PAPER_A_NS",
    "PAPER_B_NS",
    "PrioPlusCC",
    "StartTier",
    "W_LS_FRACTION",
    "WeightedPrioPlusCC",
    "aggregate_floor_share",
    "EcnPriorityConfig",
    "install_priority_marking",
    "thresholds_for",
    "StartRampCC",
    "LINE_RATE",
    "EXPONENTIAL",
    "LINEAR",
    "TrafficClass",
    "QueuePlan",
    "PlanError",
    "plan_queues",
]
