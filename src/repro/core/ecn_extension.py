"""Per-priority ECN marking — the Appendix-B extension, prototyped.

The paper's Appendix B sketches how PrioPlus's idea could reach ECN-based
CCs: make the switch's marking *threshold/probability depend on the flow's
priority*, so lower priorities receive congestion notification earlier and
back off first.  This requires a switch change (hence "not readily
deployable"), but is easy to prototype in the simulator.

This module computes per-virtual-priority marking thresholds and installs a
marking hook on switch ports.  The virtual priority rides in the packet's
``local_prio`` field, standing in for a DSCP codepoint the switch would
classify on.  Lower priorities get geometrically smaller thresholds::

    K_i = K_top * ratio^(top - i)        (i = virtual priority, larger = higher)

With DCTCP/D2TCP senders this yields approximate priority ordering from a
single queue — the experiment in
:mod:`repro.experiments.ecn_priority` quantifies how close it gets to
PrioPlus's strict channels.
"""

from __future__ import annotations

from typing import List

from ..sim.network import Network
from ..sim.packet import Packet
from ..sim.port import Port

__all__ = ["EcnPriorityConfig", "install_priority_marking", "thresholds_for"]


class EcnPriorityConfig:
    """Marking thresholds per virtual priority."""

    def __init__(self, k_top_bytes: int = 100 * 1024, ratio: float = 0.5, n_priorities: int = 8):
        if not 0 < ratio <= 1:
            raise ValueError("ratio must be in (0, 1]")
        if k_top_bytes <= 0:
            raise ValueError("top threshold must be positive")
        self.k_top_bytes = k_top_bytes
        self.ratio = ratio
        self.n_priorities = n_priorities

    def threshold(self, vpriority: int) -> float:
        """Marking threshold for virtual priority ``vpriority`` (1-based)."""
        if vpriority < 1:
            raise ValueError("virtual priorities are 1-based")
        steps = max(0, self.n_priorities - min(vpriority, self.n_priorities))
        return self.k_top_bytes * (self.ratio**steps)


def thresholds_for(cfg: EcnPriorityConfig) -> List[float]:
    """Thresholds for priorities 1..n (ascending priority)."""
    return [cfg.threshold(i) for i in range(1, cfg.n_priorities + 1)]


def install_priority_marking(net: Network, cfg: EcnPriorityConfig) -> int:
    """Patch every switch egress port to mark by per-priority thresholds.

    Returns the number of ports patched.  The hook replaces the port's
    uniform `ecn_k` marking with: mark iff the queue (including this packet)
    exceeds the threshold of the packet's virtual priority.
    """
    patched = 0
    for switch in net.switches:
        for port in switch.ports:
            _patch_port(port, cfg)
            patched += 1
    return patched


def _patch_port(port: Port, cfg: EcnPriorityConfig) -> None:
    port.ecn_k = None  # the hook replaces the uniform marker

    def marker(pkt: Packet, queue_bytes: int) -> bool:
        vp = pkt.local_prio if pkt.local_prio >= 1 else 1
        return queue_bytes + pkt.size > cfg.threshold(vp)

    port.ecn_marker = marker
