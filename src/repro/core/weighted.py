"""Weighted virtual priority — the paper's §7 future-work direction.

Strict virtual priority (PrioPlus proper) makes a lower-priority flow
relinquish *all* bandwidth when a higher priority is active.  Weighted
virtual priority instead guarantees each priority class a configurable
*residual share* while it is preempted, giving weighted sharing between
priorities without extra switch queues.

Design (this repo's instantiation of the paper's sketch):

* in-channel behaviour is identical to PrioPlus;
* on a confirmed ``D_limit`` crossing, instead of halting, the flow clamps
  its window to ``weight * BaseBDP / #flow`` and *keeps sending* — the
  residual traffic doubles as the congestion probe, so the probe machinery
  is not needed while the floor is non-zero;
* when the delay drops back below ``D_target``, normal channel operation
  resumes (linear start / adaptive increase as usual).

``weight = 0`` degenerates to strict PrioPlus.  The paper notes the open
problem that *many* low-priority flows can invert priorities under weighted
sharing; the cardinality estimate bounds this by dividing the floor among
the estimated flows, and the :func:`aggregate_floor_share` helper exposes
the resulting worst-case aggregate share for operators.
"""

from __future__ import annotations


from ..transport.flow import AckInfo
from .channels import ChannelConfig
from .prioplus import PrioPlusCC, StartTier

__all__ = ["WeightedPrioPlusCC", "aggregate_floor_share"]


class WeightedPrioPlusCC(PrioPlusCC):
    """PrioPlus with a weighted residual share instead of full relinquish."""

    def __init__(
        self,
        inner,
        channels: ChannelConfig,
        vpriority: int,
        weight: float = 0.1,
        tier: str = StartTier.MEDIUM,
        **kwargs,
    ):
        if not 0.0 <= weight < 1.0:
            raise ValueError("weight must be in [0, 1)")
        super().__init__(inner, channels, vpriority, tier=tier, **kwargs)
        self.weight = weight
        self.floor_mode = False
        self.floor_entries = 0

    # ------------------------------------------------------------------
    def _floor_bytes(self) -> float:
        return max(
            self.weight * self.base_bdp / max(self.nflow, 1.0),
            self.inner.min_cwnd,
        )

    def _relinquish(self, delay: int) -> None:
        if self.weight <= 0.0:
            super()._relinquish(delay)
            return
        # weighted mode: keep a floor window instead of halting + probing
        if self.cardinality_estimation:
            inflight = delay * self._line_rate_bpns
            est = inflight / max(self.inner.cwnd, self.inner.mtu)
            if est > self.nflow:
                self.nflow = est
        self.inner.ai_bytes = self.w_ai_origin / self.nflow
        self.countdown = self._countdown_reset_value()
        self.relinquish_count += 1
        self.consec = 0
        if not self.floor_mode:
            self.floor_mode = True
            self.floor_entries += 1
        self.inner.cwnd = min(self.inner.cwnd, self._floor_bytes())
        self.inner.clamp()

    def on_ack(self, info: AckInfo) -> None:
        if self.floor_mode:
            delay = info.delay_ns
            if delay >= self.d_limit:
                # still preempted: hold the floor
                self.inner.cwnd = min(self.inner.cwnd, self._floor_bytes())
                return
            # contention ended: resume normal channel operation
            self.floor_mode = False
            self.rtt_end_seq = self.sender.snd_nxt
            self.rtt_pass = False
            self.dual_rtt_pass = False
        super().on_ack(info)


def aggregate_floor_share(weight: float, n_flows: int, estimated_cardinality: float) -> float:
    """Worst-case aggregate share held by preempted weighted flows.

    With per-flow floors of ``weight * BDP / cardinality`` and ``n_flows``
    active, the preempted class holds up to ``weight * n / cardinality`` of
    the line — the §7 priority-inversion hazard, bounded as long as the
    cardinality estimate tracks ``n``.
    """
    if n_flows < 0 or estimated_cardinality <= 0:
        raise ValueError("invalid flow counts")
    return weight * n_flows / estimated_cardinality
