"""Flow start strategies (§4.2.2, Table 2, Figure 5) as pluggable CCs.

Three ways to take a fresh flow from zero to line rate over an uncertain
path:

* **line-rate start** — begin at one BDP immediately (RDMA convention);
* **exponential start** — begin at one MTU, double per RTT (TCP slow start);
* **linear start** — begin at ``BDP/n`` and add ``BDP/n`` per RTT
  (PrioPlus's choice, optimal by Theorem 4.1).

The :class:`StartRampCC` freezes once the ramp completes (it is a
measurement instrument, not a full CC), so the Table-2 validation
experiment can attribute buffer occupancy purely to the start phase.
"""

from __future__ import annotations

from ..cc.base import CongestionControl
from ..transport.flow import AckInfo

__all__ = ["LINE_RATE", "EXPONENTIAL", "LINEAR", "StartRampCC"]

LINE_RATE = "line_rate"
EXPONENTIAL = "exponential"
LINEAR = "linear"

_STRATEGIES = (LINE_RATE, EXPONENTIAL, LINEAR)


class StartRampCC(CongestionControl):
    """Ramp the window to one BDP following a named start strategy."""

    def __init__(self, strategy: str, n_rtts: int = 8):
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown start strategy {strategy!r}")
        if n_rtts < 1:
            raise ValueError("the ramp needs at least one RTT")
        super().__init__()
        self.strategy = strategy
        self.n_rtts = n_rtts
        self._rtt_end_seq = 0
        self.rtts_elapsed = 0
        self.frozen = False
        self._queue_eps_ns = 0

    def default_init_cwnd(self) -> float:
        if self.strategy == LINE_RATE:
            return max(self.bdp_bytes, self.mtu)
        if self.strategy == EXPONENTIAL:
            return float(self.mtu)
        return max(self.bdp_bytes / self.n_rtts, self.mtu)

    def default_max_cwnd(self) -> float:
        return max(self.bdp_bytes, 4 * self.mtu)

    def configure(self) -> None:
        # "queue buildup observed": delay beyond base RTT plus a few packets
        # worth of serialisation jitter
        self._queue_eps_ns = int(4 * self.mtu * 8e9 / self.line_rate_bps)

    def on_ack(self, info: AckInfo) -> None:
        if self.frozen:
            return
        if info.delay_ns > self.base_rtt + self._queue_eps_ns:
            # the sender sees the queue it built: stop increasing (Fig 5)
            self.frozen = True
            return
        if info.seq < self._rtt_end_seq or self.cwnd >= self.max_cwnd:
            return
        # one RTT boundary passed: take the next ramp step
        self._rtt_end_seq = self.sender.snd_nxt
        self.rtts_elapsed += 1
        if self.strategy == EXPONENTIAL:
            self.cwnd *= 2
        elif self.strategy == LINEAR:
            self.cwnd += self.bdp_bytes / self.n_rtts
        self.clamp()

    def on_timeout(self) -> None:
        """Keep the ramp deterministic for measurement purposes."""
