"""Queue planning: the paper's deployment vision (§2.3) as an API.

The paper argues physical queues should be reserved for *isolation between
traffic classes* while virtual priorities provide *scheduling within* each
class.  :func:`plan_queues` turns that argument into a checked plan:

* each traffic class gets one physical queue (plus one shared ACK queue);
* classes that want scheduling get a PrioPlus :class:`ChannelConfig` sized
  from the class's expected flow count (Appendix-D fluctuation bound) and
  the operator's measured noise tolerance;
* the plan validates the physical-queue budget (8 by default, §2.2) and
  each class's worst-case added delay (the top channel's D_limit offset)
  against an optional latency SLO.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .channels import ChannelConfig

__all__ = ["TrafficClass", "QueuePlan", "PlanError", "plan_queues"]

#: protocol ceiling on lossless physical priorities (§2.2)
DEFAULT_PHYSICAL_BUDGET = 8


class PlanError(ValueError):
    """A requested plan cannot be realised."""


class TrafficClass:
    """One isolation class (e.g. 'storage', 'training', 'latency RPCs')."""

    def __init__(
        self,
        name: str,
        n_virtual_priorities: int = 1,
        expected_flows: int = 150,
        max_added_delay_ns: Optional[int] = None,
    ):
        if n_virtual_priorities < 1:
            raise ValueError(f"{name}: need at least one priority")
        if expected_flows < 1:
            raise ValueError(f"{name}: expected flow count must be positive")
        self.name = name
        self.n_virtual_priorities = n_virtual_priorities
        self.expected_flows = expected_flows
        #: optional SLO on the extra queuing the channel ladder may add
        self.max_added_delay_ns = max_added_delay_ns


class QueuePlan:
    """Result of :func:`plan_queues`."""

    def __init__(
        self,
        physical_queue_of: Dict[str, int],
        ack_queue: int,
        channels_of: Dict[str, Optional[ChannelConfig]],
    ):
        self.physical_queue_of = physical_queue_of
        self.ack_queue = ack_queue
        self.channels_of = channels_of

    @property
    def n_physical_queues(self) -> int:
        return self.ack_queue + 1

    def describe(self) -> str:
        lines = [f"{self.n_physical_queues} physical queues (top = ACK)"]
        for name, q in sorted(self.physical_queue_of.items(), key=lambda kv: -kv[1]):
            ch = self.channels_of[name]
            if ch is None:
                lines.append(f"  q{q}: {name} (no internal scheduling)")
            else:
                top = ch.limit_offset_ns(ch.n_priorities) / 1e3
                lines.append(
                    f"  q{q}: {name} — {ch.n_priorities} virtual priorities, "
                    f"step {ch.step_ns / 1e3:.1f} us, worst added delay {top:.1f} us"
                )
        return "\n".join(lines)


def plan_queues(
    classes: Sequence[TrafficClass],
    line_rate_bps: float = 100e9,
    noise_tolerance_ns: int = 800,
    swift_ai_bytes: float = 150.0,
    swift_target_ns: int = 20_000,
    physical_budget: int = DEFAULT_PHYSICAL_BUDGET,
) -> QueuePlan:
    """Build and validate a physical/virtual queue plan.

    Classes are listed lowest-priority-first; they receive physical queues
    0..n-1 in order, with the ACK queue on top.
    """
    if not classes:
        raise PlanError("no traffic classes")
    names = [c.name for c in classes]
    if len(set(names)) != len(names):
        raise PlanError("duplicate class names")
    needed = len(classes) + 1  # + ACK queue
    if needed > physical_budget:
        raise PlanError(
            f"{len(classes)} classes need {needed} physical queues "
            f"(incl. ACK) but only {physical_budget} exist — merge classes "
            f"or move scheduling into virtual priorities"
        )

    physical: Dict[str, int] = {}
    channel_cfgs: Dict[str, Optional[ChannelConfig]] = {}
    for idx, cls in enumerate(classes):
        physical[cls.name] = idx
        if cls.n_virtual_priorities <= 1:
            channel_cfgs[cls.name] = None
            continue
        # size A from the above-target component of the Appendix-D bound,
        # doubled for headroom, floored at 2 us
        above_ns = cls.expected_flows * swift_ai_bytes / (line_rate_bps / 8e9)
        fluctuation_ns = max(int(2 * above_ns), 2_000)
        cfg = ChannelConfig(
            fluctuation_ns=fluctuation_ns,
            noise_ns=noise_tolerance_ns,
            n_priorities=cls.n_virtual_priorities,
        )
        cfg.validate()
        worst = cfg.limit_offset_ns(cls.n_virtual_priorities)
        if cls.max_added_delay_ns is not None and worst > cls.max_added_delay_ns:
            raise PlanError(
                f"{cls.name}: channel ladder adds up to {worst / 1e3:.1f} us "
                f"but the SLO allows {cls.max_added_delay_ns / 1e3:.1f} us — "
                f"reduce priorities, flow count, or noise tolerance"
            )
        channel_cfgs[cls.name] = cfg
    return QueuePlan(physical, ack_queue=len(classes), channels_of=channel_cfgs)
