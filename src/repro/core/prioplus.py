"""PrioPlus: the paper's Algorithm 1 as a CC wrapper.

``PrioPlusCC`` wraps any delay-based CC that exposes ``target_delay_ns``,
``ai_bytes`` and ``set_target_scaling`` (Swift and LEDBAT here).  The wrapper
implements the full state machine:

* **Relinquish + probe with collision avoidance** (§4.2.1): after two
  consecutive delay samples ≥ ``D_limit`` (the noise *filter mechanism*,
  §4.3.1) the flow stops sending and probes after
  ``(delay - D_target) + random(BaseRtt)``.
* **Linear start** (§4.2.2): on an empty path, grow by ``W_LS / #flow`` per
  RTT instead of line-rate or exponential start.
* **Dual-RTT adaptive increase** (§4.2.3): when only lower priorities are
  transmitting (base RTT < delay ≤ D_target), raise the delay to ``D_target``
  in one shot by widening the wrapped CC's AI step — but only every *two*
  RTTs, because the effect of an increase is observable exactly two RTTs
  later (Fig. 6).
* **Delay-based flow-cardinality estimation** (§4.3.1): on relinquish,
  ``#flow = max(#flow, delay·LineRate / cwnd)``; ``W_AI`` and ``W_LS`` are
  divided by ``#flow``; a countdown halves ``#flow`` when the path stays
  empty long enough for the estimate to be proven stale.

Ablation switches (``dual_rtt``, ``cardinality_estimation``,
``collision_avoidance``) reproduce the paper's design-choice experiments
(Figs 9, 10c).
"""

from __future__ import annotations

from typing import Optional

from ..audit.auditor import NULL_AUDITOR
from ..obs.inspector import NULL_INSPECTOR
from ..telemetry.recorder import NULL_RECORDER
from ..transport.flow import AckInfo
from .channels import ChannelConfig

__all__ = ["PrioPlusCC", "StartTier", "W_LS_FRACTION"]


class StartTier:
    """Recommended W_LS fractions of base BDP per traffic class (§4.4)."""

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"


#: §4.4: W_LS = BaseBdp for high, 0.25·BaseBdp for medium, 0.125·BaseBdp for low.
W_LS_FRACTION = {
    StartTier.HIGH: 1.0,
    StartTier.MEDIUM: 0.25,
    StartTier.LOW: 0.125,
}


class PrioPlusCC:
    """Virtual-priority enhancement wrapped around a delay-based CC."""

    needs_int = False

    def __init__(
        self,
        inner,
        channels: ChannelConfig,
        vpriority: int,
        tier: str = StartTier.MEDIUM,
        w_ls_bytes: Optional[float] = None,
        probe_first: Optional[bool] = None,
        filter_consecutive: int = 2,
        dual_rtt: bool = True,
        cardinality_estimation: bool = True,
        collision_avoidance: bool = True,
        empty_eps_ns: Optional[int] = None,
    ):
        if vpriority < 1:
            raise ValueError("virtual priorities are 1-based (larger = higher)")
        self.inner = inner
        self.channels = channels
        self.vpriority = vpriority
        self.tier = tier
        self._w_ls_cfg = w_ls_bytes
        #: high-priority / latency-sensitive flows skip the initial probe (§4.4)
        self.probe_first = probe_first if probe_first is not None else tier != StartTier.HIGH
        self.filter_consecutive = filter_consecutive
        self.dual_rtt = dual_rtt
        self.cardinality_estimation = cardinality_estimation
        self.collision_avoidance = collision_avoidance
        self._empty_eps_cfg = empty_eps_ns

        # resolved at attach
        self.sender = None
        self.d_target = 0
        self.d_limit = 0
        self.base_rtt = 0
        self.empty_eps = 0
        self.w_ls = 0.0
        self.w_ai_origin = 0.0
        self.base_bdp = 0.0
        self._line_rate_bpns = 0.0  # bytes per ns

        # Algorithm 1 state
        self.nflow = 1.0
        self.consec = 0
        self.countdown = 0
        self.rtt_end_seq = 0
        self.rtt_pass = False
        self.dual_rtt_pass = False
        self.relinquish_count = 0
        self.linear_start_steps = 0
        self.adaptive_increases = 0
        self._tel = NULL_RECORDER
        self._aud = NULL_AUDITOR
        self._insp = NULL_INSPECTOR

    # ------------------------------------------------------------------
    # window delegation: the sender reads PrioPlusCC.cwnd
    # ------------------------------------------------------------------
    @property
    def cwnd(self) -> float:
        return self.inner.cwnd

    @cwnd.setter
    def cwnd(self, value: float) -> None:
        self.inner.cwnd = value

    @property
    def mtu(self) -> int:
        return self.inner.mtu

    # ------------------------------------------------------------------
    def attach(self, sender) -> None:
        self.sender = sender
        self._tel = getattr(sender.sim, "telemetry", NULL_RECORDER)
        self._aud = getattr(sender, "audit", NULL_AUDITOR)
        self.inner.attach(sender)
        self.base_rtt = sender.base_rtt
        self.base_bdp = sender.bdp_bytes
        self._line_rate_bpns = sender.line_rate_bps / 8e9
        self.d_target = self.channels.target_ns(self.vpriority, self.base_rtt)
        self.d_limit = self.channels.limit_ns(self.vpriority, self.base_rtt)
        self.empty_eps = (
            self._empty_eps_cfg
            if self._empty_eps_cfg is not None
            else self.channels.noise_ns
        )
        self.w_ls = (
            self._w_ls_cfg
            if self._w_ls_cfg is not None
            else max(W_LS_FRACTION[self.tier] * self.base_bdp, self.inner.mtu)
        )
        # PrioPlus pins the wrapped CC to the channel target and disables any
        # target-scaling heuristic (§4.1).
        self.inner.set_target_scaling(False)
        self._set_inner_target(self.d_target)
        self.w_ai_origin = self.inner.ai_bytes
        insp = getattr(sender.sim, "inspector", NULL_INSPECTOR)
        self._insp = insp
        if insp.enabled:
            flow = sender.flow
            insp.register_flow(
                flow.flow_id,
                self.vpriority,
                self.d_target,
                self.d_limit,
                self.tier,
                [p.name for p in sender.net.path_ports(flow.src, flow.dst)],
            )

    def _set_inner_target(self, target_ns: int) -> None:
        self.inner.target_delay_ns = target_ns
        # LEDBAT keys its controller off the queuing component.
        if hasattr(self.inner, "target_queuing_ns"):
            self.inner.target_queuing_ns = max(target_ns - self.base_rtt, 1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.countdown = self._countdown_reset_value()
        tel = self._tel
        insp = self._insp
        if self.probe_first:
            if tel.enabled:
                tel.flow_state(self.sender.sim.now, self.sender.flow.flow_id, "probe_wait")
            if insp.enabled:
                insp.transition(self.sender.sim.now, self.sender.flow.flow_id, "probe_wait")
            self.sender.stop_sending()
            self.sender.send_probe_after(0)
        else:
            # linear start from W_LS without probing (§4.4)
            if tel.enabled:
                tel.flow_state(self.sender.sim.now, self.sender.flow.flow_id, "linear_start")
            if insp.enabled:
                insp.transition(self.sender.sim.now, self.sender.flow.flow_id, "linear_start")
            self.inner.cwnd = max(self.w_ls, self.inner.min_cwnd)
            self.inner.clamp()

    def _countdown_reset_value(self) -> int:
        return max(1, int(self.base_bdp / max(self.w_ls, 1.0)))

    # ------------------------------------------------------------------
    # Algorithm 1: NewAck
    # ------------------------------------------------------------------
    def on_ack(self, info: AckInfo) -> None:
        if self.sender.stopped:
            # ACKs of draining in-flight data after relinquishing: the probe
            # loop owns recovery; these samples are not acted on.
            return
        if info.seq >= self.rtt_end_seq:
            # one RTT elapsed (lines 2-6)
            self.rtt_pass = True
            self.rtt_end_seq = self.sender.snd_nxt
            self.dual_rtt_pass = not self.dual_rtt_pass
            if not self.dual_rtt_pass or not self.dual_rtt:
                # end of an adaptive-increase window: restore the AI step
                self.inner.ai_bytes = self.w_ai_origin / self.nflow

        delay = info.delay_ns
        if delay >= self.d_limit:
            self.consec += 1
            if self.consec >= self.filter_consecutive:
                self._relinquish(delay)
                return
        else:
            self.consec = 0

        if delay <= self.d_target and self.rtt_pass:
            if delay <= self.base_rtt + self.empty_eps:
                # linear start step (lines 13-16)
                self.inner.cwnd += self.w_ls / self.nflow
                self.linear_start_steps += 1
                tel = self._tel
                if tel.enabled:
                    tel.cc_event(info.now, self.sender.flow.flow_id, "linear_start_step")
                insp = self._insp
                if insp.enabled:
                    insp.cc_event(info.now, self.sender.flow.flow_id, "linear_start_step")
                self._countdown_tick()
                self.rtt_pass = False
            elif self.dual_rtt_pass or not self.dual_rtt:
                # dual-RTT adaptive increase (lines 17-19)
                step = min(
                    self.inner.cwnd / 2.0,
                    (self.d_target - delay) / max(delay, 1) * self.inner.cwnd,
                )
                if step > 0:
                    self.inner.ai_bytes = self.inner.ai_bytes + step
                    self.adaptive_increases += 1
                    tel = self._tel
                    if tel.enabled:
                        tel.cc_event(info.now, self.sender.flow.flow_id, "adaptive_increase")
                    insp = self._insp
                    if insp.enabled:
                        insp.cc_event(info.now, self.sender.flow.flow_id, "adaptive_increase")
                self.rtt_pass = False
        self.inner.on_ack(info)

    def _countdown_tick(self) -> None:
        if self.countdown > 0:
            self.countdown -= 1
        else:
            self.nflow = max(1.0, self.nflow / 2.0)
            self.countdown = self._countdown_reset_value()
            self.inner.ai_bytes = self.w_ai_origin / self.nflow

    # ------------------------------------------------------------------
    # relinquish + probe (lines 7-10, §4.2.1)
    # ------------------------------------------------------------------
    def _relinquish(self, delay: int) -> None:
        if self.cardinality_estimation:
            inflight = delay * self._line_rate_bpns
            est = inflight / max(self.inner.cwnd, self.inner.mtu)
            if est > self.nflow:
                self.nflow = est
        self.inner.ai_bytes = self.w_ai_origin / self.nflow
        self.countdown = self._countdown_reset_value()
        self.relinquish_count += 1
        self.consec = 0
        tel = self._tel
        if tel.enabled:
            tel.flow_state(self.sender.sim.now, self.sender.flow.flow_id, "relinquished")
        insp = self._insp
        if insp.enabled:
            insp.transition(self.sender.sim.now, self.sender.flow.flow_id, "relinquished")
        self.sender.stop_sending()
        self._schedule_probe(delay)
        aud = self._aud
        if aud.enabled:
            # a relinquished flow must always hold a pending probe (or an
            # outstanding one): that probe is its only path back to sending
            aud.prioplus_relinquish(self.sender.sim.now, self.sender)

    def _schedule_probe(self, delay: int) -> None:
        if self.collision_avoidance:
            jitter = self.sender.sim.rng.uniform(0, self.base_rtt)
            wait = (delay - self.d_target) + jitter
        else:
            wait = self.base_rtt
        self.sender.send_probe_after(max(0, int(wait)))

    # ------------------------------------------------------------------
    # Algorithm 1: NewProbeAck (lines 25-34)
    # ------------------------------------------------------------------
    def on_probe_ack(self, info: AckInfo) -> None:
        delay = info.delay_ns
        insp = self._insp
        if delay >= self.d_limit:
            if insp.enabled:
                insp.cc_event(info.now, self.sender.flow.flow_id, "probe_rejected")
            self._schedule_probe(delay)
            return
        tel = self._tel
        if delay <= self.base_rtt + self.empty_eps:
            if tel.enabled:
                tel.flow_state(info.now, self.sender.flow.flow_id, "linear_start")
            if insp.enabled:
                insp.transition(info.now, self.sender.flow.flow_id, "linear_start")
            self.inner.cwnd = max(self.w_ls / self.nflow, self.inner.min_cwnd)
            self._countdown_tick()
        else:
            # one delay sample between base RTT and D_limit: be conservative,
            # adaptive increase will take over within a couple of RTTs (§4.4)
            if tel.enabled:
                tel.flow_state(info.now, self.sender.flow.flow_id, "cautious_restart")
            if insp.enabled:
                insp.transition(info.now, self.sender.flow.flow_id, "cautious_restart")
            self.inner.cwnd = float(self.inner.mtu)
        self.inner.clamp()
        self.consec = 0
        self.sender.resume_sending()
        self.rtt_end_seq = self.sender.snd_nxt
        self.rtt_pass = False
        self.dual_rtt_pass = False

    # ------------------------------------------------------------------
    def fluid_sync(self, cwnd_bytes: float) -> None:
        """Fluid→packet handoff (:mod:`repro.fluid`): adopt the converged window.

        Beyond the window itself, the RTT-boundary bookkeeping of Algorithm 1
        must be re-anchored: sequence numbers advanced in bulk during the
        epoch, so a stale ``rtt_end_seq`` would mark the next ACK as an RTT
        boundary immediately.  The relinquish filter restarts clean — delay
        samples from before the epoch say nothing about the queue now.
        """
        self.inner.cwnd = cwnd_bytes
        self.inner.clamp()
        self.consec = 0
        self.rtt_end_seq = self.sender.snd_nxt
        self.rtt_pass = False
        self.dual_rtt_pass = False
        self.inner.ai_bytes = self.w_ai_origin / self.nflow

    # ------------------------------------------------------------------
    def external_override(self, cwnd_bytes=None, rate_bps=None) -> float:
        """``cc.external`` hook (:mod:`repro.tune`): adopt a commanded window.

        PrioPlus wraps an inner CC, so the override lands on the inner
        window and the same Algorithm-1 re-anchoring as :meth:`fluid_sync`
        applies — the commanded window says nothing about where we are in
        the current RTT or about past delay samples, so the relinquish
        filter and RTT-boundary bookkeeping restart clean.
        """
        if cwnd_bytes is None and rate_bps is not None:
            cwnd_bytes = rate_bps * self.base_rtt / 8e9
        if cwnd_bytes is not None:
            self.inner.cwnd = float(cwnd_bytes)
            self.inner.clamp()
            self.consec = 0
            self.rtt_end_seq = self.sender.snd_nxt
            self.rtt_pass = False
            self.dual_rtt_pass = False
        return self.inner.cwnd

    # ------------------------------------------------------------------
    def on_timeout(self) -> None:
        self.inner.on_timeout()

    def clamp(self) -> None:
        self.inner.clamp()

    @property
    def min_cwnd(self) -> float:
        return self.inner.min_cwnd

    @property
    def max_cwnd(self) -> float:
        return self.inner.max_cwnd
