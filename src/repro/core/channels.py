"""Delay channels: the virtual-priority → delay-range mapping (§4.1, §4.3.2).

Priority ``i`` (larger = higher, Table 1) owns the channel
``[D_target^i, D_limit^i]``.  Two placements are supported:

* **Uniform** (the paper's): ``D_target^i = BaseRtt + i * (A + B)`` and
  ``D_limit^i = D_target^i + A/2 + B``, where ``A`` accommodates the wrapped
  CC's normal delay fluctuation and ``B`` the tolerable delay-measurement
  noise.  The paper's evaluation uses ``A = 3.2 µs`` (150 Swift flows) and
  ``B = 0.8 µs`` (P99.85 of the measured NIC-timestamp noise), giving the
  4 µs channel step and ``D_limit = D_target + 2.4 µs`` used throughout §6.
* **Explicit bands**: an arbitrary ordered, non-overlapping list of
  ``(target_offset, limit_offset)`` pairs above base RTT, one per priority.
  This is the representation :mod:`repro.tune` searches over when
  auto-tuning channel placement per workload; both placements share one
  validation path, JSON round-trip and the :class:`ChannelConfig` API, so a
  tuned placement is a drop-in replacement anywhere the paper default is
  accepted (:class:`~repro.experiments.common.CCFactory`,
  :class:`~repro.core.prioplus.PrioPlusCC`).

Every configuration is validated at construction: bands must be strictly
ordered (``D_limit^{i-1} < D_target^i < D_limit^i``) and strictly above base
RTT, so an invalid placement fails with a diagnostic naming the offending
priorities instead of silently mis-classifying delay samples mid-run.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence, Tuple

__all__ = ["ChannelConfig", "PAPER_A_NS", "PAPER_B_NS"]

PAPER_A_NS = 3200
PAPER_B_NS = 800


class ChannelConfig:
    """Computes per-priority delay thresholds (offsets above base RTT)."""

    __slots__ = ("fluctuation_ns", "noise_ns", "n_priorities", "_bands")

    def __init__(
        self,
        fluctuation_ns: int = PAPER_A_NS,
        noise_ns: int = PAPER_B_NS,
        n_priorities: Optional[int] = None,
        bands: Optional[Sequence[Sequence[int]]] = None,
    ):
        if noise_ns < 0:
            raise ValueError("noise tolerance B cannot be negative")
        self.noise_ns = noise_ns
        if bands is not None:
            if n_priorities is not None and n_priorities != len(bands):
                raise ValueError(
                    f"n_priorities={n_priorities} contradicts the {len(bands)} "
                    f"explicit bands; drop one of the two"
                )
            self.fluctuation_ns = None
            self._bands = self._validated_bands(bands)
            self.n_priorities = len(self._bands)
        else:
            if fluctuation_ns <= 0:
                raise ValueError("CC fluctuation budget A must be positive")
            self.fluctuation_ns = fluctuation_ns
            self.n_priorities = 8 if n_priorities is None else n_priorities
            if self.n_priorities < 1:
                raise ValueError("need at least one priority")
            self._bands = None

    @staticmethod
    def _validated_bands(bands: Sequence[Sequence[int]]) -> List[Tuple[int, int]]:
        """Normalize and validate explicit ``(target, limit)`` offset pairs."""
        if len(bands) < 1:
            raise ValueError("need at least one priority band")
        out: List[Tuple[int, int]] = []
        prev_limit = 0  # band offsets live strictly above base RTT
        for i, band in enumerate(bands, start=1):
            try:
                target, limit = band
            except (TypeError, ValueError):
                raise ValueError(
                    f"band for priority {i} must be a (target_offset_ns, "
                    f"limit_offset_ns) pair, got {band!r}"
                ) from None
            target, limit = int(target), int(limit)
            if target <= prev_limit:
                if i == 1:
                    raise ValueError(
                        f"priority 1 target offset must be strictly above base "
                        f"RTT (> 0), got {target}"
                    )
                raise ValueError(
                    f"channel overlap between priorities {i - 1} and {i}: "
                    f"limit {prev_limit} >= target {target} (bands must be "
                    f"ordered lowest priority first, strictly increasing)"
                )
            if limit <= target:
                raise ValueError(
                    f"degenerate channel at priority {i}: limit {limit} must "
                    f"exceed target {target}"
                )
            out.append((target, limit))
            prev_limit = limit
        return out

    @classmethod
    def from_bands(
        cls, bands: Sequence[Sequence[int]], noise_ns: int = PAPER_B_NS
    ) -> "ChannelConfig":
        """Explicit placement: one ``(target, limit)`` offset pair per priority."""
        return cls(noise_ns=noise_ns, bands=bands)

    # ------------------------------------------------------------------
    @property
    def step_ns(self) -> int:
        """Channel pitch A + B (4 µs with paper parameters).

        For explicit bands — where the pitch need not be uniform — this is
        the smallest gap between consecutive channels (taking base RTT as
        the floor below priority 1), which is what the pitch is *used* for:
        sizing "the path is empty" epsilons safely below the first target.
        """
        if self._bands is None:
            return self.fluctuation_ns + self.noise_ns
        prev_limits = [0] + [limit for (_target, limit) in self._bands[:-1]]
        return min(
            target - prev for (target, _limit), prev in zip(self._bands, prev_limits)
        )

    def bands(self) -> List[Tuple[int, int]]:
        """``(target_offset, limit_offset)`` per priority 1..n, lowest first.

        Computed for uniform configs, so
        ``ChannelConfig.from_bands(cfg.bands())`` reproduces any placement
        exactly — the starting point :mod:`repro.tune` perturbs.
        """
        if self._bands is not None:
            return list(self._bands)
        return [
            (self.target_offset_ns(i), self.limit_offset_ns(i))
            for i in range(1, self.n_priorities + 1)
        ]

    def target_offset_ns(self, priority: int) -> int:
        """D_target^i - BaseRtt."""
        self._check(priority)
        if self._bands is not None:
            return 0 if priority == 0 else self._bands[priority - 1][0]
        return priority * self.step_ns

    def limit_offset_ns(self, priority: int) -> int:
        """D_limit^i - BaseRtt (always strictly above the target)."""
        self._check(priority)
        if self._bands is not None:
            return 0 if priority == 0 else self._bands[priority - 1][1]
        margin = max(1, self.fluctuation_ns // 2 + self.noise_ns)
        return self.target_offset_ns(priority) + margin

    def target_ns(self, priority: int, base_rtt_ns: int) -> int:
        return base_rtt_ns + self.target_offset_ns(priority)

    def limit_ns(self, priority: int, base_rtt_ns: int) -> int:
        return base_rtt_ns + self.limit_offset_ns(priority)

    def _check(self, priority: int) -> None:
        # Channel indices are 1-based in the paper's evaluation (D_target =
        # 4*i µs for i = 1..n); index 0 would put the target *at* base RTT.
        if not 0 <= priority <= self.n_priorities:
            raise ValueError(
                f"priority {priority} out of range [0, {self.n_priorities}]"
            )

    def validate(self) -> None:
        """Assert the ordering invariant D_limit^{i-1} < D_target^i < D_limit^i.

        Explicit bands are already validated at construction; this re-checks
        any configuration (uniform ones cannot violate it by construction
        either, since ``A/2 + B < A + B`` for positive ``A``).
        """
        for i in range(1, self.n_priorities + 1):
            if not self.limit_offset_ns(i - 1) < self.target_offset_ns(i):
                raise AssertionError(
                    f"channel overlap between priorities {i - 1} and {i}: "
                    f"limit {self.limit_offset_ns(i - 1)} >= target {self.target_offset_ns(i)}"
                )
        for i in range(1, self.n_priorities + 1):
            if not self.target_offset_ns(i) < self.limit_offset_ns(i):
                raise AssertionError(f"degenerate channel at priority {i}")

    # ------------------------------------------------------------------
    # JSON round-trip (tuned placements travel through Point configs,
    # checkpoints and the result cache as plain data)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        if self._bands is not None:
            return {
                "kind": "bands",
                "bands": [[t, l] for (t, l) in self._bands],
                "noise_ns": self.noise_ns,
            }
        return {
            "kind": "uniform",
            "fluctuation_ns": self.fluctuation_ns,
            "noise_ns": self.noise_ns,
            "n_priorities": self.n_priorities,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChannelConfig":
        kind = data.get("kind", "uniform")
        if kind == "bands":
            return cls(noise_ns=data.get("noise_ns", PAPER_B_NS), bands=data["bands"])
        if kind == "uniform":
            return cls(
                fluctuation_ns=data.get("fluctuation_ns", PAPER_A_NS),
                noise_ns=data.get("noise_ns", PAPER_B_NS),
                n_priorities=data.get("n_priorities", 8),
            )
        raise ValueError(f"unknown channel config kind {kind!r}")

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChannelConfig":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChannelConfig):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.to_json())

    def __repr__(self) -> str:  # pragma: no cover
        if self._bands is not None:
            return (
                f"ChannelConfig(bands={self._bands!r}, B={self.noise_ns}ns, "
                f"n={self.n_priorities})"
            )
        return (
            f"ChannelConfig(A={self.fluctuation_ns}ns, B={self.noise_ns}ns, "
            f"n={self.n_priorities}, step={self.step_ns}ns)"
        )
