"""Delay channels: the virtual-priority → delay-range mapping (§4.1, §4.3.2).

Priority ``i`` (larger = higher, Table 1) owns the channel
``[D_target^i, D_limit^i]`` with::

    D_target^i = BaseRtt + i * (A + B)
    D_limit^i  = D_target^i + A/2 + B

where ``A`` accommodates the wrapped CC's normal delay fluctuation and ``B``
the tolerable delay-measurement noise.  The paper's evaluation uses
``A = 3.2 µs`` (150 Swift flows) and ``B = 0.8 µs`` (P99.85 of the measured
NIC-timestamp noise), giving the 4 µs channel step and
``D_limit = D_target + 2.4 µs`` used throughout §6.
"""

from __future__ import annotations

__all__ = ["ChannelConfig", "PAPER_A_NS", "PAPER_B_NS"]

PAPER_A_NS = 3200
PAPER_B_NS = 800


class ChannelConfig:
    """Computes per-priority delay thresholds (offsets above base RTT)."""

    __slots__ = ("fluctuation_ns", "noise_ns", "n_priorities")

    def __init__(
        self,
        fluctuation_ns: int = PAPER_A_NS,
        noise_ns: int = PAPER_B_NS,
        n_priorities: int = 8,
    ):
        if fluctuation_ns <= 0:
            raise ValueError("CC fluctuation budget A must be positive")
        if noise_ns < 0:
            raise ValueError("noise tolerance B cannot be negative")
        if n_priorities < 1:
            raise ValueError("need at least one priority")
        self.fluctuation_ns = fluctuation_ns
        self.noise_ns = noise_ns
        self.n_priorities = n_priorities

    # ------------------------------------------------------------------
    @property
    def step_ns(self) -> int:
        """Channel pitch A + B (4 µs with paper parameters)."""
        return self.fluctuation_ns + self.noise_ns

    def target_offset_ns(self, priority: int) -> int:
        """D_target^i - BaseRtt."""
        self._check(priority)
        return priority * self.step_ns

    def limit_offset_ns(self, priority: int) -> int:
        """D_limit^i - BaseRtt (always strictly above the target)."""
        self._check(priority)
        margin = max(1, self.fluctuation_ns // 2 + self.noise_ns)
        return self.target_offset_ns(priority) + margin

    def target_ns(self, priority: int, base_rtt_ns: int) -> int:
        return base_rtt_ns + self.target_offset_ns(priority)

    def limit_ns(self, priority: int, base_rtt_ns: int) -> int:
        return base_rtt_ns + self.limit_offset_ns(priority)

    def _check(self, priority: int) -> None:
        # Channel indices are 1-based in the paper's evaluation (D_target =
        # 4*i µs for i = 1..n); index 0 would put the target *at* base RTT.
        if not 0 <= priority <= self.n_priorities:
            raise ValueError(
                f"priority {priority} out of range [0, {self.n_priorities}]"
            )

    def validate(self) -> None:
        """Assert the ordering invariant D_limit^{i-1} < D_target^i < D_limit^i."""
        for i in range(1, self.n_priorities + 1):
            if not self.limit_offset_ns(i - 1) < self.target_offset_ns(i):
                raise AssertionError(
                    f"channel overlap between priorities {i - 1} and {i}: "
                    f"limit {self.limit_offset_ns(i - 1)} >= target {self.target_offset_ns(i)}"
                )
        for i in range(1, self.n_priorities + 1):
            if not self.target_offset_ns(i) < self.limit_offset_ns(i):
                raise AssertionError(f"degenerate channel at priority {i}")

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ChannelConfig(A={self.fluctuation_ns}ns, B={self.noise_ns}ns, "
            f"n={self.n_priorities}, step={self.step_ns}ns)"
        )
