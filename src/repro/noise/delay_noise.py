"""Delay-measurement noise models (§4.3.2, Figs 7 and 13).

The paper measures NIC-hardware-timestamp noise in its testbed and reports a
long-tail additive distribution: mean ≈ 0.3 µs, < 0.1 % probability of
exceeding 1 µs, both with TSO on and off.  A lognormal with median 250 ns and
σ = 0.45 matches those statistics (mean ≈ 277 ns, P99.9 ≈ 1 µs) and is used
here as the default.  Noise is *additive only* (measured delay ≥ true delay,
per Lee et al. [53]), so samples are non-negative.

Fig 10d scales this distribution by {1, 2, 4, 8}; Fig 13 adds a *uniform*
non-congestive delay drawn per measurement from ``[0, range_ns]``.
"""

from __future__ import annotations

import math
import random

__all__ = ["LognormalNoise", "UniformNoise", "CompositeNoise", "NoNoise", "paper_noise"]


class NoNoise:
    """Zero noise (ideal measurement)."""

    def sample(self, rng: random.Random) -> int:
        return 0

    def percentile(self, p: float) -> float:
        return 0.0


class LognormalNoise:
    """Long-tail additive noise: ``scale * lognormal(mu, sigma)``."""

    def __init__(self, median_ns: float = 250.0, sigma: float = 0.45, scale: float = 1.0):
        if median_ns <= 0 or sigma <= 0:
            raise ValueError("median and sigma must be positive")
        self.mu = math.log(median_ns)
        self.sigma = sigma
        self.scale = scale

    def sample(self, rng: random.Random) -> int:
        return int(self.scale * rng.lognormvariate(self.mu, self.sigma))

    def mean_ns(self) -> float:
        return self.scale * math.exp(self.mu + self.sigma**2 / 2.0)

    def percentile(self, p: float) -> float:
        """Analytic quantile (p in (0, 1))."""
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        z = _norm_ppf(p)
        return self.scale * math.exp(self.mu + self.sigma * z)


class UniformNoise:
    """Uniform non-congestive delay in [0, range_ns] (Fig 13)."""

    def __init__(self, range_ns: int):
        if range_ns < 0:
            raise ValueError("range must be non-negative")
        self.range_ns = range_ns

    def sample(self, rng: random.Random) -> int:
        if self.range_ns == 0:
            return 0
        return rng.randrange(self.range_ns + 1)

    def percentile(self, p: float) -> float:
        return p * self.range_ns


class CompositeNoise:
    """Sum of independent noise components."""

    def __init__(self, *components):
        self.components = components

    def sample(self, rng: random.Random) -> int:
        return sum(c.sample(rng) for c in self.components)

    def percentile(self, p: float) -> float:
        # Upper bound; exact composition is only needed for reporting.
        return sum(c.percentile(p) for c in self.components)


def paper_noise(scale: float = 1.0) -> LognormalNoise:
    """The testbed noise model of Fig 7 (optionally scaled, Fig 10d)."""
    return LognormalNoise(median_ns=250.0, sigma=0.45, scale=scale)


def _norm_ppf(p: float) -> float:
    """Acklam's rational approximation of the standard normal quantile."""
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )
