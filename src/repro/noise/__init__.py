"""Delay-measurement noise models."""

from .delay_noise import CompositeNoise, LognormalNoise, NoNoise, UniformNoise, paper_noise

__all__ = ["LognormalNoise", "UniformNoise", "CompositeNoise", "NoNoise", "paper_noise"]
