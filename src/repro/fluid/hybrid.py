"""Hybrid fluid/packet simulation driver.

The :class:`HybridDriver` wraps the packet-level DES and alternates two
regimes per epoch:

**packet** — the simulator runs exactly as without the driver, polled in
``check_every_ns`` chunks.  After each chunk the *quiescence predicate* is
evaluated: fabric backlog below a threshold, no PFC pause asserted, and no
flow inside a PrioPlus transition window (stopped / probe outstanding /
``consec > 0``) or loss recovery.

**drain → fluid** — when the predicate holds, every active sender is
parked (``fluid_hold``, window state untouched) and the DES runs on until
the last in-flight packet and ACK has landed.  From that point *no packet
exists anywhere in the fabric*, and the driver advances the whole fabric
in fluid timesteps: per-flow rates come from strict-priority max-min
water-filling over the link-capacity matrix (:mod:`repro.fluid.model`),
windows ramp per the scheme's fluid law (:mod:`repro.fluid.laws`), and
delivered bytes are credited in bulk against the real sender/receiver
sequence state (``FlowSender.fluid_advance``), so completions, telemetry
and results read exactly as if the packets had flown.  The wall clock of
the DES still advances through :meth:`Simulator.run`, so residual timers
(RTOs, experiment samplers) fire normally; flows that *start* during a
fluid epoch are absorbed directly into the fluid model.

**handoff** — on exit (contention, deadline, or drain failure) each
surviving flow's congestion window is re-synchronised to its fluid state
(``cc.fluid_sync``), capped near ``rate × base_rtt`` for network-limited
flows so the resumed DES does not burst, and the senders are released.
Re-materialised packet state is exact by construction: in fluid mode the
network is empty, so the only state to restore is sequence/window state,
which was maintained in place.

Error envelope (documented in docs/PERFORMANCE.md): fluid epochs model
steady-state scheduling but approximate away standing-queue delay and
O(RTT) transition dynamics; ``exit_on_contention`` selects how eagerly the
driver falls back to packets when saturated links appear.
"""

from __future__ import annotations

from typing import List, Optional

from . import require_numpy
from .laws import law_for

__all__ = ["FluidConfig", "HybridDriver"]

_PACKET = "packet"
_DRAIN = "drain"
_FLUID = "fluid"

#: per-flow ECMP path cache ceiling: a multi-second trace creates millions
#: of flow ids, each a distinct cache key; past this the cache is cleared
#: wholesale (completed flows are never looked up again, so the only cost
#: is re-deriving the paths of currently-live flows at the next epoch)
_PATH_CACHE_MAX = 65536


class FluidConfig:
    """Tuning knobs for :class:`HybridDriver` (defaults are conservative)."""

    __slots__ = (
        "dt_max_ns",
        "check_every_ns",
        "backlog_enter_bytes",
        "drain_timeout_ns",
        "drain_step_ns",
        "min_packet_ns",
        "min_fluid_ns",
        "exit_on_contention",
        "sat_threshold",
    )

    def __init__(
        self,
        dt_max_ns: int = 50_000,
        check_every_ns: int = 200_000,
        backlog_enter_bytes: Optional[int] = None,
        drain_timeout_ns: Optional[int] = None,
        drain_step_ns: int = 5_000,
        min_packet_ns: int = 100_000,
        min_fluid_ns: int = 20_000,
        exit_on_contention: str = "priority",
        sat_threshold: float = 0.98,
    ):
        if exit_on_contention not in ("priority", "any", "none"):
            raise ValueError(
                f"exit_on_contention must be 'priority', 'any' or 'none', "
                f"got {exit_on_contention!r}"
            )
        #: fluid timestep ceiling; segments also break at every completion
        self.dt_max_ns = dt_max_ns
        #: packet-mode polling interval between predicate checks
        self.check_every_ns = check_every_ns
        #: fabric-wide backlog below which a fluid epoch may be attempted
        #: (None → 8 wire-MTUs per port, resolved at driver construction)
        self.backlog_enter_bytes = backlog_enter_bytes
        #: give up draining after this long (None → 6×max base RTT + 20 µs)
        self.drain_timeout_ns = drain_timeout_ns
        self.drain_step_ns = drain_step_ns
        #: hysteresis: stay in packet mode this long after a fluid exit
        self.min_packet_ns = min_packet_ns
        #: hysteresis: don't exit a fluid epoch before this (deadline wins)
        self.min_fluid_ns = min_fluid_ns
        #: fall back to packets when saturated links appear: "priority"
        #: (cross-rank contention only), "any" (also same-rank sharing), or
        #: "none" (model saturation fluidly; widest error envelope)
        self.exit_on_contention = exit_on_contention
        self.sat_threshold = sat_threshold


class _FluidFlow:
    """One sender absorbed into the fluid model."""

    __slots__ = (
        "sender", "links", "rank", "cwnd", "ramp", "ceil", "credit", "rate", "cap", "gate_ns"
    )

    def __init__(self, sender, links: List[int], rank: int, cwnd: float, ramp: float, ceil: float):
        self.sender = sender
        self.links = links
        self.rank = rank
        self.cwnd = cwnd
        self.ramp = ramp
        self.ceil = ceil
        self.credit = 0.0  # fractional payload bytes not yet a whole packet
        self.rate = 0.0  # bytes/ns, last solve
        self.cap = 0.0  # bytes/ns, window-limited cap at last solve
        self.gate_ns = 0  # no credit before this time (pipe-fill delay)


class HybridDriver:
    """Alternates packet-level DES with fluid epochs on one fabric."""

    def __init__(self, sim, net, config: Optional[FluidConfig] = None):
        self.np = require_numpy()
        from . import model  # deferred: imports numpy

        self._model = model
        self.sim = sim
        self.net = net
        self.cfg = config if config is not None else FluidConfig()
        self.phase = _PACKET
        self._ports = []
        for node in net.nodes:
            ports = getattr(node, "ports", None)
            if ports is not None:
                self._ports.extend(ports)
            elif node.port is not None:
                self._ports.append(node.port)
        if self.cfg.backlog_enter_bytes is None:
            self.cfg.backlog_enter_bytes = 8 * 1540 * max(len(self._ports), 1)
        # persistent link index: Port -> dense link id (grows across epochs)
        self._link_index = {}
        self._link_caps: List[float] = []
        self._path_cache = {}
        # fluid-epoch state
        self._flows: List[_FluidFlow] = []
        self._pending_admits: List = []
        self._held: List = []
        self._dirty = True
        self._arrays = None
        self._fluid_entered = 0
        self._last_exit = -(1 << 62)
        self.stats = {
            "fluid_epochs": 0,
            "fluid_ns": 0,
            "fluid_bytes": 0,
            "fluid_completions": 0,
            "admitted_in_fluid": 0,
            "drain_failures": 0,
            "exit_reasons": {},
            "handoff_fresh_starts": 0,
            "path_cache_evictions": 0,
        }
        if getattr(sim, "fluid_driver", None) is not None:
            raise RuntimeError("simulator already has a fluid driver attached")
        sim.fluid_driver = self

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def absorbing(self) -> bool:
        """True while new flow starts must be absorbed into the fluid model."""
        return self.phase != _PACKET

    def run_until_flows_done(self, flows, hard_deadline_ns: int) -> bool:
        """Hybrid analogue of ``experiments.common.run_until_flows_done``."""
        return self.run_until_done(lambda: all(f.done for f in flows), hard_deadline_ns)

    def run_until_done(self, done, hard_deadline_ns: int) -> bool:
        """Run until the ``done()`` predicate holds or the deadline passes.

        The predicate form is what streaming workloads need: a
        :class:`repro.experiments.common.FlowAdmitter` terminates on an O(1)
        counter check instead of an O(total-flows) scan, which matters when
        a multi-second trace admits millions of flows.
        """
        sim = self.sim
        cfg = self.cfg
        while sim.now < hard_deadline_ns:
            if done():
                break
            if self.phase == _PACKET:
                sim.run(until=min(sim.now + cfg.check_every_ns, hard_deadline_ns))
                if sim.now >= hard_deadline_ns or done():
                    break
                if self._quiescent():
                    self._try_enter_fluid()
            else:
                self._fluid_run(min(sim.now + cfg.check_every_ns, hard_deadline_ns))
        if self.phase != _PACKET:
            self._exit_fluid("deadline")
        return done()

    def run(self, until: int) -> None:
        """Advance the hybrid simulation to ``until`` (no flow-set to watch)."""
        sim = self.sim
        cfg = self.cfg
        while sim.now < until:
            if self.phase == _PACKET:
                sim.run(until=min(sim.now + cfg.check_every_ns, until))
                if sim.now < until and self._quiescent():
                    self._try_enter_fluid()
            else:
                self._fluid_run(min(sim.now + cfg.check_every_ns, until))
        if self.phase != _PACKET:
            self._exit_fluid("deadline")

    def detach(self) -> None:
        """Release the simulator hook (leaves the sim in packet mode)."""
        if self.phase != _PACKET:
            self._exit_fluid("detach")
        self.sim.fluid_driver = None

    # ------------------------------------------------------------------
    # quiescence predicate + drain
    # ------------------------------------------------------------------
    def _active_senders(self) -> list:
        out = []
        for host in self.net.hosts:
            for s in host.senders.values():
                if not s.completed and s.started:
                    out.append(s)
        return out

    def _quiescent(self) -> bool:
        cfg = self.cfg
        if self.sim.now - self._last_exit < cfg.min_packet_ns:
            return False
        backlog = 0
        for port in self._ports:
            backlog += port.total_bytes
            if backlog > cfg.backlog_enter_bytes:
                return False
            if True in port.paused:
                return False
        for host in self.net.hosts:
            for s in host.senders.values():
                if s.completed or not s.started:
                    continue
                if s.stopped or s.probe_outstanding or s._retx_queue:
                    return False
                if getattr(s.cc, "consec", 0) > 0:
                    return False
        return True

    def _drained(self, held) -> bool:
        for s in held:
            if not s.completed and (s.inflight_bytes or s.probe_outstanding or s._retx_queue):
                return False
        for port in self._ports:
            if port.total_bytes or port.busy:
                return False
        return True

    def _try_enter_fluid(self) -> bool:
        sim = self.sim
        cfg = self.cfg
        held = self._active_senders()
        self.phase = _DRAIN  # flow starts from here on are absorbed
        self._pending_admits = []
        self._held = held
        for s in held:
            s.fluid_hold()
        timeout = cfg.drain_timeout_ns
        if timeout is None:
            max_rtt = max((s.base_rtt for s in held), default=10_000)
            timeout = 6 * max_rtt + 20_000
        deadline = sim.now + timeout
        while not self._drained(held):
            if sim.now >= deadline:
                # predicate lied (e.g. a long RTO in flight): back out
                self.phase = _PACKET
                for s in held:
                    if not s.completed:
                        self._release_or_start(s)
                for s in self._pending_admits:
                    if not s.completed:
                        self._release_or_start(s)
                self._pending_admits = []
                self._held = []
                self.stats["drain_failures"] += 1
                self._last_exit = sim.now
                return False
            sim.run(until=min(sim.now + cfg.drain_step_ns, deadline))
        self._enter_fluid(held)
        return True

    # ------------------------------------------------------------------
    # fluid epoch
    # ------------------------------------------------------------------
    def _link_id(self, port) -> int:
        idx = self._link_index.get(port)
        if idx is None:
            idx = self._link_index[port] = len(self._link_caps)
            self._link_caps.append(port.rate_bps / 8e9)  # bytes per ns
        return idx

    def _flow_links(self, flow) -> List[int]:
        key = (flow.src.node_id, flow.dst.node_id, flow.flow_id)
        links = self._path_cache.get(key)
        if links is None:
            if len(self._path_cache) >= _PATH_CACHE_MAX:
                self._path_cache.clear()
                self.stats["path_cache_evictions"] += 1
            # the flow's exact ECMP forward data path — flows that hash onto
            # disjoint core links must not share fluid capacity (the reverse
            # path only carries 64 B ACKs and is ignored)
            ports = self.net.path_ports(flow.src, flow.dst, flow_id=flow.flow_id)
            links = self._path_cache[key] = [self._link_id(p) for p in ports]
        return links

    def _absorb(self, sender) -> None:
        law = law_for(sender)
        cwnd = float(sender.cc.cwnd)
        fresh = sender.flow.first_tx_ns is None and sender.acked_payload == 0
        if fresh:
            # starting inside the epoch: window comes from the fluid law
            cwnd = law.init
        flow = _FluidFlow(
            sender,
            self._flow_links(sender.flow),
            max(int(getattr(sender.flow, "vpriority", 0)), 0),
            min(max(cwnd, 1.0), law.ceil),
            law.ramp,
            law.ceil,
        )
        if fresh:
            # pipe-fill delay: at packet level the first window spends one
            # one-way delay in flight before any byte lands at the receiver,
            # so delivery (and therefore completion) starts ~RTT/2 late
            flow.gate_ns = self.sim.now + sender.base_rtt // 2
        self._flows.append(flow)
        self._dirty = True

    def _enter_fluid(self, held) -> None:
        sim = self.sim
        self.phase = _FLUID
        self._fluid_entered = sim.now
        self._flows = []
        self._dirty = True
        for s in held:
            if not s.completed:
                self._absorb(s)
        for s in self._pending_admits:
            if not s.completed:
                self._absorb(s)
        self._pending_admits = []
        self._held = []
        self.stats["fluid_epochs"] += 1
        tel = sim.telemetry
        if tel.enabled:
            tel.regime(sim.now, "fluid", "quiescent", len(self._flows))
        smp = getattr(sim, "sampler", None)
        if smp is not None and smp.enabled:
            smp.record_regime(sim.now, "fluid", "quiescent")

    def admit(self, sender) -> None:
        """A flow started while the fabric is drained/fluid: absorb it.

        Called from ``FlowSender._start`` via the ``sim.fluid_driver`` hook
        instead of the packet-mode start path.
        """
        sim = self.sim
        tel = sender.telemetry
        if tel.enabled:
            tel.flow_state(sim.now, sender.flow.flow_id, "running")
        insp = sender.inspector
        if insp.enabled:
            insp.transition(sim.now, sender.flow.flow_id, "running")
        sender.fluid_held = True
        self.stats["admitted_in_fluid"] += 1
        if self.phase == _FLUID:
            self._absorb(sender)
        else:
            self._pending_admits.append(sender)

    def _rebuild_arrays(self) -> None:
        np = self.np
        flows = self._flows
        n = len(flows)
        ent_flow: List[int] = []
        ent_link: List[int] = []
        for i, f in enumerate(flows):
            for link in f.links:
                ent_flow.append(i)
                ent_link.append(link)
        self._arrays = {
            "ranks": np.array([f.rank for f in flows], dtype=np.int64),
            "ceil": np.array([f.ceil for f in flows], dtype=np.float64),
            "rtt": np.array([float(f.sender.base_rtt) for f in flows], dtype=np.float64),
            "ent_flow": np.array(ent_flow, dtype=np.int64),
            "ent_link": np.array(ent_link, dtype=np.int64),
            "link_cap": np.array(self._link_caps, dtype=np.float64),
            "n": n,
        }
        self._dirty = False

    def _fluid_run(self, until: int) -> None:
        """Advance in fluid segments until ``until`` or a regime exit."""
        sim = self.sim
        np = self.np
        cfg = self.cfg
        model = self._model
        while self.phase == _FLUID and sim.now < until:
            if self._dirty:
                self._rebuild_arrays()
            arr = self._arrays
            n = arr["n"]
            if n == 0:
                # empty fabric: no rates to solve.  Step to the next event
                # (not to the horizon!) so a flow start that admits into the
                # epoch resumes fluid integration immediately instead of
                # sitting frozen until the caller's next check boundary.
                nxt = sim.peek_time()
                if nxt is None or nxt >= until:
                    sim.run(until=until)
                else:
                    sim.run(until=nxt)
                if self._flows or self._dirty:
                    continue
                if sim.now >= until:
                    break
                continue
            flows = self._flows
            cwnd = np.array([f.cwnd for f in flows], dtype=np.float64)
            cap_rate = cwnd / arr["rtt"]
            # a freshly started flow's bytes only begin landing after one
            # one-way delay; until its gate passes it holds no capacity,
            # does not ramp, and its whole trajectory shifts by ~RTT/2
            gates = np.array([f.gate_ns for f in flows], dtype=np.int64)
            gated = gates > sim.now
            if gated.any():
                cap_rate = np.where(gated, 0.0, cap_rate)
            rate, load = model.solve_rates(
                cap_rate, arr["ranks"], arr["ent_flow"], arr["ent_link"], arr["link_cap"]
            )
            contention = model.classify_contention(
                rate,
                cap_rate,
                arr["ranks"],
                arr["ent_flow"],
                arr["ent_link"],
                arr["link_cap"],
                load,
                cfg.sat_threshold,
            )
            if self._should_exit(contention) and sim.now - self._fluid_entered >= cfg.min_fluid_ns:
                self._exit_fluid("contention:" + contention)
                return
            for i, f in enumerate(flows):
                f.rate = float(rate[i])
                f.cap = float(cap_rate[i])
            # segment horizon: Δt cap, caller horizon, earliest completion
            seg_start = sim.now
            horizon = min(until, seg_start + cfg.dt_max_ns)
            # while any window is still ramping, step at most one RTT: the
            # packet-level laws update once per RTT, and a coarser explicit
            # step would hold a growing flow at its stale rate for several
            ramping = (rate >= cap_rate * 0.999) & (cwnd < arr["ceil"]) & ~gated
            if ramping.any():
                horizon = min(horizon, seg_start + max(int(arr["rtt"][ramping].min()), 1))
            if gated.any():
                # re-solve as soon as the earliest pipe-fill gate expires
                horizon = min(horizon, int(gates[gated].min()))
            for f in flows:
                if f.rate > 0.0:
                    left = f.sender.remaining_bytes - f.credit
                    t_done = seg_start + int(left / f.rate) + 1
                    if t_done < horizon:
                        horizon = t_done
            if horizon <= seg_start:
                horizon = seg_start + 1
            sim.run(until=horizon)  # fires timers; may admit new flows
            dt = sim.now - seg_start
            if dt <= 0:
                break
            self._credit(dt)

    def _should_exit(self, contention: str) -> bool:
        policy = self.cfg.exit_on_contention
        if policy == "none":
            return False
        if contention == "priority":
            return True
        return policy == "any" and contention == "shared"

    def _credit(self, dt: int) -> None:
        """Apply one segment: deliver bytes, ramp windows, reap completions."""
        sim = self.sim
        now = sim.now
        done = False
        delivered = 0
        for f in self._flows:
            s = f.sender
            if s.completed:  # finished by a stray packet-path event
                done = True
                continue
            if f.rate > 0.0:
                if s.flow.first_tx_ns is None:
                    s.flow.first_tx_ns = now - dt
                eff_dt = dt if f.gate_ns <= now - dt else max(now - f.gate_ns, 0)
                f.credit += f.rate * eff_dt
                if f.credit >= s.mtu or f.credit >= s.remaining_bytes:
                    consumed = s.fluid_advance(f.credit, now)
                    f.credit -= consumed
                    delivered += consumed
                    if s.completed:
                        self.stats["fluid_completions"] += 1
                        done = True
                        continue
            # window ramp: only cap-limited flows grow (a network-limited
            # flow would be sitting at its scheme's delay target instead);
            # gated flows (cap forced to 0) hold their window too
            if f.cap > 0.0 and f.rate >= f.cap * 0.999 and f.cwnd < f.ceil:
                f.cwnd = min(f.cwnd + f.ramp * dt / f.sender.base_rtt, f.ceil)
        self.stats["fluid_bytes"] += delivered
        if done:
            self._flows = [f for f in self._flows if not f.sender.completed]
            self._dirty = True

    # ------------------------------------------------------------------
    # handoff back to packets
    # ------------------------------------------------------------------
    def _release_or_start(self, s) -> None:
        """Hand one sender back to the packet regime.

        A sender admitted during the epoch that never moved a byte (no
        packet-path transmission, no fluid credit) must run the *real*
        packet-mode start path — ``cc.on_start`` performs scheme start
        logic (PrioPlus probe / linear-start tier selection, initial
        window) that ``fluid_release`` deliberately does not.
        """
        if s.flow.first_tx_ns is None and s.acked_payload == 0:
            s.fluid_held = False
            s.cc.on_start()
            s.try_send()
            self.stats["handoff_fresh_starts"] += 1
        else:
            s.fluid_release()

    def _exit_fluid(self, reason: str) -> None:
        sim = self.sim
        now = sim.now
        epoch_ns = now - self._fluid_entered
        if self.phase == _DRAIN:  # defensive: exit requested mid-drain
            survivors = self._held + self._pending_admits
            epoch_ns = 0
        else:
            survivors = [f.sender for f in self._flows]
            for f in self._flows:
                s = f.sender
                if s.completed:
                    continue
                if s.flow.first_tx_ns is None and s.acked_payload == 0:
                    # fresh flow: restarted via the packet start path below,
                    # its fluid window was never real — don't sync it back
                    continue
                cwnd_out = f.cwnd
                if f.rate < f.cap * 0.999:
                    # network-limited: hand back a window matched to the
                    # allocated rate so the resumed DES does not burst
                    cwnd_out = min(cwnd_out, f.rate * s.base_rtt + 2.0 * s.mtu)
                s.cc.fluid_sync(cwnd_out)
        self.phase = _PACKET
        self._flows = []
        self._pending_admits = []
        self._held = []
        self._dirty = True
        self._last_exit = now
        self.stats["fluid_ns"] += epoch_ns
        reasons = self.stats["exit_reasons"]
        reasons[reason] = reasons.get(reason, 0) + 1
        for s in survivors:
            if not s.completed:
                self._release_or_start(s)
        tel = sim.telemetry
        if tel.enabled:
            tel.regime(now, "packet", reason, len(survivors))
        smp = getattr(sim, "sampler", None)
        if smp is not None and smp.enabled:
            smp.record_regime(now, "packet", reason)
