"""Fluid rate solver: strict-priority ordered max-min water-filling.

The fabric is reduced to a link-capacity vector and a sparse flow→link
incidence (COO entry arrays ``ent_flow`` / ``ent_link``, one entry per
(flow, traversed link) pair).  Rates are solved rank by rank in descending
priority — higher ranks fill first, lower ranks share whatever capacity
remains — which is exactly the steady state PrioPlus's delay channels (and
physical strict-priority queues) converge to:

* within one rank, progressive-filling max-min with per-flow rate caps
  (the window-limited rate ``cwnd / base_rtt``);
* across ranks, strict preemption: a saturated link leaves zero residual
  for lower ranks, so a preempted flow's allocation collapses to zero —
  the fluid image of a relinquished PrioPlus flow.

Because every allocation is capacity-feasible, queues stay empty by
construction throughout a fluid epoch; the error envelope this buys is
documented in docs/PERFORMANCE.md and bounded empirically by the
hybrid-vs-packet agreement scenario in ``runner/bench_scale.py``.

This module imports numpy at module level and must only be imported after
:func:`repro.fluid.require_numpy` has vetted the install.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["solve_rates", "classify_contention"]

#: a flow is "network-limited" when its allocation sits measurably below
#: its window-limited cap (i.e. a link, not the window, is the bottleneck)
_CAP_SLACK = 0.999


def solve_rates(
    cap_rate: "np.ndarray",
    ranks: "np.ndarray",
    ent_flow: "np.ndarray",
    ent_link: "np.ndarray",
    link_cap: "np.ndarray",
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Solve per-flow rates; returns ``(rates, link_load)``.

    Parameters
    ----------
    cap_rate:
        float64[n_flows] — per-flow rate cap in bytes/ns (``cwnd/base_rtt``).
    ranks:
        int64[n_flows] — priority rank, **higher fills first**.
    ent_flow, ent_link:
        int64[nnz] — COO incidence: flow ``ent_flow[i]`` traverses link
        ``ent_link[i]``.
    link_cap:
        float64[n_links] — link capacities in bytes/ns.
    """
    n = int(cap_rate.shape[0])
    n_links = int(link_cap.shape[0])
    rate = np.zeros(n, dtype=np.float64)
    residual = link_cap.astype(np.float64).copy()
    if n == 0:
        return rate, np.zeros(n_links, dtype=np.float64)

    ent_rank = ranks[ent_flow]
    crossed = np.zeros(n, dtype=bool)
    crossed[ent_flow] = True

    for r in np.unique(ranks)[::-1]:
        members = ranks == r
        # a flow that traverses no modelled link is purely window-limited
        free = members & ~crossed
        rate[free] = cap_rate[free]
        unfixed = members & crossed
        sel = ent_rank == r
        sef = ent_flow[sel]
        sel_links = ent_link[sel]

        # progressive filling: every pass fixes at least one flow, so the
        # guard below can only trip on a logic error — fail safe to zero
        for _ in range(n + 2):
            if not unfixed.any():
                break
            act = unfixed[sef]
            aef = sef[act]
            ael = sel_links[act]
            cnt = np.bincount(ael, minlength=n_links)
            fair = np.where(cnt > 0, residual / np.maximum(cnt, 1), np.inf)
            fair = np.maximum(fair, 0.0)
            # water level per flow: the tightest fair share along its path
            level = np.full(n, np.inf)
            np.minimum.at(level, aef, fair[ael])
            capped = unfixed & (cap_rate <= level)
            if capped.any():
                fix = capped
                rate[fix] = cap_rate[fix]
            else:
                used = np.unique(ael)
                lmin = used[np.argmin(fair[used])]
                fix = np.zeros(n, dtype=bool)
                fix[aef[ael == lmin]] = True
                fix &= unfixed
                rate[fix] = fair[lmin]
            unfixed &= ~fix
            fsel = fix[sef]
            np.subtract.at(residual, sel_links[fsel], rate[sef[fsel]])
            np.maximum(residual, 0.0, out=residual)
        else:  # pragma: no cover - progressive filling always terminates
            rate[unfixed] = 0.0

    load = link_cap - residual
    return rate, load


def classify_contention(
    rate: "np.ndarray",
    cap_rate: "np.ndarray",
    ranks: "np.ndarray",
    ent_flow: "np.ndarray",
    ent_link: "np.ndarray",
    link_cap: "np.ndarray",
    link_load: "np.ndarray",
    sat_threshold: float = 0.98,
) -> str:
    """Classify link contention in the current allocation.

    Returns one of:

    * ``"none"``     — no saturated link carries a network-limited flow;
    * ``"single"``   — saturated links exist but each is filled by one flow
      (line-rate transfer: queues still cannot build);
    * ``"shared"``   — ≥ 2 network-limited flows of the *same* rank share a
      saturated link (max-min sharing; standing-queue delay is approximated
      away);
    * ``"priority"`` — network-limited flows of *different* ranks meet on a
      saturated link (PrioPlus preemption / delay-channel dynamics active).
    """
    if rate.shape[0] == 0 or ent_flow.shape[0] == 0:
        return "none"
    netlim = rate < cap_rate * _CAP_SLACK
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(link_cap > 0, link_load / link_cap, 0.0)
    hot = util[ent_link] >= sat_threshold
    sel = hot & netlim[ent_flow]
    if not sel.any():
        # saturated links may still exist with a lone cap-limited filler
        return "single" if (util >= sat_threshold).any() else "none"
    links = ent_link[sel]
    rks = ranks[ent_flow[sel]]
    stride = int(rks.max()) + 2
    pairs = np.unique(links.astype(np.int64) * stride + (rks + 1))
    per_link_ranks = np.bincount(pairs // stride)
    if (per_link_ranks > 1).any():
        return "priority"
    if (np.bincount(links) > 1).any():
        return "shared"
    return "single"
