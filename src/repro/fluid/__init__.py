"""Numpy-vectorised fluid fast path (optional extra, ``repro[fluid]``).

The core packet-level simulator is stdlib-only and never imports numpy.
This package holds the hybrid fluid/packet simulation core:

* :mod:`repro.fluid.model` — strict-priority max-min water-filling rate
  solver over the flow/link incidence matrix (needs numpy);
* :mod:`repro.fluid.laws` — per-scheme fluid rate laws (window ramp and
  ceiling for Swift / DCQCN / PrioPlus; stdlib-only);
* :mod:`repro.fluid.hybrid` — :class:`HybridDriver`, which alternates
  packet-level DES with fixed-Δt fluid epochs under a quiescence predicate.

Everything numpy-dependent is imported lazily so that merely importing
``repro.fluid`` (e.g. for :func:`fluid_available`) works on a core-only
install.
"""

from __future__ import annotations

__all__ = [
    "FluidConfig",
    "HybridDriver",
    "fluid_available",
    "require_numpy",
]

_NUMPY_HINT = (
    "the fluid fast path requires numpy, which is an optional extra; "
    "install it with `pip install repro[fluid]` (or `pip install numpy`). "
    "The core packet-level simulator stays stdlib-only and is unaffected."
)


def fluid_available() -> bool:
    """True when numpy is importable (i.e. ``repro[fluid]`` is installed)."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def require_numpy():
    """Import and return numpy, or raise a clean actionable ImportError."""
    try:
        import numpy
    except ImportError as exc:
        raise ImportError(_NUMPY_HINT) from exc
    return numpy


from .hybrid import FluidConfig, HybridDriver  # noqa: E402
