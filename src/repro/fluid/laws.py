"""Per-scheme fluid rate laws (stdlib-only; no numpy needed here).

Inside a fluid epoch the allocation is capacity-feasible, so queues are
empty and every scheme sits in its *additive-increase* region (no ECN
marks, delay pinned at the base RTT, never above any target).  Each CC
scheme therefore reduces to three numbers per flow:

``init``
    window at admission (for flows that *start* inside a fluid epoch);
``ramp``
    window growth in bytes per RTT while uncongested;
``ceil``
    window ceiling — where the real control loop would stop growing
    because the standing queue reaches the scheme's delay target
    (≈ ``target_delay × line_rate``).

The laws are duck-typed off attributes the schemes already expose
(``w_ls``/``nflow``/``d_target`` for PrioPlus, ``ai_bytes``/
``target_delay_ns`` for Swift, ``ai_bytes``/``update_interval_ns`` for
DCQCN) so ``cc/`` stays the single source of truth for constants.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["FluidLaw", "law_for"]


class FluidLaw:
    """Resolved fluid-mode window dynamics for one attached sender."""

    __slots__ = ("init", "ramp", "ceil")

    def __init__(self, init: float, ramp: float, ceil: float):
        self.init = init
        self.ramp = ramp
        self.ceil = ceil

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FluidLaw(init={self.init:.0f}, ramp={self.ramp:.0f}, ceil={self.ceil:.0f})"


def _target_ceiling(sender, target_delay_ns: float) -> float:
    """Window at which the standing queue would reach ``target_delay_ns``."""
    line_bpns = sender.line_rate_bps / 8e9  # bytes per ns
    ceil = target_delay_ns * line_bpns
    return max(ceil, sender.bdp_bytes, float(sender.mtu))


def _ramp_and_targets(sender) -> Tuple[float, float, float]:
    cc = sender.cc
    mtu = float(sender.mtu)
    base_rtt = float(sender.base_rtt)

    # PrioPlus: linear start adds w_ls/nflow per RTT; the window ceiling is
    # the point where delay would hit the channel target d_target.
    w_ls = getattr(cc, "w_ls", None)
    if w_ls is not None:
        nflow = max(float(getattr(cc, "nflow", 1.0)), 1.0)
        ramp = max(w_ls / nflow, 1.0)
        d_target = float(getattr(cc, "d_target", base_rtt))
        if getattr(cc, "probe_first", False):
            init = max(w_ls / nflow, float(getattr(cc, "min_cwnd", mtu)))
        else:
            init = max(float(w_ls), float(getattr(cc, "min_cwnd", mtu)))
        return init, ramp, _target_ceiling(sender, d_target)

    # Swift: ai_bytes per RTT below target = base_rtt + base_target.
    target = getattr(cc, "target_delay_ns", None)
    ai = getattr(cc, "ai_bytes", None)
    if target is not None and ai is not None:
        return max(float(cc.cwnd), mtu), float(ai), _target_ceiling(sender, float(target))

    # DCQCN (windowed): fast recovery then AI per update interval; in an
    # unmarked fluid epoch the average slope is ~ai_bytes per interval.
    interval = getattr(cc, "update_interval_ns", None)
    if interval is not None and ai is not None:
        ramp = float(ai) * base_rtt / max(float(interval), 1.0)
        # ECN-based: the ceiling is where marking would begin, i.e. a small
        # queue above one BDP — approximate with 1.5 RTTs worth of data
        return max(float(cc.cwnd), mtu), max(ramp, 1.0), _target_ceiling(sender, 1.5 * base_rtt)

    # Generic fallback (HPCC, PowerTCP, NoCC, ...): hold the current window
    # and let it drift one MTU per RTT up to the scheme's own max.
    ceil = float(getattr(cc, "max_cwnd", sender.bdp_bytes * 2))
    return max(float(cc.cwnd), mtu), mtu, ceil


def law_for(sender) -> FluidLaw:
    """Resolve the fluid law for one sender's attached CC scheme."""
    init, ramp, ceil = _ramp_and_targets(sender)
    return FluidLaw(init, ramp, ceil)
