"""``python -m repro bench``: wall-clock snapshot of the sharded runner.

Runs a fixed suite of experiments twice — serial (``jobs=1``) and parallel —
with the cache disabled, and writes a ``BENCH_runner.json`` snapshot.  CI
uploads the file as an artifact on every PR, so the perf trajectory of the
execution subsystem accumulates over time and regressions are visible as a
drop in the measured speedup or a jump in serial wall time.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

from ..experiments.common import Experiment, FunctionExperiment, Mode
from .pool import run_experiment

__all__ = ["bench_suite", "run_bench", "write_bench"]

BENCH_SCHEMA = "repro-bench-runner/1"


def bench_suite(quick: bool = False) -> List[Experiment]:
    """The benchmark workload: multi-point experiments at two scales.

    ``quick`` is sized for CI (a few seconds per experiment serially);
    the full suite reuses the registered default-scale experiments.
    """
    from ..experiments.ablations import (
        run_cardinality_ablation,
        run_collision_avoidance_ablation,
        run_filter_ablation,
    )
    from ..experiments.fig8_testbed import run_staircase
    from ..experiments.fig10_micro import _run_fig10c

    if quick:
        stair = dict(rate=10e9, stagger_ns=300_000, flows_per_prio=2, seed=1)
        f10c = dict(n_each=2, rate=10e9, duration_ns=1_200_000, hi_start_ns=200_000, seed=1)
        return [
            FunctionExperiment(
                "bench_fig8_quick",
                {
                    "prioplus": (run_staircase, dict(mode=Mode.PRIOPLUS, priorities=(1, 2, 3, 4), **stair)),
                    "swift_targets": (run_staircase, dict(mode=Mode.SWIFT_TARGETS, priorities=(1, 2, 3, 4), **stair)),
                },
                description="four-priority staircase, CI scale",
            ),
            FunctionExperiment(
                "bench_fig10c_quick",
                {
                    "dual_rtt": (_run_fig10c, dict(dual_rtt=True, **f10c)),
                    "every_rtt": (_run_fig10c, dict(dual_rtt=False, **f10c)),
                },
                description="dual-RTT preemption, CI scale",
            ),
            FunctionExperiment(
                "bench_ablations_quick",
                {
                    "collision_on": (run_collision_avoidance_ablation, dict(collision_avoidance=True, n_low=4, rate=10e9, duration_ns=800_000)),
                    "collision_off": (run_collision_avoidance_ablation, dict(collision_avoidance=False, n_low=4, rate=10e9, duration_ns=800_000)),
                    "filter_2": (run_filter_ablation, dict(filter_consecutive=2, duration_ns=600_000)),
                    "filter_1": (run_filter_ablation, dict(filter_consecutive=1, duration_ns=600_000)),
                    "cardinality_on": (run_cardinality_ablation, dict(cardinality_estimation=True, n_flows=8, rate=10e9, duration_ns=500_000)),
                    "cardinality_off": (run_cardinality_ablation, dict(cardinality_estimation=False, n_flows=8, rate=10e9, duration_ns=500_000)),
                },
                description="design ablations, CI scale",
            ),
        ]
    from ..experiments.common import get_experiment

    return [get_experiment(n) for n in ("fig8", "fig9", "fig10c", "ablations")]


def run_bench(
    suite: Optional[List[Experiment]] = None,
    quick: bool = False,
    jobs: Optional[int] = None,
) -> dict:
    """Time each suite experiment serial vs parallel; returns the snapshot."""
    if suite is None:
        suite = bench_suite(quick)
    if jobs is None:
        jobs = min(4, os.cpu_count() or 1)
    experiments: Dict[str, dict] = {}
    total_serial = total_parallel = 0.0
    for exp in suite:
        n_points = len(exp.points())
        t0 = time.monotonic()
        run_experiment(exp, jobs=1)
        serial_s = time.monotonic() - t0
        t0 = time.monotonic()
        run_experiment(exp, jobs=jobs)
        parallel_s = time.monotonic() - t0
        total_serial += serial_s
        total_parallel += parallel_s
        experiments[exp.name] = {
            "points": n_points,
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        }
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "unix_s": time.time(),
        "experiments": experiments,
        "totals": {
            "serial_s": round(total_serial, 4),
            "parallel_s": round(total_parallel, 4),
            "speedup": round(total_serial / total_parallel, 3) if total_parallel > 0 else None,
        },
    }


def write_bench(snapshot: dict, path: str = "BENCH_runner.json") -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    print(f"wrote runner bench snapshot to {path}", file=sys.stderr)
    return path
