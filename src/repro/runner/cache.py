"""Content-addressed on-disk result cache for experiment points.

The key is a SHA-256 over the canonical JSON of

    {"experiment": <name>, "version": repro.__version__,
     "config": <canonicalized point config>, "seed": <point seed>}

so a cache entry is invalidated by bumping the package version, renaming the
experiment, or changing any part of the point's config or seed — and by
nothing else.  Canonicalization sorts dict keys and turns tuples into lists,
so semantically equal configs hash equally regardless of construction order.

Entries live at ``<root>/<experiment>/<key>.json`` (one JSON file per point,
written atomically via rename), which keeps the cache greppable and lets a
sweep be resumed or extended by any later process.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Optional, Union

from .. import __version__

__all__ = ["json_safe", "canonical_json", "cache_key", "ResultCache"]


def json_safe(obj):
    """Recursively coerce ``obj`` into JSON-representable types.

    Dict keys become strings, tuples become lists, unknown objects fall back
    to ``repr``.  Shared by the cache, the runner's result normalization and
    the CLI's output encoder, so all three agree on one canonical form.
    """
    if isinstance(obj, dict):
        return {str(k): json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_safe(v) for v in obj]
    if isinstance(obj, (int, float, str, bool)) or obj is None:
        return obj
    return repr(obj)


def canonical_json(obj) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace."""
    return json.dumps(json_safe(obj), sort_keys=True, separators=(",", ":"))


def cache_key(experiment_name: str, point, version: Optional[str] = None, extra=None) -> str:
    """The content hash identifying one ``(experiment, point)`` result.

    ``extra`` folds additional run-shaping state into the key — the runner
    uses it for the active fault plan (``{"faults": plan.to_dict()}``), so a
    faulted run never aliases a healthy one.  ``None`` (the default) leaves
    the payload, and therefore every pre-existing key, unchanged.
    """
    payload = {
        "experiment": experiment_name,
        "version": version if version is not None else __version__,
        "config": json_safe(point.config),
        "seed": point.seed,
    }
    if extra is not None:
        payload["extra"] = json_safe(extra)
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed store of per-point results, addressed by cache key."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, experiment_name: str, key: str) -> Path:
        return self.root / experiment_name / f"{key}.json"

    def get(self, experiment_name: str, key: str) -> Optional[dict]:
        """The stored entry (``{"result": ..., ...}``), or ``None`` on miss.

        A corrupt or truncated file (e.g. from a killed writer on a
        filesystem without atomic rename) is treated as a miss.
        """
        path = self._path(experiment_name, key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or "result" not in entry:
            return None
        return entry

    def info(self) -> dict:
        """Inspect the store: entry/byte counts, per experiment and total.

        Powers ``repro.api.cache_info`` and the daemon's ``GET /v1/cache``
        endpoint.  Cheap (one directory walk, no JSON parsing) so it is safe
        to call from a serving hot path.
        """
        per_experiment: dict = {}
        total_entries = 0
        total_bytes = 0
        for sub in sorted(self.root.iterdir() if self.root.is_dir() else []):
            if not sub.is_dir():
                continue
            entries = 0
            nbytes = 0
            for entry in sub.glob("*.json"):
                try:
                    nbytes += entry.stat().st_size
                except OSError:  # racing eviction/cleanup
                    continue
                entries += 1
            if entries:
                per_experiment[sub.name] = {"entries": entries, "bytes": nbytes}
                total_entries += entries
                total_bytes += nbytes
        return {
            "dir": str(self.root),
            "entries": total_entries,
            "bytes": total_bytes,
            "experiments": per_experiment,
        }

    def put(self, experiment_name: str, key: str, point, result) -> Path:
        """Atomically persist one point result; returns the entry path."""
        path = self._path(experiment_name, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "experiment": experiment_name,
            "point": point.name,
            "config": json_safe(point.config),
            "seed": point.seed,
            "version": __version__,
            "created_unix_s": time.time(),
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path
