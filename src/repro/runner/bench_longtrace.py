"""``python -m repro bench --longtrace``: multi-second paper-scale smoke.

One scenario: a multi-second WebSearch trace with paper-true (unscaled)
flow sizes on the full 320-host :func:`repro.topology.paper_fabric`, run
through the long-trace pipeline end to end — streaming workload generation
(:func:`repro.workloads.poisson_flows_iter`), staged sender admission
(:class:`repro.experiments.common.FlowAdmitter`), bounded-memory P² result
reduction, and the hybrid fluid/packet core.

Two gates, both about *sustainability* rather than speed:

``rss`` (bounded memory)
    Peak RSS growth of the process across the run must stay under
    ``RSS_CEILING_MB``.  An eager workload path, an unpruned endpoint map,
    or an unbounded result list all scale with the *total* flow count and
    blow through this; the streaming path scales with the concurrent flow
    population (``live_peak``, also reported) and does not.

``liveness`` (long-run hardening)
    The run must complete every admitted flow (``all_done``) and the hybrid
    core must report zero drain failures and at least
    ``MIN_REGIME_SWITCHES`` packet→fluid transitions — a multi-second run
    that silently stopped switching regimes would be a packet-mode crawl
    that only *looks* healthy on a short trace.

CLI::

    python -m repro bench --longtrace --out BENCH_longtrace.json   # full (2s)
    python -m repro bench --longtrace --quick                      # CI (0.5s)
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import time
from typing import Dict, List

__all__ = [
    "BENCH_LONGTRACE_SCHEMA",
    "MIN_REGIME_SWITCHES",
    "RSS_CEILING_MB",
    "check_longtrace",
    "run_longtrace_bench",
    "write_longtrace_bench",
]

BENCH_LONGTRACE_SCHEMA = "repro-bench-longtrace/1"

#: ceiling on peak-RSS *growth* across the run (MB).  The 2 s / 320-host
#: point holds ~25 concurrent flows and measures ~15 MB of growth; a path
#: that materializes the full trace (~14k senders at full length) measures
#: hundreds.  The ceiling is deliberately loose against interpreter noise
#: and deliberately far below the eager-path footprint.
RSS_CEILING_MB = 150.0

#: a healthy multi-second run re-enters fluid mode many times; fewer
#: switches than this means the hybrid core got stuck in one regime
MIN_REGIME_SWITCHES = 10

#: the long-trace flowsched config (see PAPER_LONG_CFG for the load
#: rationale: paper-true sizes, paper fabric, arrival rate traded for
#: duration so the run fits the CI smoke budget)
_FULL_DURATION_NS = 2_000_000_000
_QUICK_DURATION_NS = 500_000_000


def _rss_mb() -> float:
    """Peak RSS of this process so far, in MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_longtrace_bench(quick: bool = False) -> dict:
    """Run the long-trace point and gate it; returns the JSON-safe snapshot."""
    from ..experiments.common import Mode
    from ..experiments.flowsched import FlowSchedConfig
    from ..experiments.paper_scale import PAPER_LONG_CFG, run_paper_scale

    cfg_kwargs: Dict[str, object] = dict(
        PAPER_LONG_CFG,
        duration_ns=_QUICK_DURATION_NS if quick else _FULL_DURATION_NS,
    )
    cfg = FlowSchedConfig(**cfg_kwargs)

    rss_before = _rss_mb()
    t0 = time.perf_counter()
    result = run_paper_scale(Mode.PRIOPLUS, 8, cfg, streaming=True)
    wall_s = time.perf_counter() - t0
    rss_after = _rss_mb()
    rss_growth = rss_after - rss_before

    fluid = result.get("fluid", {})
    switches = int(fluid.get("fluid_epochs", 0))
    n_flows = int(result["n_flows"])
    sim_s = cfg_kwargs["duration_ns"] / 1e9

    return {
        "schema": BENCH_LONGTRACE_SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "unix_s": time.time(),
        "config": cfg_kwargs,
        "run": {
            "wall_s": round(wall_s, 2),
            "sim_s": sim_s,
            "n_hosts": result["n_hosts"],
            "n_flows": n_flows,
            "n_done": result["n_done"],
            "all_done": result["all_done"],
            "live_peak": result["live_peak"],
            "flows_per_sim_s": round(n_flows / sim_s, 1) if sim_s else None,
            "events": fluid.get("events"),
            "fct_all": result.get("fct", {}).get("all"),
            "fluid": {
                k: fluid.get(k)
                for k in (
                    "fluid_epochs",
                    "fluid_ns",
                    "fluid_completions",
                    "admitted_in_fluid",
                    "drain_failures",
                    "handoff_fresh_starts",
                    "path_cache_evictions",
                )
            },
        },
        "memory": {
            "rss_before_mb": round(rss_before, 1),
            "rss_peak_mb": round(rss_after, 1),
            "rss_growth_mb": round(rss_growth, 1),
            "ceiling_mb": RSS_CEILING_MB,
            "pass": rss_growth <= RSS_CEILING_MB,
        },
        "liveness": {
            "all_done": bool(result["all_done"]),
            "regime_switches": switches,
            "min_regime_switches": MIN_REGIME_SWITCHES,
            "drain_failures": int(fluid.get("drain_failures", 0)),
            "pass": (
                bool(result["all_done"])
                and switches >= MIN_REGIME_SWITCHES
                and int(fluid.get("drain_failures", 0)) == 0
            ),
        },
    }


def write_longtrace_bench(snapshot: dict, path: str = "BENCH_longtrace.json") -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    print(f"wrote long-trace bench snapshot to {path}", file=sys.stderr)
    return path


def check_longtrace(snapshot: dict) -> List[str]:
    """Gate helper: list of failures (empty = the long-trace point is healthy)."""
    failures: List[str] = []
    mem = snapshot["memory"]
    if not mem["pass"]:
        failures.append(
            f"peak RSS grew {mem['rss_growth_mb']} MB, over the "
            f"{mem['ceiling_mb']} MB ceiling (is a long-trace path "
            f"materializing the whole workload?)"
        )
    live = snapshot["liveness"]
    if not live["pass"]:
        failures.append(
            f"long-run liveness: all_done={live['all_done']}, "
            f"{live['regime_switches']} regime switches "
            f"(need >= {live['min_regime_switches']}), "
            f"{live['drain_failures']} drain failures"
        )
    return failures
