"""``python -m repro bench --core``: simulation-core hot-path microbenchmarks.

Where ``bench.py`` times the *runner* (process-pool sharding of whole
experiments), this module times the *simulation core itself* — the per-event
and per-packet costs every experiment pays millions of times.  Four benches:

``event_loop``
    Raw engine throughput: self-rescheduling no-op callbacks through the
    allocation-free ``call_after`` fast path plus a cancellable ``after``
    mix, isolating heap + dispatch cost from any packet machinery.
``single_link``
    One window-limited flow saturating a 100 Gbps link: the minimal
    port/host/transport round trip (DATA out, ACK back).
``fat_tree_incast``
    A k=4 fat-tree with a 15-to-1 incast under Swift + PFC: the paper's
    worst-case hot path (deep queues, multi-hop forwarding, ECMP, PFC
    pause/resume).  This is the headline number.
``prioplus_mix``
    Eight PrioPlus flows in two virtual-priority classes sharing one
    physical queue: probes, relinquish/resume and channel logic on top of
    the packet path.

Each bench reports wall time, engine events processed, delivered packets and
the derived ``events_per_sec`` / ``packets_per_sec``.  Because wall-clock
numbers are machine-bound, the snapshot also embeds a pure-Python
``calibration`` score (ops/sec of a fixed spin loop); the CI regression gate
compares ``events_per_sec / calibration`` against the committed
``benchmarks/baseline_core.json`` so it ports across runner generations.

CLI::

    python -m repro bench --core --out BENCH_core.json           # full
    python -m repro bench --core --quick                         # CI scale
    python -m repro bench --core --quick --check benchmarks/baseline_core.json
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "BENCH_CORE_SCHEMA",
    "calibrate",
    "run_core_bench",
    "write_core_bench",
    "check_regression",
]

BENCH_CORE_SCHEMA = "repro-bench-core/1"

#: regression gate: normalised events/sec may drop at most this fraction
REGRESSION_TOLERANCE = 0.20


# ----------------------------------------------------------------------
# machine calibration
# ----------------------------------------------------------------------
def calibrate(n: int = 2_000_000) -> float:
    """Ops/sec of a fixed pure-Python loop (attribute walks + int math).

    The loop shape intentionally resembles the simulator's instruction mix
    (method calls, attribute loads, small-int arithmetic) so the ratio
    ``events_per_sec / calibrate()`` stays roughly machine-independent.
    """

    class _Cell:
        __slots__ = ("v",)

        def __init__(self) -> None:
            self.v = 0

        def bump(self, d: int) -> int:
            self.v = (self.v + d) & 0xFFFFFFFF
            return self.v

    cell = _Cell()
    bump = cell.bump
    t0 = time.perf_counter()
    for i in range(n):
        bump(i)
    dt = time.perf_counter() - t0
    return n / dt if dt > 0 else float("inf")


# ----------------------------------------------------------------------
# the benches
# ----------------------------------------------------------------------
def _measure(build: Callable[[], Tuple[object, Callable[[], int]]]) -> dict:
    """Build a scenario outside the timed region, run it inside."""
    sim, run = build()
    t0 = time.perf_counter()
    packets = run()
    wall_s = time.perf_counter() - t0
    events = sim.events_processed
    return {
        "wall_s": round(wall_s, 4),
        "events": events,
        "packets": packets,
        "sim_ns": sim.now,
        "events_per_sec": round(events / wall_s, 1) if wall_s > 0 else None,
        "packets_per_sec": round(packets / wall_s, 1) if wall_s > 0 else None,
    }


def bench_event_loop(n_events: int = 300_000) -> dict:
    """Engine-only: chained no-op events, fast path + cancellable mix."""
    from ..sim.engine import Simulator

    def build():
        sim = Simulator(0)
        n_fast = n_events * 9 // 10
        n_slow = n_events - n_fast
        # degrade to the classic handle path on pre-fast-path engines so the
        # same bench measures before/after an upgrade
        fast_after = getattr(sim, "call_after", sim.after)

        state = {"left": n_fast}

        def tick() -> None:
            left = state["left"]
            if left > 0:
                state["left"] = left - 1
                fast_after(10, tick)

        def slow_tick() -> None:
            pass

        def run() -> int:
            fast_after(1, tick)
            # a cancel-heavy sprinkle through the classic handle path
            for i in range(n_slow):
                h = sim.after(5 + i, slow_tick)
                if i % 4 == 0:
                    h.cancel()
            sim.run()
            return 0

        return sim, run

    return _measure(build)


def bench_single_link(size_bytes: int = 12_000_000) -> dict:
    """One window-limited flow saturating a 100 Gbps link."""
    from ..cc.base import CongestionControl
    from ..sim.engine import Simulator
    from ..sim.pfc import PfcConfig
    from ..sim.switch import SwitchConfig
    from ..topology import star
    from ..transport.flow import Flow
    from ..transport.sender import FlowSender

    def build():
        sim = Simulator(1)
        cfg = SwitchConfig(n_queues=2, pfc=PfcConfig(enabled=False))
        net, senders, recv = star(sim, 1, rate_bps=100e9, link_delay_ns=1_000, switch_cfg=cfg)
        flow = Flow(1, senders[0], recv, size_bytes)
        FlowSender(sim, net, flow, CongestionControl(init_cwnd_bytes=200_000), rto_ns=10**12)

        def run() -> int:
            sim.run(until=10_000_000_000)
            assert flow.done
            return recv.rx_packets

        return sim, run

    return _measure(build)


def bench_fat_tree_incast(flow_bytes: int = 600_000) -> dict:
    """15-to-1 incast across a k=4 fat-tree under Swift + PFC (headline)."""
    from ..cc import Swift, SwiftParams
    from ..sim.engine import Simulator
    from ..sim.switch import SwitchConfig
    from ..topology import fat_tree
    from ..transport.flow import Flow
    from ..transport.sender import FlowSender

    def build():
        sim = Simulator(2)
        cfg = SwitchConfig(n_queues=3, buffer_bytes=4 * 1024 * 1024)
        net, hosts = fat_tree(sim, k=4, rate_bps=100e9, switch_cfg=cfg)
        sink = hosts[-1]
        flows = []
        for i, h in enumerate(hosts[:-1]):
            f = Flow(i + 1, h, sink, flow_bytes, priority=i % 2)
            flows.append(f)
            FlowSender(sim, net, f, Swift(SwiftParams(target_scaling=False)), rto_ns=10**10)

        def run() -> int:
            sim.run(until=60_000_000_000)
            assert all(f.done for f in flows)
            return sink.rx_packets

        return sim, run

    return _measure(build)


def bench_prioplus_mix(flow_bytes: int = 400_000) -> dict:
    """Eight PrioPlus flows in two virtual-priority classes, one queue."""
    from ..cc import Swift, SwiftParams
    from ..core import ChannelConfig, PrioPlusCC, StartTier
    from ..sim.engine import Simulator
    from ..sim.switch import SwitchConfig
    from ..topology import star
    from ..transport.flow import Flow
    from ..transport.sender import FlowSender

    def build():
        sim = Simulator(4)
        cfg = SwitchConfig(n_queues=2)
        net, senders, recv = star(sim, 8, rate_bps=100e9, link_delay_ns=1_000, switch_cfg=cfg)
        channels = ChannelConfig(n_priorities=2)
        flows = []
        for i, h in enumerate(senders):
            vprio = 1 + (i % 2)
            f = Flow(i + 1, h, recv, flow_bytes, vpriority=vprio, start_ns=i * 5_000)
            flows.append(f)
            cc = PrioPlusCC(
                Swift(SwiftParams(target_scaling=False)),
                channels,
                vpriority=vprio,
                tier=StartTier.LOW if vprio == 1 else StartTier.HIGH,
            )
            FlowSender(sim, net, f, cc, rto_ns=10**10)

        def run() -> int:
            sim.run(until=60_000_000_000)
            assert all(f.done for f in flows)
            return recv.rx_packets

        return sim, run

    return _measure(build)


#: name -> (full kwargs, quick kwargs)
_BENCHES: Dict[str, Tuple[Callable[..., dict], dict, dict]] = {
    "event_loop": (bench_event_loop, {"n_events": 300_000}, {"n_events": 60_000}),
    "single_link": (bench_single_link, {"size_bytes": 12_000_000}, {"size_bytes": 2_000_000}),
    "fat_tree_incast": (bench_fat_tree_incast, {"flow_bytes": 600_000}, {"flow_bytes": 120_000}),
    "prioplus_mix": (bench_prioplus_mix, {"flow_bytes": 400_000}, {"flow_bytes": 100_000}),
}

#: the acceptance-headline bench
HEADLINE = "fat_tree_incast"


def run_core_bench(
    quick: bool = False,
    repeats: int = 3,
    only: Optional[List[str]] = None,
) -> dict:
    """Run each bench ``repeats`` times, keep the best (least-noisy) run."""
    from .. import __version__  # noqa: F401  (import proves the package wiring)

    names = [n for n in _BENCHES if only is None or n in only]
    calibration = calibrate()
    benches: Dict[str, dict] = {}
    for name in names:
        fn, full_kw, quick_kw = _BENCHES[name]
        kw = quick_kw if quick else full_kw
        best: Optional[dict] = None
        for _ in range(max(1, repeats)):
            result = fn(**kw)
            if best is None or (result["wall_s"] or 0) < (best["wall_s"] or 0):
                best = result
        best["config"] = dict(kw)
        best["normalized"] = (
            round(best["events_per_sec"] / calibration, 4)
            if best["events_per_sec"] and calibration
            else None
        )
        benches[name] = best
    return {
        "schema": BENCH_CORE_SCHEMA,
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "unix_s": time.time(),
        "calibration_ops_per_sec": round(calibration, 1),
        "benches": benches,
    }


def write_core_bench(snapshot: dict, path: str = "BENCH_core.json") -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    print(f"wrote core bench snapshot to {path}", file=sys.stderr)
    return path


def check_regression(
    snapshot: dict, baseline_path: str, tolerance: float = REGRESSION_TOLERANCE
) -> List[str]:
    """Compare calibration-normalised events/sec against a committed baseline.

    Returns a list of human-readable failures (empty = pass).  A bench present
    in the baseline but missing from the snapshot is a failure; new benches
    absent from the baseline are ignored so the gate never blocks additions.
    """
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures: List[str] = []
    for name, base in baseline.get("benches", {}).items():
        base_norm = base.get("normalized")
        if base_norm is None:
            continue
        current = snapshot.get("benches", {}).get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        cur_norm = current.get("normalized")
        if cur_norm is None:
            failures.append(f"{name}: no normalized events/sec in current run")
            continue
        floor = base_norm * (1.0 - tolerance)
        if cur_norm < floor:
            failures.append(
                f"{name}: normalized events/sec {cur_norm:.4f} is "
                f"{(1 - cur_norm / base_norm) * 100:.1f}% below baseline "
                f"{base_norm:.4f} (tolerance {tolerance * 100:.0f}%)"
            )
    return failures
