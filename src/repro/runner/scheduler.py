"""The reusable point-scheduling core shared by ``run_experiment`` and serve.

This module owns the worker-side execution function (:func:`execute_point`),
the worker bootstrap (:func:`worker_init`) and :class:`WorkerFleet` — a
*persistent* process pool with per-task crash retry.  ``repro.runner.pool``
builds the one-shot batch path (``run_experiment``) on top of it, and
``repro.serve`` keeps one long-lived fleet warm behind the daemon, so both
paths share identical execution, retry and determinism semantics.

Crash-retry semantics
---------------------
A worker death (segfault, OOM-kill, ``os._exit``) surfaces as
``BrokenProcessPool`` on every in-flight future of that executor.  The fleet
then rotates the executor (one rebuild per crash event, guarded by a
generation counter) and resubmits each affected task with exponential
backoff, up to ``max_retries`` resubmissions per task.  Tasks that raise an
*ordinary* exception fail immediately — a deterministic error will not
succeed on retry.  A worker death therefore degrades throughput but never
fails a request until the retry budget is exhausted.

Fault plans cross the process boundary per task (as plain dicts), not via
the pool initializer, so one warm fleet can serve requests with different
fault plans concurrently.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional

from ..audit import audit_scope
from ..experiments.common import Experiment, Point
from ..faults.plan import FaultPlan, current_fault_plan, set_default_fault_plan
from ..obs import (
    set_default_inspector,
    set_default_profiler,
    set_default_sampler,
    set_default_tracer,
)
from ..telemetry import set_default_recorder

__all__ = ["RunnerError", "WorkerFleet", "execute_point", "worker_init"]


class RunnerError(RuntimeError):
    """A point failed, crashed past its retry budget, or was ill-defined."""


def worker_init() -> None:
    # Workers never trace: the parent's recorder (inherited on fork) would
    # otherwise collect per-child data nobody can read back, and point
    # runners that embed telemetry would poison the result cache.  The same
    # goes for every introspection default from repro.obs.
    set_default_recorder(None)
    set_default_tracer(None)
    set_default_inspector(None)
    set_default_sampler(None)
    set_default_profiler(None)


def execute_point(
    exp: Experiment,
    point: Point,
    audit_mode: Optional[str] = None,
    faults_dict: Optional[dict] = None,
) -> dict:
    """Run one point, optionally under a fault plan and a per-point auditor.

    The audit report crosses the process boundary riding in the result dict
    under ``"audit"``; the caller pops it back out *before* the result is
    normalized or cached, so cache entries stay audit-independent
    (legitimate, because an audited simulation is byte-identical to an
    unaudited one — pinned by the golden battery's ``--audit`` mode).

    The fault plan travels as plain data (``FaultPlan.to_dict()``) and is
    installed as the process default for the duration of the point only —
    a persistent worker can execute points with different plans back to
    back without cross-contamination.
    """
    prev_plan = current_fault_plan()
    if faults_dict is not None:
        set_default_fault_plan(FaultPlan.from_dict(faults_dict))
    try:
        if audit_mode is None:
            result = exp.run_point(point)
        else:
            # strict mode raises AuditError at the violation site (or from
            # the end-of-scope finalize), failing the point like any other
            # exception
            with audit_scope(audit_mode) as aud:
                result = exp.run_point(point)
    finally:
        if faults_dict is not None:
            set_default_fault_plan(prev_plan)
    if not isinstance(result, dict):
        raise RunnerError(
            f"{exp.name}:{point.name}: run_point must return a dict, "
            f"got {type(result).__name__}"
        )
    # per-process observability never belongs in a cached simulation result
    result.pop("telemetry", None)
    result.pop("packet_traces", None)
    result.pop("profile", None)
    if audit_mode is not None:
        result["audit"] = aud.report.to_dict()
    return result


def _prewarm_probe() -> None:
    """No-op task: spins the pool up through the public submit path."""
    return None


class _Task:
    """One submitted point with its retry budget and caller-facing future."""

    __slots__ = ("exp", "point", "audit_mode", "faults_dict", "attempts", "outer")

    def __init__(self, exp, point, audit_mode, faults_dict):
        self.exp = exp
        self.point = point
        self.audit_mode = audit_mode
        self.faults_dict = faults_dict
        self.attempts = 0  # crash-resubmissions consumed so far
        self.outer: Future = Future()


class WorkerFleet:
    """A persistent, crash-tolerant process pool for experiment points.

    ``submit`` returns a *retrying* future: it resolves with the point's raw
    result dict once some worker generation produced it, or fails with
    :class:`RunnerError` after ``max_retries`` crash-resubmissions (ordinary
    exceptions propagate as-is, immediately).  The fleet stays warm between
    submissions — the daemon keeps one for its whole lifetime.

    Thread-safe: ``submit`` may be called from any thread (the serve daemon
    calls it from the event-loop thread and awaits via
    ``asyncio.wrap_future``).
    """

    def __init__(
        self,
        jobs: int,
        max_retries: int = 2,
        retry_backoff_s: float = 0.25,
        on_crash: Optional[Callable[[], None]] = None,
    ):
        if jobs < 1:
            raise ValueError("fleet needs at least one worker")
        self.jobs = jobs
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self._on_crash = on_crash
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._timers: List[threading.Timer] = []
        self._closed = False
        #: lifetime counters (JSON-safe; the daemon surfaces them in /v1/status)
        self.stats: Dict[str, int] = {"submitted": 0, "completed": 0, "crashes": 0, "rebuilds": 0}

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool_locked(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=worker_init
            )
        return self._pool

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes (spawned lazily on first submit).

        Used by the load-test harness's chaos mode and surfaced by the
        daemon's status endpoint; an idle never-used fleet reports ``[]``.
        """
        with self._lock:
            pool = self._pool
        if pool is None or pool._processes is None:  # pragma: no cover - defensive
            return []
        return sorted(pool._processes.keys())

    def prewarm(self) -> List[int]:
        """Spawn the full worker fleet now (instead of lazily on submit).

        Forking early matters to embedders like the serve daemon: children
        inherit every open fd, so workers must exist before listening or
        connection sockets do.  This also starts the executor's management
        thread — without it, prewarmed-but-never-used workers would never
        receive shutdown sentinels and would wedge interpreter exit.
        """
        with self._lock:
            if not self._closed:
                pool = self._ensure_pool_locked()
                try:
                    # ProcessPoolExecutor spawns one worker per _adjust call
                    # (idle-semaphore gated); loop until the fleet is full
                    for _ in range(2 * self.jobs):
                        if len(pool._processes or {}) >= pool._max_workers:
                            break
                        pool._adjust_process_count()
                    pool._start_executor_manager_thread()
                except AttributeError:  # stdlib internals drifted: warm via a task
                    pool.submit(_prewarm_probe).result()
        return self.worker_pids()

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            timers, self._timers = self._timers, []
        for t in timers:
            t.cancel()
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    # ------------------------------------------------------------------
    # submission + retry
    # ------------------------------------------------------------------
    def submit(
        self,
        exp: Experiment,
        point: Point,
        audit_mode: Optional[str] = None,
        faults_dict: Optional[dict] = None,
    ) -> Future:
        task = _Task(exp, point, audit_mode, faults_dict)
        self.stats["submitted"] += 1
        self._submit_inner(task)
        return task.outer

    def _submit_inner(self, task: _Task) -> None:
        with self._lock:
            if self._closed:
                task.outer.set_exception(RunnerError("worker fleet is shut down"))
                return
            pool = self._ensure_pool_locked()
            generation = self._generation
        try:
            inner = pool.submit(
                execute_point, task.exp, task.point, task.audit_mode, task.faults_dict
            )
        except RuntimeError as exc:  # pool raced into shutdown
            task.outer.set_exception(RunnerError(f"worker fleet unavailable: {exc}"))
            return
        inner.add_done_callback(lambda fut: self._on_inner_done(task, generation, fut))

    def _on_inner_done(self, task: _Task, generation: int, inner: Future) -> None:
        if task.outer.done():  # caller cancelled; drop the result on the floor
            return
        exc = inner.exception()
        if exc is None:
            self.stats["completed"] += 1
            task.outer.set_result(inner.result())
            return
        if not isinstance(exc, BrokenProcessPool):
            # deterministic failure: will not succeed on retry
            task.outer.set_exception(exc)
            return
        self._rotate_pool(generation)
        task.attempts += 1
        if task.attempts > self.max_retries:
            task.outer.set_exception(
                RunnerError(
                    f"{task.exp.name}:{task.point.name}: worker crashed "
                    f"{task.attempts} times; giving up"
                )
            )
            return
        delay = self.retry_backoff_s * (2 ** (task.attempts - 1))
        timer = threading.Timer(delay, self._submit_inner, args=(task,))
        timer.daemon = True
        with self._lock:
            if self._closed:
                task.outer.set_exception(RunnerError("worker fleet is shut down"))
                return
            self._timers.append(timer)
            # opportunistically drop fired timers so the list stays bounded
            self._timers = [t for t in self._timers if t.is_alive() or t is timer]
        timer.start()

    def _rotate_pool(self, broken_generation: int) -> None:
        """Replace the broken executor exactly once per crash event.

        Every in-flight future of the broken pool fails with
        ``BrokenProcessPool``; each calls in here with the generation it was
        submitted under, and only the first rotates the pool.
        """
        with self._lock:
            if self._closed or self._generation != broken_generation:
                return
            self._generation += 1
            self.stats["crashes"] += 1
            self.stats["rebuilds"] += 1
            broken, self._pool = self._pool, None
        if broken is not None:
            broken.shutdown(wait=False)
        if self._on_crash is not None:
            try:
                self._on_crash()
            except Exception:  # pragma: no cover - observer must not kill retry
                pass
