"""Parallel sharded experiment execution with content-addressed caching.

Quick taste::

    from repro.experiments.common import get_experiment
    from repro.runner import run_experiment

    exp = get_experiment("fig10c")
    result = run_experiment(exp, jobs=4, cache=".repro-cache")
    # rerun: every point is a cache hit, zero simulator events execute

See ``docs/RUNNER.md`` for the sharding model, the cache-key scheme and the
crash-retry semantics.
"""

from .bench import bench_suite, run_bench, write_bench
from .cache import ResultCache, cache_key, canonical_json, json_safe
from .pool import RunnerError, run_experiment

__all__ = [
    "run_experiment",
    "RunnerError",
    "ResultCache",
    "cache_key",
    "canonical_json",
    "json_safe",
    "bench_suite",
    "run_bench",
    "write_bench",
]
