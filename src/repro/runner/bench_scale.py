"""``python -m repro bench --scale``: hybrid fluid/packet scale benchmark.

Two scenarios, both run twice (pure packet vs hybrid) on identical seeded
workloads:

``k6_staggered_bulk`` (speedup)
    Waves of scheduled bulk transfers across the paper's full 320-host
    k=6 / 100 Gbps fabric (:func:`repro.topology.paper_fabric`), with
    quiescent gaps between waves — the regime the fluid fast path is built
    for.  Reports ``events_per_sec`` and the capacity-style metric
    ``host_sim_s_per_wall_s`` (hosts x simulated seconds per wall-clock
    second) for both cores, and their ratio as ``speedup``.  The simulated
    span is each core's *last flow completion*, not ``sim.now`` — both
    cores are charged for exactly the workload they delivered, so neither
    side can pad the ratio with cheaply-simulated idle tail time.

``midscale_agreement`` (fidelity)
    Overlapping PrioPlus flows on a mid-scale k=4 fabric, run to completion
    under both cores.  Reports the relative deviation of aggregate goodput
    and mean/p99 FCT between hybrid and packet; the documented envelope is
    ``AGREEMENT_TOLERANCE`` (5 %).

CLI::

    python -m repro bench --scale --out BENCH_scale.json    # full
    python -m repro bench --scale --quick                   # CI scale
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

__all__ = [
    "AGREEMENT_TOLERANCE",
    "BENCH_SCALE_SCHEMA",
    "SPEEDUP_FLOOR",
    "run_scale_bench",
    "write_scale_bench",
]

BENCH_SCALE_SCHEMA = "repro-bench-scale/1"

#: hybrid-vs-packet agreement envelope on goodput / FCT (fraction)
AGREEMENT_TOLERANCE = 0.05

#: acceptance floor for the hybrid/packet host_sim_s_per_wall_s ratio
SPEEDUP_FLOOR = 20.0


# ----------------------------------------------------------------------
# scenario builders (built fresh per run: packet and hybrid never share state)
# ----------------------------------------------------------------------
def _build_staggered_bulk(n_waves: int, flows_per_wave: int, flow_bytes: int, gap_ns: int):
    """Scheduled bulk transfers on the 320-host paper fabric.

    Each wave starts ``flows_per_wave`` transfers between disjoint host
    pairs in different pods; waves are separated by idle gaps.  Between
    waves the fabric quiesces, which is exactly when the hybrid driver can
    leave packet mode.
    """
    from ..cc import Swift, SwiftParams
    from ..core import ChannelConfig, PrioPlusCC
    from ..sim.engine import Simulator
    from ..topology import paper_fabric
    from ..transport.flow import Flow
    from ..transport.sender import FlowSender

    sim = Simulator(7)
    net, hosts = paper_fabric(sim)
    channels = ChannelConfig(n_priorities=1)
    flows = []
    fid = 1
    # pair host i with a host half the fabric away: always crosses the core.
    # All transfers share one virtual priority: same-rank link sharing keeps
    # the default exit policy ("priority") in fluid mode.
    half = len(hosts) // 2
    wave_span_ns = int(flow_bytes * 8e9 / 100e9) + gap_ns
    for w in range(n_waves):
        start = w * wave_span_ns
        for j in range(flows_per_wave):
            src = hosts[(w * flows_per_wave + j) % half]
            dst = hosts[half + (w * flows_per_wave + j) % half]
            f = Flow(fid, src, dst, flow_bytes, vpriority=1, start_ns=start)
            cc = PrioPlusCC(
                Swift(SwiftParams(target_scaling=False)),
                channels,
                vpriority=1,
                probe_first=False,
            )
            FlowSender(sim, net, f, cc, rto_ns=10**10)
            flows.append(f)
            fid += 1
    deadline = (n_waves + 4) * wave_span_ns + 10_000_000
    return sim, net, flows, deadline, len(hosts)


def _build_midscale(n_flows: int, flow_bytes: int, stagger_ns: int = 400_000):
    """Staggered PrioPlus flows on a k=4 fat-tree (agreement scenario).

    Flow sizes are chosen inside the ramp/transition regime (the window
    never sits long against its delay-channel ceiling): that is the regime
    the hybrid core actually runs fluid, and where its error envelope is
    tightest.  Long ceiling-bound flows deviate more (the fluid model
    smooths the packet-level AIMD sawtooth away); the measured envelope for
    both regimes is documented in docs/PERFORMANCE.md.
    """
    from ..cc import Swift, SwiftParams
    from ..core import ChannelConfig, PrioPlusCC
    from ..sim.engine import Simulator
    from ..topology import fat_tree
    from ..transport.flow import Flow
    from ..transport.sender import FlowSender

    sim = Simulator(11)
    net, hosts = fat_tree(sim, k=4, rate_bps=100e9)
    channels = ChannelConfig(n_priorities=2)
    flows = []
    for i in range(n_flows):
        src = hosts[i % (len(hosts) // 2)]
        dst = hosts[len(hosts) // 2 + (i * 3) % (len(hosts) // 2)]
        vprio = 1 + (i % 2)
        f = Flow(
            i + 1, src, dst, flow_bytes, vpriority=vprio, start_ns=i * stagger_ns
        )
        cc = PrioPlusCC(
            Swift(SwiftParams(target_scaling=False)),
            channels,
            vpriority=vprio,
            probe_first=False,
        )
        FlowSender(sim, net, f, cc, rto_ns=10**10)
        flows.append(f)
    return sim, net, flows, 10_000_000_000, len(hosts)


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def _run_one(builder, build_kw: dict, hybrid: bool, fluid_cfg: Optional[dict] = None) -> dict:
    """Build outside the timed region, run inside; one fresh world per run."""
    sim, net, flows, deadline, n_hosts = builder(**build_kw)
    driver = None
    if hybrid:
        from ..fluid import FluidConfig, HybridDriver

        driver = HybridDriver(sim, net, FluidConfig(**fluid_cfg) if fluid_cfg else None)
    t0 = time.perf_counter()
    if driver is not None:
        all_done = driver.run_until_flows_done(flows, deadline)
    else:
        while sim.now < deadline:
            sim.run(until=min(sim.now + 1_000_000, deadline))
            if all(f.done for f in flows):
                break
            if sim.peek_time() is None:
                break
        all_done = all(f.done for f in flows)
    wall_s = time.perf_counter() - t0
    done = [f for f in flows if f.done]
    fcts = sorted(f.fct_ns() for f in done)
    total_bytes = sum(f.size_bytes for f in done)
    # the simulated span both cores are charged for is the workload itself:
    # first start to last completion.  sim.now is NOT comparable — the
    # hybrid can jump an idle tail to the deadline for free while the pure
    # packet loop stops when its event queue drains.
    span_ns = max((f.start_ns + f.fct_ns() for f in done), default=sim.now)
    row: Dict[str, object] = {
        "all_done": all_done,
        "n_flows": len(flows),
        "n_done": len(done),
        "wall_s": round(wall_s, 4),
        "events": sim.events_processed,
        "sim_ns": sim.now,
        "workload_span_ns": span_ns,
        "events_per_sec": round(sim.events_processed / wall_s, 1) if wall_s > 0 else None,
        "host_sim_s_per_wall_s": round(n_hosts * span_ns / 1e9 / wall_s, 2) if wall_s > 0 else None,
        "goodput_bytes": total_bytes,
        "fct_mean_ns": sum(fcts) / len(fcts) if fcts else None,
        "fct_p99_ns": fcts[min(len(fcts) - 1, int(0.99 * len(fcts)))] if fcts else None,
    }
    if driver is not None:
        row["fluid"] = dict(driver.stats)
    return row


def _rel_dev(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if not a or not b:
        return None
    return abs(a - b) / abs(a)


def run_scale_bench(quick: bool = False) -> dict:
    """Run both scenarios under both cores; returns the JSON-safe snapshot."""
    from .bench_core import calibrate

    if quick:
        bulk_kw = {"n_waves": 2, "flows_per_wave": 2, "flow_bytes": 8_000_000, "gap_ns": 200_000}
        mid_kw = {"n_flows": 6, "flow_bytes": 400_000, "stagger_ns": 400_000}
    else:
        bulk_kw = {"n_waves": 8, "flows_per_wave": 4, "flow_bytes": 8_000_000, "gap_ns": 200_000}
        mid_kw = {"n_flows": 12, "flow_bytes": 400_000, "stagger_ns": 120_000}
    # bulk waves are hundreds of µs long: poll quiescence often enough that
    # the driver leaves packet mode early in each wave instead of burning up
    # to 200 µs (a third of a wave) of packet events per wave
    bulk_fluid = {"check_every_ns": 50_000}

    calibration = calibrate()

    packet_bulk = _run_one(_build_staggered_bulk, bulk_kw, hybrid=False)
    hybrid_bulk = _run_one(_build_staggered_bulk, bulk_kw, hybrid=True, fluid_cfg=bulk_fluid)
    speedup = None
    if packet_bulk["host_sim_s_per_wall_s"] and hybrid_bulk["host_sim_s_per_wall_s"]:
        speedup = round(
            hybrid_bulk["host_sim_s_per_wall_s"] / packet_bulk["host_sim_s_per_wall_s"], 2
        )

    packet_mid = _run_one(_build_midscale, mid_kw, hybrid=False)
    hybrid_mid = _run_one(_build_midscale, mid_kw, hybrid=True)
    deviations = {
        "goodput": _rel_dev(packet_mid["goodput_bytes"], hybrid_mid["goodput_bytes"]),
        "fct_mean": _rel_dev(packet_mid["fct_mean_ns"], hybrid_mid["fct_mean_ns"]),
        "fct_p99": _rel_dev(packet_mid["fct_p99_ns"], hybrid_mid["fct_p99_ns"]),
    }
    worst = max((v for v in deviations.values() if v is not None), default=None)

    return {
        "schema": BENCH_SCALE_SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "unix_s": time.time(),
        "calibration_ops_per_sec": round(calibration, 1),
        "speedup_scenario": {
            "name": "k6_staggered_bulk",
            "config": bulk_kw,
            "fluid_config": bulk_fluid,
            "packet": packet_bulk,
            "hybrid": hybrid_bulk,
            "speedup_host_sim_s": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "pass": speedup is not None and speedup >= SPEEDUP_FLOOR,
        },
        "agreement_scenario": {
            "name": "midscale_agreement",
            "config": mid_kw,
            "packet": packet_mid,
            "hybrid": hybrid_mid,
            "deviations": deviations,
            "tolerance": AGREEMENT_TOLERANCE,
            "pass": worst is not None and worst <= AGREEMENT_TOLERANCE,
        },
    }


def write_scale_bench(snapshot: dict, path: str = "BENCH_scale.json") -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    print(f"wrote scale bench snapshot to {path}", file=sys.stderr)
    return path


def check_scale(snapshot: dict) -> List[str]:
    """Gate helper: list of failures (empty = both scenarios pass)."""
    failures: List[str] = []
    sp = snapshot["speedup_scenario"]
    if not sp["pass"]:
        failures.append(
            f"speedup {sp['speedup_host_sim_s']} below floor {sp['speedup_floor']}x"
        )
    ag = snapshot["agreement_scenario"]
    if not ag["pass"]:
        failures.append(
            f"hybrid-vs-packet deviation {ag['deviations']} exceeds {ag['tolerance']:.0%}"
        )
    return failures
