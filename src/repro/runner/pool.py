"""Process-pool execution of experiment points with caching and retry.

:func:`run_experiment` is the one batch entry point: it enumerates an
:class:`~repro.experiments.common.Experiment`'s points, satisfies what it can
from the :class:`~repro.runner.cache.ResultCache`, fans the remainder out
across ``jobs`` worker processes, retries pool crashes with bounded backoff,
and reduces the per-point results in a deterministic order — so the reduced
output is byte-identical no matter how many workers ran, which points were
cached, or in what order they finished.

The execution core (worker bootstrap, per-point execution, the crash-retrying
:class:`~repro.runner.scheduler.WorkerFleet`) lives in
:mod:`repro.runner.scheduler`; this module adds the batch orchestration, and
:mod:`repro.serve` builds the long-running daemon on the same core.

Determinism contract:

* every point result is normalized through a JSON round-trip before it is
  cached or reduced, so fresh and cached results are indistinguishable;
* a ``"telemetry"`` key attached by a point runner is stripped (telemetry is
  per-process observability, not part of the simulation result);
* workers run with telemetry disabled; the parent-side flight recorder (when
  one is active) receives the runner's own counters instead:
  ``runner.points``, ``runner.cache_hits``, ``runner.cache_misses``,
  ``runner.points_executed``, ``runner.worker_crashes``.
"""

from __future__ import annotations

import concurrent.futures
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Union

from ..experiments.common import Experiment, Point
from ..faults.plan import FaultPlan, current_fault_plan, set_default_fault_plan
from ..telemetry import current_recorder
from .cache import ResultCache, cache_key, json_safe
from .scheduler import RunnerError, WorkerFleet, execute_point

__all__ = ["RunnerError", "run_experiment"]

# retained as aliases: these were importable from here before the scheduler split
_execute_point = execute_point


def _normalize(result: dict) -> dict:
    """JSON round-trip so fresh results equal their future cached selves."""
    return json.loads(json.dumps(json_safe(result)))


class _Counters:
    """Thin veneer over the active recorder's metrics registry (or nothing)."""

    def __init__(self):
        rec = current_recorder()
        self._metrics = rec.metrics if rec is not None else None

    def inc(self, name: str, n: int = 1) -> None:
        if self._metrics is not None and n:
            self._metrics.counter(name).inc(n)


def _progress_printer(exp_name: str, total: int) -> Callable[[str, str], None]:
    """Per-point progress/ETA lines on stderr, safe for daemon contexts.

    A detached or closed stderr (service under a supervisor, parent died,
    pipe reader gone) must degrade to silence, not kill the run: the first
    failing write disables all further output.
    """
    t0 = time.monotonic()
    done = [0]
    broken = [False]

    def tick(point_name: str, source: str) -> None:
        done[0] += 1
        if broken[0]:
            return
        elapsed = time.monotonic() - t0
        eta = elapsed / done[0] * (total - done[0])
        try:
            print(
                f"[runner] {exp_name} {done[0]}/{total} {point_name} ({source}) "
                f"elapsed={elapsed:.1f}s eta={eta:.1f}s",
                file=sys.stderr,
                flush=True,
            )
        except (OSError, ValueError, AttributeError):
            # BrokenPipeError/closed-file ValueError/stderr=None under pythonw
            broken[0] = True

    return tick


def _run_parallel(
    exp: Experiment,
    points: List[Point],
    jobs: int,
    max_retries: int,
    retry_backoff_s: float,
    counters: _Counters,
    on_done: Callable[[str, str], None],
    faults_dict: Optional[dict] = None,
    audit_mode: Optional[str] = None,
) -> Dict[str, dict]:
    """Fan ``points`` out over a one-shot :class:`WorkerFleet`.

    Retry semantics are the fleet's: when a worker process dies (segfault,
    OOM-kill, ``os._exit``), the pool is rebuilt and each affected point is
    resubmitted with exponential backoff, up to ``max_retries`` times per
    point.  Points that raise an ordinary exception fail the run
    immediately — a deterministic error will not succeed on retry.
    """
    fleet = WorkerFleet(
        min(jobs, len(points)),
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
        on_crash=lambda: counters.inc("runner.worker_crashes"),
    )
    out: Dict[str, dict] = {}
    try:
        futures = {
            fleet.submit(exp, p, audit_mode, faults_dict): p for p in points
        }
        for fut in concurrent.futures.as_completed(futures):
            point = futures[fut]
            try:
                result = fut.result()
            except RunnerError:
                raise
            except Exception as exc:
                raise RunnerError(
                    f"{exp.name}:{point.name} raised {type(exc).__name__}: {exc}"
                ) from exc
            out[point.name] = result
            counters.inc("runner.points_executed")
            on_done(point.name, "run")
    finally:
        fleet.shutdown(wait=True, cancel_futures=True)
    return out


def run_experiment(
    exp: Experiment,
    jobs: int = 1,
    cache: Union[str, ResultCache, None] = None,
    progress: Union[bool, Callable[[str, str], None]] = False,
    max_retries: int = 2,
    retry_backoff_s: float = 0.25,
    report: Optional[dict] = None,
    faults: Union[str, FaultPlan, None] = None,
    audit: Optional[str] = None,
) -> dict:
    """Run every point of ``exp`` and return its reduced result.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` executes points inline (no subprocesses),
        which is the reference serial path; any ``N > 1`` must produce a
        byte-identical reduced result.
    cache:
        A directory path or :class:`ResultCache`; points whose key is
        already stored are not simulated again.
    progress:
        ``True`` prints per-point progress/ETA lines to stderr; a callable
        receives ``(point_name, source)`` with source ``"cache"``/``"run"``.
    max_retries / retry_backoff_s:
        Worker-crash retry budget (see :class:`~repro.runner.scheduler.WorkerFleet`).
    report:
        Optional dict filled in place with run statistics
        (``points``, ``cache_hits``, ``executed``, ``jobs``, ``wall_s``).
    faults:
        A :class:`~repro.faults.plan.FaultPlan` (or a path to its JSON)
        applied to every point — shipped to workers as plain data and
        installed for the duration of each point, so each point's
        ``Network.build_routes()`` arms it, in workers and in the serial
        path alike.  The plan enters every point's cache key, so faulted
        and healthy runs never alias.  ``None`` inherits whatever default
        plan is already installed (still cache-keyed).
    audit:
        ``"strict"`` or ``"warn"`` runs every *executed* point under a fresh
        :class:`repro.audit.Auditor` (in workers and the serial path alike)
        and aggregates the per-point reports into ``reduced["audit"]``.
        Strict mode fails the run at the first violation.  Audited results
        are byte-identical to unaudited ones, so cache entries are shared
        with unaudited runs; cache-hit points are counted but not re-audited.
    """
    if audit is not None and audit not in ("strict", "warn"):
        raise RunnerError(f"audit must be 'strict', 'warn' or None, got {audit!r}")
    t0 = time.monotonic()
    points = list(exp.points())
    names = [p.name for p in points]
    if len(set(names)) != len(names):
        raise RunnerError(f"{exp.name}: duplicate point names in points()")

    if isinstance(faults, str):
        faults = FaultPlan.load(faults)
    plan = faults if faults is not None else current_fault_plan()
    faults_dict = plan.to_dict() if plan is not None else None
    extra = {"faults": faults_dict} if faults_dict is not None else None

    store = ResultCache(cache) if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__") else cache
    keys = {p.name: cache_key(exp.name, p, extra=extra) for p in points}
    if len(set(keys.values())) != len(points):
        raise RunnerError(
            f"{exp.name}: two points share a cache key — every point needs a "
            f"distinct (config, seed)"
        )

    counters = _Counters()
    counters.inc("runner.points", len(points))
    if progress is True:
        on_done = _progress_printer(exp.name, len(points))
    elif callable(progress):
        on_done = progress
    else:
        def on_done(point_name: str, source: str) -> None:
            pass

    results: Dict[str, dict] = {}
    audit_reports: Dict[str, dict] = {}
    pending: List[Point] = []
    for p in points:
        entry = store.get(exp.name, keys[p.name]) if store is not None else None
        if entry is not None:
            results[p.name] = entry["result"]
            counters.inc("runner.cache_hits")
            on_done(p.name, "cache")
        else:
            pending.append(p)
    counters.inc("runner.cache_misses", len(pending))

    if pending:
        if jobs <= 1:
            fresh = {}
            for p in pending:
                try:
                    fresh[p.name] = execute_point(exp, p, audit, faults_dict)
                except RunnerError:
                    raise
                except Exception as exc:
                    raise RunnerError(
                        f"{exp.name}:{p.name} raised {type(exc).__name__}: {exc}"
                    ) from exc
                counters.inc("runner.points_executed")
                on_done(p.name, "run")
        else:
            fresh = _run_parallel(
                exp, pending, jobs, max_retries, retry_backoff_s, counters, on_done,
                faults_dict=faults_dict, audit_mode=audit,
            )
        for p in pending:
            raw = fresh[p.name]
            rep = raw.pop("audit", None) if isinstance(raw, dict) else None
            if rep is not None:
                audit_reports[p.name] = rep
            result = _normalize(raw)
            results[p.name] = result
            if store is not None:
                store.put(exp.name, keys[p.name], p, result)

    ordered = {p.name: results[p.name] for p in points}
    reduced = exp.reduce(ordered)
    if audit is not None and isinstance(reduced, dict):
        total_violations = sum(r["violation_count"] for r in audit_reports.values())
        reduced["audit"] = {
            "mode": audit,
            "ok": total_violations == 0,
            "violation_count": total_violations,
            "points_audited": len(audit_reports),
            "points_cached": len(points) - len(pending),
            "points": audit_reports,
        }
    if report is not None:
        report.update(
            experiment=exp.name,
            points=len(points),
            cache_hits=len(points) - len(pending),
            executed=len(pending),
            jobs=jobs,
            wall_s=time.monotonic() - t0,
        )
        if audit is not None:
            report["audit_violations"] = sum(
                r["violation_count"] for r in audit_reports.values()
            )
    return reduced
