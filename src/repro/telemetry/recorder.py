"""Flight recorder: typed event channels + aggregate metrics.

Design constraints (in priority order):

1. **Zero overhead when off.**  Every hook site in the simulator reads one
   attribute and checks one flag::

       tel = self.telemetry
       if tel.enabled:
           tel.queue_depth(...)

   Components snapshot ``sim.telemetry`` at construction time, and
   :class:`Simulator` adopts the module-level default recorder, so the
   disabled path never allocates, formats or branches further.
2. **No feedback into the simulation.**  The recorder never touches the
   event heap or the simulation RNG; enabling it must leave results
   byte-identical (tested in ``tests/test_telemetry.py``).
3. **Structured, not stringly.**  Each channel stores fixed-shape tuples
   (documented per method) that the exporters and metrics consume without
   parsing.

Event taxonomy (channel → tuple layout):

========== =============================================================
flow_state ``(t, flow_id, state)`` — lifecycle + PrioPlus machine states
cwnd       ``(t, flow_id, cwnd_bytes, delay_ns)`` — after every ACK
probe      ``(t, flow_id, kind)`` — ``"send"`` / ``"ack"``
cc         ``(t, flow_id, kind)`` — per-RTT CC decisions (instants)
ecn        ``(t, port, queue)`` — a packet was ECN-marked at enqueue
pfc        ``(t, switch, in_idx, prio, paused, backlog_bytes)``
queue      ``(t, port, queue, queue_bytes, total_bytes)`` — on change
link       ``(t, port, busy)`` — egress transmit busy/idle transitions
buffer     ``(t, switch, shared_used, headroom_used)`` — on change
drop       ``(t, switch, size, priority, reason)`` — shared-buffer tail drop
fault      ``(t, kind, target, phase)`` — fault-injection lifecycle
           (phase: ``inject`` / ``clear`` / ``reconverge``, see repro.faults)
audit      ``(t, invariant, message)`` — invariant violations (repro.audit,
           warn mode; strict mode aborts at the first violation instead)
regime     ``(t, mode, reason, n_flows)`` — hybrid-core regime switches
           (mode: ``packet`` / ``fluid``, see repro.fluid.hybrid)
========== =============================================================
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .metrics import Gauge, MetricsRegistry

__all__ = [
    "CHANNELS",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "current_recorder",
    "default_recorder",
    "set_default_recorder",
]

#: every event channel a :class:`Recorder` can populate
CHANNELS: Tuple[str, ...] = (
    "flow_state",
    "cwnd",
    "probe",
    "cc",
    "ecn",
    "pfc",
    "queue",
    "link",
    "buffer",
    "drop",
    "fault",
    "audit",
    "regime",
)


class NullRecorder:
    """Inert stand-in installed by default; hook sites only read ``enabled``."""

    enabled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullRecorder>"


#: the process-wide disabled recorder (safe to share: it holds no state)
NULL_RECORDER = NullRecorder()


class Recorder:
    """Collects structured events and aggregate metrics from a simulation.

    Parameters
    ----------
    events:
        Keep per-channel event lists (required for trace export).  Disable
        to collect aggregate metrics only, at much lower memory cost.
    channels:
        Optional subset of :data:`CHANNELS` to record; ``None`` means all.
        Filtering happens inside the recorder, so hook sites stay branchless.
    """

    def __init__(self, events: bool = True, channels: Optional[Iterable[str]] = None):
        self.enabled = True
        self.keep_events = events
        if channels is None:
            chans: FrozenSet[str] = frozenset(CHANNELS)
        else:
            chans = frozenset(channels)
            unknown = chans - set(CHANNELS)
            if unknown:
                raise ValueError(f"unknown telemetry channels: {sorted(unknown)}")
        self.channels = chans
        #: channel name -> list of event tuples (see module docstring)
        self.events: Dict[str, List[tuple]] = {ch: [] for ch in CHANNELS}
        self.metrics = MetricsRegistry()
        self.max_ts = 0
        # hot-path metric handles (avoid name lookups per event)
        m = self.metrics
        self._c_ecn = m.counter("ecn.marks")
        self._c_drop = m.counter("buffer.drops")
        self._c_drop_bytes = m.counter("buffer.dropped_bytes")
        self._c_pause = m.counter("pfc.pauses")
        self._c_resume = m.counter("pfc.resumes")
        self._c_probe_send = m.counter("probe.sent")
        self._c_probe_ack = m.counter("probe.acked")
        self._c_sim_events = m.counter("sim.events")
        self._h_delay = m.histogram("delay_ns")
        self._h_cwnd = m.histogram("cwnd_bytes")
        self._port_gauges: Dict[str, Gauge] = {}
        self._buffer_gauges: Dict[str, Gauge] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Stop recording without detaching from components."""
        self.enabled = False

    def resume(self) -> None:
        self.enabled = True

    def _note(self, t: int) -> None:
        if t > self.max_ts:
            self.max_ts = t

    # ------------------------------------------------------------------
    # typed channels (called from simulator hook points)
    # ------------------------------------------------------------------
    def flow_state(self, t: int, flow_id: int, state: str) -> None:
        if "flow_state" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["flow_state"].append((t, flow_id, state))
        self.metrics.counter(f"flow_state.{state}").inc()

    def cwnd_update(self, t: int, flow_id: int, cwnd_bytes: float, delay_ns: int) -> None:
        if "cwnd" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["cwnd"].append((t, flow_id, cwnd_bytes, delay_ns))
        self._h_delay.observe(delay_ns)
        self._h_cwnd.observe(cwnd_bytes)

    def probe(self, t: int, flow_id: int, kind: str) -> None:
        if "probe" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["probe"].append((t, flow_id, kind))
        (self._c_probe_send if kind == "send" else self._c_probe_ack).inc()

    def cc_event(self, t: int, flow_id: int, kind: str) -> None:
        if "cc" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["cc"].append((t, flow_id, kind))
        self.metrics.counter(f"cc.{kind}").inc()

    def ecn_mark(self, t: int, port: str, queue: int) -> None:
        if "ecn" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["ecn"].append((t, port, queue))
        self._c_ecn.inc()

    def pfc(self, t: int, switch: str, in_idx: int, prio: int, paused: bool, backlog: int) -> None:
        if "pfc" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["pfc"].append((t, switch, in_idx, prio, paused, backlog))
        (self._c_pause if paused else self._c_resume).inc()

    def queue_depth(self, t: int, port: str, queue: int, qbytes: int, total: int) -> None:
        if "queue" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["queue"].append((t, port, queue, qbytes, total))
        g = self._port_gauges.get(port)
        if g is None:
            g = self._port_gauges[port] = self.metrics.gauge(f"queue_bytes.{port}")
        g.set(t, total)

    def link(self, t: int, port: str, busy: bool) -> None:
        if "link" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["link"].append((t, port, busy))

    def buffer_occupancy(self, t: int, switch: str, shared_used: int, headroom_used: int) -> None:
        if "buffer" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["buffer"].append((t, switch, shared_used, headroom_used))
        g = self._buffer_gauges.get(switch)
        if g is None:
            g = self._buffer_gauges[switch] = self.metrics.gauge(f"buffer_bytes.{switch}")
        g.set(t, shared_used + headroom_used)

    def sim_events(self, t: int, n: int) -> None:
        """``n`` engine events executed up to time ``t`` (one call per
        :meth:`Simulator.run`).  Metrics-only — no event channel — so the
        counter ``sim.events`` cheaply answers "did any simulation run?",
        which is how the runner's cache tests prove a warm rerun skips the
        simulator entirely."""
        self._note(t)
        self._c_sim_events.inc(n)

    def fault(self, t: int, kind: str, target: str, phase: str) -> None:
        """One fault-injection lifecycle transition (see :mod:`repro.faults`).

        ``kind`` is the fault type (``link_down`` / ``link_degrade`` /
        ``switch_reboot`` / ``pfc_storm``), ``target`` the affected link or
        node, ``phase`` one of ``inject`` / ``clear`` / ``reconverge``.
        """
        if "fault" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["fault"].append((t, kind, target, phase))
        self.metrics.counter(f"faults.{phase}").inc()

    def buffer_drop(
        self, t: int, switch: str, size: int, priority: int, reason: str = "buffer_shared"
    ) -> None:
        """One rejected packet; ``reason`` matches the audit ledger's taxonomy
        (``buffer_shared`` / ``buffer_headroom`` / ``switch_dead`` /
        ``blackhole``)."""
        if "drop" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["drop"].append((t, switch, size, priority, reason))
        self._c_drop.inc()
        self._c_drop_bytes.inc(size)
        self.metrics.counter(f"buffer.drops.{reason}").inc()

    def audit_violation(self, t: int, invariant: str, message: str) -> None:
        """One invariant violation surfaced by :mod:`repro.audit` (warn mode)."""
        if "audit" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["audit"].append((t, invariant, message))
        self.metrics.counter(f"audit.{invariant}").inc()

    def regime(self, t: int, mode: str, reason: str, n_flows: int) -> None:
        """One hybrid-core regime switch (:mod:`repro.fluid.hybrid`).

        ``mode`` is the regime being *entered* (``"fluid"`` / ``"packet"``),
        ``reason`` why the previous one ended (``"quiescent"``,
        ``"contention:..."``, ``"deadline"``, ...), ``n_flows`` the number of
        flows handed across the boundary.
        """
        if "regime" not in self.channels:
            return
        self._note(t)
        if self.keep_events:
            self.events["regime"].append((t, mode, reason, n_flows))
        self.metrics.counter(f"regime.{mode}").inc()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def event_counts(self) -> Dict[str, int]:
        # sorted by channel name so dumps/goldens diff stably
        return {ch: len(self.events[ch]) for ch in sorted(self.events) if self.events[ch]}

    def snapshot(self) -> dict:
        """Per-run summary, safe to embed in an experiment's result dict."""
        return {
            "event_counts": self.event_counts(),
            "metrics": self.metrics.snapshot(until_t=self.max_ts),
        }

    def clear(self) -> None:
        """Drop recorded events (metrics are kept)."""
        for evs in self.events.values():
            evs.clear()


# ----------------------------------------------------------------------
# process-wide default recorder, adopted by every new Simulator
# ----------------------------------------------------------------------
_default: object = NULL_RECORDER


def set_default_recorder(recorder) -> None:
    """Install ``recorder`` as the default every new :class:`Simulator` adopts.

    Pass ``None`` to restore the inert :data:`NULL_RECORDER`.  Install the
    recorder *before* building simulators/topologies: components snapshot it
    at construction time.
    """
    global _default
    _default = recorder if recorder is not None else NULL_RECORDER


def default_recorder():
    """The recorder new simulators adopt (the null recorder when disabled)."""
    return _default


def current_recorder() -> Optional[Recorder]:
    """The active default :class:`Recorder`, or ``None`` when telemetry is off."""
    return _default if getattr(_default, "enabled", False) else None
