"""Trace exporters: JSONL event dumps and Chrome/Perfetto ``trace_event`` JSON.

``to_perfetto`` renders a whole simulation as a trace that opens directly in
`ui.perfetto.dev <https://ui.perfetto.dev>`_ (or ``chrome://tracing``):

* **flows** process — one thread per flow with B/E spans for every
  flow/PrioPlus state, counter tracks for cwnd and measured delay, and
  instant events for probes and per-RTT CC decisions;
* **ports** process — one thread per egress port with transmit busy spans,
  ECN-mark instants, and per-queue byte-occupancy counters;
* **pfc** process — one thread per (switch, ingress, priority) with a PAUSE
  span for every pause/resume pair;
* **buffers** process — shared/headroom occupancy counters and drop instants
  per switch.

Timestamps are emitted in microseconds (the format's unit) from the engine's
integer-nanosecond clock; events are sorted and B/E pairs always match (spans
still open at the end of the recording are closed at the trace's last
timestamp).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from .recorder import Recorder

__all__ = ["JsonlEventStream", "to_perfetto", "write_perfetto", "write_events_jsonl"]

_FLOWS_PID = 1
_PORTS_PID = 2
_PFC_PID = 3
_BUFFERS_PID = 4
_FAULTS_PID = 5
_PACKETS_PID = 6
_REGIME_PID = 7

#: JSONL field names per channel (kept in sync with the Recorder tuples)
_JSONL_FIELDS: Dict[str, Tuple[str, ...]] = {
    "flow_state": ("t", "flow_id", "state"),
    "cwnd": ("t", "flow_id", "cwnd_bytes", "delay_ns"),
    "probe": ("t", "flow_id", "kind"),
    "cc": ("t", "flow_id", "kind"),
    "ecn": ("t", "port", "queue"),
    "pfc": ("t", "switch", "in_idx", "prio", "paused", "backlog_bytes"),
    "queue": ("t", "port", "queue", "queue_bytes", "total_bytes"),
    "link": ("t", "port", "busy"),
    "buffer": ("t", "switch", "shared_used", "headroom_used"),
    "drop": ("t", "switch", "size", "priority", "reason"),
    "fault": ("t", "kind", "target", "phase"),
    "audit": ("t", "invariant", "message"),
    "regime": ("t", "mode", "reason", "n_flows"),
}


def write_events_jsonl(recorder: Recorder, path: str) -> int:
    """Dump every recorded event as one JSON object per line.

    Events are merged across channels in timestamp order; each line carries
    ``ch`` (the channel name) plus the channel's named fields.  Returns the
    number of lines written.
    """
    rows: List[Tuple[int, int, str]] = []
    seq = 0
    for ch, events in recorder.events.items():
        fields = _JSONL_FIELDS[ch]
        for ev in events:
            obj = {"ch": ch}
            obj.update(zip(fields, ev))
            rows.append((ev[0], seq, json.dumps(obj)))
            seq += 1
    rows.sort(key=lambda r: (r[0], r[1]))
    with open(path, "w") as fh:
        for _, _, line in rows:
            fh.write(line)
            fh.write("\n")
    return len(rows)


class _StreamList:
    """Channel-list stand-in that writes each appended event straight to disk.

    Quacks enough like the list the :class:`Recorder` appends to —
    ``append``/``len``/``bool``/``clear`` — that recorder hook methods and
    ``event_counts()`` work unchanged.  Reading events back is impossible by
    design (they were never retained); iteration raises so exporters that
    need in-memory events fail loudly instead of silently exporting nothing.
    """

    __slots__ = ("_ch", "_fields", "_stream", "count")

    def __init__(self, ch: str, fields: Tuple[str, ...], stream: "JsonlEventStream"):
        self._ch = ch
        self._fields = fields
        self._stream = stream
        self.count = 0

    def append(self, ev: tuple) -> None:
        obj = {"ch": self._ch}
        obj.update(zip(self._fields, ev))
        self._stream._write_line(json.dumps(obj))
        self.count += 1

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def clear(self) -> None:
        self.count = 0

    def __iter__(self):
        raise RuntimeError(
            f"channel {self._ch!r} is streamed to disk by JsonlEventStream; "
            "in-memory iteration is unavailable while streaming is active"
        )


class JsonlEventStream:
    """Streams a recorder's events to a JSONL file as they are recorded.

    Where :func:`write_events_jsonl` buffers every event in memory and sorts
    at the end, this exporter swaps each channel's event list for a
    :class:`_StreamList` that serialises events the moment they are appended
    — constant memory regardless of run length.  Lines appear in *recording*
    order (simulation order, up to same-tick interleaving across channels);
    consumers needing strict timestamp order can sort by ``t`` afterwards.

    Use as a context manager, or call :meth:`finalize` explicitly (flushes
    and closes the file, and restores fresh in-memory channel lists)::

        rec = Recorder()
        with JsonlEventStream(rec, "events.jsonl"):
            set_default_recorder(rec)
            ...run...
    """

    def __init__(self, recorder: Recorder, path: str):
        self.recorder = recorder
        self.path = path
        self.lines = 0
        self._fh = open(path, "w")
        self.finalized = False
        for ch in recorder.events:
            recorder.events[ch] = _StreamList(ch, _JSONL_FIELDS[ch], self)

    def _write_line(self, line: str) -> None:
        self._fh.write(line)
        self._fh.write("\n")
        self.lines += 1

    def finalize(self) -> int:
        """Flush + close the file and detach from the recorder.  Idempotent;
        returns the number of lines written."""
        if self.finalized:
            return self.lines
        self.finalized = True
        self._fh.flush()
        self._fh.close()
        # hand the recorder fresh lists so later use doesn't hit a closed file
        self.recorder.events = {ch: [] for ch in self.recorder.events}
        return self.lines

    def __enter__(self) -> "JsonlEventStream":
        return self

    def __exit__(self, *exc) -> None:
        self.finalize()


class _TraceBuilder:
    """Accumulates trace events with stable (ts, emission-order) sorting."""

    def __init__(self):
        self.events: List[tuple] = []  # (t_ns, seq, json_obj)
        self._seq = 0
        self._meta: List[dict] = []
        self._tids: Dict[Tuple[int, object], int] = {}

    def meta(self, pid: int, name: str, tid: int = 0, kind: str = "process_name") -> None:
        self._meta.append(
            {"name": kind, "ph": "M", "pid": pid, "tid": tid, "args": {"name": name}}
        )

    def tid_for(self, pid: int, key: object, label: str) -> int:
        tid = self._tids.get((pid, key))
        if tid is None:
            tid = len([k for k in self._tids if k[0] == pid]) + 1
            self._tids[(pid, key)] = tid
            self.meta(pid, label, tid, kind="thread_name")
        return tid

    def add(self, t_ns: int, obj: dict) -> None:
        obj["ts"] = t_ns / 1000.0  # trace_event timestamps are microseconds
        self.events.append((t_ns, self._seq, obj))
        self._seq += 1

    def span_begin(self, t: int, pid: int, tid: int, name: str, cat: str, args=None) -> None:
        obj = {"name": name, "cat": cat, "ph": "B", "pid": pid, "tid": tid}
        if args:
            obj["args"] = args
        self.add(t, obj)

    def span_end(self, t: int, pid: int, tid: int) -> None:
        self.add(t, {"ph": "E", "pid": pid, "tid": tid})

    def instant(self, t: int, pid: int, tid: int, name: str, cat: str, args=None) -> None:
        obj = {"name": name, "cat": cat, "ph": "i", "s": "t", "pid": pid, "tid": tid}
        if args:
            obj["args"] = args
        self.add(t, obj)

    def counter(self, t: int, pid: int, name: str, args: dict) -> None:
        self.add(t, {"name": name, "cat": "counter", "ph": "C", "pid": pid, "args": args})

    def render(self) -> List[dict]:
        self.events.sort(key=lambda e: (e[0], e[1]))
        return self._meta + [obj for _, _, obj in self.events]


def to_perfetto(recorder: Recorder, tracer=None) -> dict:
    """Convert a recorder's events to a Chrome ``trace_event`` JSON object.

    Pass a finalized :class:`repro.obs.tracer.PacketTracer` to add a
    **packets** process: per traced packet, one complete (``X``) span per
    hop carrying the queueing/pause/serialization/propagation breakdown,
    linked hop-to-hop with flow arrows (``s``/``t`` events keyed by trace
    id) so a sampled packet's journey reads as one connected chain.
    """
    tb = _TraceBuilder()
    tb.meta(_FLOWS_PID, "flows")
    tb.meta(_PORTS_PID, "ports")
    tb.meta(_PFC_PID, "pfc")
    tb.meta(_BUFFERS_PID, "buffers")
    tb.meta(_FAULTS_PID, "faults")
    end_ts = recorder.max_ts

    # --- flow state spans: each transition closes the previous state -------
    open_state: Dict[int, str] = {}
    for t, fid, state in recorder.events["flow_state"]:
        tid = tb.tid_for(_FLOWS_PID, fid, f"flow {fid}")
        if fid in open_state:
            tb.span_end(t, _FLOWS_PID, tid)
            del open_state[fid]
        if state != "done":
            tb.span_begin(t, _FLOWS_PID, tid, state, "flow_state")
            open_state[fid] = state
    for fid in open_state:
        tb.span_end(end_ts, _FLOWS_PID, tb.tid_for(_FLOWS_PID, fid, f"flow {fid}"))

    # --- cwnd / delay counters ---------------------------------------------
    for t, fid, cwnd, delay in recorder.events["cwnd"]:
        tb.counter(t, _FLOWS_PID, f"cwnd flow{fid}", {"bytes": round(cwnd, 1)})
        tb.counter(t, _FLOWS_PID, f"delay flow{fid}", {"ns": delay})

    # --- probe + CC instants ------------------------------------------------
    for t, fid, kind in recorder.events["probe"]:
        tid = tb.tid_for(_FLOWS_PID, fid, f"flow {fid}")
        tb.instant(t, _FLOWS_PID, tid, f"probe_{kind}", "probe")
    for t, fid, kind in recorder.events["cc"]:
        tid = tb.tid_for(_FLOWS_PID, fid, f"flow {fid}")
        tb.instant(t, _FLOWS_PID, tid, kind, "cc")

    # --- per-queue occupancy counters ---------------------------------------
    for t, port, queue, qbytes, total in recorder.events["queue"]:
        tb.counter(t, _PORTS_PID, f"{port} q{queue}", {"bytes": qbytes})
        tb.counter(t, _PORTS_PID, f"{port} total", {"bytes": total})

    # --- link busy spans ----------------------------------------------------
    link_busy: Dict[str, bool] = {}
    for t, port, busy in recorder.events["link"]:
        tid = tb.tid_for(_PORTS_PID, port, port)
        was = link_busy.get(port, False)
        if busy and not was:
            tb.span_begin(t, _PORTS_PID, tid, "tx", "link")
        elif was and not busy:
            tb.span_end(t, _PORTS_PID, tid)
        link_busy[port] = busy
    for port, busy in link_busy.items():
        if busy:
            tb.span_end(end_ts, _PORTS_PID, tb.tid_for(_PORTS_PID, port, port))

    # --- ECN instants -------------------------------------------------------
    for t, port, queue in recorder.events["ecn"]:
        tid = tb.tid_for(_PORTS_PID, port, port)
        tb.instant(t, _PORTS_PID, tid, f"ecn q{queue}", "ecn")

    # --- PFC pause spans ----------------------------------------------------
    pfc_open: Dict[Tuple[str, int, int], bool] = {}
    for t, sw, in_idx, prio, paused, backlog in recorder.events["pfc"]:
        key = (sw, in_idx, prio)
        tid = tb.tid_for(_PFC_PID, key, f"{sw} in{in_idx} p{prio}")
        if paused and not pfc_open.get(key, False):
            tb.span_begin(t, _PFC_PID, tid, "PAUSE", "pfc", {"backlog_bytes": backlog})
            pfc_open[key] = True
        elif not paused and pfc_open.get(key, False):
            tb.span_end(t, _PFC_PID, tid)
            pfc_open[key] = False
    for key, is_open in pfc_open.items():
        if is_open:
            sw, in_idx, prio = key
            tb.span_end(end_ts, _PFC_PID, tb.tid_for(_PFC_PID, key, f"{sw} in{in_idx} p{prio}"))

    # --- buffer occupancy counters + drop instants --------------------------
    for t, sw, shared, headroom in recorder.events["buffer"]:
        tb.counter(t, _BUFFERS_PID, f"{sw} buffer", {"shared": shared, "headroom": headroom})
    for t, sw, size, prio, reason in recorder.events["drop"]:
        tid = tb.tid_for(_BUFFERS_PID, sw, sw)
        tb.instant(
            t,
            _BUFFERS_PID,
            tid,
            "drop",
            "drop",
            {"size": size, "priority": prio, "reason": reason},
        )

    # --- audit violations: instants on the buffers process ------------------
    for t, invariant, message in recorder.events["audit"]:
        tid = tb.tid_for(_BUFFERS_PID, "__audit__", "audit")
        tb.instant(t, _BUFFERS_PID, tid, invariant, "audit", {"message": message})

    # --- fault windows: inject..clear spans, reconverge instants ------------
    fault_open: Dict[Tuple[str, str], bool] = {}
    for t, kind, target, phase in recorder.events["fault"]:
        key = (kind, target)
        tid = tb.tid_for(_FAULTS_PID, key, f"{kind} {target}")
        if phase == "inject" and not fault_open.get(key, False):
            tb.span_begin(t, _FAULTS_PID, tid, kind, "fault", {"target": target})
            fault_open[key] = True
        elif phase == "clear" and fault_open.get(key, False):
            tb.span_end(t, _FAULTS_PID, tid)
            fault_open[key] = False
        else:
            tb.instant(t, _FAULTS_PID, tid, phase, "fault", {"target": target})
    for key, is_open in fault_open.items():
        if is_open:
            kind, target = key
            tb.span_end(end_ts, _FAULTS_PID, tb.tid_for(_FAULTS_PID, key, f"{kind} {target}"))

    # --- hybrid regime epochs: one span per mode stretch --------------------
    regime_events = recorder.events["regime"]
    if regime_events:
        tb.meta(_REGIME_PID, "regimes")
        tid = tb.tid_for(_REGIME_PID, "__regime__", "mode")
        regime_open = False
        for t, mode, reason, n_flows in regime_events:
            if regime_open:
                tb.span_end(t, _REGIME_PID, tid)
            tb.span_begin(
                t, _REGIME_PID, tid, mode, "regime", {"reason": reason, "n_flows": n_flows}
            )
            regime_open = True
        if regime_open:
            tb.span_end(end_ts, _REGIME_PID, tid)

    # --- causal packet traces: per-hop X spans + flow arrows ----------------
    if tracer is not None and getattr(tracer, "traces", None):
        tb.meta(_PACKETS_PID, "packets")
        for tr in tracer.traces:
            tid = tb.tid_for(_PACKETS_PID, tr.flow_id, f"flow {tr.flow_id} packets")
            arrow_name = f"pkt f{tr.flow_id} s{tr.seq}"
            for i, hop in enumerate(tr.hops):
                tb.add(
                    hop.t_enq,
                    {
                        "name": hop.port,
                        "cat": "packet_hop",
                        "ph": "X",
                        "pid": _PACKETS_PID,
                        "tid": tid,
                        "dur": hop.total_ns / 1000.0,
                        "args": {
                            "trace": tr.trace_id,
                            "seq": tr.seq,
                            "queue_ns": hop.queue_ns,
                            "pause_ns": hop.pause_ns,
                            "tx_ns": hop.tx_ns,
                            "prop_ns": hop.prop_ns,
                        },
                    },
                )
                tb.add(
                    hop.t_enq,
                    {
                        "name": arrow_name,
                        "cat": "packet_flow",
                        "ph": "s" if i == 0 else "t",
                        "id": tr.trace_id,
                        "pid": _PACKETS_PID,
                        "tid": tid,
                    },
                )

    return {
        "traceEvents": tb.render(),
        "displayTimeUnit": "ns",
        "otherData": {"generator": "repro.telemetry", "clock_domain": "simulation-ns"},
    }


def write_perfetto(recorder: Recorder, path: str, tracer=None) -> int:
    """Write the Perfetto/Chrome trace JSON; returns the event count."""
    trace = to_perfetto(recorder, tracer=tracer)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return len(trace["traceEvents"])
