"""Metrics registry: counters, gauges and (time-)weighted histograms.

The registry is deliberately simulator-agnostic: every observation carries an
explicit timestamp (integer nanoseconds, the engine's clock domain), so the
same classes serve unit tests, the :class:`~repro.telemetry.Recorder`, and any
future out-of-simulation use.  ``snapshot()`` returns plain dicts of plain
numbers, safe to embed in experiment result dicts and ``json.dumps`` output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-value gauge with a time-weighted integral.

    ``set(t, v)`` accumulates ``previous_value * (t - previous_t)`` so the
    time-weighted mean over the observed interval is exact regardless of how
    irregular the updates are — the natural summary for queue occupancy.
    """

    __slots__ = ("value", "min", "max", "samples", "_last_t", "_first_t", "_integral")

    def __init__(self):
        self.value = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples = 0
        self._last_t: Optional[int] = None
        self._first_t: Optional[int] = None
        self._integral = 0.0

    def set(self, t: int, value: float) -> None:
        if self._last_t is None:
            self._first_t = t
        else:
            self._integral += self.value * (t - self._last_t)
        self._last_t = t
        self.value = value
        self.samples += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def time_weighted_mean(self, until_t: Optional[int] = None) -> float:
        """Mean of the piecewise-constant signal over [first_t, until_t]."""
        if self._last_t is None or self._first_t is None:
            return 0.0
        integral = self._integral
        end = self._last_t if until_t is None else max(until_t, self._last_t)
        integral += self.value * (end - self._last_t)
        span = end - self._first_t
        return integral / span if span > 0 else self.value


class Histogram:
    """Power-of-two bucketed histogram with optional per-sample weights.

    Buckets hold weights, not raw counts, so the same class serves both plain
    sample histograms (``observe(v)``) and time-weighted ones
    (``observe(v, weight=dt)``).  Percentiles interpolate within the winning
    bucket's ``[2^(i-1), 2^i)`` range; exact enough for reporting.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, float] = {}

    def observe(self, value: float, weight: float = 1.0) -> None:
        if weight <= 0:
            return
        self.count += 1
        self.total += value * weight
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        idx = max(0, int(value)).bit_length()  # bucket i covers [2^(i-1), 2^i)
        self._buckets[idx] = self._buckets.get(idx, 0.0) + weight

    @property
    def weight(self) -> float:
        return sum(self._buckets.values())

    def mean(self) -> float:
        w = self.weight
        return self.total / w if w > 0 else 0.0

    def percentile(self, p: float) -> float:
        """Weighted percentile ``p`` in [0, 100], interpolated in-bucket."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if not self._buckets:
            return 0.0
        target = self.weight * p / 100.0
        cum = 0.0
        for idx in sorted(self._buckets):
            w = self._buckets[idx]
            if cum + w >= target:
                lo = 0.0 if idx == 0 else float(1 << (idx - 1))
                hi = 1.0 if idx == 0 else float(1 << idx)
                frac = (target - cum) / w if w > 0 else 0.0
                return lo + frac * (hi - lo)
            cum += w
        return float(self.max if self.max is not None else 0.0)

    def buckets(self) -> List[Tuple[float, float]]:
        """Sorted (upper_bound, weight) pairs."""
        return [
            (1.0 if i == 0 else float(1 << i), self._buckets[i]) for i in sorted(self._buckets)
        ]


class MetricsRegistry:
    """Named metric store; metrics are created on first use."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    def snapshot(self, until_t: Optional[int] = None) -> dict:
        """JSON-safe dump of every metric (embed in experiment results)."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {
                k: {
                    "last": g.value,
                    "min": g.min,
                    "max": g.max,
                    "mean_tw": g.time_weighted_mean(until_t),
                    "samples": g.samples,
                }
                for k, g in sorted(self.gauges.items())
            },
            "histograms": {
                k: {
                    "count": h.count,
                    "mean": h.mean(),
                    "min": h.min,
                    "max": h.max,
                    "p50": h.percentile(50),
                    "p99": h.percentile(99),
                }
                for k, h in sorted(self.histograms.items())
            },
        }
