"""Observability layer: structured event tracing, metrics, trace export.

Quick taste::

    from repro import Simulator
    from repro.telemetry import Recorder, set_default_recorder, write_perfetto

    rec = Recorder()
    set_default_recorder(rec)       # BEFORE building simulators/topologies
    try:
        sim = Simulator(seed=1)     # adopts the recorder
        ...build topology, run...
    finally:
        set_default_recorder(None)
    write_perfetto(rec, "run.json")  # open in ui.perfetto.dev
    print(rec.snapshot()["metrics"]["counters"])

See ``docs/OBSERVABILITY.md`` for the hook points and event taxonomy.
"""

from .export import JsonlEventStream, to_perfetto, write_events_jsonl, write_perfetto
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import (
    CHANNELS,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    current_recorder,
    default_recorder,
    set_default_recorder,
)

__all__ = [
    "CHANNELS",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "current_recorder",
    "default_recorder",
    "set_default_recorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "JsonlEventStream",
    "to_perfetto",
    "write_perfetto",
    "write_events_jsonl",
]
