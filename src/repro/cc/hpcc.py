"""HPCC (Li et al., SIGCOMM 2019), simplified window-mode implementation.

Every data packet carries INT telemetry appended by each switch hop
(queue length, cumulative transmitted bytes, timestamp, link rate).  The
sender computes per-hop utilisation::

    U_j = qlen_j / (B_j * T) + txRate_j / B_j

takes the max across hops and steers it to ``eta`` (0.95): multiplicative
adjustment by ``U/eta`` against a per-RTT reference window ``w_ref``, with up
to ``max_stage`` additive-increase-only stages when under-utilised.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..transport.flow import AckInfo
from .base import CongestionControl

__all__ = ["Hpcc"]


class Hpcc(CongestionControl):
    needs_int = True

    def __init__(
        self,
        eta: float = 0.95,
        max_stage: int = 5,
        ai_bytes: float = None,
        init_cwnd_bytes: float = None,
    ):
        super().__init__(init_cwnd_bytes)
        self.eta = eta
        self.max_stage = max_stage
        self._ai_cfg = ai_bytes
        self.ai_bytes = 0.0
        self.w_ref = 0.0
        self.inc_stage = 0
        self._last_update = -(1 << 62)
        #: per-hop previous (tx_bytes, ts) for rate estimation
        self._prev: Dict[int, Tuple[int, int]] = {}
        self._u = 0.0

    def configure(self) -> None:
        self.ai_bytes = self._ai_cfg if self._ai_cfg is not None else float(self.mtu)
        self.w_ref = self.cwnd

    # ------------------------------------------------------------------
    def _max_utilisation(self, hops) -> float:
        u_max = 0.0
        T = self.base_rtt
        for j, hop in enumerate(hops):
            rate_byte_per_ns = hop.rate_bps / 8e9
            prev = self._prev.get(j)
            tx_rate = 0.0
            if prev is not None:
                d_bytes = hop.tx_bytes - prev[0]
                d_ts = hop.ts - prev[1]
                if d_ts > 0:
                    tx_rate = d_bytes / d_ts  # bytes per ns
            self._prev[j] = (hop.tx_bytes, hop.ts)
            u = hop.qlen / (rate_byte_per_ns * T) + tx_rate / rate_byte_per_ns
            if u > u_max:
                u_max = u
        return u_max

    def on_ack(self, info: AckInfo) -> None:
        if not info.int_hops:
            return
        u = self._max_utilisation(info.int_hops)
        self._u = u
        per_rtt = info.now - self._last_update >= self.sender.last_rtt
        if u >= self.eta or self.inc_stage >= self.max_stage:
            new_w = self.w_ref / (u / self.eta) + self.ai_bytes
            if per_rtt:
                self.w_ref = max(new_w, self.min_cwnd)
                self.inc_stage = 0
                self._last_update = info.now
        else:
            new_w = self.w_ref + self.ai_bytes
            if per_rtt:
                self.w_ref = new_w
                self.inc_stage += 1
                self._last_update = info.now
        self.cwnd = max(new_w, self.min_cwnd)
        self.clamp()

    def on_timeout(self) -> None:
        self.cwnd *= 0.5
        self.w_ref = self.cwnd
        self.clamp()
