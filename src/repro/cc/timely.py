"""TIMELY (Mittal et al., SIGCOMM 2015): delay-*gradient* congestion control.

TIMELY reacts to the slope of the RTT rather than its absolute value:

* RTT below ``t_low`` — additive increase regardless of gradient;
* RTT above ``t_high`` — multiplicative decrease proportional to the
  overshoot, ``w *= 1 - beta * (1 - t_high/rtt)``;
* otherwise — gradient mode: a smoothed, minRTT-normalised gradient ``g``
  drives ``w += N*ai`` when non-positive (with hyperactive increase after
  ``hai_thresh`` consecutive negative-gradient completions) and
  ``w *= 1 - beta*g`` when positive.

Included as one of the delay-based datacenter CC baselines the paper cites
(§7); it has no per-priority target, so PrioPlus cannot wrap it directly —
it serves as a fair-convergence contrast.
"""

from __future__ import annotations

from ..transport.flow import AckInfo
from .base import CongestionControl

__all__ = ["Timely"]


class Timely(CongestionControl):
    def __init__(
        self,
        t_low_ns: int = 10_000,
        t_high_ns: int = 100_000,
        ewma_alpha: float = 0.46,
        beta: float = 0.8,
        ai_bytes: float = None,
        hai_thresh: int = 5,
        init_cwnd_bytes: float = None,
    ):
        super().__init__(init_cwnd_bytes)
        self.t_low_ns = t_low_ns
        self.t_high_ns = t_high_ns
        self.ewma_alpha = ewma_alpha
        self.beta = beta
        self._ai_cfg = ai_bytes
        self.ai_bytes = 0.0
        self.hai_thresh = hai_thresh
        self._prev_rtt = 0
        self._rtt_diff = 0.0
        self._neg_gradient_count = 0
        self._last_update = -(1 << 62)

    def configure(self) -> None:
        self.ai_bytes = self._ai_cfg if self._ai_cfg is not None else float(self.mtu)
        self.t_low_ns = max(self.t_low_ns, self.base_rtt // 2)

    def on_ack(self, info: AckInfo) -> None:
        if info.acked_bytes <= 0:
            return
        rtt = info.delay_ns
        if self._prev_rtt == 0:
            self._prev_rtt = rtt
            return
        new_diff = rtt - self._prev_rtt
        self._prev_rtt = rtt
        self._rtt_diff = (1 - self.ewma_alpha) * self._rtt_diff + self.ewma_alpha * new_diff
        # per-RTT pacing of the control decision
        if info.now - self._last_update < self.base_rtt:
            return
        self._last_update = info.now
        gradient = self._rtt_diff / max(self.base_rtt, 1)

        queuing = rtt - self.base_rtt
        if queuing < self.t_low_ns:
            self.cwnd += self.ai_bytes
            self._neg_gradient_count = 0
        elif queuing > self.t_high_ns:
            self.cwnd *= 1 - self.beta * (1 - self.t_high_ns / max(queuing, 1))
            self._neg_gradient_count = 0
        elif gradient <= 0:
            self._neg_gradient_count += 1
            n = 5 if self._neg_gradient_count >= self.hai_thresh else 1
            self.cwnd += n * self.ai_bytes
        else:
            self._neg_gradient_count = 0
            self.cwnd *= 1 - self.beta * min(gradient, 1.0)
        self.clamp()

    def on_timeout(self) -> None:
        self.cwnd *= 0.5
        self.clamp()
