"""PowerTCP (Addanki et al., NSDI 2022), simplified window-mode version.

PowerTCP reacts to *power* — the product of queue dynamics (voltage) and
throughput (current) — computed from per-hop INT.  Normalising each hop's
power by its equilibrium value gives ``Γ``; the window is steered by

    w_target = cwnd / Γ + ai
    cwnd     = γ * w_target + (1 - γ) * cwnd        (EWMA smoothing)

Power sees queue *growth*, not just queue size, so it reacts a full RTT
faster than HPCC on congestion onset and releases faster on drain.  It is
included as the most recent INT-based baseline the paper cites [10].
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..transport.flow import AckInfo
from .base import CongestionControl

__all__ = ["PowerTcp"]


class PowerTcp(CongestionControl):
    needs_int = True

    def __init__(
        self,
        gamma: float = 0.8,
        ai_bytes: float = None,
        init_cwnd_bytes: float = None,
    ):
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        super().__init__(init_cwnd_bytes)
        self.gamma = gamma
        self._ai_cfg = ai_bytes
        self.ai_bytes = 0.0
        #: per-hop previous (qlen, tx_bytes, ts)
        self._prev: Dict[int, Tuple[int, int, int]] = {}
        self.last_power = 1.0

    def configure(self) -> None:
        self.ai_bytes = self._ai_cfg if self._ai_cfg is not None else float(self.mtu)

    def _normalised_power(self, hops) -> float:
        """max over hops of (dq/dt + txRate)/rate * (q + BDP)/BDP."""
        worst = 0.0
        for j, hop in enumerate(hops):
            rate = hop.rate_bps / 8e9  # bytes per ns
            bdp = rate * self.base_rtt
            prev = self._prev.get(j)
            dq_dt = 0.0
            tx_rate = 0.0
            if prev is not None:
                d_ts = hop.ts - prev[2]
                if d_ts > 0:
                    dq_dt = (hop.qlen - prev[0]) / d_ts
                    tx_rate = (hop.tx_bytes - prev[1]) / d_ts
            self._prev[j] = (hop.qlen, hop.tx_bytes, hop.ts)
            current = max(dq_dt + tx_rate, 0.0) / rate
            voltage = (hop.qlen + bdp) / bdp
            power = current * voltage
            if power > worst:
                worst = power
        return worst

    def on_ack(self, info: AckInfo) -> None:
        if not info.int_hops:
            return
        power = self._normalised_power(info.int_hops)
        self.last_power = power
        if power <= 0:
            # idle path: plain additive growth
            self.cwnd += self.ai_bytes * max(info.acked_bytes, 1) / max(self.cwnd, self.mtu)
            self.clamp()
            return
        w_target = self.cwnd / power + self.ai_bytes
        self.cwnd = self.gamma * w_target + (1 - self.gamma) * self.cwnd
        self.clamp()

    def on_timeout(self) -> None:
        self.cwnd *= 0.5
        self.clamp()
