"""Swift congestion control (Kumar et al., SIGCOMM 2020), simplified.

Swift steers the measured RTT toward ``target = base_rtt + base_target``:

* **AI**: when delay < target, ``cwnd += ai_bytes * acked / cwnd`` per ACK
  (≈ ``ai_bytes`` per RTT);
* **MD**: when delay > target, multiplicative decrease proportional to the
  overshoot, ``cwnd *= max(1 - beta*(delay-target)/delay, 1 - max_mdf)``,
  at most once per RTT;
* **flow/target scaling** (optional): the target grows as the window shrinks,
  ``target += clamp(fs_alpha/sqrt(cwnd_pkts) - fs_beta, 0, fs_range)``, which
  accommodates many-flow fan-in — and is exactly the mechanism that breaks
  virtual priority in Figure 3b of the PrioPlus paper.

The per-RTT fluctuation bound of Appendix D
(``n*W_AI/R + max(n*beta*W_AI/(R*T), max_mdf) * T``) is implemented in
:mod:`repro.analysis.theory` and validated against this code.
"""

from __future__ import annotations

import math

from ..transport.flow import AckInfo
from .base import CongestionControl

__all__ = ["Swift", "SwiftParams"]


class SwiftParams:
    """Tuning knobs for :class:`Swift` (defaults follow the paper's §6)."""

    __slots__ = (
        "base_target_ns",
        "ai_bytes",
        "beta",
        "max_mdf",
        "target_scaling",
        "fs_range_ns",
        "fs_min_cwnd_pkts",
        "fs_max_cwnd_pkts",
    )

    def __init__(
        self,
        base_target_ns: int = 20_000,
        ai_bytes: float = 150.0,
        beta: float = 0.8,
        max_mdf: float = 0.5,
        target_scaling: bool = True,
        fs_range_ns: int = 50_000,
        fs_min_cwnd_pkts: float = 0.1,
        fs_max_cwnd_pkts: float = 100.0,
    ):
        self.base_target_ns = base_target_ns
        self.ai_bytes = ai_bytes
        self.beta = beta
        self.max_mdf = max_mdf
        self.target_scaling = target_scaling
        self.fs_range_ns = fs_range_ns
        self.fs_min_cwnd_pkts = fs_min_cwnd_pkts
        self.fs_max_cwnd_pkts = fs_max_cwnd_pkts


class Swift(CongestionControl):
    """Delay-based CC with per-RTT-gated multiplicative decrease."""

    def __init__(
        self,
        params: SwiftParams = None,
        init_cwnd_bytes: float = None,
        min_cwnd_bytes: float = None,
    ):
        super().__init__(init_cwnd_bytes, min_cwnd_bytes)
        self.params = params if params is not None else SwiftParams()
        self.ai_bytes = self.params.ai_bytes
        self.target_delay_ns = 0  # resolved at attach
        self._last_decrease = -(1 << 62)
        self._fs_alpha = 0.0
        self._fs_beta = 0.0
        self.decreases = 0
        self.increases = 0

    # ------------------------------------------------------------------
    def configure(self) -> None:
        p = self.params
        self.target_delay_ns = self.base_rtt + p.base_target_ns
        sqrt_min = 1.0 / math.sqrt(p.fs_min_cwnd_pkts)
        sqrt_max = 1.0 / math.sqrt(p.fs_max_cwnd_pkts)
        denom = sqrt_min - sqrt_max
        self._fs_alpha = p.fs_range_ns / denom if denom > 0 else 0.0
        self._fs_beta = self._fs_alpha * sqrt_max

    def set_target_scaling(self, enabled: bool) -> None:
        """PrioPlus integration point: fixed per-priority targets need this off."""
        self.params.target_scaling = enabled

    def current_target_ns(self) -> float:
        target = self.target_delay_ns
        if self.params.target_scaling:
            cwnd_pkts = max(self.cwnd / self.mtu, 1e-6)
            fs = self._fs_alpha / math.sqrt(cwnd_pkts) - self._fs_beta
            if fs < 0.0:
                fs = 0.0
            elif fs > self.params.fs_range_ns:
                fs = self.params.fs_range_ns
            target += fs
        return target

    # ------------------------------------------------------------------
    def on_ack(self, info: AckInfo) -> None:
        target = self.current_target_ns()
        delay = info.delay_ns
        if delay < target:
            if info.acked_bytes > 0:
                denom = max(self.cwnd, self.mtu)
                self.cwnd += self.ai_bytes * info.acked_bytes / denom
                self.increases += 1
        else:
            if info.now - self._last_decrease >= self.last_rtt():
                factor = 1.0 - self.params.beta * (delay - target) / delay
                floor = 1.0 - self.params.max_mdf
                if factor < floor:
                    factor = floor
                self.cwnd *= factor
                self._last_decrease = info.now
                self.decreases += 1
        self.clamp()

    def last_rtt(self) -> int:
        return self.sender.last_rtt if self.sender is not None else self.base_rtt

    def on_timeout(self) -> None:
        self.cwnd *= 1.0 - self.params.max_mdf
        self.clamp()
