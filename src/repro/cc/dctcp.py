"""DCTCP (Alizadeh et al., SIGCOMM 2010) and D2TCP (Vamanan et al., 2012).

DCTCP maintains an EWMA ``alpha`` of the fraction of ECN-marked packets per
RTT and cuts the window by ``alpha/2`` once per marked RTT.  D2TCP modulates
the cut by deadline urgency: the penalty becomes ``alpha**d`` where
``d = Tc / D`` (time-to-complete over time-to-deadline), clamped to
``[d_min, d_max]`` — urgent flows (d > 1) back off *less*.

Figure 1 / Figure 3a of the PrioPlus paper demonstrate with exactly this
algorithm that single-bit congestion signals cannot deliver strict priority:
both flows receive ECN and both decelerate.
"""

from __future__ import annotations

from ..transport.flow import AckInfo
from .base import CongestionControl

__all__ = ["Dctcp", "D2tcp"]


class Dctcp(CongestionControl):
    """ECN-fraction window control."""

    def __init__(self, g: float = 1.0 / 16.0, ai_bytes: float = None, init_cwnd_bytes: float = None):
        super().__init__(init_cwnd_bytes)
        self.g = g
        self._ai_bytes_cfg = ai_bytes
        self.ai_bytes = 0.0
        self.alpha = 0.0
        self._rtt_bytes = 0
        self._rtt_marked = 0
        self._rtt_end = -(1 << 62)

    def configure(self) -> None:
        self.ai_bytes = self._ai_bytes_cfg if self._ai_bytes_cfg is not None else float(self.mtu)

    # ------------------------------------------------------------------
    def on_ack(self, info: AckInfo) -> None:
        self._rtt_bytes += info.acked_bytes
        if info.ecn:
            self._rtt_marked += info.acked_bytes
        if info.now >= self._rtt_end:
            self._end_of_rtt(info.now)
        if not info.ecn and info.acked_bytes > 0:
            denom = max(self.cwnd, self.mtu)
            self.cwnd += self.ai_bytes * info.acked_bytes / denom
            self.clamp()

    def _end_of_rtt(self, now: int) -> None:
        if self._rtt_bytes > 0:
            frac = self._rtt_marked / self._rtt_bytes
            self.alpha = (1.0 - self.g) * self.alpha + self.g * frac
            if self._rtt_marked > 0:
                self.cwnd *= 1.0 - self.cut_fraction()
                self.clamp()
        self._rtt_bytes = 0
        self._rtt_marked = 0
        self._rtt_end = now + self.rtt_estimate()

    def cut_fraction(self) -> float:
        return self.alpha / 2.0

    def rtt_estimate(self) -> int:
        return self.sender.last_rtt if self.sender is not None else self.base_rtt


class D2tcp(Dctcp):
    """Deadline-aware DCTCP: penalty ``alpha ** d`` with d = Tc/D."""

    def __init__(
        self,
        deadline_ns: int = None,
        d_min: float = 0.5,
        d_max: float = 2.0,
        g: float = 1.0 / 16.0,
        ai_bytes: float = None,
        init_cwnd_bytes: float = None,
    ):
        super().__init__(g=g, ai_bytes=ai_bytes, init_cwnd_bytes=init_cwnd_bytes)
        self._deadline_cfg = deadline_ns
        self.d_min = d_min
        self.d_max = d_max

    def urgency(self) -> float:
        """d = Tc / D: how much faster than "on schedule" we must go."""
        sender = self.sender
        deadline = self._deadline_cfg if self._deadline_cfg is not None else sender.flow.deadline_ns
        if deadline is None:
            return 1.0
        now = sender.sim.now
        remaining_time = deadline - now
        if remaining_time <= 0:
            return self.d_max
        rate = max(self.cwnd, self.min_cwnd) / max(self.rtt_estimate(), 1)
        tc = sender.remaining_bytes / max(rate, 1e-12)
        d = tc / remaining_time
        if d < self.d_min:
            return self.d_min
        if d > self.d_max:
            return self.d_max
        return d

    def cut_fraction(self) -> float:
        if self.alpha <= 0.0:
            return 0.0
        p = self.alpha ** self.urgency()
        return p / 2.0
