"""DCQCN (Zhu et al., SIGCOMM 2015), windowed approximation.

DCQCN is the de-facto RDMA/RoCEv2 congestion control: switches ECN-mark,
receivers aggregate marks into CNPs, and the sender keeps two rates —
current (``rc``) and target (``rt``):

* on a marked interval: ``rt = rc``, ``rc *= (1 - alpha/2)``, alpha rises;
* otherwise alpha decays and ``rc`` recovers toward ``rt`` in *fast
  recovery* steps, then additive and finally hyper increase raise ``rt``.

The original is rate-based; here rates map to windows via the base RTT
(the standard windowed approximation used in CC studies).  Included as the
canonical ECN-based RDMA baseline the paper cites [102].
"""

from __future__ import annotations

from ..transport.flow import AckInfo
from .base import CongestionControl

__all__ = ["Dcqcn"]


class Dcqcn(CongestionControl):
    def __init__(
        self,
        g: float = 1.0 / 16.0,
        ai_bytes: float = None,
        hyper_ai_factor: float = 5.0,
        recovery_stages: int = 5,
        update_interval_ns: int = 50_000,
        init_cwnd_bytes: float = None,
    ):
        super().__init__(init_cwnd_bytes)
        self.g = g
        self._ai_cfg = ai_bytes
        self.ai_bytes = 0.0
        self.hyper_ai_factor = hyper_ai_factor
        self.recovery_stages = recovery_stages
        self.update_interval_ns = update_interval_ns
        self.alpha = 1.0
        self.w_target = 0.0
        self._stage = 0
        self._marked_in_interval = False
        self._interval_end = -(1 << 62)

    def configure(self) -> None:
        self.ai_bytes = self._ai_cfg if self._ai_cfg is not None else float(self.mtu) / 2
        self.w_target = self.cwnd

    def on_ack(self, info: AckInfo) -> None:
        if info.ecn:
            self._marked_in_interval = True
        if info.now < self._interval_end:
            return
        self._interval_end = info.now + self.update_interval_ns
        if self._marked_in_interval:
            self._cut()
        else:
            self._recover()
        self._marked_in_interval = False
        self.clamp()

    def _cut(self) -> None:
        self.alpha = (1 - self.g) * self.alpha + self.g
        self.w_target = self.cwnd
        self.cwnd *= max(1 - self.alpha / 2, 0.5)
        self._stage = 0

    def _recover(self) -> None:
        self.alpha *= 1 - self.g
        self._stage += 1
        if self._stage <= self.recovery_stages:
            # fast recovery: halve the gap toward the target window
            self.cwnd = (self.cwnd + self.w_target) / 2
        elif self._stage <= 2 * self.recovery_stages:
            self.w_target += self.ai_bytes
            self.cwnd = (self.cwnd + self.w_target) / 2
        else:
            self.w_target += self.hyper_ai_factor * self.ai_bytes
            self.cwnd = (self.cwnd + self.w_target) / 2

    def on_timeout(self) -> None:
        self.w_target = self.cwnd
        self.cwnd *= 0.5
        self._stage = 0
        self.clamp()
