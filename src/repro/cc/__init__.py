"""Congestion-control algorithms.

Delay-based (PrioPlus-wrappable): Swift, LEDBAT.
Delay-gradient: TIMELY.  ECN-based: DCTCP, D2TCP, DCQCN.  INT-based: HPCC.
Uncontrolled: NoCC.
"""

from .base import CongestionControl
from .dcqcn import Dcqcn
from .dctcp import D2tcp, Dctcp
from .hpcc import Hpcc
from .ledbat import Ledbat
from .nocc import NoCC
from .powertcp import PowerTcp
from .swift import Swift, SwiftParams
from .timely import Timely

__all__ = [
    "CongestionControl",
    "Swift",
    "SwiftParams",
    "Dctcp",
    "D2tcp",
    "Dcqcn",
    "Timely",
    "Ledbat",
    "Hpcc",
    "PowerTcp",
    "NoCC",
]
