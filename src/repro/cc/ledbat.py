"""LEDBAT (Rossi et al., 2010): linear delay-proportional controller.

LEDBAT drives the queuing delay toward ``target`` with a proportional
controller::

    off = (target - queuing_delay) / target
    cwnd += gain * off * acked_bytes / cwnd * mtu

It was designed as a background (scavenger) transport — one extra priority
below best-effort — and the paper integrates PrioPlus with it (§4.4, §6.2)
to show the enhancement is not Swift-specific.
"""

from __future__ import annotations

from ..transport.flow import AckInfo
from .base import CongestionControl

__all__ = ["Ledbat"]


class Ledbat(CongestionControl):
    def __init__(
        self,
        target_queuing_ns: int = 20_000,
        gain: float = 1.0,
        max_decrease_per_rtt: float = 0.5,
        init_cwnd_bytes: float = None,
    ):
        super().__init__(init_cwnd_bytes)
        self.target_queuing_ns = target_queuing_ns
        self.gain = gain
        self.max_decrease_per_rtt = max_decrease_per_rtt
        self.target_delay_ns = 0
        self.ai_bytes = 0.0  # resolved at attach; exposed for PrioPlus
        self._min_cwnd_floor = 0.0

    def configure(self) -> None:
        self.target_delay_ns = self.base_rtt + self.target_queuing_ns
        self.ai_bytes = float(self.mtu)

    def set_target_scaling(self, enabled: bool) -> None:
        """LEDBAT has no target scaling; present for interface parity."""

    def on_ack(self, info: AckInfo) -> None:
        if info.acked_bytes <= 0:
            return
        queuing = info.delay_ns - self.base_rtt
        off = (self.target_queuing_ns - queuing) / self.target_queuing_ns
        denom = max(self.cwnd, self.mtu)
        if off >= 0:
            # additive regime, scaled by PrioPlus-adjustable ai_bytes
            self.cwnd += self.gain * off * (self.ai_bytes * info.acked_bytes / denom)
        else:
            delta = self.gain * off * (self.mtu * info.acked_bytes / denom)
            floor = -self.max_decrease_per_rtt * self.cwnd * (info.acked_bytes / denom)
            if delta < floor:
                delta = floor
            self.cwnd += delta
        self.clamp()

    def on_timeout(self) -> None:
        self.cwnd *= 0.5
        self.clamp()
