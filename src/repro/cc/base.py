"""Congestion-control interface.

A CC object owns a congestion window in **payload bytes**.  The sender calls
:meth:`on_ack` for every data ACK, :meth:`on_probe_ack` for probe echoes and
:meth:`on_timeout` on RTO.  ``attach`` binds the CC to its sender and is the
point where rate/RTT-dependent defaults get resolved.

Delay-based CCs that PrioPlus can wrap must additionally expose:

* ``target_delay_ns`` — the absolute RTT the CC steers toward, settable;
* ``ai_bytes`` — the per-RTT additive-increase step, settable;
* a way to disable any target-scaling heuristic (PrioPlus requires a fixed
  per-priority target, paper §4.1).
"""

from __future__ import annotations

from typing import Optional

from ..transport.flow import AckInfo

__all__ = ["CongestionControl"]


class CongestionControl:
    """Base class: fixed window, no reaction (useful on its own as NoCC)."""

    #: set True when the CC consumes in-band telemetry (HPCC)
    needs_int = False

    def __init__(
        self,
        init_cwnd_bytes: Optional[float] = None,
        min_cwnd_bytes: Optional[float] = None,
    ):
        self._init_cwnd = init_cwnd_bytes
        self._min_cwnd_cfg = min_cwnd_bytes
        self.cwnd: float = init_cwnd_bytes if init_cwnd_bytes is not None else 0.0
        self.sender = None
        self.mtu = 0
        self.base_rtt = 0
        self.line_rate_bps = 0.0
        self.bdp_bytes = 0.0
        self.min_cwnd = 0.0
        self.max_cwnd = 0.0

    # ------------------------------------------------------------------
    def attach(self, sender) -> None:
        self.sender = sender
        self.mtu = sender.mtu
        self.base_rtt = sender.base_rtt
        self.line_rate_bps = sender.line_rate_bps
        self.bdp_bytes = sender.bdp_bytes
        self.min_cwnd = self.default_min_cwnd()
        self.max_cwnd = self.default_max_cwnd()
        if self._init_cwnd is None:
            self.cwnd = self.default_init_cwnd()
        self.clamp()
        self.configure()

    def configure(self) -> None:
        """Hook for subclasses to resolve rate/RTT-dependent parameters."""

    def default_init_cwnd(self) -> float:
        """RDMA-style line-rate start: one BDP (paper §3.3)."""
        return max(self.bdp_bytes, self.mtu)

    def default_min_cwnd(self) -> float:
        if self._min_cwnd_cfg is not None:
            return self._min_cwnd_cfg
        return 0.001 * self.mtu

    def default_max_cwnd(self) -> float:
        return max(8 * self.bdp_bytes, 4 * self.mtu)

    def clamp(self) -> None:
        if self.cwnd < self.min_cwnd:
            self.cwnd = self.min_cwnd
        elif self.cwnd > self.max_cwnd:
            self.cwnd = self.max_cwnd

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the flow's start time arrives."""

    def on_ack(self, info: AckInfo) -> None:
        """React to one data ACK."""

    def on_probe_ack(self, info: AckInfo) -> None:
        """React to a probe echo (PrioPlus); default: treat as plain delay."""

    def on_timeout(self) -> None:
        """RTO fired: default multiplicative backoff."""
        self.cwnd *= 0.5
        self.clamp()

    # ------------------------------------------------------------------
    def external_override(
        self, cwnd_bytes: Optional[float] = None, rate_bps: Optional[float] = None
    ) -> float:
        """``cc.external`` hook: adopt an externally commanded operating point.

        This is the action surface of :mod:`repro.tune`'s gym-style
        environment (and any out-of-band controller): a learned or scripted
        policy overrides the flow's window directly, or expresses the
        override as a rate which is converted through the base-RTT BDP
        (``cwnd = rate * BaseRtt``).  When both are given the explicit
        window wins.  The result is clamped to the CC's own
        ``[min_cwnd, max_cwnd]`` — an external policy cannot command a
        window the CC itself could never reach.  Returns the adopted window.
        """
        if cwnd_bytes is None and rate_bps is not None:
            cwnd_bytes = rate_bps * self.base_rtt / 8e9
        if cwnd_bytes is not None:
            self.cwnd = float(cwnd_bytes)
            self.clamp()
        return self.cwnd

    # ------------------------------------------------------------------
    def fluid_sync(self, cwnd_bytes: float) -> None:
        """Adopt the window a fluid epoch converged to (:mod:`repro.fluid`).

        Called at the fluid→packet handoff with the integrated window so the
        packet-level CC resumes from where the rate balance left the flow
        rather than from its pre-epoch state.
        """
        self.cwnd = cwnd_bytes
        self.clamp()
