"""NoCC: blind line-rate injection ("Physical w/o CC" in the paper).

The window is pinned far above any BDP so the host NIC's serialiser is the
only rate limiter.  Used as the uncontrolled baseline in Figures 11, 14
and 18 — strict physical priority with no congestion control, which hammers
the switch buffer and triggers PFC storms for lower priorities.
"""

from __future__ import annotations

from .base import CongestionControl

__all__ = ["NoCC"]


class NoCC(CongestionControl):
    def __init__(self, bdp_multiple: float = 100.0):
        super().__init__()
        self.bdp_multiple = bdp_multiple

    def default_init_cwnd(self) -> float:
        return self.bdp_multiple * max(self.bdp_bytes, self.mtu)

    def default_max_cwnd(self) -> float:
        return self.default_init_cwnd()

    def on_timeout(self) -> None:
        """Stay at line rate — that is the point of this baseline."""
