"""Packet model.

A single :class:`Packet` class covers data, acknowledgement and probe
traffic; the :attr:`Packet.kind` discriminator keeps the hot path (switch
forwarding) monomorphic.  PFC PAUSE/RESUME frames are *not* packets — they are
modelled as control signals delivered directly between adjacent ports (see
:mod:`repro.sim.pfc`), mirroring the fact that real PFC frames are consumed by
the MAC layer and never enter the switching pipeline.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Tuple

from ..audit.auditor import NULL_AUDITOR

__all__ = [
    "Packet",
    "PacketPool",
    "PACKET_POOL",
    "IntHop",
    "DATA",
    "ACK",
    "PROBE",
    "PROBE_ACK",
    "HEADER_BYTES",
    "MIN_PACKET_BYTES",
]

DATA = 0
ACK = 1
PROBE = 2
PROBE_ACK = 3

#: Ethernet + IP + transport header overhead accounted per packet on the wire.
HEADER_BYTES = 40
#: Minimum frame size (probe packets, bare ACKs).
MIN_PACKET_BYTES = 64


class IntHop:
    """In-band network telemetry record stamped by one switch hop (HPCC)."""

    __slots__ = ("qlen", "tx_bytes", "ts", "rate_bps")

    def __init__(self, qlen: int, tx_bytes: int, ts: int, rate_bps: float):
        self.qlen = qlen
        self.tx_bytes = tx_bytes
        self.ts = ts
        self.rate_bps = rate_bps


class Packet:
    """A packet travelling through the simulated network.

    ``size`` is the full on-wire size in bytes (payload + headers).
    ``priority`` is the *physical* queue index used by switches; the virtual
    priority lives in the flow, not the packet, because PrioPlus shares one
    physical queue among all virtual priorities.
    """

    __slots__ = (
        "kind",
        "size",
        "payload",
        "priority",
        "local_prio",
        "src",
        "dst",
        "flow_id",
        "seq",
        "send_ts",
        "echo_ts",
        "ecn",
        "ecn_echo",
        "int_hops",
        "ack_seq",
        "sack",
        "hash_salt",
        "ctx",
        "trace",
        "_in_pool",
    )

    def __init__(
        self,
        kind: int,
        size: int,
        src: int,
        dst: int,
        flow_id: int,
        seq: int = 0,
        priority: int = 0,
        payload: int = 0,
        send_ts: int = 0,
    ):
        self.kind = kind
        self.size = size
        self.payload = payload
        self.priority = priority
        #: queue index at the *sending host's* NIC only (-1: use `priority`).
        #: Lets a host schedule its own flows by virtual priority even though
        #: they share one physical switch queue.
        self.local_prio = -1
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.seq = seq
        self.send_ts = send_ts
        self.echo_ts = 0
        self.ecn = False
        self.ecn_echo = False
        self.int_hops: Optional[List[IntHop]] = None
        self.ack_seq = 0
        self.sack: Optional[Tuple[int, int]] = None
        self.hash_salt = 0
        #: per-hop owner context folded into the packet (what ports used to
        #: carry as a separate ``(pkt, ctx)`` queue-entry tuple)
        self.ctx: Any = None
        #: causal-tracing tag (see repro.obs.tracer); None unless this packet
        #: was deterministically sampled by an enabled PacketTracer
        self.trace: Any = None
        self._in_pool = False

    @property
    def is_control(self) -> bool:
        """ACKs and probe echoes are control traffic (may be prioritised)."""
        return self.kind in (ACK, PROBE_ACK)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = {DATA: "DATA", ACK: "ACK", PROBE: "PROBE", PROBE_ACK: "PROBE_ACK"}
        return (
            f"<{names.get(self.kind, self.kind)} flow={self.flow_id} seq={self.seq} "
            f"{self.size}B prio={self.priority} {self.src}->{self.dst}>"
        )


class PacketPool:
    """Free-list recycler for :class:`Packet` objects.

    Transport endpoints construct every packet through :meth:`acquire` and the
    terminal owner of a packet (the receiving host, the switch drop path, a
    link cut) hands it back through :meth:`release`.  ``acquire`` resets
    *every* slot, so a recycled packet is indistinguishable from a fresh one;
    reference-carrying slots (``int_hops``, ``sack``, ``ctx``) are cleared at
    release time too so pooled packets never pin other objects.

    A missed ``release`` is harmless (the garbage collector reclaims the
    packet and the pool simply allocates a fresh one later); a *double*
    release would corrupt the free list, so it raises via the ``_in_pool``
    guard flag.

    Debug mode: set ``enabled = False`` (or export ``REPRO_PACKET_POOL=0``
    before import) to make ``acquire`` always construct and ``release`` a
    no-op — useful to rule the pool out when chasing aliasing bugs.
    """

    __slots__ = ("enabled", "_free", "allocated", "reused", "released", "audit")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._free: List[Packet] = []
        self.allocated = 0  # fresh constructions through acquire()
        self.reused = 0  # acquisitions served from the free list
        self.released = 0
        #: set by repro.audit.set_default_auditor; feeds the conservation ledger
        self.audit = NULL_AUDITOR

    def acquire(
        self,
        kind: int,
        size: int,
        src: int,
        dst: int,
        flow_id: int,
        seq: int = 0,
        priority: int = 0,
        payload: int = 0,
        send_ts: int = 0,
    ) -> Packet:
        """A fully-reset packet: recycled when possible, fresh otherwise."""
        aud = self.audit
        if aud.enabled:
            aud.packet_acquired()
        free = self._free
        if free:
            pkt = free.pop()
            self.reused += 1
            pkt._in_pool = False
            pkt.kind = kind
            pkt.size = size
            pkt.payload = payload
            pkt.priority = priority
            pkt.local_prio = -1
            pkt.src = src
            pkt.dst = dst
            pkt.flow_id = flow_id
            pkt.seq = seq
            pkt.send_ts = send_ts
            pkt.echo_ts = 0
            pkt.ecn = False
            pkt.ecn_echo = False
            pkt.int_hops = None
            pkt.ack_seq = 0
            pkt.sack = None
            pkt.hash_salt = 0
            pkt.ctx = None
            pkt.trace = None
            return pkt
        self.allocated += 1
        return Packet(kind, size, src, dst, flow_id, seq, priority, payload, send_ts)

    def release(self, pkt: Packet) -> None:
        """Recycle a packet whose last owner is done with it."""
        # ledger hook sits above the enabled early-out so packet conservation
        # is tracked even in REPRO_PACKET_POOL=0 debug mode
        aud = self.audit
        if aud.enabled:
            aud.packet_released()
        if not self.enabled:
            return
        if pkt._in_pool:
            raise AssertionError(f"double release of pooled packet {pkt!r}")
        pkt._in_pool = True
        pkt.int_hops = None
        pkt.sack = None
        pkt.ctx = None
        pkt.trace = None
        self.released += 1
        self._free.append(pkt)

    @property
    def live(self) -> int:
        """Packets acquired and not yet released (leak metric for tests)."""
        return self.allocated + self.reused - self.released

    def clear(self) -> None:
        """Drop the free list and zero the counters (test isolation)."""
        self._free.clear()
        self.allocated = self.reused = self.released = 0


#: process-wide pool used by the transport endpoints; per-process state, so
#: parallel runner workers each get their own
PACKET_POOL = PacketPool(enabled=os.environ.get("REPRO_PACKET_POOL", "1") != "0")
