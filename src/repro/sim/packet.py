"""Packet model.

A single :class:`Packet` class covers data, acknowledgement and probe
traffic; the :attr:`Packet.kind` discriminator keeps the hot path (switch
forwarding) monomorphic.  PFC PAUSE/RESUME frames are *not* packets — they are
modelled as control signals delivered directly between adjacent ports (see
:mod:`repro.sim.pfc`), mirroring the fact that real PFC frames are consumed by
the MAC layer and never enter the switching pipeline.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = [
    "Packet",
    "IntHop",
    "DATA",
    "ACK",
    "PROBE",
    "PROBE_ACK",
    "HEADER_BYTES",
    "MIN_PACKET_BYTES",
]

DATA = 0
ACK = 1
PROBE = 2
PROBE_ACK = 3

#: Ethernet + IP + transport header overhead accounted per packet on the wire.
HEADER_BYTES = 40
#: Minimum frame size (probe packets, bare ACKs).
MIN_PACKET_BYTES = 64


class IntHop:
    """In-band network telemetry record stamped by one switch hop (HPCC)."""

    __slots__ = ("qlen", "tx_bytes", "ts", "rate_bps")

    def __init__(self, qlen: int, tx_bytes: int, ts: int, rate_bps: float):
        self.qlen = qlen
        self.tx_bytes = tx_bytes
        self.ts = ts
        self.rate_bps = rate_bps


class Packet:
    """A packet travelling through the simulated network.

    ``size`` is the full on-wire size in bytes (payload + headers).
    ``priority`` is the *physical* queue index used by switches; the virtual
    priority lives in the flow, not the packet, because PrioPlus shares one
    physical queue among all virtual priorities.
    """

    __slots__ = (
        "kind",
        "size",
        "payload",
        "priority",
        "local_prio",
        "src",
        "dst",
        "flow_id",
        "seq",
        "send_ts",
        "echo_ts",
        "ecn",
        "ecn_echo",
        "int_hops",
        "ack_seq",
        "sack",
        "hash_salt",
    )

    def __init__(
        self,
        kind: int,
        size: int,
        src: int,
        dst: int,
        flow_id: int,
        seq: int = 0,
        priority: int = 0,
        payload: int = 0,
        send_ts: int = 0,
    ):
        self.kind = kind
        self.size = size
        self.payload = payload
        self.priority = priority
        #: queue index at the *sending host's* NIC only (-1: use `priority`).
        #: Lets a host schedule its own flows by virtual priority even though
        #: they share one physical switch queue.
        self.local_prio = -1
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.seq = seq
        self.send_ts = send_ts
        self.echo_ts = 0
        self.ecn = False
        self.ecn_echo = False
        self.int_hops: Optional[List[IntHop]] = None
        self.ack_seq = 0
        self.sack: Optional[Tuple[int, int]] = None
        self.hash_salt = 0

    @property
    def is_control(self) -> bool:
        """ACKs and probe echoes are control traffic (may be prioritised)."""
        return self.kind in (ACK, PROBE_ACK)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = {DATA: "DATA", ACK: "ACK", PROBE: "PROBE", PROBE_ACK: "PROBE_ACK"}
        return (
            f"<{names.get(self.kind, self.kind)} flow={self.flow_id} seq={self.seq} "
            f"{self.size}B prio={self.priority} {self.src}->{self.dst}>"
        )
