"""Output port with strict-priority queues.

One :class:`Port` models the egress side of a link: per-priority FIFO queues,
a strict-priority scheduler (higher queue index = higher priority, matching
the paper's convention), PFC pause flags per priority, ECN marking, and INT
stamping for HPCC.

The port dequeues a packet when it *starts* transmitting it; buffer
accounting is released at that point (start-of-transmission freeing, the
convention used by ns-3's qbb model).

Hot-path design (see docs/PERFORMANCE.md): starting a transmission at ``t0``
schedules the peer's ``receive`` directly at ``t2 = t0 + tx + prop`` as one
fused, allocation-free event (:meth:`Simulator.call_at`) instead of chaining
``_tx_done`` at ``t1 = t0 + tx`` into a second ``receive`` event.  The ``t1``
end-of-transmission wake-up remains (it frees the port and re-arms the
scheduler) but is also allocation-free, so a packet hop costs two bare heap
tuples and zero ``EventHandle`` objects.

PFC/cut semantics are unchanged: a pause or ``cut()`` landing between
start-of-tx and delivery still only gates the *next* dequeue (the in-flight
packet keeps its delivery, exactly as before), because pause/down checks
always run at dequeue time.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, List, Optional

from ..obs.sampler import NULL_SAMPLER
from ..obs.tracer import NULL_TRACER
from ..telemetry.recorder import NULL_RECORDER
from .engine import Simulator
from .packet import PACKET_POOL, IntHop, Packet

__all__ = ["Port"]


class Port:
    """Egress port: priority queues + strict-priority scheduler + one link."""

    #: class-level switch used by tests/benchmarks to compare the fused
    #: delivery schedule against the classic two-step (deliver from t1)
    FUSED = True

    __slots__ = (
        "sim",
        "name",
        "rate_bps",
        "_ns_per_byte",
        "_tx_cache",
        "n_queues",
        "queues",
        "qbytes",
        "_active",
        "total_bytes",
        "paused",
        "busy",
        "prop_delay_ns",
        "peer",
        "peer_in_idx",
        "ecn_k",
        "tx_bytes_total",
        "tx_packets_total",
        "on_dequeue",
        "stamp_int",
        "local_queues",
        "ecn_marker",
        "down",
        "dropped_on_cut",
        "impairment",
        "telemetry",
        "audit",
        "tracer",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        n_queues: int = 8,
        ecn_k: Optional[int] = None,
        name: str = "port",
        stamp_int: bool = False,
        local_queues: bool = False,
    ):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self._ns_per_byte = 8e9 / rate_bps
        self._tx_cache = {}
        self.n_queues = n_queues
        self.queues: List[deque] = [deque() for _ in range(n_queues)]
        self.qbytes = [0] * n_queues
        #: bitmask of non-empty queues: the scheduler finds the highest
        #: candidate with one bit_length() instead of scanning 18 deques
        self._active = 0
        self.total_bytes = 0
        self.paused = [False] * n_queues
        self.busy = False
        self.prop_delay_ns = 0
        self.peer = None  # receiving node
        self.peer_in_idx = 0  # index of this link at the peer's ingress
        #: per-queue ECN marking threshold in bytes (None disables marking)
        self.ecn_k = ecn_k
        self.tx_bytes_total = 0
        self.tx_packets_total = 0
        #: callback(pkt, ctx) invoked when a packet leaves the queues
        self.on_dequeue: Optional[Callable[[Packet, Any], None]] = None
        self.stamp_int = stamp_int
        #: host-NIC mode: queue index comes from pkt.local_prio (virtual
        #: priority) while PFC pause still applies per *physical* class, by
        #: inspecting the head packet's `priority` field.
        self.local_queues = local_queues
        #: optional custom ECN hook: callable(pkt, queue_bytes) -> bool,
        #: overriding the uniform `ecn_k` threshold (Appendix-B extension)
        self.ecn_marker = None
        #: administratively/physically down: nothing transmits
        self.down = False
        self.dropped_on_cut = 0
        #: optional link impairment (see repro.faults.actors.LinkImpairment):
        #: an object with ``transmit(t2) -> int`` returning the (possibly
        #: delayed) delivery time, or a negative value to corrupt the packet
        #: on the wire.  ``None`` (the default) keeps the hot path to a
        #: single attribute check.
        self.impairment = None
        #: telemetry hook (see repro.telemetry); disabled path is one check
        self.telemetry = getattr(sim, "telemetry", NULL_RECORDER)
        #: invariant auditor snapshot (see repro.audit)
        self.audit = sim.audit
        if self.audit.enabled:
            self.audit.register_port(self)
        #: causal packet tracer snapshot (see repro.obs.tracer); the untraced
        #: path is one flag check per hook site
        self.tracer = getattr(sim, "tracer", NULL_TRACER)
        smp = getattr(sim, "sampler", NULL_SAMPLER)
        if smp.enabled:
            smp.register_port(self)

    # ------------------------------------------------------------------
    @property
    def ns_per_byte(self) -> float:
        return self._ns_per_byte

    @ns_per_byte.setter
    def ns_per_byte(self, value: float) -> None:
        # rate changes invalidate the memoised serialisation times
        self._ns_per_byte = value
        self._tx_cache.clear()

    def connect(self, peer, prop_delay_ns: int, peer_in_idx: int = 0) -> None:
        """Attach the downstream node reached through this port."""
        self.peer = peer
        self.prop_delay_ns = int(prop_delay_ns)
        self.peer_in_idx = peer_in_idx

    def tx_time_ns(self, size_bytes: int) -> int:
        """Serialisation time, memoised per size (MTU/ACK sizes dominate)."""
        cache = self._tx_cache
        t = cache.get(size_bytes)
        if t is None:
            t = cache[size_bytes] = max(1, int(size_bytes * self._ns_per_byte))
        return t

    # ------------------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        """No packet queued or on the wire from this port.

        The fluid fast path (:mod:`repro.fluid.hybrid`) drains the fabric
        until every port is idle before a fluid epoch, which is what makes
        the fluid→packet handoff exact: an empty network has no in-flight
        packet state to re-materialise.
        """
        return not self.total_bytes and not self.busy

    def export_state(self) -> dict:
        """Bulk occupancy/throughput snapshot (introspection + handoff checks).

        Import is deliberately not offered: the hybrid core only hands off
        on an *empty* port (see :attr:`is_idle`), so there is never packet
        state to restore; whole-world checkpointing goes through
        :mod:`repro.sim.snapshot` instead.
        """
        return {
            "name": self.name,
            "total_bytes": self.total_bytes,
            "qbytes": list(self.qbytes),
            "queued_packets": sum(len(q) for q in self.queues),
            "busy": self.busy,
            "paused": list(self.paused),
            "down": self.down,
            "tx_bytes_total": self.tx_bytes_total,
            "tx_packets_total": self.tx_packets_total,
        }

    def queue_index(self, pkt: Packet) -> int:
        if self.local_queues and pkt.local_prio >= 0:
            return min(pkt.local_prio, self.n_queues - 1)
        return pkt.priority

    def enqueue(self, pkt: Packet, ctx: Any = None) -> None:
        """Queue a packet for transmission (admission already decided).

        ``ctx`` is opaque owner context handed back through ``on_dequeue``;
        it rides in ``pkt.ctx`` so a queue entry is the bare packet.
        """
        if self.local_queues and pkt.local_prio >= 0:
            q = pkt.local_prio
            if q >= self.n_queues:
                q = self.n_queues - 1
        else:
            q = pkt.priority
        size = pkt.size
        qbytes = self.qbytes
        marked = False
        if self.ecn_marker is not None:
            if self.ecn_marker(pkt, qbytes[q]):
                pkt.ecn = True
                marked = True
        elif self.ecn_k is not None and qbytes[q] + size > self.ecn_k:
            pkt.ecn = True
            marked = True
        pkt.ctx = ctx
        self.queues[q].append(pkt)
        self._active |= 1 << q
        qbytes[q] += size
        self.total_bytes += size
        tel = self.telemetry
        if tel.enabled:
            now = self.sim.now
            if marked:
                tel.ecn_mark(now, self.name, q)
            tel.queue_depth(now, self.name, q, qbytes[q], self.total_bytes)
        trc = self.tracer
        if trc.enabled and pkt.trace is not None:
            # before the kick: _kick may start transmitting this very packet
            trc.enqueued(pkt.trace, self.name, q, self.sim.now)
        if not self.busy:
            self._kick()

    def set_paused(self, prio: int, paused: bool) -> None:
        """PFC pause/resume for one *physical* priority class."""
        if prio < 0 or prio >= len(self.paused):
            raise ValueError(
                f"{self.name}: PFC priority {prio} out of range [0, {len(self.paused)})"
            )
        self.paused[prio] = paused
        trc = self.tracer
        if trc.enabled:
            trc.pause_change(self.name, prio, paused, self.sim.now)
        if not paused and not self.busy:
            self._kick()

    def kick(self) -> None:
        """Re-evaluate the scheduler (e.g. after a resume or new packet)."""
        if not self.busy:
            self._kick()

    # ------------------------------------------------------------------
    def _select_queue(self) -> int:
        """Highest non-empty queue whose head's physical class isn't paused."""
        queues = self.queues
        paused = self.paused
        n_paused = len(paused)
        for q in range(self.n_queues - 1, -1, -1):
            queue = queues[q]
            if not queue:
                continue
            phys = queue[0].priority
            if phys < n_paused and paused[phys]:
                continue
            return q
        return -1

    def cut(self) -> int:
        """Take the link down, dropping everything queued (a fibre cut).

        Returns the number of packets dropped.  Buffer accounting is
        released through the usual dequeue callback.  The in-flight packet
        (if any) is *not* recalled — it is already on the wire.

        Cut/restore contract: :meth:`cut` drops every queued packet (the
        count is returned, and also accumulated in ``dropped_on_cut``) and
        marks the port ``down``; :meth:`restore` brings it back up and
        returns the number of packets re-admitted — always ``0`` here,
        because a cut *drops* rather than parks.  PFC ``paused`` flags are
        untouched by both: pause state belongs to the PFC control plane and
        survives a link flap (a rebooting *switch* loses it instead, see
        :meth:`~repro.sim.switch.Switch.reboot`).  Both operations are
        idempotent.
        """
        was_busy = self.busy
        self.down = True
        dropped = 0
        drained: List[int] = []
        aud = self.audit
        trc = self.tracer
        for q in range(self.n_queues):
            queue = self.queues[q]
            if not queue:
                continue
            drained.append(q)
            while queue:
                pkt = queue.popleft()
                self.qbytes[q] -= pkt.size
                self.total_bytes -= pkt.size
                if self.on_dequeue is not None:
                    self.on_dequeue(pkt, pkt.ctx)
                if aud.enabled:
                    aud.packet_dropped("link_cut", pkt.size)
                if trc.enabled and pkt.trace is not None:
                    trc.finish(pkt.trace, self.sim.now, "dropped:link_cut")
                PACKET_POOL.release(pkt)
                dropped += 1
        self._active = 0
        self.dropped_on_cut += dropped
        tel = self.telemetry
        if tel.enabled:
            now = self.sim.now
            for q in drained:
                tel.queue_depth(now, self.name, q, self.qbytes[q], self.total_bytes)
            if was_busy:
                # the wire goes dead mid-serialisation: report idle from the
                # cut instant instead of the never-reached end of tx
                tel.link(now, self.name, False)
        return dropped

    def restore(self) -> int:
        """Bring the link back up and resume transmission.

        Returns the number of packets re-admitted into the queues — ``0``
        for this port model, which drops on :meth:`cut` instead of parking
        (see the cut/restore contract there).  The ``int`` return keeps the
        cut/restore pair symmetric for callers that aggregate drop counts,
        e.g. :meth:`repro.sim.network.Network.set_link_state`.
        """
        self.down = False
        if not self.busy:
            self._kick()
        return 0

    def _kick(self) -> None:
        if self.down or not self.total_bytes:
            return
        # inline _select_queue over the non-empty bitmask: highest queue whose
        # head's physical class isn't paused
        queues = self.queues
        paused = self.paused
        n_paused = len(paused)
        sel = self._active
        while True:
            if not sel:
                return
            q = sel.bit_length() - 1
            queue = queues[q]
            phys = queue[0].priority
            if phys < n_paused and paused[phys]:
                sel ^= 1 << q  # paused head: mask this queue for this pass
                continue
            break
        pkt = queue.popleft()
        if not queue:
            self._active ^= 1 << q
        size = pkt.size
        qbytes = self.qbytes
        qbytes[q] -= size
        total = self.total_bytes = self.total_bytes - size
        self.busy = True
        sim = self.sim
        now = sim.now
        cache = self._tx_cache
        tx = cache.get(size)
        if tx is None:
            tx = cache[size] = max(1, int(size * self._ns_per_byte))
        tel = self.telemetry
        if tel.enabled:
            tel.queue_depth(now, self.name, q, qbytes[q], total)
            tel.link(now, self.name, True)
        if self.stamp_int and pkt.int_hops is not None:
            pkt.int_hops.append(IntHop(total, self.tx_bytes_total, now, self.rate_bps))
        if self.on_dequeue is not None:
            self.on_dequeue(pkt, pkt.ctx)
        self.tx_bytes_total += size
        self.tx_packets_total += 1
        t1 = now + tx
        if self.FUSED:
            peer = self.peer
            if peer is None:
                raise RuntimeError(f"{self.name}: transmitting on an unconnected port")
            t2 = t1 + self.prop_delay_ns
            imp = self.impairment
            if imp is not None:
                # degraded link: the packet still occupies the wire for its
                # full serialisation time, but may be corrupted (never
                # delivered) or delivered late (delay spike)
                t2 = imp.transmit(t2)
                if t2 < 0:
                    aud = self.audit
                    if aud.enabled:
                        aud.packet_corrupted(pkt.size)
                    trc = self.tracer
                    if trc.enabled and pkt.trace is not None:
                        trc.start_tx(pkt.trace, now, tx, 0, pkt.priority)
                        trc.finish(pkt.trace, t1, "corrupted")
                    PACKET_POOL.release(pkt)
                    sim.call_at(t1, self._tx_wake)
                    return
            trc = self.tracer
            if trc.enabled and pkt.trace is not None:
                # prop is measured t2 - t1 so impairment delay spikes land in
                # the propagation component and spans keep summing to e2e
                trc.start_tx(pkt.trace, now, tx, t2 - t1, pkt.priority)
            # fused: delivery at t2 scheduled up front, wake-up frees the port
            sim.call_at2(
                t2,
                peer.receive,
                (pkt, self.peer_in_idx),
                t1,
                self._tx_wake,
                (),
            )
        else:
            trc = self.tracer
            if trc.enabled and pkt.trace is not None:
                trc.start_tx(pkt.trace, now, tx, self.prop_delay_ns, pkt.priority)
            sim.call_after(tx, self._tx_done, pkt)

    def _tx_wake(self) -> None:
        """End-of-transmission: free the port and re-arm the scheduler."""
        self.busy = False
        tel = self.telemetry
        if tel.enabled and not self.down:
            tel.link(self.sim.now, self.name, False)
        self._kick()

    def _tx_done(self, pkt: Packet) -> None:
        """Classic two-step end-of-tx (``FUSED = False`` debug mode)."""
        peer = self.peer
        if peer is None:
            raise RuntimeError(f"{self.name}: transmitting on an unconnected port")
        sim = self.sim
        imp = self.impairment
        if imp is not None:
            t2 = imp.transmit(sim.now + self.prop_delay_ns)
            trc = self.tracer
            if t2 < 0:
                aud = self.audit
                if aud.enabled:
                    aud.packet_corrupted(pkt.size)
                if trc.enabled and pkt.trace is not None:
                    if pkt.trace.hops:
                        pkt.trace.hops[-1].prop_ns = 0
                    trc.finish(pkt.trace, sim.now, "corrupted")
                PACKET_POOL.release(pkt)
            else:
                if trc.enabled and pkt.trace is not None and pkt.trace.hops:
                    # _kick recorded the nominal propagation delay; correct it
                    # for the impairment so spans still sum to e2e
                    pkt.trace.hops[-1].prop_ns = t2 - sim.now
                sim.call_at(t2, peer.receive, pkt, self.peer_in_idx)
        else:
            sim.call_after(self.prop_delay_ns, peer.receive, pkt, self.peer_in_idx)
        self.busy = False
        tel = self.telemetry
        if tel.enabled and not self.down:
            tel.link(sim.now, self.name, False)
        self._kick()
