"""Output port with strict-priority queues.

One :class:`Port` models the egress side of a link: per-priority FIFO queues,
a strict-priority scheduler (higher queue index = higher priority, matching
the paper's convention), PFC pause flags per priority, ECN marking, and INT
stamping for HPCC.

The port dequeues a packet when it *starts* transmitting it; buffer
accounting is released at that point (start-of-transmission freeing, the
convention used by ns-3's qbb model).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, List, Optional

from ..telemetry.recorder import NULL_RECORDER
from .engine import Simulator
from .packet import IntHop, Packet

__all__ = ["Port"]


class Port:
    """Egress port: priority queues + strict-priority scheduler + one link."""

    __slots__ = (
        "sim",
        "name",
        "rate_bps",
        "ns_per_byte",
        "n_queues",
        "queues",
        "qbytes",
        "total_bytes",
        "paused",
        "busy",
        "prop_delay_ns",
        "peer",
        "peer_in_idx",
        "ecn_k",
        "tx_bytes_total",
        "tx_packets_total",
        "on_dequeue",
        "stamp_int",
        "local_queues",
        "ecn_marker",
        "down",
        "dropped_on_cut",
        "telemetry",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        n_queues: int = 8,
        ecn_k: Optional[int] = None,
        name: str = "port",
        stamp_int: bool = False,
        local_queues: bool = False,
    ):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.ns_per_byte = 8e9 / rate_bps
        self.n_queues = n_queues
        self.queues: List[deque] = [deque() for _ in range(n_queues)]
        self.qbytes = [0] * n_queues
        self.total_bytes = 0
        self.paused = [False] * n_queues
        self.busy = False
        self.prop_delay_ns = 0
        self.peer = None  # receiving node
        self.peer_in_idx = 0  # index of this link at the peer's ingress
        #: per-queue ECN marking threshold in bytes (None disables marking)
        self.ecn_k = ecn_k
        self.tx_bytes_total = 0
        self.tx_packets_total = 0
        #: callback(pkt, ctx) invoked when a packet leaves the queues
        self.on_dequeue: Optional[Callable[[Packet, Any], None]] = None
        self.stamp_int = stamp_int
        #: host-NIC mode: queue index comes from pkt.local_prio (virtual
        #: priority) while PFC pause still applies per *physical* class, by
        #: inspecting the head packet's `priority` field.
        self.local_queues = local_queues
        #: optional custom ECN hook: callable(pkt, queue_bytes) -> bool,
        #: overriding the uniform `ecn_k` threshold (Appendix-B extension)
        self.ecn_marker = None
        #: administratively/physically down: nothing transmits
        self.down = False
        self.dropped_on_cut = 0
        #: telemetry hook (see repro.telemetry); disabled path is one check
        self.telemetry = getattr(sim, "telemetry", NULL_RECORDER)

    # ------------------------------------------------------------------
    def connect(self, peer, prop_delay_ns: int, peer_in_idx: int = 0) -> None:
        """Attach the downstream node reached through this port."""
        self.peer = peer
        self.prop_delay_ns = int(prop_delay_ns)
        self.peer_in_idx = peer_in_idx

    def tx_time_ns(self, size_bytes: int) -> int:
        return max(1, int(size_bytes * self.ns_per_byte))

    # ------------------------------------------------------------------
    def queue_index(self, pkt: Packet) -> int:
        if self.local_queues and pkt.local_prio >= 0:
            return min(pkt.local_prio, self.n_queues - 1)
        return pkt.priority

    def enqueue(self, pkt: Packet, ctx: Any = None) -> None:
        """Queue a packet for transmission (admission already decided)."""
        q = self.queue_index(pkt)
        marked = False
        if self.ecn_marker is not None:
            if self.ecn_marker(pkt, self.qbytes[q]):
                pkt.ecn = True
                marked = True
        elif self.ecn_k is not None and self.qbytes[q] + pkt.size > self.ecn_k:
            pkt.ecn = True
            marked = True
        self.queues[q].append((pkt, ctx))
        self.qbytes[q] += pkt.size
        self.total_bytes += pkt.size
        tel = self.telemetry
        if tel.enabled:
            now = self.sim.now
            if marked:
                tel.ecn_mark(now, self.name, q)
            tel.queue_depth(now, self.name, q, self.qbytes[q], self.total_bytes)
        if not self.busy:
            self._kick()

    def set_paused(self, prio: int, paused: bool) -> None:
        """PFC pause/resume for one *physical* priority class."""
        if prio < len(self.paused):
            self.paused[prio] = paused
        if not paused and not self.busy:
            self._kick()

    def kick(self) -> None:
        """Re-evaluate the scheduler (e.g. after a resume or new packet)."""
        if not self.busy:
            self._kick()

    # ------------------------------------------------------------------
    def _select_queue(self) -> int:
        """Highest non-empty queue whose head's physical class isn't paused."""
        queues = self.queues
        paused = self.paused
        n_paused = len(paused)
        for q in range(self.n_queues - 1, -1, -1):
            queue = queues[q]
            if not queue:
                continue
            phys = queue[0][0].priority
            if phys < n_paused and paused[phys]:
                continue
            return q
        return -1

    def cut(self) -> int:
        """Take the link down, dropping everything queued (a fibre cut).

        Returns the number of packets dropped.  Buffer accounting is
        released through the usual dequeue callback.
        """
        self.down = True
        dropped = 0
        for q in range(self.n_queues):
            while self.queues[q]:
                pkt, ctx = self.queues[q].popleft()
                self.qbytes[q] -= pkt.size
                self.total_bytes -= pkt.size
                if self.on_dequeue is not None:
                    self.on_dequeue(pkt, ctx)
                dropped += 1
        self.dropped_on_cut += dropped
        tel = self.telemetry
        if tel.enabled and dropped:
            for q in range(self.n_queues):
                tel.queue_depth(self.sim.now, self.name, q, self.qbytes[q], self.total_bytes)
        return dropped

    def restore(self) -> None:
        """Bring the link back up and resume transmission."""
        self.down = False
        if not self.busy:
            self._kick()

    def _kick(self) -> None:
        if self.down:
            return
        q = self._select_queue()
        if q < 0:
            return
        pkt, ctx = self.queues[q].popleft()
        self.qbytes[q] -= pkt.size
        self.total_bytes -= pkt.size
        self.busy = True
        tel = self.telemetry
        if tel.enabled:
            now = self.sim.now
            tel.queue_depth(now, self.name, q, self.qbytes[q], self.total_bytes)
            tel.link(now, self.name, True)
        if self.stamp_int and pkt.int_hops is not None:
            pkt.int_hops.append(
                IntHop(self.total_bytes, self.tx_bytes_total, self.sim.now, self.rate_bps)
            )
        if self.on_dequeue is not None:
            self.on_dequeue(pkt, ctx)
        self.tx_bytes_total += pkt.size
        self.tx_packets_total += 1
        self.sim.after(self.tx_time_ns(pkt.size), self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        if self.peer is None:
            raise RuntimeError(f"{self.name}: transmitting on an unconnected port")
        self.sim.after(self.prop_delay_ns, self.peer.receive, pkt, self.peer_in_idx)
        self.busy = False
        tel = self.telemetry
        if tel.enabled:
            tel.link(self.sim.now, self.name, False)
        self._kick()
