"""End host: one NIC egress port plus transport dispatch.

A host owns exactly one uplink to its ToR switch.  Packets addressed to the
host are handed to the registered flow endpoints: DATA/PROBE go to the
receiver side, ACK/PROBE_ACK to the sender side.  The host's egress port is a
regular :class:`~repro.sim.port.Port`, so PFC PAUSE from the ToR throttles it
exactly as it would a switch.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs.tracer import NULL_TRACER
from .engine import Simulator
from .packet import ACK, DATA, PACKET_POOL, PROBE, PROBE_ACK, Packet
from .port import Port

__all__ = ["Host"]


class Host:
    """A server with a single NIC."""

    __slots__ = (
        "sim",
        "node_id",
        "n_queues",
        "name",
        "port",
        "senders",
        "receivers",
        "rx_bytes",
        "rx_packets",
        "audit",
        "tracer",
    )

    def __init__(self, sim: Simulator, node_id: int, n_queues: int = 8, name: str = ""):
        self.sim = sim
        self.node_id = node_id
        self.n_queues = n_queues
        self.name = name or f"host{node_id}"
        self.port: Optional[Port] = None
        #: flow_id -> sender endpoint (handles ACK / PROBE_ACK)
        self.senders: Dict[int, object] = {}
        #: flow_id -> receiver endpoint (handles DATA / PROBE)
        self.receivers: Dict[int, object] = {}
        self.rx_bytes = 0
        self.rx_packets = 0
        self.audit = sim.audit
        self.tracer = getattr(sim, "tracer", NULL_TRACER)

    #: host NIC queue count: room for 16 virtual priorities plus an ACK queue
    NIC_QUEUES = 18

    def attach_port(self, rate_bps: float) -> Port:
        if self.port is not None:
            raise RuntimeError(f"{self.name} already has a NIC port")
        # The NIC schedules the host's *own* flows by virtual priority (free
        # local scheduling); the wire still only sees the physical class.
        self.port = Port(
            self.sim,
            rate_bps,
            n_queues=max(self.n_queues, self.NIC_QUEUES),
            name=f"{self.name}.nic",
            local_queues=True,
        )
        return self.port

    def local_data_queue(self, vpriority: int) -> int:
        """NIC queue for data of a flow with this virtual priority."""
        if self.port is None:
            raise RuntimeError(f"{self.name} is not connected")
        return max(0, min(vpriority, self.port.n_queues - 2))

    def local_ack_queue(self) -> int:
        if self.port is None:
            raise RuntimeError(f"{self.name} is not connected")
        return self.port.n_queues - 1

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> None:
        if self.port is None:
            raise RuntimeError(f"{self.name} is not connected")
        self.port.enqueue(pkt, None)

    def receive(self, pkt: Packet, in_idx: int = 0) -> None:
        self.rx_bytes += pkt.size
        self.rx_packets += 1
        kind = pkt.kind
        if kind == DATA or kind == PROBE:
            endpoint = self.receivers.get(pkt.flow_id)
        elif kind == ACK or kind == PROBE_ACK:
            endpoint = self.senders.get(pkt.flow_id)
        else:  # pragma: no cover - unknown kinds are a programming error
            raise RuntimeError(f"{self.name}: unknown packet kind {kind}")
        if endpoint is not None:
            endpoint.on_packet(pkt)
        aud = self.audit
        if aud.enabled:
            aud.packet_delivered(pkt.size)
        trc = self.tracer
        if trc.enabled and pkt.trace is not None:
            trc.finish(pkt.trace, self.sim.now, "delivered")
        # the host is the packet's terminal owner: endpoints read fields
        # synchronously in on_packet and never retain the object
        PACKET_POOL.release(pkt)

    # ------------------------------------------------------------------
    @property
    def link_rate_bps(self) -> float:
        if self.port is None:
            raise RuntimeError(f"{self.name} is not connected")
        return self.port.rate_bps
