"""Packet-level discrete-event network simulator."""

from .buffer import BufferStats, SharedBuffer
from .engine import MICROSECOND, MILLISECOND, SECOND, EventHandle, Simulator
from .host import Host
from .network import Network
from .packet import ACK, DATA, HEADER_BYTES, MIN_PACKET_BYTES, PROBE, PROBE_ACK, IntHop, Packet
from .pfc import PfcConfig, PfcIngressState
from .port import Port
from .snapshot import SnapshotHookError, WorldSnapshot, fork_world, snapshot_world
from .switch import Switch, SwitchConfig, ecmp_hash

__all__ = [
    "Simulator",
    "EventHandle",
    "SECOND",
    "MILLISECOND",
    "MICROSECOND",
    "Packet",
    "IntHop",
    "DATA",
    "ACK",
    "PROBE",
    "PROBE_ACK",
    "HEADER_BYTES",
    "MIN_PACKET_BYTES",
    "Port",
    "SharedBuffer",
    "BufferStats",
    "PfcConfig",
    "PfcIngressState",
    "Switch",
    "SwitchConfig",
    "ecmp_hash",
    "Host",
    "Network",
    "WorldSnapshot",
    "SnapshotHookError",
    "snapshot_world",
    "fork_world",
]
