"""Priority Flow Control (IEEE 802.1Qbb) model.

PFC works hop-by-hop: a switch counts, per *(ingress port, priority)*, the
bytes it is currently buffering that arrived through that ingress.  When the
counter exceeds ``xoff`` it sends a PAUSE frame upstream for that priority;
when it drains below ``xon`` it sends a RESUME.  PAUSE/RESUME propagate with
the link's propagation delay and act on the upstream egress port's scheduler.

The ``xoff`` threshold can be static or coupled to the remaining shared
buffer (``dynamic=True``), reflecting real shared-buffer chips where ingress
admission thresholds shrink as the pool fills — this coupling is what makes a
large number of lossless priorities expensive (paper §2.2, Fig. 11).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..audit.auditor import NULL_AUDITOR
from ..telemetry.recorder import NULL_RECORDER
from .buffer import SharedBuffer
from .engine import Simulator

__all__ = ["PfcIngressState", "PfcConfig"]


class PfcConfig:
    """PFC knobs for one switch."""

    __slots__ = ("enabled", "xoff_bytes", "xon_bytes", "dynamic", "dyn_alpha")

    def __init__(
        self,
        enabled: bool = True,
        xoff_bytes: int = 100 * 1024,
        xon_bytes: Optional[int] = None,
        dynamic: bool = True,
        dyn_alpha: float = 0.5,
    ):
        self.enabled = enabled
        self.xoff_bytes = xoff_bytes
        self.xon_bytes = xon_bytes if xon_bytes is not None else max(0, xoff_bytes - 4096)
        self.dynamic = dynamic
        self.dyn_alpha = dyn_alpha


class PfcIngressState:
    """Pause state machine for one (ingress port, priority) pair."""

    __slots__ = (
        "sim",
        "cfg",
        "buffer",
        "bytes",
        "pause_sent",
        "send_signal",
        "pauses_sent",
        "resumes_sent",
        "key",
        "telemetry",
        "audit",
    )

    def __init__(
        self,
        sim: Simulator,
        cfg: PfcConfig,
        buffer: SharedBuffer,
        send_signal: Callable[[bool], None],
        key: Tuple[str, int, int] = ("", 0, 0),
    ):
        self.sim = sim
        self.cfg = cfg
        self.buffer = buffer
        self.bytes = 0
        self.pause_sent = False
        #: callable(paused: bool) delivering PAUSE/RESUME to the upstream port
        self.send_signal = send_signal
        self.pauses_sent = 0
        self.resumes_sent = 0
        #: (switch name, ingress index, priority) — telemetry identity
        self.key = key
        self.telemetry = getattr(sim, "telemetry", NULL_RECORDER)
        self.audit = getattr(sim, "audit", NULL_AUDITOR)

    def _xoff(self) -> float:
        cfg = self.cfg
        if cfg.dynamic:
            return min(cfg.xoff_bytes, cfg.dyn_alpha * self.buffer.free_shared)
        return cfg.xoff_bytes

    def on_enqueue(self, size: int) -> None:
        self.bytes += size
        aud = self.audit
        if aud.enabled:
            aud.pfc_backlog(self.sim.now, self.key, self.bytes)
        cfg = self.cfg
        if not cfg.enabled or self.pause_sent:
            return
        # inline _xoff(): this runs once per lossless enqueue
        xoff = cfg.xoff_bytes
        if cfg.dynamic:
            buf = self.buffer
            dyn = cfg.dyn_alpha * (buf.shared_capacity - buf.shared_used)
            if dyn < xoff:
                xoff = dyn
        if self.bytes > xoff:
            self.pause_sent = True
            self.pauses_sent += 1
            tel = self.telemetry
            if tel.enabled:
                tel.pfc(self.sim.now, self.key[0], self.key[1], self.key[2], True, self.bytes)
            self.send_signal(True)

    def on_dequeue(self, size: int) -> None:
        self.bytes -= size
        if self.bytes < 0:
            raise AssertionError("PFC ingress accounting went negative")
        aud = self.audit
        if aud.enabled:
            aud.pfc_backlog(self.sim.now, self.key, self.bytes)
        if self.pause_sent and self.bytes <= min(self.cfg.xon_bytes, self._xoff()):
            self.pause_sent = False
            self.resumes_sent += 1
            tel = self.telemetry
            if tel.enabled:
                tel.pfc(self.sim.now, self.key[0], self.key[1], self.key[2], False, self.bytes)
            self.send_signal(False)
