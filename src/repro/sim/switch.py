"""Output-queued switch with shared buffer, ECN, PFC and ECMP routing."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..obs.tracer import NULL_TRACER
from .buffer import SharedBuffer
from .engine import Simulator
from .packet import PACKET_POOL, Packet
from .pfc import PfcConfig, PfcIngressState
from .port import Port

__all__ = ["Switch", "SwitchConfig", "ecmp_hash"]

_GOLDEN = 0x9E3779B1
_MIX = 0x85EBCA77


def ecmp_hash(flow_id: int, node_id: int, salt: int = 0) -> int:
    """Deterministic per-flow hash used for ECMP next-hop selection."""
    h = (flow_id * _GOLDEN) ^ (node_id * _MIX) ^ (salt * 0xC2B2AE35)
    h ^= h >> 13
    h = (h * 0x27D4EB2F) & 0xFFFFFFFF
    return h ^ (h >> 16)


class SwitchConfig:
    """Buffer/PFC/ECN parameters shared by all switches of one experiment."""

    __slots__ = (
        "n_queues",
        "buffer_bytes",
        "headroom_per_port_per_prio",
        "n_lossless",
        "ideal_headroom",
        "dt_alpha",
        "pfc",
        "ecn_k_bytes",
    )

    def __init__(
        self,
        n_queues: int = 8,
        buffer_bytes: int = 32 * 1024 * 1024,
        headroom_per_port_per_prio: int = 50 * 1024,
        n_lossless: Optional[int] = None,
        ideal_headroom: bool = False,
        dt_alpha: float = 1.0,
        pfc: Optional[PfcConfig] = None,
        ecn_k_bytes: Optional[int] = None,
    ):
        self.n_queues = n_queues
        self.buffer_bytes = buffer_bytes
        self.headroom_per_port_per_prio = headroom_per_port_per_prio
        #: number of priorities configured lossless (defaults to all queues)
        self.n_lossless = n_lossless if n_lossless is not None else n_queues
        #: Physical* from the paper: headroom does not consume chip buffer
        self.ideal_headroom = ideal_headroom
        self.dt_alpha = dt_alpha
        self.pfc = pfc if pfc is not None else PfcConfig()
        self.ecn_k_bytes = ecn_k_bytes


class Switch:
    """A shared-buffer switch.

    Ports are added by the topology builder via :meth:`add_port`; ingress
    bookkeeping (which upstream egress port feeds ingress ``i``) is registered
    via :meth:`register_ingress` so PFC signals can be sent back upstream.
    """

    __slots__ = (
        "sim",
        "node_id",
        "cfg",
        "name",
        "ports",
        "_ingress_peer",
        "_ingress_delay",
        "routes",
        "buffer",
        "_pfc",
        "_pfc_on",
        "_n_lossless",
        "_nq",
        "_route_cache",
        "_dead",
        "_pfc_pauses_archived",
        "reboots",
        "drops",
        "forwarded",
        "pfc_listeners",
        "audit",
        "tracer",
    )

    def __init__(self, sim: Simulator, node_id: int, cfg: SwitchConfig, name: str = ""):
        self.sim = sim
        self.node_id = node_id
        self.cfg = cfg
        self.name = name or f"switch{node_id}"
        self.ports: List[Port] = []
        self._ingress_peer: List[Optional[Port]] = []
        self._ingress_delay: List[int] = []
        #: dst node id -> list of candidate egress port indices (ECMP)
        self.routes: Dict[int, List[int]] = {}
        self.buffer: Optional[SharedBuffer] = None
        #: (in_idx * n_queues + prio) -> pause state; int keys keep the
        #: per-packet lookup free of tuple construction
        self._pfc: Dict[int, PfcIngressState] = {}
        # hoisted per-packet config reads
        self._pfc_on = cfg.pfc.enabled
        self._n_lossless = cfg.n_lossless
        self._nq = cfg.n_queues
        #: (dst, flow_id, salt) -> egress index; ecmp_hash is pure, routes are
        #: fixed after topology build, so the pick per flow never changes
        self._route_cache: Dict[tuple, int] = {}
        #: mid-reboot: every arriving frame dies at the dark port
        self._dead = False
        self._pfc_pauses_archived = 0
        self.reboots = 0
        self.drops = 0
        self.forwarded = 0
        #: observers called as ``cb(time_ns, in_idx, prio, paused)`` whenever a
        #: PFC PAUSE/RESUME signal is emitted.  The list is consulted at signal
        #: time, so listeners may register at any point — including after
        #: traffic has started (unlike the old ``_make_signal_sender``
        #: monkey-patching, which silently missed already-created state).
        self.pfc_listeners: List[Callable[[int, int, int, bool], None]] = []
        self.audit = sim.audit
        if self.audit.enabled:
            self.audit.register_switch(self)
        self.tracer = getattr(sim, "tracer", NULL_TRACER)

    # ------------------------------------------------------------------
    # topology wiring
    # ------------------------------------------------------------------
    def add_port(self, rate_bps: float) -> int:
        idx = len(self.ports)
        port = Port(
            self.sim,
            rate_bps,
            n_queues=self.cfg.n_queues,
            ecn_k=self.cfg.ecn_k_bytes,
            name=f"{self.name}.p{idx}",
            stamp_int=True,
        )
        port.on_dequeue = self._on_port_dequeue
        self.ports.append(port)
        self._ingress_peer.append(None)
        self._ingress_delay.append(0)
        return idx

    def register_ingress(self, in_idx: int, upstream_port: Port, prop_delay_ns: int) -> None:
        self._ingress_peer[in_idx] = upstream_port
        self._ingress_delay[in_idx] = int(prop_delay_ns)

    def finalize(self) -> None:
        """Size the buffer once the port count is known."""
        cfg = self.cfg
        if cfg.pfc.enabled and not cfg.ideal_headroom:
            headroom = cfg.headroom_per_port_per_prio * len(self.ports) * cfg.n_lossless
            # headroom may starve the shared pool (the paper's §2.2 concern);
            # only a small floor is guaranteed so the chip stays functional
            floor = min(128 * 1024, cfg.buffer_bytes // 4)
            headroom = min(headroom, cfg.buffer_bytes - floor)
        else:
            headroom = 0
        # Physical* still needs headroom capacity to absorb post-PAUSE data,
        # it just doesn't subtract it from the shared pool: model that as an
        # extra pool on top of the chip buffer.
        if cfg.pfc.enabled and cfg.ideal_headroom:
            self.buffer = SharedBuffer(cfg.buffer_bytes, 0, cfg.dt_alpha)
            extra = cfg.headroom_per_port_per_prio * len(self.ports) * cfg.n_lossless
            self.buffer.headroom_capacity = extra
        else:
            self.buffer = SharedBuffer(cfg.buffer_bytes, headroom, cfg.dt_alpha)
        self.buffer.bind_telemetry(self.sim, self.name)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet, in_idx: int) -> None:
        if self._dead:
            # frames already on the wire when the switch went down arrive at
            # a dark port and are lost (see :meth:`reboot`)
            self.drops += 1
            if self.buffer is not None:
                self.buffer.record_drop(pkt.size, pkt.priority, "switch_dead")
            aud = self.audit
            if aud.enabled:
                aud.packet_dropped("switch_dead", pkt.size)
            trc = self.tracer
            if trc.enabled and pkt.trace is not None:
                trc.finish(pkt.trace, self.sim.now, "dropped:switch_dead")
            PACKET_POOL.release(pkt)
            return
        try:
            routes = self.routes[pkt.dst]
        except KeyError:
            raise RuntimeError(f"{self.name}: no route to node {pkt.dst}") from None
        if len(routes) == 1:
            out_idx = routes[0]
        else:
            rkey = (pkt.dst, pkt.flow_id, pkt.hash_salt)
            try:
                out_idx = self._route_cache[rkey]
            except KeyError:
                out_idx = routes[
                    ecmp_hash(pkt.flow_id, self.node_id, pkt.hash_salt) % len(routes)
                ]
                self._route_cache[rkey] = out_idx
        port = self.ports[out_idx]
        if port.down:
            # routes still point at a dead interface (the detection window
            # before reconvergence): the frame blackholes here — parking it
            # on a port that cannot drain would freeze the fabric via PFC
            self.drops += 1
            self.buffer.record_drop(pkt.size, pkt.priority, "blackhole")
            aud = self.audit
            if aud.enabled:
                aud.packet_dropped("blackhole", pkt.size)
            trc = self.tracer
            if trc.enabled and pkt.trace is not None:
                trc.finish(pkt.trace, self.sim.now, "dropped:blackhole")
            PACKET_POOL.release(pkt)
            return

        prio = pkt.priority
        size = pkt.size
        lossless = self._pfc_on and prio < self._n_lossless
        buf = self.buffer
        from_headroom = 0
        if not buf.try_admit_shared(port.qbytes[prio], size):
            if lossless and buf.try_admit_headroom(size):
                from_headroom = 1
            else:
                # one packet, one drop — the reason is the pool that made the
                # final call (headroom for lossless traffic, shared otherwise)
                reason = "buffer_headroom" if lossless else "buffer_shared"
                buf.record_drop(size, prio, reason)
                self.drops += 1
                aud = self.audit
                if aud.enabled:
                    aud.packet_dropped(reason, size)
                trc = self.tracer
                if trc.enabled and pkt.trace is not None:
                    trc.finish(pkt.trace, self.sim.now, "dropped:" + reason)
                PACKET_POOL.release(pkt)
                return
        if lossless:
            key = in_idx * self._nq + prio
            state = self._pfc.get(key)
            if state is None:
                state = self._pfc_state(in_idx, prio)
            state.on_enqueue(size)
        self.forwarded += 1
        # ctx packs (in_idx, from_headroom) into one int: in_idx << 1 | flag
        port.enqueue(pkt, in_idx << 1 | from_headroom)

    def _on_port_dequeue(self, pkt: Packet, ctx: int) -> None:
        prio = pkt.priority
        self.buffer.release(pkt.size, ctx & 1)
        if self._pfc_on and prio < self._n_lossless:
            in_idx = ctx >> 1
            key = in_idx * self._nq + prio
            state = self._pfc.get(key)
            if state is None:
                state = self._pfc_state(in_idx, prio)
            state.on_dequeue(pkt.size)

    # ------------------------------------------------------------------
    # PFC
    # ------------------------------------------------------------------
    def _pfc_state(self, in_idx: int, prio: int) -> PfcIngressState:
        key = in_idx * self.cfg.n_queues + prio
        state = self._pfc.get(key)
        if state is None:
            state = PfcIngressState(
                self.sim,
                self.cfg.pfc,
                self.buffer,
                self._make_signal_sender(in_idx, prio),
                key=(self.name, in_idx, prio),
            )
            self._pfc[key] = state
        return state

    def _make_signal_sender(self, in_idx: int, prio: int):
        upstream = self._ingress_peer[in_idx]
        delay = self._ingress_delay[in_idx]

        def send(paused: bool) -> None:
            aud = self.audit
            if aud.enabled:
                aud.pfc_signal(
                    self.sim.now,
                    self.name,
                    upstream.name if upstream is not None else None,
                    in_idx,
                    prio,
                    paused,
                )
            if self.pfc_listeners:
                now = self.sim.now
                for cb in self.pfc_listeners:
                    cb(now, in_idx, prio, paused)
            if upstream is not None:
                self.sim.after(delay, upstream.set_paused, prio, paused)

        return send

    # ------------------------------------------------------------------
    # power cycling (fault injection — see repro.faults)
    # ------------------------------------------------------------------
    def reboot(self) -> int:
        """Power-cycle the switch: every link drops and volatile state dies.

        All egress ports are :meth:`~repro.sim.port.Port.cut` (queued packets
        are lost; buffer accounting drains through the normal dequeue path,
        which also lets PFC ingress machines emit their RESUME as backlog
        empties), then the PFC state machines, any PAUSE asserted *against*
        this switch, and the memoised ECMP picks are flushed — a rebooted
        chip comes back cold.  Returns the number of packets dropped.

        While dead, frames already in flight toward the switch are dropped
        on arrival in :meth:`receive`.  Call :meth:`power_on` to restore the
        links; route state is the caller's job (``Network.rebuild_routes``).
        """
        self._dead = True
        self.reboots += 1
        dropped = 0
        for port in self.ports:
            dropped += port.cut()
        for state in self._pfc.values():
            # defensive: draining the queues should have resumed everything,
            # but never leave a neighbour paused by a switch that lost its
            # state (a real MAC simply stops emitting pause frames)
            if state.pause_sent:
                state.pause_sent = False
                state.send_signal(False)
        self._pfc_pauses_archived += sum(s.pauses_sent for s in self._pfc.values())
        self._pfc.clear()
        self._route_cache.clear()
        for port in self.ports:
            # PAUSE state asserted against this switch dies with it too
            for prio in range(len(port.paused)):
                port.paused[prio] = False
        return dropped

    def power_on(self) -> None:
        """Bring a rebooted switch back online: links up, control state cold."""
        self._dead = False
        for port in self.ports:
            port.restore()

    # ------------------------------------------------------------------
    def pfc_pause_count(self) -> int:
        return self._pfc_pauses_archived + sum(s.pauses_sent for s in self._pfc.values())
