"""Shared switch buffer with dynamic-threshold admission.

Models the memory-management unit of a shared-buffer switch chip:

* one **shared pool** used by all egress queues, with admission governed by
  the dynamic-threshold algorithm of Choudhury & Hahne (a queue may grow up to
  ``alpha`` times the *remaining free* shared memory);
* a **PFC headroom pool**, reserved up-front per lossless priority, that
  absorbs the in-flight data arriving between a PAUSE being sent and the
  upstream actually stopping.

The paper's ``Physical*`` configuration ("ideal physical priority", §6.2) is
obtained by reserving *zero* headroom regardless of the number of lossless
priorities — headroom is assumed to live outside the chip buffer.
"""

from __future__ import annotations

from ..audit.auditor import default_auditor
from ..obs.sampler import NULL_SAMPLER
from ..telemetry.recorder import NULL_RECORDER

__all__ = ["SharedBuffer", "BufferStats"]


class BufferStats:
    """Counters exported by a :class:`SharedBuffer`.

    ``dropped`` counts *packets* rejected by the buffer — a packet refused by
    the shared pool and then refused by headroom is one drop, not two.
    ``dropped_by_reason`` splits that count by the pool that made the final
    decision (``"buffer_shared"`` / ``"buffer_headroom"``) plus any caller-
    supplied reason, and always sums to ``dropped``.
    """

    __slots__ = (
        "admitted_shared",
        "admitted_headroom",
        "dropped",
        "dropped_by_reason",
        "peak_shared",
        "peak_headroom",
    )

    def __init__(self):
        self.admitted_shared = 0
        self.admitted_headroom = 0
        self.dropped = 0
        self.dropped_by_reason = {}
        self.peak_shared = 0
        self.peak_headroom = 0


class SharedBuffer:
    """Byte-accounting for one switch's packet memory.

    Parameters
    ----------
    capacity_bytes:
        Total chip buffer.
    headroom_bytes:
        Bytes reserved for PFC headroom (0 for lossy or ``Physical*``).
    dt_alpha:
        Dynamic-threshold factor: an egress queue of current length ``q`` may
        accept a packet only if ``q < dt_alpha * free_shared``.
    """

    def __init__(self, capacity_bytes: int, headroom_bytes: int = 0, dt_alpha: float = 1.0):
        if headroom_bytes > capacity_bytes:
            raise ValueError(
                f"headroom {headroom_bytes} exceeds buffer capacity {capacity_bytes}"
            )
        self.capacity = capacity_bytes
        self.headroom_capacity = headroom_bytes
        self.shared_capacity = capacity_bytes - headroom_bytes
        self.dt_alpha = dt_alpha
        self.shared_used = 0
        self.headroom_used = 0
        self.stats = BufferStats()
        # telemetry binding (see bind_telemetry): unbound buffers stay silent
        self.telemetry = NULL_RECORDER
        self.sim = None
        self.name = ""
        # byte-reconciliation auditor; adopted from the process default so the
        # shadow ledger sees admits/releases even before bind_telemetry
        self.audit = default_auditor()

    def bind_telemetry(self, sim, name: str) -> None:
        """Attach a clock + identity so occupancy/drop events can be emitted.

        Fails fast on a clock-less binding: emission sites dereference
        ``self.sim.now``, so accepting a ``None``/clock-less sim here would
        defer the crash to the first admitted packet.
        """
        if sim is None or not hasattr(sim, "now"):
            raise ValueError(
                f"bind_telemetry({name!r}): sim must provide a .now clock, got {sim!r}"
            )
        self.sim = sim
        self.name = name
        self.telemetry = getattr(sim, "telemetry", NULL_RECORDER)
        self.audit = getattr(sim, "audit", self.audit)
        smp = getattr(sim, "sampler", NULL_SAMPLER)
        if smp.enabled:
            smp.register_buffer(self)

    def _now(self) -> int:
        """Clock for emission sites; 0 while unbound (audit-only use)."""
        sim = self.sim
        return sim.now if sim is not None else 0

    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Bulk occupancy snapshot (introspection + fluid handoff checks).

        The hybrid core (:mod:`repro.fluid.hybrid`) only enters a fluid
        epoch once both pools read zero, so there is never buffer state to
        import back; whole-world checkpointing goes through
        :mod:`repro.sim.snapshot`.
        """
        return {
            "name": self.name,
            "shared_used": self.shared_used,
            "headroom_used": self.headroom_used,
            "shared_capacity": self.shared_capacity,
            "headroom_capacity": self.headroom_capacity,
            "peak_shared": self.stats.peak_shared,
            "peak_headroom": self.stats.peak_headroom,
            "dropped": self.stats.dropped,
        }

    @property
    def free_shared(self) -> int:
        return self.shared_capacity - self.shared_used

    def shared_threshold(self) -> float:
        """Current dynamic per-queue admission threshold."""
        return self.dt_alpha * self.free_shared

    def try_admit_shared(self, queue_bytes: int, size: int) -> bool:
        """Admit ``size`` bytes into a queue currently holding ``queue_bytes``."""
        used = self.shared_used
        cap = self.shared_capacity
        new_used = used + size
        # inline free_shared/shared_threshold: this runs once per forwarded packet
        if new_used > cap or queue_bytes >= self.dt_alpha * (cap - used):
            return False
        self.shared_used = new_used
        stats = self.stats
        stats.admitted_shared += 1
        if new_used > stats.peak_shared:
            stats.peak_shared = new_used
        tel = self.telemetry
        if tel.enabled:
            if self.sim is None:
                raise RuntimeError(
                    "SharedBuffer has an enabled recorder but no clock: "
                    "call bind_telemetry(sim, name) before admitting packets"
                )
            tel.buffer_occupancy(self.sim.now, self.name, new_used, self.headroom_used)
        aud = self.audit
        if aud.enabled:
            aud.buffer_admit(self._now(), self, False, size)
        return True

    def try_admit_headroom(self, size: int) -> bool:
        """Admit into the PFC headroom pool (post-PAUSE in-flight data)."""
        if self.headroom_used + size > self.headroom_capacity:
            return False
        self.headroom_used += size
        self.stats.admitted_headroom += 1
        if self.headroom_used > self.stats.peak_headroom:
            self.stats.peak_headroom = self.headroom_used
        tel = self.telemetry
        if tel.enabled:
            if self.sim is None:
                raise RuntimeError(
                    "SharedBuffer has an enabled recorder but no clock: "
                    "call bind_telemetry(sim, name) before admitting packets"
                )
            tel.buffer_occupancy(self.sim.now, self.name, self.shared_used, self.headroom_used)
        aud = self.audit
        if aud.enabled:
            aud.buffer_admit(self._now(), self, True, size)
        return True

    def release(self, size: int, from_headroom: bool) -> None:
        """Return ``size`` bytes to the pool the packet was charged to."""
        if from_headroom:
            self.headroom_used -= size
            if self.headroom_used < 0:
                raise AssertionError("headroom accounting went negative")
        else:
            self.shared_used -= size
            if self.shared_used < 0:
                raise AssertionError("shared-pool accounting went negative")
        tel = self.telemetry
        if tel.enabled:
            if self.sim is None:
                raise RuntimeError(
                    "SharedBuffer has an enabled recorder but no clock: "
                    "call bind_telemetry(sim, name) before releasing packets"
                )
            tel.buffer_occupancy(self.sim.now, self.name, self.shared_used, self.headroom_used)
        aud = self.audit
        if aud.enabled:
            aud.buffer_release(self._now(), self, from_headroom, size)

    def record_drop(self, size: int = 0, priority: int = -1, reason: str = "buffer_shared") -> None:
        """Count one rejected packet under ``reason``.

        Callers invoke this exactly once per dropped packet, with the reason
        of the *final* rejection (a lossless packet refused by the shared
        pool and then by headroom is one ``"buffer_headroom"`` drop).
        """
        stats = self.stats
        stats.dropped += 1
        by_reason = stats.dropped_by_reason
        by_reason[reason] = by_reason.get(reason, 0) + 1
        tel = self.telemetry
        if tel.enabled:
            if self.sim is None:
                raise RuntimeError(
                    "SharedBuffer has an enabled recorder but no clock: "
                    "call bind_telemetry(sim, name) before recording drops"
                )
            tel.buffer_drop(self.sim.now, self.name, size, priority, reason)
