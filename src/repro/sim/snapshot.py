"""Whole-world snapshot/restore for the discrete-event simulator.

A :class:`WorldSnapshot` captures one deep copy of a simulator *and every
object reachable from the caller-supplied roots* (networks, senders,
experiment bookkeeping).  Materialising it yields an independent, runnable
clone that continues byte-identically to the original — the property test
in ``tests/test_snapshot.py`` pins this.

Why deep copy works here:

* the engine's state is plain data — an integer clock, a heap of
  ``(time, seq, ...)`` tuples whose callbacks are bound methods of objects
  inside the copied graph, and a :class:`random.Random` whose state
  round-trips through pickling;
* determinism never depends on object identity: heap order is decided by
  the integer ``(time, seq)`` prefix, and dict iteration order (insertion
  order) is preserved by ``deepcopy``;
* the inert observability singletons (:data:`NULL_RECORDER` and friends)
  are pinned in the deep-copy memo so clones share them instead of
  dragging useless copies around — they hold no state by construction;
* the process-wide :data:`PACKET_POOL` free list is intentionally *not*
  part of the world: cloned in-flight packets are distinct objects, and
  releasing them into the shared pool is safe (the pool guards against
  double-release per object).

**Live observability hooks are rejected by default.**  A world whose
simulator carries an *enabled* telemetry recorder / auditor / tracer /
inspector / sampler / profiler would deep-copy the hook's recorder rings
along with it — the fork then appends to a private copy while callers
holding the original hook object see nothing, which reads as silent data
loss.  Until a hook-aware restore exists, snapshotting such a world raises
:class:`SnapshotHookError` naming the live hooks; pass ``allow_hooks=True``
to copy them anyway (each fork gets an independent deep-copied hook — the
right call when the fork *should* record into its own buffers, as
:mod:`repro.tune` environments do).

This is also the cheap ``reset()`` path ROADMAP item 3 asks for: snapshot
a freshly-built topology once, then materialise per run instead of
rebuilding hosts/switches/routes from scratch.

Uses for the hybrid fluid core (:mod:`repro.fluid`): epoch boundaries can
be checkpointed so a fluid epoch whose tolerance check fails could be
replayed at packet level from the handoff point.
"""

from __future__ import annotations

import copy
from typing import Tuple

__all__ = ["WorldSnapshot", "SnapshotHookError", "snapshot_world", "fork_world"]

#: Simulator attributes that may carry live observability hooks.
_HOOK_ATTRS = ("telemetry", "audit", "tracer", "inspector", "sampler", "profiler")


class SnapshotHookError(RuntimeError):
    """A world with live observability hooks was snapshotted without opting in."""


def _check_hooks(sim) -> None:
    live = [
        name
        for name in _HOOK_ATTRS
        if getattr(getattr(sim, name, None), "enabled", False)
    ]
    if live:
        raise SnapshotHookError(
            f"simulator has live observability hooks ({', '.join(live)}): a "
            f"deep-copied fork would record into private copies of their "
            f"buffers, invisible to holders of the originals. Detach the "
            f"hooks before snapshotting, or pass allow_hooks=True to give "
            f"each fork its own independent copy."
        )


def _singleton_memo() -> dict:
    """Deep-copy memo pre-seeded so null observability singletons stay shared."""
    from ..audit.auditor import NULL_AUDITOR
    from ..obs.inspector import NULL_INSPECTOR
    from ..obs.profiler import NULL_PROFILER
    from ..obs.sampler import NULL_SAMPLER
    from ..obs.tracer import NULL_TRACER
    from ..telemetry.recorder import NULL_RECORDER

    memo = {}
    for singleton in (
        NULL_RECORDER,
        NULL_AUDITOR,
        NULL_TRACER,
        NULL_INSPECTOR,
        NULL_SAMPLER,
        NULL_PROFILER,
    ):
        memo[id(singleton)] = singleton
    return memo


class WorldSnapshot:
    """Frozen copy of a simulator plus its reachable object graph."""

    __slots__ = ("_world",)

    def __init__(self, sim, *roots, allow_hooks: bool = False):
        if not allow_hooks:
            _check_hooks(sim)
        self._world = copy.deepcopy((sim, roots), _singleton_memo())

    def materialize(self) -> Tuple:
        """Return ``(sim, *roots)`` clones, independent and runnable.

        The snapshot itself is never mutated, so it can be materialised any
        number of times — each call is one fresh world at the captured
        instant.
        """
        sim, roots = copy.deepcopy(self._world, _singleton_memo())
        return (sim,) + tuple(roots)


def snapshot_world(sim, *roots, allow_hooks: bool = False) -> WorldSnapshot:
    """Capture ``sim`` (and anything reachable from ``roots``) for later."""
    return WorldSnapshot(sim, *roots, allow_hooks=allow_hooks)


def fork_world(sim, *roots, allow_hooks: bool = False) -> Tuple:
    """One-shot snapshot+materialize: a single deep copy, returned directly."""
    if not allow_hooks:
        _check_hooks(sim)
    sim2, roots2 = copy.deepcopy((sim, roots), _singleton_memo())
    return (sim2,) + tuple(roots2)
