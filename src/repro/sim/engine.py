"""Discrete-event simulation engine.

The engine keeps an integer-nanosecond clock and a binary heap of pending
events.  Integer time avoids the floating-point drift that otherwise breaks
event ordering when micro-second RTTs meet 100 Gbps serialisation times.

Events are plain callbacks.  :meth:`Simulator.after` / :meth:`Simulator.at`
return an :class:`EventHandle` that can be cancelled; cancelled events stay in
the heap but are skipped when popped (lazy deletion), which keeps cancellation
O(1).  A live-event counter makes :attr:`Simulator.pending` O(1) too, and the
heap is compacted whenever cancelled entries outnumber live ones, so
cancel-heavy workloads (pacing, RTO re-arms) cannot bloat it.

The vast majority of events in a packet simulation — port tx completions and
propagation deliveries — are never cancelled.  :meth:`Simulator.call_at` /
:meth:`Simulator.call_after` schedule those without constructing an
:class:`EventHandle` at all: the heap entry is a bare ``(time, seq, fn, args)``
tuple.  Both entry shapes share one heap; ``run()`` tells them apart by tuple
length, and ordering is unaffected because the unique ``seq`` in slot 1 means
tuple comparison never reaches the callable.  Use ``at()/after()`` only where
the caller needs ``cancel()``.
"""

from __future__ import annotations

import heapq
import random
from time import perf_counter
from typing import Any, Callable, List, Optional

from ..audit.auditor import default_auditor
from ..obs.inspector import default_inspector
from ..obs.profiler import default_profiler
from ..obs.sampler import default_sampler
from ..obs.tracer import default_tracer
from ..telemetry.recorder import default_recorder

__all__ = ["Simulator", "EventHandle", "SECOND", "MILLISECOND", "MICROSECOND"]

#: Nanoseconds per unit, for readable experiment configs.
SECOND = 1_000_000_000
MILLISECOND = 1_000_000
MICROSECOND = 1_000


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(self, time: int, seq: int, fn: Callable, args: tuple, sim: "Simulator" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references eagerly so cancelled events don't pin packets/flows.
        self.fn = None
        self.args = ()
        if self.sim is not None:
            self.sim._note_cancel()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class Simulator:
    """Single-threaded discrete event simulator with an integer-ns clock.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned :class:`random.Random`.  All stochastic
        components (noise models, workload generators, probe jitter) must draw
        from :attr:`rng` so runs are reproducible.
    """

    #: compact the heap only past this size (tiny heaps aren't worth it)
    COMPACT_MIN = 64

    def __init__(self, seed: int = 0):
        self.now: int = 0
        self.rng = random.Random(seed)
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self.events_processed = 0
        self._live = 0  # scheduled, not yet fired or cancelled
        self._cancelled = 0  # cancelled entries still polluting the heap
        #: telemetry recorder adopted at construction (see repro.telemetry);
        #: components snapshot this, keeping the disabled path to one check
        self.telemetry = default_recorder()
        #: invariant auditor adopted at construction (see repro.audit); the
        #: audited run loop is selected once per run() call, so the audit-off
        #: hot loop is byte-for-byte the one below
        self.audit = default_auditor()
        if self.audit.enabled:
            self.audit.register_sim(self)
        #: introspection subsystems adopted at construction (see repro.obs);
        #: each is the inert null singleton unless explicitly installed, and
        #: none of them ever schedules events or touches the RNG
        self.tracer = default_tracer()
        self.inspector = default_inspector()
        self.sampler = default_sampler()
        self.profiler = default_profiler()
        if self.sampler.enabled:
            self.sampler.register_sim(self)
        #: hybrid fluid/packet driver hook (see repro.fluid.hybrid); ``None``
        #: keeps the packet path byte-identical — senders check this single
        #: attribute at flow start and nowhere on the per-packet hot path
        self.fluid_driver = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _to_tick(self, time) -> int:
        """Convert ``time`` to an integer tick, validating against the clock.

        Conversion happens *before* the past-check so a float a fraction of a
        nanosecond below the integer ``now`` (a sub-resolution artifact of
        float arithmetic in delay models) clamps to ``now`` instead of raising
        spuriously.  Genuinely-past times still raise.
        """
        tick = int(time)
        if tick < self.now:
            if not isinstance(time, int) and time > self.now - 1:
                # e.g. now=100, time=99.999999: below now only because of
                # truncation — schedule at the current tick
                return self.now
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return tick

    def at(self, time: int, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute ``time`` (ns)."""
        tick = int(time)
        time = self._to_tick(time) if tick < self.now else tick
        self._seq += 1
        ev = EventHandle(time, self._seq, fn, args, self)
        self._live += 1
        # heap entries are (time, seq, handle) tuples: comparisons stay in C
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    def after(self, delay: int, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + int(delay), fn, *args)

    def call_at(self, time: int, fn: Callable, *args: Any) -> None:
        """Allocation-free :meth:`at`: no :class:`EventHandle`, no ``cancel``.

        The heap entry is the bare ``(time, seq, fn, args)`` tuple.  Use for
        fire-and-forget events on the hot path (tx completions, propagation
        deliveries); anything that may need cancelling must use :meth:`at`.
        """
        tick = int(time)
        time = self._to_tick(time) if tick < self.now else tick
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    def call_after(self, delay: int, fn: Callable, *args: Any) -> None:
        """Allocation-free :meth:`after` (see :meth:`call_at`)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        time = self.now + int(delay)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    def call_at2(
        self, time1: int, fn1: Callable, args1: tuple, time2: int, fn2: Callable, args2: tuple
    ) -> None:
        """Two allocation-free events in one call, ``fn1`` ordered first.

        Equivalent to ``call_at(time1, fn1, *args1); call_at(time2, fn2,
        *args2)`` but with one method call and no varargs re-packing — used by
        the port hot path to schedule a packet's fused delivery and the
        end-of-transmission wake-up together.
        """
        now = self.now
        if time1 < now or time2 < now:
            raise ValueError(f"cannot schedule in the past: {min(time1, time2)} < {now}")
        seq = self._seq + 1
        self._seq = seq + 1
        self._live += 2
        heap = self._heap
        heapq.heappush(heap, (time1, seq, fn1, args1))
        heapq.heappush(heap, (time2, seq + 1, fn2, args2))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap is empty, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed.
        """
        if self.audit.enabled or self.sampler.enabled or self.profiler.enabled:
            return self._run_instrumented(until, max_events)
        heap = self._heap
        processed = 0
        exhausted = True  # no more events at or before `until`
        self._running = True
        pop = heapq.heappop
        # int sentinels keep the per-event comparisons int-vs-int
        horizon = (1 << 63) if until is None else until
        limit = (1 << 63) if max_events is None else max_events
        try:
            while heap:
                entry = heap[0]
                # fast-path entries are (time, seq, fn, args); classic ones
                # are (time, seq, EventHandle).  seq is unique, so heap order
                # never compares slot 2 and the shapes can share one heap.
                if len(entry) == 4:
                    time = entry[0]
                    if time > horizon:
                        break
                    if processed >= limit:
                        exhausted = False
                        break
                    pop(heap)
                    self.now = time
                    entry[2](*entry[3])
                    processed += 1
                    continue
                ev = entry[2]
                if ev.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                time = entry[0]
                if time > horizon:
                    break
                if processed >= limit:
                    exhausted = False
                    break
                pop(heap)
                self.now = time
                fn = ev.fn
                args = ev.args
                # mark fired so a late cancel() is a no-op for the counters
                ev.cancelled = True
                ev.sim = None
                fn(*args)
                processed += 1
        finally:
            self._running = False
            # fired events leave the live set in one batched update; pending
            # is only observed outside run(), so the counter being stale
            # *during* callbacks is unobservable
            self._live -= processed
        if exhausted and until is not None and self.now < until:
            # advance the clock to the horizon even when pending events lie
            # beyond it — callers poll in run(until=...) loops
            self.now = until
        self.events_processed += processed
        tel = self.telemetry
        if processed and tel.enabled:
            tel.sim_events(self.now, processed)
        return processed

    def _run_instrumented(
        self, until: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        """Instrumented twin of :meth:`run` (audit, sampling, profiling).

        Identical control flow plus, per enabled subsystem: a per-event
        clock-monotonicity check on both heap entry shapes (auditor), a
        stride-boundary state snapshot taken *between* events — before the
        first event at or past the boundary, so it can never perturb event
        order (sampler) — and a ``perf_counter`` pair around each dispatch
        (profiler).  Kept separate so the all-off hot loop above carries
        zero extra work.
        """
        aud = self.audit
        aud_on = aud.enabled
        smp = self.sampler
        smp_on = smp.enabled
        prof = self.profiler
        prof_on = prof.enabled
        heap = self._heap
        processed = 0
        exhausted = True
        self._running = True
        pop = heapq.heappop
        horizon = (1 << 63) if until is None else until
        limit = (1 << 63) if max_events is None else max_events
        # int sentinel keeps the per-event compare int-vs-int when not sampling
        next_sample = smp.next_due(self.now) if smp_on else (1 << 63)
        try:
            while heap:
                entry = heap[0]
                if len(entry) == 4:
                    time = entry[0]
                    if time > horizon:
                        break
                    if processed >= limit:
                        exhausted = False
                        break
                    pop(heap)
                    if time >= next_sample:
                        next_sample = smp.sample(time)
                    if aud_on and time < self.now:
                        aud.clock_violation(time, self.now)
                    self.now = time
                    if prof_on:
                        fn = entry[2]
                        t0 = perf_counter()
                        fn(*entry[3])
                        prof.record(fn, perf_counter() - t0)
                    else:
                        entry[2](*entry[3])
                    processed += 1
                    continue
                ev = entry[2]
                if ev.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                time = entry[0]
                if time > horizon:
                    break
                if processed >= limit:
                    exhausted = False
                    break
                pop(heap)
                if time >= next_sample:
                    next_sample = smp.sample(time)
                if aud_on and time < self.now:
                    aud.clock_violation(time, self.now)
                self.now = time
                fn = ev.fn
                args = ev.args
                ev.cancelled = True
                ev.sim = None
                if prof_on:
                    t0 = perf_counter()
                    fn(*args)
                    prof.record(fn, perf_counter() - t0)
                else:
                    fn(*args)
                processed += 1
        finally:
            self._running = False
            self._live -= processed
        if exhausted and until is not None and self.now < until:
            self.now = until
        if smp_on and self.now >= next_sample:
            # the horizon advance crossed boundaries with no events in between
            smp.sample(self.now)
        self.events_processed += processed
        if aud_on:
            aud.clock_checked(processed)
        tel = self.telemetry
        if processed and tel.enabled:
            tel.sim_events(self.now, processed)
        return processed

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` when idle."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if len(entry) == 3 and entry[2].cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            return entry[0]
        return None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    # ------------------------------------------------------------------
    # cancellation bookkeeping (called from EventHandle.cancel)
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > self.COMPACT_MIN and self._cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place (safe mid-run)."""
        heap = self._heap
        heap[:] = [entry for entry in heap if len(entry) == 4 or not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
