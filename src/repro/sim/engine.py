"""Discrete-event simulation engine.

The engine keeps an integer-nanosecond clock and a binary heap of pending
events.  Integer time avoids the floating-point drift that otherwise breaks
event ordering when micro-second RTTs meet 100 Gbps serialisation times.

Events are plain callbacks.  :meth:`Simulator.after` / :meth:`Simulator.at`
return an :class:`EventHandle` that can be cancelled; cancelled events stay in
the heap but are skipped when popped (lazy deletion), which keeps cancellation
O(1).
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional

__all__ = ["Simulator", "EventHandle", "SECOND", "MILLISECOND", "MICROSECOND"]

#: Nanoseconds per unit, for readable experiment configs.
SECOND = 1_000_000_000
MILLISECOND = 1_000_000
MICROSECOND = 1_000


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True
        # Drop references eagerly so cancelled events don't pin packets/flows.
        self.fn = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class Simulator:
    """Single-threaded discrete event simulator with an integer-ns clock.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned :class:`random.Random`.  All stochastic
        components (noise models, workload generators, probe jitter) must draw
        from :attr:`rng` so runs are reproducible.
    """

    def __init__(self, seed: int = 0):
        self.now: int = 0
        self.rng = random.Random(seed)
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute ``time`` (ns)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        time = int(time)
        ev = EventHandle(time, self._seq, fn, args)
        # heap entries are (time, seq, handle) tuples: comparisons stay in C
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    def after(self, delay: int, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + int(delay), fn, *args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap is empty, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed.
        """
        heap = self._heap
        processed = 0
        exhausted = True  # no more events at or before `until`
        self._running = True
        pop = heapq.heappop
        try:
            while heap:
                time, _, ev = heap[0]
                if ev.cancelled:
                    pop(heap)
                    continue
                if until is not None and time > until:
                    break
                if max_events is not None and processed >= max_events:
                    exhausted = False
                    break
                pop(heap)
                self.now = time
                ev.fn(*ev.args)
                processed += 1
        finally:
            self._running = False
        if exhausted and until is not None and self.now < until:
            # advance the clock to the horizon even when pending events lie
            # beyond it — callers poll in run(until=...) loops
            self.now = until
        self.events_processed += processed
        return processed

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` when idle."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)
