"""Discrete-event simulation engine.

The engine keeps an integer-nanosecond clock and a binary heap of pending
events.  Integer time avoids the floating-point drift that otherwise breaks
event ordering when micro-second RTTs meet 100 Gbps serialisation times.

Events are plain callbacks.  :meth:`Simulator.after` / :meth:`Simulator.at`
return an :class:`EventHandle` that can be cancelled; cancelled events stay in
the heap but are skipped when popped (lazy deletion), which keeps cancellation
O(1).  A live-event counter makes :attr:`Simulator.pending` O(1) too, and the
heap is compacted whenever cancelled entries outnumber live ones, so
cancel-heavy workloads (pacing, RTO re-arms) cannot bloat it.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional

from ..telemetry.recorder import default_recorder

__all__ = ["Simulator", "EventHandle", "SECOND", "MILLISECOND", "MICROSECOND"]

#: Nanoseconds per unit, for readable experiment configs.
SECOND = 1_000_000_000
MILLISECOND = 1_000_000
MICROSECOND = 1_000


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(self, time: int, seq: int, fn: Callable, args: tuple, sim: "Simulator" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references eagerly so cancelled events don't pin packets/flows.
        self.fn = None
        self.args = ()
        if self.sim is not None:
            self.sim._note_cancel()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class Simulator:
    """Single-threaded discrete event simulator with an integer-ns clock.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned :class:`random.Random`.  All stochastic
        components (noise models, workload generators, probe jitter) must draw
        from :attr:`rng` so runs are reproducible.
    """

    #: compact the heap only past this size (tiny heaps aren't worth it)
    COMPACT_MIN = 64

    def __init__(self, seed: int = 0):
        self.now: int = 0
        self.rng = random.Random(seed)
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self.events_processed = 0
        self._live = 0  # scheduled, not yet fired or cancelled
        self._cancelled = 0  # cancelled entries still polluting the heap
        #: telemetry recorder adopted at construction (see repro.telemetry);
        #: components snapshot this, keeping the disabled path to one check
        self.telemetry = default_recorder()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute ``time`` (ns)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        time = int(time)
        ev = EventHandle(time, self._seq, fn, args, self)
        self._live += 1
        # heap entries are (time, seq, handle) tuples: comparisons stay in C
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    def after(self, delay: int, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + int(delay), fn, *args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap is empty, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed.
        """
        heap = self._heap
        processed = 0
        exhausted = True  # no more events at or before `until`
        self._running = True
        pop = heapq.heappop
        try:
            while heap:
                time, _, ev = heap[0]
                if ev.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                if until is not None and time > until:
                    break
                if max_events is not None and processed >= max_events:
                    exhausted = False
                    break
                pop(heap)
                self.now = time
                self._live -= 1
                fn = ev.fn
                args = ev.args
                # mark fired so a late cancel() is a no-op for the counters
                ev.cancelled = True
                ev.sim = None
                fn(*args)
                processed += 1
        finally:
            self._running = False
        if exhausted and until is not None and self.now < until:
            # advance the clock to the horizon even when pending events lie
            # beyond it — callers poll in run(until=...) loops
            self.now = until
        self.events_processed += processed
        tel = self.telemetry
        if processed and tel.enabled:
            tel.sim_events(self.now, processed)
        return processed

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` when idle."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    # ------------------------------------------------------------------
    # cancellation bookkeeping (called from EventHandle.cancel)
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > self.COMPACT_MIN and self._cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place (safe mid-run)."""
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
