"""Network facade: node creation, link wiring, routing, base-RTT math."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple, Union

from .engine import Simulator
from .host import Host
from .packet import HEADER_BYTES, MIN_PACKET_BYTES
from .port import Port
from .switch import Switch, SwitchConfig, ecmp_hash

__all__ = ["Network"]

Node = Union[Host, Switch]


class Network:
    """Owns all nodes and links of one simulated fabric.

    Typical use::

        sim = Simulator(seed=1)
        net = Network(sim, SwitchConfig(n_queues=8))
        sw = net.add_switch()
        h1, h2 = net.add_host(), net.add_host()
        net.connect(h1, sw, rate_bps=100e9, prop_delay_ns=1000)
        net.connect(h2, sw, rate_bps=100e9, prop_delay_ns=1000)
        net.build_routes()
    """

    def __init__(self, sim: Simulator, switch_cfg: Optional[SwitchConfig] = None):
        self.sim = sim
        self.switch_cfg = switch_cfg if switch_cfg is not None else SwitchConfig()
        self.nodes: List[Node] = []
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        #: adjacency: node_id -> list of (egress Port, peer node)
        self._adj: Dict[int, List[Tuple[Port, Node]]] = {}
        self._routes_built = False
        #: armed by :meth:`build_routes` when a default fault plan is active
        #: (see repro.faults.set_default_fault_plan), or set explicitly by
        #: constructing a FaultInjector against this network
        self.fault_injector = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_host(self, name: str = "") -> Host:
        node_id = len(self.nodes)
        host = Host(self.sim, node_id, n_queues=self.switch_cfg.n_queues, name=name)
        self.nodes.append(host)
        self.hosts.append(host)
        self._adj[node_id] = []
        return host

    def add_switch(self, name: str = "", cfg: Optional[SwitchConfig] = None) -> Switch:
        node_id = len(self.nodes)
        switch = Switch(self.sim, node_id, cfg or self.switch_cfg, name=name)
        self.nodes.append(switch)
        self.switches.append(switch)
        self._adj[node_id] = []
        return switch

    def connect(self, a: Node, b: Node, rate_bps: float, prop_delay_ns: int) -> None:
        """Create a full-duplex link between two nodes."""
        port_ab = self._egress_port(a, rate_bps)
        port_ba = self._egress_port(b, rate_bps)
        in_at_b = self._ingress_index(b, port_ab, prop_delay_ns)
        in_at_a = self._ingress_index(a, port_ba, prop_delay_ns)
        port_ab.connect(b, prop_delay_ns, in_at_b)
        port_ba.connect(a, prop_delay_ns, in_at_a)
        self._adj[a.node_id].append((port_ab, b))
        self._adj[b.node_id].append((port_ba, a))

    def _egress_port(self, node: Node, rate_bps: float) -> Port:
        if isinstance(node, Host):
            return node.attach_port(rate_bps)
        idx = node.add_port(rate_bps)
        return node.ports[idx]

    def _ingress_index(self, node: Node, upstream_port: Port, prop_delay_ns: int) -> int:
        if isinstance(node, Host):
            return 0
        in_idx = len(node.ports) - 1 if node.ports else 0
        # For switches the ingress index mirrors the egress port index of the
        # same physical link (full-duplex), which add_port just created (or
        # will create for the b->a direction ordering).
        return in_idx

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """Populate ECMP next-hop tables and finalize switch buffers."""
        for switch in self.switches:
            switch.finalize()
        # register ingress peers now that all ports exist
        for node in self.nodes:
            for port, peer in self._adj[node.node_id]:
                if isinstance(peer, Switch):
                    peer.register_ingress(port.peer_in_idx, port, port.prop_delay_ns)
        for host in self.hosts:
            self._build_routes_to(host)
        self._routes_built = True
        # arm the process-default fault plan (if any) against this fabric;
        # a no-op one-call check when fault injection is off
        from ..faults.plan import current_fault_plan

        plan = current_fault_plan()
        if plan is not None and self.fault_injector is None:
            from ..faults.injector import FaultInjector

            self.fault_injector = FaultInjector(self.sim, self, plan)
            self.fault_injector.arm()

    def _build_routes_to(self, dst: Host) -> None:
        """BFS from ``dst`` over the node graph; ECMP keeps all shortest hops.

        Links whose egress port is down are excluded (failure handling).
        """
        dist: Dict[int, int] = {dst.node_id: 0}
        frontier = deque([dst.node_id])
        while frontier:
            nid = frontier.popleft()
            for port, peer in self._adj[nid]:
                if port.down:
                    continue
                if peer.node_id not in dist:
                    dist[peer.node_id] = dist[nid] + 1
                    frontier.append(peer.node_id)
        for switch in self.switches:
            if switch.node_id not in dist:
                continue
            best = dist[switch.node_id] - 1
            next_hops: List[int] = []
            for idx, (port, peer) in enumerate(self._adj[switch.node_id]):
                if port.down:
                    continue
                if dist.get(peer.node_id, 1 << 30) == best:
                    next_hops.append(self._port_index(switch, port))
            if next_hops:
                switch.routes[dst.node_id] = next_hops

    @staticmethod
    def _port_index(switch: Switch, port: Port) -> int:
        for i, p in enumerate(switch.ports):
            if p is port:
                return i
        raise RuntimeError("port not found on switch")

    # ------------------------------------------------------------------
    # path math
    # ------------------------------------------------------------------
    def path_ports(
        self,
        src: Host,
        dst: Host,
        flow_id: Optional[int] = None,
        hash_salt: int = 0,
    ) -> List[Port]:
        """One concrete shortest path (egress ports traversed src -> dst).

        Without ``flow_id`` this returns the canonical first-choice route at
        every ECMP fan-out.  With ``flow_id`` it applies the same per-flow
        hash the switches use, so the result is the exact path that flow's
        data packets take.
        """
        ports = [src.port]
        node: Node = src.port.peer
        guard = 0
        while node is not dst:
            if not isinstance(node, Switch):
                raise RuntimeError("path wandered into a host that is not dst")
            routes = node.routes.get(dst.node_id)
            if not routes:
                raise RuntimeError(f"no route from {node.name} to {dst.name}")
            if flow_id is not None and len(routes) > 1:
                idx = routes[ecmp_hash(flow_id, node.node_id, hash_salt) % len(routes)]
            else:
                idx = routes[0]
            port = node.ports[idx]
            ports.append(port)
            node = port.peer
            guard += 1
            if guard > 64:
                raise RuntimeError("routing loop detected")
        return ports

    def base_rtt_ns(
        self,
        src: Host,
        dst: Host,
        data_bytes: int = 1000 + HEADER_BYTES,
        ack_bytes: int = MIN_PACKET_BYTES,
    ) -> int:
        """Unloaded RTT for a ``data_bytes`` packet and its ACK.

        Sum of per-hop propagation plus store-and-forward serialisation in
        both directions (the reverse path is assumed symmetric, which holds
        for every topology in this repo).
        """
        fwd = self.path_ports(src, dst)
        rtt = 0
        for port in fwd:
            rtt += port.prop_delay_ns + port.tx_time_ns(data_bytes)
        rev = self.path_ports(dst, src)
        for port in rev:
            rtt += port.prop_delay_ns + port.tx_time_ns(ack_bytes)
        return rtt

    def bottleneck_rate_bps(self, src: Host, dst: Host) -> float:
        return min(p.rate_bps for p in self.path_ports(src, dst))

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def set_link_state(self, a: Node, b: Node, up: bool) -> int:
        """Cut or restore the full-duplex link between ``a`` and ``b``.

        Cutting drops everything queued on both directions (returned count)
        and removes the link from subsequent route computations; call
        :meth:`rebuild_routes` afterwards so traffic takes surviving paths.

        The link must be registered on *both* endpoints' adjacency (as
        :meth:`connect` guarantees); a half-registered link raises before
        anything is mutated, so the network is never left with one direction
        cut and the other forwarding.
        """
        ports_ab = [port for port, peer in self._adj[a.node_id] if peer is b]
        ports_ba = [port for port, peer in self._adj[b.node_id] if peer is a]
        if not ports_ab or not ports_ba:
            if ports_ab or ports_ba:
                raise ValueError(
                    f"link between {a.node_id} and {b.node_id} is only "
                    f"registered on one endpoint (inconsistent adjacency)"
                )
            raise ValueError(f"no link between {a.node_id} and {b.node_id}")
        dropped = 0
        for port in ports_ab + ports_ba:
            dropped += port.cut() if not up else port.restore()
        return dropped

    def rebuild_routes(self) -> None:
        """Recompute ECMP tables, excluding links that are down."""
        for switch in self.switches:
            switch.routes.clear()
            switch._route_cache.clear()
        for host in self.hosts:
            self._build_routes_to(host)

    def total_drops(self) -> int:
        return sum(s.drops for s in self.switches)

    def total_pfc_pauses(self) -> int:
        return sum(s.pfc_pause_count() for s in self.switches)
