"""Workload generators: WebSearch, Poisson arrivals, incast, coflows."""

from .coflow_trace import CoflowSpec, synthesize_coflows
from .distributions import (ALI_STORAGE_CDF, HADOOP_CDF, WEBSEARCH_CDF,
                            EmpiricalCdf, ali_storage, hadoop, websearch)
from .generators import (FlowSpec, file_requests, file_requests_iter,
                         incast_flows, poisson_flows, poisson_flows_iter)
from .trace_io import TraceFormatError, load_trace, save_trace

__all__ = [
    "EmpiricalCdf",
    "websearch",
    "hadoop",
    "ali_storage",
    "WEBSEARCH_CDF",
    "HADOOP_CDF",
    "ALI_STORAGE_CDF",
    "FlowSpec",
    "poisson_flows",
    "poisson_flows_iter",
    "incast_flows",
    "file_requests",
    "file_requests_iter",
    "CoflowSpec",
    "synthesize_coflows",
    "load_trace",
    "save_trace",
    "TraceFormatError",
]
