"""Synthetic coflow workload with the Facebook-Hadoop trace's shape.

The paper generates coflow traffic from the Facebook Hadoop trace released
with Varys/Aalo [29, 31].  The trace itself is not redistributable here, so
this module synthesises coflows matching its published structure (Chowdhury
et al.): coflow *widths* (number of flows) are heavy-tailed — most coflows
are narrow (<10 flows) while a few span hundreds of mappers/reducers — and
per-flow sizes are heavy-tailed MapReduce shuffle sizes, giving the classic
mix of short-narrow and long-wide coflows that makes size-based priority
grouping effective.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .generators import FlowSpec

__all__ = ["CoflowSpec", "synthesize_coflows"]


class CoflowSpec:
    """A coflow: a set of flows that complete together (CCT = max FCT)."""

    __slots__ = ("coflow_id", "flows", "start_ns")

    def __init__(self, coflow_id: int, flows: List[FlowSpec], start_ns: int):
        self.coflow_id = coflow_id
        self.flows = flows
        self.start_ns = start_ns

    @property
    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self.flows)

    @property
    def width(self) -> int:
        return len(self.flows)


def _pareto_int(rng: random.Random, alpha: float, minimum: float, cap: float) -> int:
    value = minimum * (rng.random() ** (-1.0 / alpha))
    return int(min(value, cap))


def synthesize_coflows(
    rng: random.Random,
    n_hosts: int,
    n_coflows: int,
    duration_ns: int,
    mean_flow_bytes: int = 1_000_000,
    width_alpha: float = 1.1,
    size_alpha: float = 1.3,
    max_width: Optional[int] = None,
    start_ns: int = 0,
) -> List[CoflowSpec]:
    """Generate ``n_coflows`` with heavy-tailed widths and flow sizes.

    Coflow arrivals are uniform over ``duration_ns``; each coflow picks
    distinct mapper sources and reducer destinations (many-to-many shuffle).
    """
    if n_hosts < 4:
        raise ValueError("need at least 4 hosts for a shuffle pattern")
    max_width = max_width if max_width is not None else max(4, n_hosts)
    min_flow = max(1000, mean_flow_bytes // 10)
    coflows: List[CoflowSpec] = []
    for c in range(n_coflows):
        t = start_ns + rng.randrange(max(1, duration_ns))
        width = max(1, _pareto_int(rng, width_alpha, 1.0, max_width))
        n_src = max(1, min(n_hosts // 2, width))
        n_dst = max(1, min(n_hosts - n_src, max(1, width // n_src)))
        hosts = rng.sample(range(n_hosts), n_src + n_dst)
        sources, dests = hosts[:n_src], hosts[n_src:]
        flows: List[FlowSpec] = []
        for i in range(width):
            src = sources[i % n_src]
            dst = dests[i % n_dst]
            size = max(min_flow, _pareto_int(rng, size_alpha, min_flow, mean_flow_bytes * 100))
            flows.append(FlowSpec(src, dst, size, t, tag=("coflow", c)))
        coflows.append(CoflowSpec(c, flows, t))
    return coflows
