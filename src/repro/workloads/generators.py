"""Flow-arrival generators: Poisson open-loop traffic, incast, file requests.

All generators return lists of :class:`~repro.transport.flow.Flow`-ready
specs (src, dst, size, start time); the experiment layer turns them into
senders with the CC under test.  They draw from a caller-provided
``random.Random`` so experiments are reproducible and baselines see the
*identical* workload.
"""

from __future__ import annotations

import random
from typing import List

from .distributions import EmpiricalCdf

__all__ = ["FlowSpec", "poisson_flows", "incast_flows", "file_requests"]


class FlowSpec:
    """A workload-level flow before it is bound to a CC and sender."""

    __slots__ = ("src_idx", "dst_idx", "size_bytes", "start_ns", "tag")

    def __init__(self, src_idx: int, dst_idx: int, size_bytes: int, start_ns: int, tag=None):
        self.src_idx = src_idx
        self.dst_idx = dst_idx
        self.size_bytes = size_bytes
        self.start_ns = start_ns
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover
        return f"FlowSpec({self.src_idx}->{self.dst_idx}, {self.size_bytes}B @ {self.start_ns}ns)"


def poisson_flows(
    rng: random.Random,
    n_hosts: int,
    cdf: EmpiricalCdf,
    load: float,
    host_rate_bps: float,
    duration_ns: int,
    start_ns: int = 0,
) -> List[FlowSpec]:
    """Open-loop Poisson arrivals targeting ``load`` of aggregate host capacity.

    Each flow picks a uniform random (src, dst) host pair (src != dst); the
    arrival rate is ``load * n_hosts * host_rate / mean_flow_size`` across
    the cluster, the standard ns-3 traffic-generator construction.
    """
    if not 0 < load < 1:
        raise ValueError("load must be in (0, 1)")
    if n_hosts < 2:
        raise ValueError("need at least two hosts")
    mean_size_bits = cdf.mean() * 8
    lam_per_ns = load * n_hosts * host_rate_bps / mean_size_bits / 1e9  # arrivals per ns
    flows: List[FlowSpec] = []
    t = float(start_ns)
    end = start_ns + duration_ns
    while True:
        t += rng.expovariate(lam_per_ns)
        if t >= end:
            break
        src = rng.randrange(n_hosts)
        dst = rng.randrange(n_hosts - 1)
        if dst >= src:
            dst += 1
        flows.append(FlowSpec(src, dst, max(1, cdf.sample(rng)), int(t)))
    return flows


def incast_flows(
    n_senders: int,
    size_bytes: int,
    start_ns: int = 0,
    dst_idx: int = -1,
    tag=None,
) -> List[FlowSpec]:
    """Synchronous incast: every sender ships ``size_bytes`` to one receiver."""
    return [
        FlowSpec(i, dst_idx, size_bytes, start_ns, tag=tag) for i in range(n_senders)
    ]


def file_requests(
    rng: random.Random,
    n_hosts: int,
    n_requests: int,
    fanout: int,
    piece_bytes: int,
    duration_ns: int,
    start_ns: int = 0,
) -> List[FlowSpec]:
    """The coflow scenario's file-request traffic (§6.2).

    Each request picks ``fanout`` random source nodes that each send one
    piece to a random destination node — the classic distributed-storage
    read / incast pattern.
    """
    if fanout >= n_hosts:
        raise ValueError("fanout must be smaller than the host count")
    flows: List[FlowSpec] = []
    for r in range(n_requests):
        t = start_ns + rng.randrange(max(1, duration_ns))
        dst = rng.randrange(n_hosts)
        sources = rng.sample([h for h in range(n_hosts) if h != dst], fanout)
        for s in sources:
            flows.append(FlowSpec(s, dst, piece_bytes, t, tag=("file", r)))
    return flows
