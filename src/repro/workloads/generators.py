"""Flow-arrival generators: Poisson open-loop traffic, incast, file requests.

Every generator exists in two shapes sharing one draw sequence:

* an **iterator** variant (``poisson_flows_iter``, ``file_requests_iter``)
  that lazily yields :class:`FlowSpec` objects **in non-decreasing
  ``start_ns`` order** — the *streaming-generator contract* the experiment
  layer's staged admission (:class:`repro.experiments.common.FlowAdmitter`)
  relies on.  Memory stays bounded by the live window, not the trace
  length, which is what makes multi-second paper-scale traces feasible
  (millions of arrivals never exist as objects simultaneously);
* the historical **list** API (``poisson_flows``, ``file_requests``),
  now a thin ``list(...)`` over the iterator so both paths are
  byte-identical on identical seeds (pinned by
  ``tests/test_workloads.py::test_poisson_stream_list_identical``).

All generators draw from a caller-provided ``random.Random`` so experiments
are reproducible and baselines see the *identical* workload.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from .distributions import EmpiricalCdf

__all__ = [
    "FlowSpec",
    "poisson_flows",
    "poisson_flows_iter",
    "incast_flows",
    "file_requests",
    "file_requests_iter",
]


class FlowSpec:
    """A workload-level flow before it is bound to a CC and sender."""

    __slots__ = ("src_idx", "dst_idx", "size_bytes", "start_ns", "tag")

    def __init__(self, src_idx: int, dst_idx: int, size_bytes: int, start_ns: int, tag=None):
        self.src_idx = src_idx
        self.dst_idx = dst_idx
        self.size_bytes = size_bytes
        self.start_ns = start_ns
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover
        return f"FlowSpec({self.src_idx}->{self.dst_idx}, {self.size_bytes}B @ {self.start_ns}ns)"


def poisson_flows_iter(
    rng: random.Random,
    n_hosts: int,
    cdf: EmpiricalCdf,
    load: float,
    host_rate_bps: float,
    duration_ns: int,
    start_ns: int = 0,
) -> Iterator[FlowSpec]:
    """Open-loop Poisson arrivals, yielded one at a time in start-time order.

    Each flow picks a uniform random (src, dst) host pair (src != dst); the
    arrival rate is ``load * n_hosts * host_rate / mean_flow_size`` across
    the cluster, the standard ns-3 traffic-generator construction.  Arrival
    times are strictly increasing in the exponential inter-arrival draw, so
    the stream satisfies the sorted-by-``start_ns`` contract by
    construction.  O(1) memory regardless of ``duration_ns``.
    """
    if not 0 < load < 1:
        raise ValueError("load must be in (0, 1)")
    if n_hosts < 2:
        raise ValueError("need at least two hosts")
    mean_size_bits = cdf.mean() * 8
    lam_per_ns = load * n_hosts * host_rate_bps / mean_size_bits / 1e9  # arrivals per ns

    def generate() -> Iterator[FlowSpec]:
        t = float(start_ns)
        end = start_ns + duration_ns
        while True:
            t += rng.expovariate(lam_per_ns)
            if t >= end:
                return
            src = rng.randrange(n_hosts)
            dst = rng.randrange(n_hosts - 1)
            if dst >= src:
                dst += 1
            yield FlowSpec(src, dst, max(1, cdf.sample(rng)), int(t))

    # validate eagerly (above), generate lazily: callers get argument errors
    # at call time, not at the first next()
    return generate()


def poisson_flows(
    rng: random.Random,
    n_hosts: int,
    cdf: EmpiricalCdf,
    load: float,
    host_rate_bps: float,
    duration_ns: int,
    start_ns: int = 0,
) -> List[FlowSpec]:
    """List form of :func:`poisson_flows_iter` (identical draw sequence).

    Prefer the iterator for long traces: this materializes the whole trace
    (millions of specs for multi-second paper-scale durations) up front.
    """
    return list(
        poisson_flows_iter(rng, n_hosts, cdf, load, host_rate_bps, duration_ns, start_ns)
    )


def incast_flows(
    n_senders: int,
    size_bytes: int,
    start_ns: int = 0,
    dst_idx: int = -1,
    tag=None,
) -> List[FlowSpec]:
    """Synchronous incast: every sender ships ``size_bytes`` to one receiver."""
    return [
        FlowSpec(i, dst_idx, size_bytes, start_ns, tag=tag) for i in range(n_senders)
    ]


def file_requests_iter(
    rng: random.Random,
    n_hosts: int,
    n_requests: int,
    fanout: int,
    piece_bytes: int,
    duration_ns: int,
    start_ns: int = 0,
) -> Iterator[FlowSpec]:
    """The coflow scenario's file-request traffic (§6.2), in start-time order.

    Each request picks ``fanout`` random source nodes that each send one
    piece to a random destination node — the classic distributed-storage
    read / incast pattern.

    The RNG draw order is per-request (time, destination, sources), exactly
    as the historical list API, so seeds produce the identical traffic; the
    requests are then *yielded* sorted by arrival time (stable in request
    order) to satisfy the streaming contract.  Memory is O(n_requests)
    compact request tuples; the ``fanout`` :class:`FlowSpec` objects per
    request are only created as the stream is consumed.
    """
    if fanout >= n_hosts:
        raise ValueError("fanout must be smaller than the host count")
    requests = []
    for r in range(n_requests):
        t = start_ns + rng.randrange(max(1, duration_ns))
        dst = rng.randrange(n_hosts)
        sources = rng.sample([h for h in range(n_hosts) if h != dst], fanout)
        requests.append((t, r, dst, sources))
    requests.sort(key=lambda req: (req[0], req[1]))

    def generate() -> Iterator[FlowSpec]:
        for t, r, dst, sources in requests:
            for s in sources:
                yield FlowSpec(s, dst, piece_bytes, t, tag=("file", r))

    return generate()


def file_requests(
    rng: random.Random,
    n_hosts: int,
    n_requests: int,
    fanout: int,
    piece_bytes: int,
    duration_ns: int,
    start_ns: int = 0,
) -> List[FlowSpec]:
    """List form of :func:`file_requests_iter` (identical draw sequence).

    Flows are returned sorted by ``start_ns`` (stable in request order).
    Historically this returned request-loop order — unsorted in time — so
    admission order depended on the request permutation; sorted output makes
    admission deterministic and matches the streaming-generator contract.
    """
    return list(
        file_requests_iter(rng, n_hosts, n_requests, fanout, piece_bytes, duration_ns, start_ns)
    )
