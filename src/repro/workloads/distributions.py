"""Empirical flow-size distributions.

The WebSearch distribution is the DCTCP production trace [Alizadeh et al.
2010] in the piecewise-linear CDF form distributed with the HPCC/ns-3
community artifacts; the paper uses it for the flow-scheduling scenario
(§6.2) at 70 % load and for the Fig 14 per-priority breakdown at 50 % load.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List, Sequence, Tuple

__all__ = [
    "EmpiricalCdf",
    "websearch",
    "hadoop",
    "ali_storage",
    "WEBSEARCH_CDF",
    "HADOOP_CDF",
    "ALI_STORAGE_CDF",
]

#: (size_bytes, cumulative probability) — DCTCP WebSearch
WEBSEARCH_CDF: List[Tuple[float, float]] = [
    (6_000, 0.00),
    (10_000, 0.15),
    (13_000, 0.20),
    (19_000, 0.30),
    (33_000, 0.40),
    (53_000, 0.53),
    (133_000, 0.60),
    (667_000, 0.70),
    (1_333_000, 0.80),
    (3_333_000, 0.90),
    (6_667_000, 0.97),
    (20_000_000, 1.00),
]


class EmpiricalCdf:
    """Inverse-transform sampling over a piecewise-linear CDF."""

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        prev_x, prev_p = points[0]
        if prev_p < 0:
            raise ValueError("CDF starts below 0")
        for x, p in points[1:]:
            if x < prev_x or p < prev_p:
                raise ValueError("CDF points must be non-decreasing")
            prev_x, prev_p = x, p
        if abs(points[-1][1] - 1.0) > 1e-9:
            raise ValueError("CDF must end at probability 1")
        self.xs = [float(x) for x, _ in points]
        self.ps = [float(p) for _, p in points]

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        return int(self.quantile(u))

    def quantile(self, u: float) -> float:
        if not 0.0 <= u <= 1.0:
            raise ValueError("u must be in [0, 1]")
        i = bisect_left(self.ps, u)
        if i == 0:
            return self.xs[0]
        if i >= len(self.ps):
            return self.xs[-1]
        p0, p1 = self.ps[i - 1], self.ps[i]
        x0, x1 = self.xs[i - 1], self.xs[i]
        if p1 == p0:
            return x1
        return x0 + (x1 - x0) * (u - p0) / (p1 - p0)

    def mean(self) -> float:
        """Expected value of the piecewise-linear distribution."""
        total = 0.0
        for i in range(1, len(self.xs)):
            dp = self.ps[i] - self.ps[i - 1]
            total += dp * (self.xs[i] + self.xs[i - 1]) / 2.0
        return total

    def scaled(self, factor: float) -> "EmpiricalCdf":
        """Same shape, sizes multiplied by ``factor`` (CI-scale runs)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return EmpiricalCdf([(max(1.0, x * factor), p) for x, p in zip(self.xs, self.ps)])


#: (size_bytes, cumulative probability) — Facebook Hadoop (data-mining) mix:
#: dominated by tiny control flows with a very heavy shuffle tail
HADOOP_CDF: List[Tuple[float, float]] = [
    (180, 0.10),
    (216, 0.15),
    (560, 0.20),
    (900, 0.30),
    (1_100, 0.40),
    (1_870, 0.53),
    (3_160, 0.60),
    (10_000, 0.70),
    (400_000, 0.80),
    (3_160_000, 0.90),
    (100_000_000, 0.97),
    (1_000_000_000, 1.00),
]

#: (size_bytes, cumulative probability) — Alibaba cloud-storage style mix
#: (bimodal: small metadata ops plus multi-MB object segments)
ALI_STORAGE_CDF: List[Tuple[float, float]] = [
    (1_000, 0.00),
    (4_000, 0.25),
    (16_000, 0.45),
    (64_000, 0.60),
    (256_000, 0.70),
    (1_000_000, 0.80),
    (2_000_000, 0.90),
    (4_000_000, 1.00),
]


def websearch(scale: float = 1.0) -> EmpiricalCdf:
    """The WebSearch workload, optionally size-scaled for faster runs."""
    cdf = EmpiricalCdf(WEBSEARCH_CDF)
    return cdf if scale == 1.0 else cdf.scaled(scale)


def hadoop(scale: float = 1.0) -> EmpiricalCdf:
    """The Facebook-Hadoop flow-size mix (heavier tail than WebSearch)."""
    cdf = EmpiricalCdf(HADOOP_CDF)
    return cdf if scale == 1.0 else cdf.scaled(scale)


def ali_storage(scale: float = 1.0) -> EmpiricalCdf:
    """A cloud-storage style bimodal mix (metadata ops + object segments)."""
    cdf = EmpiricalCdf(ALI_STORAGE_CDF)
    return cdf if scale == 1.0 else cdf.scaled(scale)
