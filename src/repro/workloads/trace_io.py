"""Flow-trace file I/O.

Interops with the whitespace-separated trace format used by the ns-3
datacenter-CC community (HPCC/PrioPlus artifacts):

    <n_flows>
    <src> <dst> <priority> <size_bytes> <start_seconds>
    ...

plus round-tripping of this repo's own :class:`FlowSpec` lists, so measured
workloads can be replayed against other simulators (or vice versa).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from .generators import FlowSpec

__all__ = ["load_trace", "save_trace", "TraceFormatError"]


class TraceFormatError(ValueError):
    """Raised when a trace file does not parse."""


def load_trace(path: Union[str, Path]) -> List[FlowSpec]:
    """Parse an ns-3-style flow trace into :class:`FlowSpec` objects.

    The priority column is preserved in ``spec.tag`` as ``("prio", p)`` so
    the experiment layer may honour or re-derive it.
    """
    path = Path(path)
    lines = [ln.strip() for ln in path.read_text().splitlines()]
    lines = [ln for ln in lines if ln and not ln.startswith("#")]
    if not lines:
        raise TraceFormatError(f"{path}: empty trace")
    try:
        declared = int(lines[0])
    except ValueError as exc:
        raise TraceFormatError(f"{path}: first line must be the flow count") from exc
    body = lines[1:]
    if len(body) != declared:
        raise TraceFormatError(
            f"{path}: header declares {declared} flows but {len(body)} records follow"
        )
    specs: List[FlowSpec] = []
    for lineno, ln in enumerate(body, start=2):
        parts = ln.split()
        if len(parts) != 5:
            raise TraceFormatError(f"{path}:{lineno}: expected 5 fields, got {len(parts)}")
        try:
            src, dst, prio = int(parts[0]), int(parts[1]), int(parts[2])
            size = int(parts[3])
            start_s = float(parts[4])
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{lineno}: malformed record {ln!r}") from exc
        if src == dst:
            raise TraceFormatError(f"{path}:{lineno}: src == dst")
        if size <= 0 or start_s < 0:
            raise TraceFormatError(f"{path}:{lineno}: non-positive size or negative start")
        specs.append(FlowSpec(src, dst, size, int(start_s * 1e9), tag=("prio", prio)))
    return specs


def save_trace(
    specs: Sequence[FlowSpec],
    path: Union[str, Path],
    priority_of: Optional[callable] = None,
) -> None:
    """Write specs in the ns-3-style format (start times in seconds)."""
    path = Path(path)
    rows = [str(len(specs))]
    for s in specs:
        if priority_of is not None:
            prio = priority_of(s)
        elif isinstance(s.tag, tuple) and len(s.tag) == 2 and s.tag[0] == "prio":
            prio = s.tag[1]
        else:
            prio = 0
        rows.append(f"{s.src_idx} {s.dst_idx} {prio} {s.size_bytes} {s.start_ns / 1e9:.9f}")
    path.write_text("\n".join(rows) + "\n")
