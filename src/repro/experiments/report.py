"""Small text-report helpers shared by experiment runners and benches."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "print_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> None:
    print(format_table(headers, rows, title))


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
