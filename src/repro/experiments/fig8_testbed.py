"""Figure 8: the DPDK-testbed experiment, reproduced in simulation.

Four adjacent priorities (3, 4, 5, 6), two flows each, on a 10 Gbps tree
(RTT ≈ 13 µs).  Flows start lowest-priority-first at fixed intervals and
stop in the same order, so the active highest priority changes every
interval.  The paper shows PrioPlus+Swift yields bandwidth immediately when
a higher priority appears (O1) and reclaims it immediately when it leaves
(O2), while Swift with per-priority targets takes ~2-3 ms for both.

The runner reports, per transition, the time for the newly-dominant
priority to reach 80 % of the bottleneck and the average share the dominant
priority held during its reign.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import ChannelConfig, PrioPlusCC, StartTier
from ..cc import Swift, SwiftParams
from ..noise import paper_noise
from ..sim.engine import MICROSECOND, MILLISECOND, Simulator
from ..sim.switch import SwitchConfig
from ..topology import star
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .common import FunctionExperiment, Mode, RateSampler, deprecated_alias, register

__all__ = ["run_fig8", "run_staircase"]

_PRIORITIES = (3, 4, 5, 6)


def _run_fig8(
    mode: str = Mode.PRIOPLUS,
    rate: float = 10e9,
    stagger_ns: int = 4 * MILLISECOND,
    flows_per_prio: int = 2,
    with_noise: bool = True,
    seed: int = 1,
) -> Dict[str, object]:
    """The testbed staircase with priorities 3-6 (Fig 8)."""
    return run_staircase(
        mode,
        priorities=_PRIORITIES,
        rate=rate,
        stagger_ns=stagger_ns,
        flows_per_prio=flows_per_prio,
        with_noise=with_noise,
        seed=seed,
    )


def run_staircase(
    mode: str,
    priorities=_PRIORITIES,
    rate: float = 10e9,
    stagger_ns: int = 4 * MILLISECOND,
    flows_per_prio: int = 2,
    with_noise: bool = True,
    seed: int = 1,
) -> Dict[str, object]:
    """Staggered start/stop staircase over an arbitrary priority ladder.

    Also drives Fig 10a (8 priorities x 30 flows at 100 Gbps).
    Returns per-priority takeover/reclaim latencies and leak shares.
    """
    _PRIORITIES = tuple(priorities)
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    n_senders = len(_PRIORITIES) * flows_per_prio
    net, senders, recv = star(sim, n_senders, rate_bps=rate, link_delay_ns=1500, switch_cfg=cfg)
    channels = ChannelConfig(n_priorities=max(_PRIORITIES))
    noise = paper_noise() if with_noise else None

    n_prios = len(_PRIORITIES)
    total_time = (2 * n_prios) * stagger_ns
    flows: List[Flow] = []
    snds = []
    fid = 1
    for rank, prio in enumerate(_PRIORITIES):
        start = rank * stagger_ns
        # Each priority dominates the bottleneck for exactly two stagger
        # intervals (once on the way up, once on the way down), so sizing
        # flows to that income makes them finish at the staggered end times.
        size = int(rate * 2 * stagger_ns / 8e9 / flows_per_prio)
        for j in range(flows_per_prio):
            host = senders[rank * flows_per_prio + j]
            f = Flow(fid, host, recv, size, priority=0, vpriority=prio, start_ns=start, tag=prio)
            fid += 1
            if mode == Mode.PRIOPLUS:
                cc = PrioPlusCC(
                    Swift(SwiftParams(target_scaling=False)),
                    channels,
                    vpriority=prio,
                    tier=StartTier.MEDIUM,
                )
            elif mode == Mode.SWIFT_TARGETS:
                cc = Swift(
                    SwiftParams(
                        base_target_ns=channels.target_offset_ns(prio),
                        target_scaling=False,
                    )
                )
            else:
                raise ValueError(f"fig8 compares prioplus vs swift_targets, got {mode}")
            snds.append(FlowSender(sim, net, f, cc, noise=noise))
            flows.append(f)

    interval = min(100 * MICROSECOND, max(stagger_ns // 40, 10 * MICROSECOND))
    sampler = RateSampler(sim, snds, key=lambda s: s.flow.tag, interval_ns=interval)
    sim.run(until=3 * total_time)

    def first_time_above(prio: int, t0: int, frac: float = 0.8) -> Optional[int]:
        for t, r in sampler.series.get(prio, []):
            if t > t0 and r >= frac * rate:
                return t
        return None

    done_of = {
        prio: max(f.completion_ns or (1 << 62) for f in flows if f.tag == prio)
        for prio in _PRIORITIES
    }

    # O1: while priority rank r is the highest active (between its start and
    # the next priority's start), lower priorities should hold ~no bandwidth.
    leak_shares: List[float] = []
    takeover_us: List[float] = []
    for rank, prio in enumerate(_PRIORITIES):
        t0 = rank * stagger_ns
        t1 = (rank + 1) * stagger_ns
        took = first_time_above(prio, t0)
        takeover_us.append(((took - t0) / 1e3) if took is not None else float("inf"))
        settle = t0 + (t1 - t0) // 4
        lower = sum(
            sampler.average_rate_bps(p, settle, t1) for p in _PRIORITIES[:rank]
        )
        leak_shares.append(lower / rate)

    # O2: when all strictly-higher priorities have finished, how fast does
    # this priority reclaim the full line (measured from the *actual* finish)?
    reclaim_us: List[float] = []
    for rank, prio in enumerate(_PRIORITIES[:-1]):
        higher_done = max(done_of[p] for p in _PRIORITIES[rank + 1 :])
        if higher_done >= (1 << 62):
            reclaim_us.append(float("inf"))
            continue
        took = first_time_above(prio, higher_done)
        reclaim_us.append(((took - higher_done) / 1e3) if took is not None else float("inf"))

    last_done = max(done_of.values())
    util = sum(f.size_bytes for f in flows) * 8e9 / (rate * last_done)
    return {
        "mode": mode,
        "takeover_us": takeover_us,
        "max_leak_share": max(leak_shares),
        "reclaim_us": reclaim_us,
        "max_reclaim_us": max(reclaim_us),
        "completion_lag": last_done / total_time,
        "utilization": util,
        "drops": net.total_drops(),
    }


register(
    FunctionExperiment(
        "fig8",
        {
            "prioplus": (_run_fig8, {"mode": Mode.PRIOPLUS, "stagger_ns": 2 * MILLISECOND, "seed": 1}),
            "swift_targets": (
                _run_fig8,
                {"mode": Mode.SWIFT_TARGETS, "stagger_ns": 2 * MILLISECOND, "seed": 1},
            ),
        },
        description="testbed staircase: takeover/reclaim latency, PrioPlus vs Swift targets",
    )
)


run_fig8 = deprecated_alias(_run_fig8, "fig8")
