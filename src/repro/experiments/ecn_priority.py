"""Appendix B prototype: virtual priority for ECN-based CCs.

DCTCP flows share one queue; the switch marks by *per-priority thresholds*
(lower priority = smaller threshold).  Compared against uniform marking,
the high-priority flow should keep most of the bandwidth while the low
priority backs off — an approximation of PrioPlus's strict channels that
costs a switch change instead of a host change.
"""

from __future__ import annotations

from typing import Dict

from ..cc import Dctcp
from ..core.ecn_extension import EcnPriorityConfig, install_priority_marking
from ..sim.engine import MILLISECOND, MICROSECOND, Simulator
from ..sim.switch import SwitchConfig
from ..topology import star
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .common import FunctionExperiment, RateSampler, register

__all__ = ["run_ecn_priority"]


def run_ecn_priority(
    per_priority_marking: bool,
    rate: float = 10e9,
    duration_ns: int = 3 * MILLISECOND,
    k_top_bytes: int = 60_000,
    seed: int = 6,
) -> Dict[str, float]:
    """Two DCTCP flows (vpriority 6 vs 1) on one queue; share of the high flow."""
    sim = Simulator(seed)
    cfg = SwitchConfig(
        n_queues=2,
        buffer_bytes=16 * 1024 * 1024,
        ecn_k_bytes=k_top_bytes if not per_priority_marking else None,
    )
    net, senders, recv = star(sim, 2, rate_bps=rate, link_delay_ns=1000, switch_cfg=cfg)
    if per_priority_marking:
        install_priority_marking(net, EcnPriorityConfig(k_top_bytes=k_top_bytes, ratio=0.35, n_priorities=8))

    size = int(rate * duration_ns / 8e9)
    f_hi = Flow(1, senders[0], recv, size, vpriority=6, start_ns=0, tag="hi")
    f_lo = Flow(2, senders[1], recv, size, vpriority=1, start_ns=0, tag="lo")
    s_hi = FlowSender(sim, net, f_hi, Dctcp())
    s_lo = FlowSender(sim, net, f_lo, Dctcp())
    sampler = RateSampler(sim, [s_hi, s_lo], key=lambda s: s.flow.tag, interval_ns=100 * MICROSECOND)
    sim.run(until=duration_ns)
    settle = duration_ns // 3
    hi = sampler.average_rate_bps("hi", settle, duration_ns)
    lo = sampler.average_rate_bps("lo", settle, duration_ns)
    return {
        "per_priority_marking": per_priority_marking,
        "hi_share": hi / rate,
        "lo_share": lo / rate,
        "utilization": (hi + lo) / rate,
    }


register(
    FunctionExperiment(
        "ecn-priority",
        {
            "uniform": (run_ecn_priority, {"per_priority_marking": False, "seed": 6}),
            "per_priority": (run_ecn_priority, {"per_priority_marking": True, "seed": 6}),
        },
        description="virtual priority for ECN CCs: per-priority vs uniform marking",
    )
)
