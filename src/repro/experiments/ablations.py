"""Ablations of PrioPlus's design choices (§4.2, §4.3).

Each knob the paper motivates gets an on/off comparison:

* **probe collision avoidance** (§4.2.1) — when a high-priority burst ends,
  do the parked low-priority flows stampede back?
* **noise filter** (§4.3.1) — how often does measurement noise trigger a
  spurious relinquish with/without the two-consecutive-samples rule?
* **cardinality estimation** (§4.3.1) — does a heavy incast stay inside the
  channel without it?  (The dual-RTT ablation lives in Fig 10c.)
"""

from __future__ import annotations

from typing import Dict

from ..cc import Swift, SwiftParams
from ..core import ChannelConfig, PrioPlusCC, StartTier
from ..noise import LognormalNoise
from ..sim.engine import MICROSECOND, MILLISECOND, Simulator
from ..sim.switch import SwitchConfig
from ..topology import star
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .common import DelaySampler, FunctionExperiment, RateSampler, register

__all__ = [
    "run_collision_avoidance_ablation",
    "run_filter_ablation",
    "run_cardinality_ablation",
]


def run_collision_avoidance_ablation(
    collision_avoidance: bool,
    n_low: int = 16,
    rate: float = 25e9,
    duration_ns: int = 3 * MILLISECOND,
    seed: int = 3,
) -> Dict[str, float]:
    """Low flows parked by a high burst; measure the restart stampede.

    Reports the peak delay overshoot (µs above the lows' D_limit) within the
    window after the high flow finishes, and the number of re-relinquishes
    the stampede causes.
    """
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=16 * 1024 * 1024)
    net, senders, recv = star(sim, n_low + 1, rate_bps=rate, link_delay_ns=1000, switch_cfg=cfg)
    channels = ChannelConfig(n_priorities=4)
    lo, hi = 1, 4
    size = int(rate * duration_ns / 8e9 / n_low)
    lows = []
    for i in range(n_low):
        f = Flow(i + 1, senders[i], recv, size, vpriority=lo, start_ns=0)
        cc = PrioPlusCC(
            Swift(SwiftParams(target_scaling=False)),
            channels,
            vpriority=lo,
            tier=StartTier.LOW,
            collision_avoidance=collision_avoidance,
        )
        lows.append(FlowSender(sim, net, f, cc))
    hi_size = int(rate * 800 * MICROSECOND / 8e9)
    f_hi = Flow(100, senders[n_low], recv, hi_size, vpriority=hi, start_ns=300 * MICROSECOND)
    FlowSender(
        sim,
        net,
        f_hi,
        PrioPlusCC(Swift(SwiftParams(target_scaling=False)), channels, vpriority=hi, tier=StartTier.HIGH),
    )
    sampler = DelaySampler(sim, lows[0], interval_ns=5 * MICROSECOND)
    sim.run(until=duration_ns)
    hi_done = f_hi.completion_ns or duration_ns
    base = lows[0].base_rtt
    d_limit_lo = channels.limit_ns(lo, base)
    window = sampler.values(hi_done, min(hi_done + 300 * MICROSECOND, duration_ns))
    overshoot = max((v - d_limit_lo for v in window), default=0) / 1e3
    re_relinq = sum(s.cc.relinquish_count for s in lows)
    return {
        "collision_avoidance": collision_avoidance,
        "restart_overshoot_us": max(overshoot, 0.0),
        "total_relinquishes": re_relinq,
        "total_probes": sum(s.flow.probes_sent for s in lows),
    }


def run_filter_ablation(
    filter_consecutive: int,
    noise_median_ns: int = 500,
    duration_ns: int = 3 * MILLISECOND,
    rate: float = 10e9,
    seed: int = 5,
) -> Dict[str, float]:
    """Single flow under heavy noise: count spurious relinquishes."""
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 1, rate_bps=rate, link_delay_ns=1000, switch_cfg=cfg)
    # narrow channel so the noise tail reaches D_limit
    channels = ChannelConfig(fluctuation_ns=1200, noise_ns=300, n_priorities=4)
    f = Flow(1, senders[0], recv, int(rate * duration_ns / 8e9), vpriority=2, start_ns=0)
    cc = PrioPlusCC(
        Swift(SwiftParams(target_scaling=False)),
        channels,
        vpriority=2,
        tier=StartTier.MEDIUM,
        probe_first=False,
        filter_consecutive=filter_consecutive,
    )
    snd = FlowSender(sim, net, f, cc, noise=LognormalNoise(median_ns=noise_median_ns, sigma=0.5))
    sampler = RateSampler(sim, [snd], key=lambda s: 0, interval_ns=100 * MICROSECOND)
    sim.run(until=duration_ns)
    util = sampler.average_rate_bps(0, duration_ns // 4, duration_ns) / rate
    return {
        "filter_consecutive": filter_consecutive,
        "relinquishes": cc.relinquish_count,
        "utilization": util,
    }


def run_cardinality_ablation(
    cardinality_estimation: bool,
    n_flows: int = 40,
    rate: float = 25e9,
    duration_ns: int = 2 * MILLISECOND,
    seed: int = 4,
) -> Dict[str, float]:
    """Incast with/without the estimator: fraction of samples over D_limit."""
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=32 * 1024 * 1024)
    net, senders, recv = star(sim, n_flows, rate_bps=rate, link_delay_ns=1000, switch_cfg=cfg)
    prio = 4
    channels = ChannelConfig(n_priorities=prio)
    size = int(rate * duration_ns / 8e9 / n_flows) + 20_000
    snds = []
    for i in range(n_flows):
        f = Flow(i + 1, senders[i], recv, size, vpriority=prio, start_ns=0)
        cc = PrioPlusCC(
            Swift(SwiftParams(target_scaling=False)),
            channels,
            vpriority=prio,
            tier=StartTier.MEDIUM,
            probe_first=False,
            cardinality_estimation=cardinality_estimation,
        )
        snds.append(FlowSender(sim, net, f, cc))
    sampler = DelaySampler(sim, snds[0], interval_ns=10 * MICROSECOND)
    sim.run(until=duration_ns)
    base = snds[0].base_rtt
    d_limit = channels.limit_ns(prio, base)
    values = sampler.values(duration_ns // 4, duration_ns)
    over = sum(1 for v in values if v > d_limit) / max(len(values), 1)
    return {
        "cardinality_estimation": cardinality_estimation,
        "frac_above_limit": over,
        "max_nflow": max(s.cc.nflow for s in snds),
        "relinquishes": sum(s.cc.relinquish_count for s in snds),
    }


def _reduce_ablations(results: Dict[str, dict]) -> Dict[str, list]:
    """Regroup the six ablation points into the legacy on/off-pair layout."""
    return {
        "collision_avoidance": [results["collision_on"], results["collision_off"]],
        "filter": [results["filter_2"], results["filter_1"]],
        "cardinality": [results["cardinality_on"], results["cardinality_off"]],
    }


register(
    FunctionExperiment(
        "ablations",
        {
            "collision_on": (run_collision_avoidance_ablation, {"collision_avoidance": True, "seed": 3}),
            "collision_off": (run_collision_avoidance_ablation, {"collision_avoidance": False, "seed": 3}),
            "filter_2": (run_filter_ablation, {"filter_consecutive": 2, "seed": 5}),
            "filter_1": (run_filter_ablation, {"filter_consecutive": 1, "seed": 5}),
            "cardinality_on": (run_cardinality_ablation, {"cardinality_estimation": True, "seed": 4}),
            "cardinality_off": (run_cardinality_ablation, {"cardinality_estimation": False, "seed": 4}),
        },
        description="design-knob on/off ablations (collision avoidance, filter, cardinality)",
        reduce_fn=_reduce_ablations,
    )
)
