"""Figures 1 & 3: why existing CCs cannot provide virtual priority (§3).

Four micro-benchmarks on a single 100 Gbps bottleneck (RTT ≈ 12 µs):

* **fig3a / fig1** — two D2TCP flows with deadlines 1x and 2x the ideal FCT.
  Strict priority would let the urgent flow finish in one ideal FCT; instead
  both flows decelerate on ECN and share bandwidth, so the urgent flow's FCT
  lands well above ideal while the total stays work-conserving.
* **fig3b** — Swift *with* target scaling and per-priority targets
  (base + 15 µs / base + 5 µs): scaling raises the low-priority target after
  decreases, converging to *weighted* (not strict) sharing.
* **fig3c** — Swift *without* scaling: 300 low-priority flows underutilise
  the link (fluctuations overshoot the low target), and a late high-priority
  flow decelerates because fluctuations cross its target too.
* **fig3d** — Swift without scaling, 2 high then 2 low flows: the low flows
  pin at the minimum-rate floor, and after the high flows finish the link
  stays idle for a long ramp-up (the signal-frequency trade-off).
"""

from __future__ import annotations

from typing import Dict

from ..cc import D2tcp, Swift, SwiftParams
from ..sim.engine import MICROSECOND, MILLISECOND, Simulator
from ..sim.switch import SwitchConfig
from ..topology import star
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .common import FunctionExperiment, RateSampler, deprecated_alias, register, run_until_flows_done

__all__ = ["run_fig3a", "run_fig3b", "run_fig3c", "run_fig3d"]

_RATE = 100e9
_DELAY = 1500  # per-link propagation, ns (base RTT lands near 12 us)


def _star(sim: Simulator, n: int, ecn: bool = False, rate: float = _RATE):
    cfg = SwitchConfig(
        n_queues=2,
        buffer_bytes=32 * 1024 * 1024,
        ecn_k_bytes=100 * 1024 if ecn else None,
    )
    return star(sim, n, rate_bps=rate, link_delay_ns=_DELAY, switch_cfg=cfg)


def _run_fig3a(size_bytes: int = 2_000_000, rate: float = _RATE, seed: int = 1) -> Dict[str, float]:
    """Two D2TCP flows, deadlines 1x and 2x ideal FCT."""
    sim = Simulator(seed)
    net, senders, recv = _star(sim, 2, ecn=True, rate=rate)
    ideal_ns = size_bytes * 8e9 / rate
    f_hi = Flow(1, senders[0], recv, size_bytes, start_ns=0, deadline_ns=int(ideal_ns))
    f_lo = Flow(2, senders[1], recv, size_bytes, start_ns=0, deadline_ns=int(2 * ideal_ns))
    s_hi = FlowSender(sim, net, f_hi, D2tcp())
    s_lo = FlowSender(sim, net, f_lo, D2tcp())
    sampler = RateSampler(sim, [s_hi, s_lo], key=lambda s: s.flow.flow_id, interval_ns=20 * MICROSECOND)
    run_until_flows_done(sim, [f_hi, f_lo], int(ideal_ns * 20))
    # overlap: while the urgent flow runs, how much does the other send?
    lo_rate_during_hi = sampler.average_rate_bps(2, 0, f_hi.completion_ns)
    return {
        "hi_fct_over_ideal": f_hi.fct_ns() / ideal_ns,
        "lo_fct_over_ideal": f_lo.fct_ns() / ideal_ns,
        "lo_share_during_hi": lo_rate_during_hi / rate,
        "hi_met_deadline": float(f_hi.fct_ns() <= ideal_ns * 1.05),
    }


def _run_fig3b(
    duration_ns: int = 4 * MILLISECOND, rate: float = _RATE, seed: int = 1
) -> Dict[str, float]:
    """Swift + target scaling, 2 hi (base+15us) vs 2 lo (base+5us) flows."""
    sim = Simulator(seed)
    net, senders, recv = _star(sim, 4, rate=rate)
    big = int(rate * duration_ns / 8e9)  # effectively long-running
    flows, snds = [], []
    for i in range(4):
        target = 15 * MICROSECOND if i < 2 else 5 * MICROSECOND
        f = Flow(i + 1, senders[i], recv, big, start_ns=0, tag="hi" if i < 2 else "lo")
        cc = Swift(SwiftParams(base_target_ns=target, target_scaling=True))
        snds.append(FlowSender(sim, net, f, cc))
        flows.append(f)
    sampler = RateSampler(sim, snds, key=lambda s: s.flow.tag, interval_ns=50 * MICROSECOND)
    sim.run(until=duration_ns)
    settle = duration_ns // 2
    hi = sampler.average_rate_bps("hi", settle, duration_ns)
    lo = sampler.average_rate_bps("lo", settle, duration_ns)
    return {
        "hi_share": hi / rate,
        "lo_share": lo / rate,
        "utilization": (hi + lo) / rate,
    }


def _run_fig3c(
    n_low: int = 300,
    hi_start_ns: int = 2 * MILLISECOND,
    duration_ns: int = 4 * MILLISECOND,
    rate: float = _RATE,
    seed: int = 1,
) -> Dict[str, float]:
    """Swift w/o scaling: many low flows underutilise; late hi flow decelerates."""
    sim = Simulator(seed)
    net, senders, recv = _star(sim, n_low + 1, rate=rate)
    big = int(rate * duration_ns / 8e9)
    snds, flows = [], []
    for i in range(n_low):
        f = Flow(i + 1, senders[i], recv, max(big // n_low, 100_000), start_ns=0, tag="lo")
        cc = Swift(SwiftParams(base_target_ns=5 * MICROSECOND, target_scaling=False))
        snds.append(FlowSender(sim, net, f, cc))
        flows.append(f)
    f_hi = Flow(n_low + 1, senders[n_low], recv, big, start_ns=hi_start_ns, tag="hi")
    s_hi = FlowSender(
        sim, net, f_hi, Swift(SwiftParams(base_target_ns=15 * MICROSECOND, target_scaling=False))
    )
    snds.append(s_hi)
    sampler = RateSampler(sim, snds, key=lambda s: s.flow.tag, interval_ns=50 * MICROSECOND)
    sim.run(until=duration_ns)
    util_before = (
        sampler.average_rate_bps("lo", hi_start_ns // 2, hi_start_ns)
        / rate
    )
    hi_share_after = sampler.average_rate_bps("hi", hi_start_ns + hi_start_ns // 2, duration_ns) / rate
    return {"util_before_hi": util_before, "hi_share_after": hi_share_after}


def _run_fig3d(
    lo_start_ns: int = 100 * MICROSECOND,
    hi_end_target_ns: int = 1 * MILLISECOND,
    duration_ns: int = 2 * MILLISECOND,
    rate: float = _RATE,
    seed: int = 1,
) -> Dict[str, float]:
    """Swift w/o scaling: min-rate floor for starved lows, slow reclaim."""
    sim = Simulator(seed)
    net, senders, recv = _star(sim, 4, rate=rate)
    hi_size = int(rate * hi_end_target_ns / 8e9 / 2)  # 2 hi flows fill until ~1 ms
    lo_size = int(rate * duration_ns / 8e9)
    # the paper's experiment pins the minimum send rate at 100 Mbps
    base_rtt_guess = 12 * MICROSECOND
    min_cwnd = 100e6 * base_rtt_guess / 8e9
    flows, snds = [], []
    for i in range(2):
        f = Flow(i + 1, senders[i], recv, hi_size, start_ns=0, tag="hi")
        snds.append(
            FlowSender(sim, net, f, Swift(SwiftParams(base_target_ns=15 * MICROSECOND, target_scaling=False)))
        )
        flows.append(f)
    for i in range(2, 4):
        f = Flow(i + 1, senders[i], recv, lo_size, start_ns=lo_start_ns, tag="lo")
        snds.append(
            FlowSender(
                sim,
                net,
                f,
                Swift(
                    SwiftParams(base_target_ns=5 * MICROSECOND, target_scaling=False),
                    min_cwnd_bytes=min_cwnd,
                ),
            )
        )
        flows.append(f)
    sampler = RateSampler(sim, snds, key=lambda s: s.flow.tag, interval_ns=100 * MICROSECOND)
    sim.run(until=duration_ns)
    hi_done = max(f.completion_ns or duration_ns for f in flows[:2])
    # minimum sustained rate of the low flows while the hi flows run
    # (100 us buckets: the 100 Mbps floor is ~1 packet / 84 us)
    lo_series = [r for (t, r) in sampler.series.get("lo", []) if lo_start_ns * 3 <= t <= hi_done]
    lo_min_rate = min(lo_series) if lo_series else 0.0
    # after the hi flows finish, how much of the line do the lows reclaim?
    window_end = min(hi_done + 500 * MICROSECOND, duration_ns)
    lo_share_after = sampler.average_rate_bps("lo", hi_done, window_end) / rate
    return {
        "lo_min_rate_share": lo_min_rate / rate,
        "lo_share_after": lo_share_after,
        "hi_done_us": hi_done / 1e3,
    }


for _name, _fn, _desc in (
    ("fig3a", _run_fig3a, "two D2TCP flows, 1x vs 2x deadlines (Fig 1/3a)"),
    ("fig3b", _run_fig3b, "Swift + target scaling converges to weighted sharing"),
    ("fig3c", _run_fig3c, "Swift w/o scaling: underutilisation + hi-flow deceleration"),
    ("fig3d", _run_fig3d, "Swift w/o scaling: min-rate floor and slow reclaim"),
):
    register(FunctionExperiment(_name, {_name: (_fn, {"seed": 1})}, description=_desc))


run_fig3a = deprecated_alias(_run_fig3a, "fig3a")
run_fig3b = deprecated_alias(_run_fig3b, "fig3b")
run_fig3c = deprecated_alias(_run_fig3c, "fig3c")
run_fig3d = deprecated_alias(_run_fig3d, "fig3d")
