"""Figure 14 (and §6.3): FCT breakdown by priority level and flow size.

Unlike the Fig 11 scenario, priorities are *not* derived from flow size:
each priority level carries a complete WebSearch workload (equal load per
level, 50 % total).  This isolates the question "does a higher delay
threshold hurt the flows that hold it?" — the paper's answer is no: the
highest priority's D_target is 60 µs yet its sub-RTT flows average 20.9 µs,
because the experienced delay is set by whoever currently holds the channel,
not by one's own threshold.

Results are normalised by Physical*+Swift per (priority tier x size bucket).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.fct import percentile
from ..core import StartTier
from ..noise import paper_noise
from ..sim.engine import Simulator
from ..topology import fat_tree
from ..workloads import poisson_flows, websearch
from .common import CCFactory, Experiment, Mode, Point, launch_specs, register, run_until_flows_done
from .flowsched import FlowSchedConfig

__all__ = ["run_fig14", "FIG14_MODES", "normalize_to_physical", "Fig14Experiment"]

FIG14_MODES = (Mode.PRIOPLUS, Mode.PHYSICAL_IDEAL, Mode.PHYSICAL_IDEAL_NOCC, Mode.D2TCP)


def run_fig14(
    mode: str,
    n_priorities: int = 12,
    cfg: Optional[FlowSchedConfig] = None,
) -> Dict[str, object]:
    cfg = cfg or FlowSchedConfig(load=0.5)
    sim = Simulator(cfg.seed)

    def tier_of_level_group(group: int) -> str:
        # group 0 = highest level; tiers per the paper: high / middle / low
        if group == 0:
            return StartTier.HIGH
        if group < n_priorities // 2:
            return StartTier.MEDIUM
        return StartTier.LOW

    factory = CCFactory(
        mode,
        n_priorities=n_priorities,
        tier_of_group=tier_of_level_group,
        probe_tiers=(StartTier.MEDIUM, StartTier.LOW),  # §6.3: probe for mid+low
    )
    switch_cfg = factory.switch_config(
        buffer_bytes=cfg.buffer_bytes(),
        headroom_per_port_per_prio=cfg.headroom_bytes(),
        pfc_enabled=cfg.pfc_enabled,
    )
    net, hosts = fat_tree(
        sim, k=cfg.k, rate_bps=cfg.rate_bps, link_delay_ns=cfg.link_delay_ns, switch_cfg=switch_cfg
    )
    rng = random.Random(cfg.seed)
    cdf = websearch(cfg.size_scale)
    specs = poisson_flows(rng, len(hosts), cdf, cfg.load, cfg.rate_bps, cfg.duration_ns)
    # assign a priority level uniformly: every level sees the same workload
    levels = [rng.randrange(n_priorities) for _ in specs]
    level_of = dict(zip([id(s) for s in specs], levels))

    noise = paper_noise() if cfg.with_noise else None
    flows, senders = launch_specs(
        sim,
        net,
        specs,
        hosts,
        factory,
        group_of=lambda s: level_of[id(s)],
        mtu=cfg.mtu,
        noise=noise,
    )
    for f, lvl in zip(flows, levels):
        f.tag = ("level", n_priorities - 1 - lvl)  # paper labels: larger = higher
    run_until_flows_done(sim, flows, cfg.duration_ns * 40)

    # bucket by (priority tier, size bucket)
    small_cut = cfg.size_classes()[0][2]
    middle_cut = cfg.size_classes()[1][2]
    sub_rtt_cut = int(cfg.rate_bps * 12_000 / 8e9)  # ~one base-RTT of bytes

    def size_bucket(size: int) -> str:
        if size <= sub_rtt_cut:
            return "sub_rtt"
        if size <= small_cut:
            return "small"
        if size <= middle_cut:
            return "middle"
        return "large"

    def tier_name(level: int) -> str:
        # level here uses the paper's labels: 0..n-1 with larger = higher
        if level == n_priorities - 1:
            return "high"
        if level >= n_priorities // 2:
            return "middle"
        return "low"

    cells: Dict[Tuple[str, str], List[float]] = {}
    for f in flows:
        if not f.done:
            continue
        key = (tier_name(f.tag[1]), size_bucket(f.size_bytes))
        cells.setdefault(key, []).append(f.fct_ns())
    return {
        "mode": mode,
        "n_flows": len(flows),
        "n_done": sum(1 for f in flows if f.done),
        "cells": {
            k: {"mean_us": sum(v) / len(v) / 1e3, "p99_us": percentile(v, 99) / 1e3, "count": len(v)}
            for k, v in cells.items()
        },
    }


def normalize_to_physical(
    results: Dict[str, Dict[str, object]], baseline_mode: str = Mode.PHYSICAL_IDEAL
) -> Dict[str, Dict[Tuple[str, str], float]]:
    """mode -> {(tier, bucket): mean FCT / baseline mean FCT}."""
    base = results[baseline_mode]["cells"]
    out: Dict[str, Dict[Tuple[str, str], float]] = {}
    for mode, res in results.items():
        norm = {}
        for key, stats in res["cells"].items():
            if key in base and base[key]["mean_us"] > 0:
                norm[key] = stats["mean_us"] / base[key]["mean_us"]
        out[mode] = norm
    return out


class Fig14Experiment(Experiment):
    """Per-priority-level FCT breakdown, one runner point per mode.

    Cell keys are flattened to ``"tier/bucket"`` strings so point results
    survive the runner's JSON normalisation; ``reduce`` recomputes the
    Physical*-normalised ratios from the per-mode cells.
    """

    name = "fig14"
    description = "FCT breakdown by priority level and size, normalised to Physical*"

    def __init__(
        self,
        modes: Sequence[str] = FIG14_MODES,
        n_priorities: int = 12,
        cfg_kwargs: Optional[Dict[str, object]] = None,
        baseline: str = Mode.PHYSICAL_IDEAL,
    ):
        self.modes = list(modes)
        self.n_priorities = int(n_priorities)
        self.cfg_kwargs = dict(
            cfg_kwargs
            if cfg_kwargs is not None
            else {"rate_bps": 100e9, "duration_ns": 700_000, "size_scale": 0.1, "load": 0.5}
        )
        self.baseline = baseline

    def points(self) -> List[Point]:
        seed = int(self.cfg_kwargs.get("seed", FlowSchedConfig().seed))
        return [
            Point(
                mode,
                {"mode": mode, "n_priorities": self.n_priorities, "cfg": dict(self.cfg_kwargs)},
                seed=seed,
            )
            for mode in self.modes
        ]

    def run_point(self, point: Point) -> dict:
        cfg = FlowSchedConfig(**point.config["cfg"])
        res = run_fig14(point.config["mode"], point.config["n_priorities"], cfg)
        res["cells"] = {f"{tier}/{bucket}": v for (tier, bucket), v in res["cells"].items()}
        return res

    def reduce(self, results: Dict[str, dict]) -> Dict[str, object]:
        base = results[self.baseline]["cells"]
        normalized: Dict[str, Dict[str, float]] = {}
        for mode in self.modes:
            norm = {}
            for key, stats in results[mode]["cells"].items():
                if key in base and base[key]["mean_us"] > 0:
                    norm[key] = stats["mean_us"] / base[key]["mean_us"]
            normalized[mode] = norm
        return {
            "results": {mode: results[mode] for mode in self.modes},
            "normalized_to_physical": normalized,
        }


register(Fig14Experiment())
