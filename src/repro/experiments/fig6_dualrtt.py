"""Figure 6: a window increase becomes visible in the delay two RTTs later.

One fixed-window flow saturates a slow bottleneck so that a steady queue
exists.  At ``bump_time`` the window is enlarged by one packet.  The sender's
measured delay stays flat for ~one more RTT (packets already in flight when
the bump happened) and only rises for packets sent *after* the bump — whose
ACKs arrive a further RTT later.  Hence the dual-RTT guard in §4.2.3:
re-running adaptive increase after one RTT would double-apply it.
"""

from __future__ import annotations

from typing import Dict, List

from ..cc.base import CongestionControl
from ..sim.engine import MICROSECOND, Simulator
from ..sim.switch import SwitchConfig
from ..topology import star
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .common import FunctionExperiment, deprecated_alias, register

__all__ = ["run_fig6"]


class _FixedWindow(CongestionControl):
    """Constant window; the experiment manipulates cwnd externally."""

    def __init__(self, cwnd_bytes: float):
        super().__init__(init_cwnd_bytes=cwnd_bytes)

    def default_max_cwnd(self) -> float:
        return 1e12

    def on_timeout(self) -> None:  # keep the window fixed
        pass


def _run_fig6(
    rate: float = 1e9,
    link_delay_ns: int = 10 * MICROSECOND,
    window_pkts: int = 12,
    seed: int = 1,
) -> Dict[str, float]:
    """Returns the observed delay-step lag in RTTs (expected ~2)."""
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=16 * 1024 * 1024)
    net, senders, recv = star(sim, 1, rate_bps=rate, link_delay_ns=link_delay_ns, switch_cfg=cfg)
    mtu = 1000
    cc = _FixedWindow(window_pkts * mtu)
    size = 4000 * mtu
    flow = Flow(1, senders[0], recv, size, start_ns=0)
    sender = FlowSender(sim, net, flow, cc, mtu=mtu)

    # Sample delay exactly the way Algorithm 1 does: once per RTT, at the
    # ACK of the first packet sent after the previous boundary.
    state = {"bumped": False, "rtt_end_seq": 0, "boundaries": []}
    orig_on_packet = sender.on_packet

    def tap(pkt):
        orig_on_packet(pkt)
        if state["bumped"] and pkt.seq >= state["rtt_end_seq"]:
            state["boundaries"].append(sender.last_rtt)
            state["rtt_end_seq"] = sender.snd_nxt

    # instance attribute shadows the method for the host dispatch as well
    sender.on_packet = tap

    # let the queue reach steady state, then bump the window by one packet
    warmup = 60 * sender.base_rtt
    steady_box = {}

    def bump():
        steady_box["delay"] = sender.last_rtt
        state["bumped"] = True
        state["rtt_end_seq"] = sender.snd_nxt
        cc.cwnd += mtu
        sender.try_send()

    sim.at(warmup, bump)
    sim.run(until=warmup + 40 * sender.base_rtt)

    steady = steady_box["delay"]
    boundaries: List[int] = state["boundaries"]
    if len(boundaries) < 4:
        raise RuntimeError("not enough RTT boundaries observed after the bump")
    threshold = steady + sender.base_rtt // 20
    lag = None
    for i, d in enumerate(boundaries):
        if d > threshold:
            lag = i + 1  # boundary i closes RTT i+1 after the increase
            break
    if lag is None:
        raise RuntimeError("delay never rose after the window bump")
    return {
        "lag_rtts": float(lag),
        "steady_delay_us": steady / 1e3,
        "base_rtt_us": sender.base_rtt / 1e3,
        "boundary_delays_us": [round(d / 1e3, 2) for d in boundaries[:6]],
    }


register(
    FunctionExperiment(
        "fig6",
        {"fig6": (_run_fig6, {"seed": 1})},
        description="window increase shows up in the delay two RTTs later",
    )
)


run_fig6 = deprecated_alias(_run_fig6, "fig6")
