"""``tune_channels``: auto-tuned vs paper-default PrioPlus channel placement.

One point per workload; each point runs a full deterministic
:func:`repro.tune.search.run_search` (CEM by default) and reports the tuned
placement next to the paper default.  The reduce step emits a verdict per
workload — ``tuned_beats_default`` plus the improvement — which is what
EXPERIMENTS.md records and the CI ``tune-smoke`` job asserts.

The search inside a point is serial (``jobs=1``): points are already the
runner's parallelism unit, and nesting a fleet inside a fleet worker would
oversubscribe.  Use ``python -m repro tune --jobs N`` for fleet-parallel
generations of a single search.
"""

from __future__ import annotations

from typing import List, Mapping

from .common import Experiment, Point, register

__all__ = ["TuneChannelsExperiment"]

_FULL = {"workloads": ("flowsched", "fault_flap"), "budget": 24, "pop_size": 6}
_QUICK = {"workloads": ("flowsched_micro", "fault_flap"), "budget": 12, "pop_size": 4}


class TuneChannelsExperiment(Experiment):
    name = "tune_channels"
    description = "black-box search over PrioPlus [D_target, D_limit] bands vs paper default"

    def __init__(
        self,
        workloads=_FULL["workloads"],
        budget: int = _FULL["budget"],
        pop_size: int = _FULL["pop_size"],
        optimizer: str = "cem",
        seed: int = 0,
        quick_eval: bool = False,
    ):
        self.workloads = tuple(workloads)
        self.budget = budget
        self.pop_size = pop_size
        self.optimizer = optimizer
        self.seed = seed
        self.quick_eval = quick_eval

    def points(self) -> List[Point]:
        return [
            Point(
                workload,
                {
                    "workload": workload,
                    "optimizer": self.optimizer,
                    "budget": self.budget,
                    "pop_size": self.pop_size,
                    "seed": self.seed,
                    "quick": self.quick_eval,
                },
                seed=self.seed,
            )
            for workload in self.workloads
        ]

    def run_point(self, point: Point) -> dict:
        from ..tune import make_spec, run_search

        cfg = point.config
        spec = make_spec(cfg["workload"], seed=cfg["seed"], quick=cfg["quick"])
        res = run_search(
            spec,
            optimizer=cfg["optimizer"],
            budget=cfg["budget"],
            pop_size=cfg["pop_size"],
            seed=cfg["seed"],
            jobs=1,
        )
        res.pop("history", None)  # keep cached results compact
        return res

    def reduce(self, results: Mapping[str, dict]) -> dict:
        verdicts = {}
        for workload, res in results.items():
            default_u = res["default"]["utility"]
            best_u = res["best"]["utility"]
            verdicts[workload] = {
                "tuned_beats_default": bool(res["improved"]),
                "default_utility": default_u,
                "tuned_utility": best_u,
                "improvement_pct": (
                    100.0 * (best_u - default_u) / abs(default_u) if default_u else None
                ),
                "tuned_bands_ns": res["best"]["bands"],
                "default_bands_ns": res["default"]["bands"],
                "evaluations": res["evaluations"],
            }
        return {
            "optimizer": self.optimizer,
            "seed": self.seed,
            "verdict": all(v["tuned_beats_default"] for v in verdicts.values()),
            "workloads": verdicts,
            "searches": dict(results),
        }

    def quick(self) -> "TuneChannelsExperiment":
        return TuneChannelsExperiment(
            workloads=_QUICK["workloads"],
            budget=_QUICK["budget"],
            pop_size=_QUICK["pop_size"],
            optimizer=self.optimizer,
            seed=self.seed,
            quick_eval=True,
        )


register(TuneChannelsExperiment())
