"""Figures 12a/12b/15/17/18: the coflow-scheduling comparisons.

Thin wrappers over :mod:`repro.experiments.coflow_scenario`:

* :func:`run_fig12ab` — PrioPlus+Swift vs Physical+Swift at 40 % and 70 %
  load (speedup over the no-priority Swift baseline, high-4/low-4 split);
  the same result dict carries the p99 tail numbers used by Fig 15.
* :func:`run_fig17` — the 70 % point with PFC disabled and IRN-style loss
  recovery (fast retransmit + short RTO).
* :func:`run_fig18` — adds HPCC and Physical* w/o CC.

Scale note (documented in EXPERIMENTS.md): at CI scale the physical-priority
baseline benefits from deep-buffer backlog scheduling that masks Swift's
slow post-starvation recovery, so PrioPlus's *relative* advantage over
physical queues from the paper's multi-second runs is not fully visible;
the directional claims (both beat the baseline; high priorities gain most;
lossless vs lossy parity for PrioPlus) are asserted instead.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.engine import MILLISECOND
from .coflow_scenario import CoflowConfig, run_coflow_comparison
from .common import Mode

__all__ = ["ci_config", "run_fig12ab", "run_fig17", "run_fig18"]


def ci_config(load: float = 0.7, lossy: bool = False, **overrides) -> CoflowConfig:
    """The reduced-scale coflow preset used by the benchmarks."""
    params = dict(
        n_racks=2,
        hosts_per_rack=3,
        host_rate_bps=25e9,
        core_rate_bps=100e9,
        load=load,
        duration_ns=2 * MILLISECOND,
        mean_flow_bytes=500_000,
        request_fanout=4,
        request_piece_bytes=300_000,
        link_delay_ns=300,
        lossy=lossy,
    )
    params.update(overrides)
    return CoflowConfig(**params)


def run_fig12ab(
    load: float = 0.7, cfg: Optional[CoflowConfig] = None
) -> Dict[str, object]:
    cfg = cfg or ci_config(load=load)
    return run_coflow_comparison([Mode.PRIOPLUS, Mode.PHYSICAL], cfg)


def run_fig17(cfg: Optional[CoflowConfig] = None) -> Dict[str, object]:
    cfg = cfg or ci_config(load=0.7, lossy=True)
    return run_coflow_comparison([Mode.PRIOPLUS, Mode.PHYSICAL], cfg)


def run_fig18(cfg: Optional[CoflowConfig] = None) -> Dict[str, object]:
    cfg = cfg or ci_config(load=0.7)
    return run_coflow_comparison(
        [Mode.PRIOPLUS, Mode.HPCC, Mode.PHYSICAL_IDEAL_NOCC], cfg
    )
