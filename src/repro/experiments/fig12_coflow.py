"""Figures 12a/12b/15/17/18: the coflow-scheduling comparisons.

Thin wrappers over :mod:`repro.experiments.coflow_scenario`:

* :func:`_run_fig12ab` — PrioPlus+Swift vs Physical+Swift at 40 % and 70 %
  load (speedup over the no-priority Swift baseline, high-4/low-4 split);
  the same result dict carries the p99 tail numbers used by Fig 15.
* :func:`_run_fig17` — the 70 % point with PFC disabled and IRN-style loss
  recovery (fast retransmit + short RTO).
* :func:`_run_fig18` — adds HPCC and Physical* w/o CC.

Scale note (documented in EXPERIMENTS.md): at CI scale the physical-priority
baseline benefits from deep-buffer backlog scheduling that masks Swift's
slow post-starvation recovery, so PrioPlus's *relative* advantage over
physical queues from the paper's multi-second runs is not fully visible;
the directional claims (both beat the baseline; high priorities gain most;
lossless vs lossy parity for PrioPlus) are asserted instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.engine import MILLISECOND
from .coflow_scenario import (
    CoflowConfig,
    build_workload,
    run_coflow_comparison,
    run_coflow_mode,
    speedup_summary,
)
from .common import Experiment, Mode, Point, deprecated_alias, register

__all__ = [
    "ci_config",
    "ci_config_kwargs",
    "paper_config_kwargs",
    "run_fig12ab",
    "run_fig17",
    "run_fig18",
    "CoflowComparisonExperiment",
    "PaperCoflowComparisonExperiment",
]


def ci_config_kwargs(load: float = 0.7, lossy: bool = False, **overrides) -> Dict[str, object]:
    """The reduced-scale coflow preset, as plain :class:`CoflowConfig` kwargs.

    Kept as a JSON-safe dict so experiment points can carry it through the
    runner's cache key and across process boundaries.
    """
    params: Dict[str, object] = dict(
        n_racks=2,
        hosts_per_rack=3,
        host_rate_bps=25e9,
        core_rate_bps=100e9,
        load=load,
        duration_ns=2 * MILLISECOND,
        mean_flow_bytes=500_000,
        request_fanout=4,
        request_piece_bytes=300_000,
        link_delay_ns=300,
        lossy=lossy,
    )
    params.update(overrides)
    return params


def ci_config(load: float = 0.7, lossy: bool = False, **overrides) -> CoflowConfig:
    """The reduced-scale coflow preset used by the benchmarks."""
    return CoflowConfig(**ci_config_kwargs(load=load, lossy=lossy, **overrides))


def paper_config_kwargs(**overrides) -> Dict[str, object]:
    """Coflow knobs for the 320-host paper fabric over a multi-second trace.

    ``n_racks * hosts_per_rack`` is kept at 320 so workload host indices map
    onto :func:`repro.topology.paper_fabric` (which ignores the rack split —
    its layout is the k=6 fat-tree).  Load follows the same honest re-scope
    as ``PAPER_LONG_CFG``: the paper's 40–70 % load at 320 hosts ×
    100 Gbps × 2 s is a multi-terabyte trace no CI-budget replay carries,
    so the long variant keeps duration and fabric at paper scale and trades
    arrival rate, documented per-figure in EXPERIMENTS.md.
    """
    params: Dict[str, object] = dict(
        n_racks=16,
        hosts_per_rack=20,  # 16 x 20 = 320 = paper_fabric host count
        host_rate_bps=100e9,
        core_rate_bps=400e9,  # unused under the paper_fabric override
        load=0.002,
        duration_ns=2_000 * MILLISECOND,
        mean_flow_bytes=500_000,
        request_fanout=8,
        request_piece_bytes=300_000,
        link_delay_ns=1_000,
    )
    params.update(overrides)
    return params


def _run_fig12ab(
    load: float = 0.7, cfg: Optional[CoflowConfig] = None
) -> Dict[str, object]:
    cfg = cfg or ci_config(load=load)
    return run_coflow_comparison([Mode.PRIOPLUS, Mode.PHYSICAL], cfg)


def _run_fig17(cfg: Optional[CoflowConfig] = None) -> Dict[str, object]:
    cfg = cfg or ci_config(load=0.7, lossy=True)
    return run_coflow_comparison([Mode.PRIOPLUS, Mode.PHYSICAL], cfg)


def _run_fig18(cfg: Optional[CoflowConfig] = None) -> Dict[str, object]:
    cfg = cfg or ci_config(load=0.7)
    return run_coflow_comparison(
        [Mode.PRIOPLUS, Mode.HPCC, Mode.PHYSICAL_IDEAL_NOCC], cfg
    )


class CoflowComparisonExperiment(Experiment):
    """One coflow comparison, sharded per CC mode.

    Each mode (baseline included) replays the identical pre-built workload in
    its own simulation, so the modes are embarrassingly parallel.  The
    workload itself is rebuilt deterministically from the config seed both in
    the points and in ``reduce`` — it is never shipped between processes.
    """

    def __init__(
        self,
        name: str,
        modes: Sequence[str],
        cfg_kwargs: Dict[str, object],
        baseline: str = Mode.SWIFT,
        description: str = "",
    ):
        self.name = name
        self.modes = list(modes)
        self.cfg_kwargs = dict(cfg_kwargs)
        self.baseline = baseline
        self.description = description

    def points(self) -> List[Point]:
        seed = int(self.cfg_kwargs.get("seed", CoflowConfig().seed))
        return [
            Point(mode, {"mode": mode, "cfg": dict(self.cfg_kwargs)}, seed=seed)
            for mode in [self.baseline, *self.modes]
        ]

    def run_point(self, point: Point) -> dict:
        cfg = CoflowConfig(**point.config["cfg"])
        jobs, groups = build_workload(cfg)
        cct = run_coflow_mode(point.config["mode"], cfg, jobs, groups)
        return {"cct": {str(cid): ns for cid, ns in cct.items()}}

    def reduce(self, results: Dict[str, dict]) -> Dict[str, object]:
        cfg = CoflowConfig(**self.cfg_kwargs)
        jobs, groups = build_workload(cfg)
        ccts = {
            pname: {int(cid): ns for cid, ns in res["cct"].items()}
            for pname, res in results.items()
        }
        base_cct = ccts[self.baseline]
        return {
            "config": dict(self.cfg_kwargs),
            "n_jobs": len(jobs),
            "baseline": self.baseline,
            "speedups": {
                mode: speedup_summary(base_cct, ccts[mode], groups) for mode in self.modes
            },
        }


class PaperCoflowComparisonExperiment(CoflowComparisonExperiment):
    """A coflow comparison on the 320-host paper fabric, multi-second trace.

    Identical sharding and reduction to the parent; every point runs through
    staged admission + the hybrid fluid core on
    :func:`repro.topology.paper_fabric` instead of the reduced multi-rack
    CI fabric.
    """

    def run_point(self, point: Point) -> dict:
        from ..topology import paper_fabric

        cfg = CoflowConfig(**point.config["cfg"])

        def topology(sim, switch_cfg):
            return paper_fabric(
                sim,
                rate_bps=cfg.host_rate_bps,
                link_delay_ns=cfg.link_delay_ns,
                switch_cfg=switch_cfg,
            )

        jobs, groups = build_workload(cfg)
        cct = run_coflow_mode(
            point.config["mode"],
            cfg,
            jobs,
            groups,
            topology=topology,
            streaming=True,
            fluid=True,
        )
        return {"cct": {str(cid): ns for cid, ns in cct.items()}}


register(
    CoflowComparisonExperiment(
        "fig12",
        [Mode.PRIOPLUS, Mode.PHYSICAL],
        ci_config_kwargs(load=0.7, duration_ns=1_500_000),
        description="coflow speedups over the no-priority Swift baseline (70% load)",
    )
)
register(
    CoflowComparisonExperiment(
        "fig17",
        [Mode.PRIOPLUS, Mode.PHYSICAL],
        ci_config_kwargs(load=0.7, duration_ns=1_200_000, lossy=True),
        description="coflow speedups with PFC off and IRN-style loss recovery",
    )
)
register(
    CoflowComparisonExperiment(
        "fig18",
        [Mode.PRIOPLUS, Mode.HPCC, Mode.PHYSICAL_IDEAL_NOCC],
        ci_config_kwargs(load=0.7, duration_ns=1_200_000),
        description="coflow speedups incl. HPCC and Physical* without CC",
    )
)
register(
    PaperCoflowComparisonExperiment(
        "fig12_paper",
        [Mode.PRIOPLUS, Mode.PHYSICAL],
        paper_config_kwargs(),
        description="coflow speedups on the 320-host paper fabric, 2s trace",
    )
)
register(
    PaperCoflowComparisonExperiment(
        "fig18_paper",
        [Mode.PRIOPLUS, Mode.HPCC, Mode.PHYSICAL_IDEAL_NOCC],
        paper_config_kwargs(),
        description=(
            "coflow speedups incl. HPCC and Physical* w/o CC on the "
            "320-host paper fabric, 2s trace"
        ),
    )
)


run_fig12ab = deprecated_alias(_run_fig12ab, "fig12")
run_fig17 = deprecated_alias(_run_fig17, "fig17")
run_fig18 = deprecated_alias(_run_fig18, "fig18")
