"""Quickstart scenario as a CLI-runnable experiment.

Mirrors ``examples/quickstart.py``: two flows share one physical switch queue
on a 10 Gbps bottleneck; a large low-priority transfer starts first, a small
high-priority transfer arrives mid-way and preempts the bandwidth via
PrioPlus channels.  Small and fast, which makes it the canonical scenario for
exercising the observability layer::

    python -m repro quickstart --trace /tmp/quickstart.json
    # then open /tmp/quickstart.json in ui.perfetto.dev
"""

from __future__ import annotations

from ..core import ChannelConfig, PrioPlusCC, StartTier
from ..cc import Swift, SwiftParams
from ..sim.engine import Simulator
from ..topology import star
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .common import FunctionExperiment, attach_telemetry, register

__all__ = ["run_quickstart"]


def _prioplus(channels: ChannelConfig, vpriority: int, tier: str) -> PrioPlusCC:
    return PrioPlusCC(
        Swift(SwiftParams(target_scaling=False)), channels, vpriority=vpriority, tier=tier
    )


def run_quickstart(
    rate_bps: float = 10e9,
    link_delay_ns: int = 1500,
    low_bytes: int = 2_000_000,
    high_bytes: int = 500_000,
    high_start_ns: int = 300_000,
    seed: int = 1,
) -> dict:
    """Two-flow virtual-priority demo; returns per-flow FCTs and slowdowns."""
    sim = Simulator(seed=seed)
    net, senders, receiver = star(sim, n_senders=2, rate_bps=rate_bps, link_delay_ns=link_delay_ns)
    channels = ChannelConfig(n_priorities=8)

    low = Flow(1, senders[0], receiver, size_bytes=low_bytes, vpriority=1, start_ns=0)
    high = Flow(2, senders[1], receiver, size_bytes=high_bytes, vpriority=6, start_ns=high_start_ns)

    FlowSender(sim, net, low, _prioplus(channels, 1, StartTier.LOW))
    s_high = FlowSender(sim, net, high, _prioplus(channels, 6, StartTier.HIGH))

    sim.run(until=50_000_000)

    ideal_high = high.size_bytes * 8e9 / rate_bps + s_high.base_rtt
    result = {
        "high_fct_ns": high.fct_ns() if high.done else None,
        "low_fct_ns": low.fct_ns() if low.done else None,
        "high_fct_over_ideal": (high.fct_ns() / ideal_high) if high.done else None,
        "low_probes_sent": low.probes_sent,
        "all_done": low.done and high.done,
    }
    return attach_telemetry(result)


register(
    FunctionExperiment(
        "quickstart",
        {"quickstart": (run_quickstart, {"seed": 1})},
        description="two-flow virtual-priority demo (canonical telemetry scenario)",
    )
)
