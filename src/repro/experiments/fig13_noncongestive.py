"""Figure 13: operating under non-congestive delay variation (§6.3).

The Fig 8 staircase is replayed with an extra *uniform* delay component of
range ``V`` injected into every measurement, while PrioPlus's channel noise
tolerance ``B`` is set to 10/20/30 µs.  The metric is the paper's
*Normalised FCT Gap*: mean over flows of |FCT_PrioPlus − FCT_Physical| /
FCT_Physical, where Physical is Swift on ideal physical queues over the same
staircase workload.

Paper shape: the gap stays flat until the non-congestive range exceeds the
configured tolerance (within a few µs), then grows — tolerances of 10/20/30
µs first degrade at ranges 14/24/32 µs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..cc import Swift, SwiftParams
from ..core import ChannelConfig, PrioPlusCC, StartTier
from ..noise import CompositeNoise, UniformNoise, paper_noise
from ..sim.engine import MILLISECOND, Simulator
from ..sim.switch import SwitchConfig
from ..topology import star
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .common import Experiment, Point, deprecated_alias, register

__all__ = ["run_fig13_point", "run_fig13"]

_PRIORITIES = (1, 2, 3, 4)


def _staircase_fcts(
    use_prioplus: bool,
    tolerance_us: float,
    noncongestive_range_us: float,
    rate: float,
    stagger_ns: int,
    seed: int,
) -> List[int]:
    """FCTs of the Fig 8-style staircase under extra uniform delay."""
    sim = Simulator(seed)
    n_prios = len(_PRIORITIES)
    flows_per_prio = 2
    if use_prioplus:
        cfg = SwitchConfig(n_queues=2, buffer_bytes=16 * 1024 * 1024)
    else:
        cfg = SwitchConfig(n_queues=n_prios + 1, buffer_bytes=16 * 1024 * 1024, ideal_headroom=True)
    net, senders, recv = star(
        sim, n_prios * flows_per_prio, rate_bps=rate, link_delay_ns=1500, switch_cfg=cfg
    )
    channels = ChannelConfig(
        fluctuation_ns=3200, noise_ns=int(tolerance_us * 1000), n_priorities=max(_PRIORITIES)
    )
    noise = CompositeNoise(paper_noise(), UniformNoise(int(noncongestive_range_us * 1000)))

    flows: List[Flow] = []
    fid = 1
    for rank, prio in enumerate(_PRIORITIES):
        start = rank * stagger_ns
        size = int(rate * 2 * stagger_ns / 8e9 / flows_per_prio)
        for j in range(flows_per_prio):
            host = senders[rank * flows_per_prio + j]
            f = Flow(
                fid,
                host,
                recv,
                size,
                priority=0 if use_prioplus else prio,
                vpriority=prio,
                start_ns=start,
            )
            fid += 1
            if use_prioplus:
                cc = PrioPlusCC(
                    Swift(SwiftParams(target_scaling=False)),
                    channels,
                    vpriority=prio,
                    tier=StartTier.MEDIUM,
                )
            else:
                cc = Swift(SwiftParams())
            FlowSender(sim, net, f, cc, noise=noise)
            flows.append(f)
    total = 2 * n_prios * stagger_ns
    sim.run(until=total * 6)
    return [f.fct_ns() if f.done else total * 6 for f in flows]


def run_fig13_point(
    tolerance_us: float,
    noncongestive_range_us: float,
    rate: float = 10e9,
    stagger_ns: int = 1 * MILLISECOND,
    seed: int = 1,
) -> float:
    """Normalised FCT gap for one (tolerance, range) point."""
    pp = _staircase_fcts(True, tolerance_us, noncongestive_range_us, rate, stagger_ns, seed)
    ph = _staircase_fcts(False, tolerance_us, noncongestive_range_us, rate, stagger_ns, seed)
    gaps = [abs(a - b) / b for a, b in zip(pp, ph)]
    return sum(gaps) / len(gaps)


def _run_fig13(
    tolerances_us: Sequence[float] = (10.0, 20.0, 30.0),
    ranges_us: Sequence[float] = (0.0, 8.0, 16.0, 24.0, 32.0, 40.0),
    rate: float = 10e9,
    stagger_ns: int = 1 * MILLISECOND,
    seed: int = 1,
) -> Dict[float, Dict[float, float]]:
    """tolerance -> {non-congestive range -> normalised FCT gap}."""
    out: Dict[float, Dict[float, float]] = {}
    for tol in tolerances_us:
        out[tol] = {
            rng: run_fig13_point(tol, rng, rate, stagger_ns, seed) for rng in ranges_us
        }
    return out


class Fig13Experiment(Experiment):
    """Normalised FCT gap, sharded per (stack, non-congestive range).

    Each ``run_fig13_point`` call hides two full staircase simulations
    (PrioPlus and the physical baseline); splitting them into separate points
    lets the runner schedule all four simulations concurrently.  ``reduce``
    pairs them back up into the legacy ``{"gap@<range>us": gap}`` dict.
    """

    name = "fig13"
    description = "FCT gap vs non-congestive delay range (tolerance 10 us)"

    def __init__(
        self,
        tolerance_us: float = 10.0,
        ranges_us: Sequence[float] = (6.0, 40.0),
        rate: float = 10e9,
        stagger_ns: int = 500_000,
        seed: int = 1,
    ):
        self.tolerance_us = float(tolerance_us)
        self.ranges_us = tuple(float(r) for r in ranges_us)
        self.rate = rate
        self.stagger_ns = stagger_ns
        self.seed = seed

    def points(self) -> List[Point]:
        pts = []
        for rng in self.ranges_us:
            for kind, use_prioplus in (("prioplus", True), ("physical", False)):
                pts.append(
                    Point(
                        f"{kind}@{rng:g}us",
                        {
                            "use_prioplus": use_prioplus,
                            "tolerance_us": self.tolerance_us,
                            "noncongestive_range_us": rng,
                            "rate": self.rate,
                            "stagger_ns": self.stagger_ns,
                            "seed": self.seed,
                        },
                        seed=self.seed,
                    )
                )
        return pts

    def run_point(self, point: Point) -> dict:
        c = point.config
        fcts = _staircase_fcts(
            c["use_prioplus"],
            c["tolerance_us"],
            c["noncongestive_range_us"],
            c["rate"],
            c["stagger_ns"],
            c["seed"],
        )
        return {"fcts": fcts}

    def reduce(self, results: Dict[str, dict]) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for rng in self.ranges_us:
            pp = results[f"prioplus@{rng:g}us"]["fcts"]
            ph = results[f"physical@{rng:g}us"]["fcts"]
            gaps = [abs(a - b) / b for a, b in zip(pp, ph)]
            out[f"gap@{rng:g}us"] = sum(gaps) / len(gaps)
        return out


register(Fig13Experiment())


run_fig13 = deprecated_alias(_run_fig13, "fig13")
