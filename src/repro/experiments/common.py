"""Shared experiment machinery.

Every figure/table runner builds on three pieces:

* :class:`CCFactory` — maps an evaluation *mode* (PrioPlus+Swift, physical
  priority + Swift, Physical* ideal queues, NoCC, D2TCP, HPCC, LEDBAT...) to
  per-flow CC instances, physical queue assignments and a switch
  configuration.  Priority *groups* are 0-based with **group 0 = highest
  priority** (smallest flows), matching the scheduling literature; the
  factory translates groups to physical queue indices (larger = higher, the
  switch convention) or PrioPlus channel indices.
* :func:`launch_specs` — turns workload :class:`FlowSpec` lists into bound
  senders on a topology.
* :class:`RateSampler` / :class:`DelaySampler` — time-series probes used by
  the micro-benchmark figures.
"""

from __future__ import annotations

import functools
import importlib
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..cc import D2tcp, Hpcc, Ledbat, NoCC, PowerTcp, Swift, SwiftParams
from ..core import ChannelConfig, PrioPlusCC, StartTier
from ..sim.engine import MICROSECOND, Simulator
from ..sim.host import Host
from ..sim.network import Network
from ..sim.pfc import PfcConfig
from ..sim.switch import SwitchConfig
from ..telemetry import current_recorder
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from ..workloads.generators import FlowSpec

__all__ = [
    "Mode",
    "CCFactory",
    "launch_specs",
    "FlowAdmitter",
    "run_admitter",
    "RateSampler",
    "DelaySampler",
    "run_until_flows_done",
    "telemetry_section",
    "attach_telemetry",
    "Point",
    "Experiment",
    "FunctionExperiment",
    "ExperimentRegistry",
    "REGISTRY",
    "register",
    "get_experiment",
    "experiment_names",
    "deprecated_alias",
]


class Mode:
    """Evaluation modes compared throughout §6."""

    PRIOPLUS = "prioplus"  # PrioPlus + Swift, single data queue
    PRIOPLUS_LEDBAT = "prioplus_ledbat"  # PrioPlus + LEDBAT
    PRIOPLUS_SAME_ACK = "prioplus_same_ack"  # PrioPlus*: ACKs share the data queue
    PHYSICAL = "physical"  # Swift + real priority queues (headroom cost, <= 8)
    PHYSICAL_IDEAL = "physical_ideal"  # Physical*: headroom is free, any count
    PHYSICAL_IDEAL_NOCC = "physical_ideal_nocc"  # Physical* without CC
    SWIFT = "swift"  # Swift, no prioritisation (baseline for speedups)
    SWIFT_TARGETS = "swift_targets"  # Swift w/o scaling, per-priority targets (§3.2)
    LEDBAT_TARGETS = "ledbat_targets"  # LEDBAT with per-priority targets
    D2TCP = "d2tcp"  # single queue, deadline-weighted ECN backoff (§3.1)
    HPCC = "hpcc"  # HPCC + physical priority queues
    POWERTCP = "powertcp"  # PowerTCP + physical priority queues

    ALL = (
        PRIOPLUS,
        PRIOPLUS_LEDBAT,
        PRIOPLUS_SAME_ACK,
        PHYSICAL,
        PHYSICAL_IDEAL,
        PHYSICAL_IDEAL_NOCC,
        SWIFT,
        SWIFT_TARGETS,
        LEDBAT_TARGETS,
        D2TCP,
        HPCC,
        POWERTCP,
    )

    ECN_MODES = (D2TCP, HPCC)
    SINGLE_QUEUE_MODES = (PRIOPLUS, PRIOPLUS_LEDBAT, PRIOPLUS_SAME_ACK, SWIFT, SWIFT_TARGETS, LEDBAT_TARGETS, D2TCP)


#: the physical-queue ceiling the paper cites (8 lossless priorities via PFC)
MAX_PHYSICAL_PRIORITIES = 8


class CCFactory:
    """Builds CC instances and switch configs for one mode."""

    def __init__(
        self,
        mode: str,
        n_priorities: int = 8,
        channels: Optional[ChannelConfig] = None,
        swift_params: Optional[SwiftParams] = None,
        base_target_ns: int = 20 * MICROSECOND,
        swift_target_step_ns: int = 4 * MICROSECOND,
        d2tcp_ddl_factors: Optional[Sequence[float]] = None,
        tier_of_group: Optional[Callable[[int], str]] = None,
        probe_first: Optional[bool] = None,
        probe_tiers: Optional[Sequence[str]] = None,
        empty_eps_ns: Optional[int] = None,
    ):
        if mode not in Mode.ALL:
            raise ValueError(f"unknown mode {mode!r}")
        if n_priorities < 1:
            raise ValueError("need at least one priority")
        if mode == Mode.PHYSICAL and n_priorities > MAX_PHYSICAL_PRIORITIES:
            raise ValueError(
                f"physical priority supports at most {MAX_PHYSICAL_PRIORITIES} "
                f"queues (paper §2.2); use PHYSICAL_IDEAL beyond that"
            )
        self.mode = mode
        self.n_priorities = n_priorities
        self.channels = channels or ChannelConfig(n_priorities=n_priorities)
        self.swift_params = swift_params
        self.base_target_ns = base_target_ns
        self.swift_target_step_ns = swift_target_step_ns
        self.d2tcp_ddl_factors = d2tcp_ddl_factors
        self._tier_of_group = tier_of_group
        self.probe_first = probe_first
        # which start tiers probe before transmitting (§4.4): by default only
        # the throughput (LOW) tier pays the probe RTT; latency-sensitive
        # tiers linear-start blind, which is safe by Theorem 4.1's bound.
        self.probe_tiers = (
            tuple(probe_tiers) if probe_tiers is not None else (StartTier.LOW,)
        )
        # "delay == BaseRtt" (Algorithm 1) means "no standing queue"; under
        # packet granularity a transient sub-channel queue qualifies, so the
        # default epsilon is half a channel step.
        self.empty_eps_ns = (
            empty_eps_ns if empty_eps_ns is not None else self.channels.step_ns // 2
        )

    # ------------------------------------------------------------------
    # queue layout
    # ------------------------------------------------------------------
    def n_queues(self) -> int:
        if self.mode in Mode.SINGLE_QUEUE_MODES:
            return 2  # data + ACK
        return self.n_priorities + 1  # one per priority + ACK queue on top

    def data_priority(self, group: int) -> int:
        """Physical queue index for priority group ``group`` (0 = highest)."""
        self._check_group(group)
        if self.mode in Mode.SINGLE_QUEUE_MODES:
            return 0
        return self.n_priorities - 1 - group

    def ack_priority(self, group: int) -> int:
        if self.mode == Mode.PRIOPLUS_SAME_ACK:
            return self.data_priority(group)
        return self.n_queues() - 1

    def vpriority(self, group: int) -> int:
        """PrioPlus channel index (1-based, larger = higher priority).

        The unprioritised Swift baseline keeps every flow in one class —
        including at its own NIC — so it measures "no scheduling anywhere".
        """
        self._check_group(group)
        if self.mode == Mode.SWIFT:
            return 1
        return self.n_priorities - group

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.n_priorities:
            raise ValueError(f"group {group} out of range [0, {self.n_priorities})")

    # ------------------------------------------------------------------
    # switch configuration
    # ------------------------------------------------------------------
    def switch_config(
        self,
        buffer_bytes: int = 32 * 1024 * 1024,
        headroom_per_port_per_prio: int = 50 * 1024,
        pfc_enabled: bool = True,
        ecn_k_bytes: Optional[int] = None,
        dt_alpha: float = 1.0,
    ) -> SwitchConfig:
        needs_ecn = self.mode in Mode.ECN_MODES
        if needs_ecn and ecn_k_bytes is None:
            ecn_k_bytes = 100 * 1024
        return SwitchConfig(
            n_queues=self.n_queues(),
            buffer_bytes=buffer_bytes,
            headroom_per_port_per_prio=headroom_per_port_per_prio,
            n_lossless=self.n_queues(),
            ideal_headroom=self.mode in (Mode.PHYSICAL_IDEAL, Mode.PHYSICAL_IDEAL_NOCC)
            or self.mode in Mode.SINGLE_QUEUE_MODES,
            dt_alpha=dt_alpha,
            pfc=PfcConfig(enabled=pfc_enabled),
            ecn_k_bytes=ecn_k_bytes if needs_ecn else None,
        )

    # ------------------------------------------------------------------
    # per-flow CC
    # ------------------------------------------------------------------
    def tier(self, group: int) -> str:
        if self._tier_of_group is not None:
            return self._tier_of_group(group)
        if group == 0:
            return StartTier.HIGH
        if group >= max(1, self.n_priorities - self.n_priorities // 3):
            return StartTier.LOW
        return StartTier.MEDIUM

    def _swift(self, scaling: bool, base_target_ns: Optional[int] = None) -> Swift:
        if self.swift_params is not None:
            params = SwiftParams(
                base_target_ns=(
                    base_target_ns
                    if base_target_ns is not None
                    else self.swift_params.base_target_ns
                ),
                ai_bytes=self.swift_params.ai_bytes,
                beta=self.swift_params.beta,
                max_mdf=self.swift_params.max_mdf,
                target_scaling=scaling,
                fs_range_ns=self.swift_params.fs_range_ns,
                fs_min_cwnd_pkts=self.swift_params.fs_min_cwnd_pkts,
                fs_max_cwnd_pkts=self.swift_params.fs_max_cwnd_pkts,
            )
        else:
            params = SwiftParams(
                base_target_ns=(
                    base_target_ns if base_target_ns is not None else self.base_target_ns
                ),
                target_scaling=scaling,
            )
        return Swift(params)

    def make(self, flow: Flow, group: int):
        """CC instance for one flow of priority group ``group``."""
        self._check_group(group)
        mode = self.mode
        tier = self.tier(group)
        probe_first = (
            self.probe_first if self.probe_first is not None else tier in self.probe_tiers
        )
        if mode in (Mode.PRIOPLUS, Mode.PRIOPLUS_SAME_ACK):
            return PrioPlusCC(
                self._swift(scaling=False),
                self.channels,
                vpriority=self.vpriority(group),
                tier=tier,
                probe_first=probe_first,
                empty_eps_ns=self.empty_eps_ns,
            )
        if mode == Mode.PRIOPLUS_LEDBAT:
            return PrioPlusCC(
                Ledbat(),
                self.channels,
                vpriority=self.vpriority(group),
                tier=tier,
                probe_first=probe_first,
                empty_eps_ns=self.empty_eps_ns,
            )
        if mode in (Mode.PHYSICAL, Mode.PHYSICAL_IDEAL, Mode.SWIFT):
            return self._swift(scaling=True)
        if mode == Mode.SWIFT_TARGETS:
            # targets descend with priority: 4 us (lowest) .. 4*n us (highest)
            return self._swift(
                scaling=False,
                base_target_ns=self.swift_target_step_ns * self.vpriority(group),
            )
        if mode == Mode.LEDBAT_TARGETS:
            return Ledbat(
                target_queuing_ns=self.swift_target_step_ns * self.vpriority(group)
            )
        if mode == Mode.PHYSICAL_IDEAL_NOCC:
            return NoCC()
        if mode == Mode.D2TCP:
            return D2tcp()
        if mode == Mode.HPCC:
            return Hpcc()
        if mode == Mode.POWERTCP:
            return PowerTcp()
        raise AssertionError(f"unhandled mode {mode}")

    def deadline_for(self, flow_size: int, group: int, line_rate_bps: float, start_ns: int) -> Optional[int]:
        """D2TCP deadline: 1.5x .. 12x the ideal FCT, by priority (§6)."""
        if self.mode != Mode.D2TCP:
            return None
        factors = self.d2tcp_ddl_factors
        if factors is None:
            lo, hi = 1.5, 12.0
            n = max(self.n_priorities - 1, 1)
            factors = [lo + (hi - lo) * i / n for i in range(self.n_priorities)]
        ideal = flow_size * 8e9 / line_rate_bps
        return int(start_ns + factors[min(group, len(factors) - 1)] * ideal)


# ----------------------------------------------------------------------
# the uniform Experiment protocol (see docs/RUNNER.md)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Point:
    """One independent simulation point of an experiment.

    ``config`` must be JSON-canonicalizable (plain scalars, lists/tuples and
    string-keyed dicts): together with ``seed``, the experiment name and the
    repro version it forms the content-addressed result-cache key, so every
    semantically distinct point MUST carry a distinct ``(config, seed)`` pair
    within its experiment.
    """

    name: str
    config: Dict[str, object] = field(default_factory=dict)
    seed: int = 0


class Experiment:
    """Uniform interface every figure/table runner is ported onto.

    * :meth:`points` enumerates the independent simulation points — each one
      builds its own :class:`~repro.sim.engine.Simulator` and shares no state
      with its siblings, which is what lets ``repro.runner`` fan them out
      across worker processes and cache them individually.
    * :meth:`run_point` executes one point and returns a JSON-safe dict
      (tuples are allowed; they round-trip to lists).
    * :meth:`reduce` folds the per-point results (an ordered
      ``{point_name: result}`` mapping, in :meth:`points` order) into the
      experiment's final result dict.  It runs in the parent process, is
      never cached, and must be deterministic in its inputs.

    Instances must be picklable (plain top-level classes with plain-data
    attributes) so worker processes can receive them.
    """

    name: str = ""
    description: str = ""

    def points(self) -> List[Point]:
        raise NotImplementedError

    def run_point(self, point: Point) -> dict:
        raise NotImplementedError

    def reduce(self, results: Mapping[str, dict]) -> dict:
        """Default reduction: unwrap a single point, else map by point name."""
        if len(results) == 1:
            return next(iter(results.values()))
        return dict(results)

    def quick(self) -> "Experiment":
        """A CI-scale variant of this experiment (the CLI's ``--quick``).

        Defaults to ``self``; experiments with an intrinsically cheaper
        configuration (fewer/shorter points) return a scaled-down instance.
        The variant must keep a distinct identity in cached results when its
        points differ (different point configs already guarantee that).
        """
        return self

    def run_serial(self) -> dict:
        """Run every point in-process, in order, and reduce.

        This is the compatibility path behind the deprecated ``run_figX*``
        CLI entries; prefer ``repro.runner.run_experiment`` which adds
        sharding, caching and crash retry on top of the same points.
        """
        results = {p.name: self.run_point(p) for p in self.points()}
        return self.reduce(results)


class FunctionExperiment(Experiment):
    """Adapter porting plain ``run_*`` functions onto :class:`Experiment`.

    ``spec`` maps point name -> ``(function, kwargs)``.  The kwargs become the
    point's config verbatim (plus its cache identity); ``kwargs["seed"]`` is
    mirrored into :attr:`Point.seed` when present.  Functions must be
    module-level (picklable by reference) for process-pool execution.
    """

    def __init__(
        self,
        name: str,
        spec: Mapping[str, Tuple[Callable[..., dict], Dict[str, object]]],
        description: str = "",
        reduce_fn: Optional[Callable[[Mapping[str, dict]], dict]] = None,
    ):
        self.name = name
        self.description = description
        self._spec = {pname: (fn, dict(kwargs)) for pname, (fn, kwargs) in spec.items()}
        self._reduce_fn = reduce_fn

    def points(self) -> List[Point]:
        return [
            Point(pname, dict(kwargs), seed=int(kwargs.get("seed", 0)))
            for pname, (_, kwargs) in self._spec.items()
        ]

    def run_point(self, point: Point) -> dict:
        fn, _ = self._spec[point.name]
        return fn(**point.config)

    def reduce(self, results: Mapping[str, dict]) -> dict:
        if self._reduce_fn is not None:
            return self._reduce_fn(results)
        return super().reduce(results)


#: experiment modules imported by :meth:`ExperimentRegistry.load_all`; each
#: registers its Experiment instances at import time
_EXPERIMENT_MODULES = (
    "ablations",
    "ecn_priority",
    "fault_experiments",
    "fig3_micro",
    "fig6_dualrtt",
    "fig8_testbed",
    "fig9_fluct",
    "fig10_micro",
    "fig11_flowsched",
    "fig12_coflow",
    "fig13_noncongestive",
    "fig14_breakdown",
    "fig16_ack_hpcc",
    "headroom_pressure",
    "mltrain",
    "paper_scale",
    "quickstart",
    "table2_validation",
    "tune_channels",
)


class ExperimentRegistry:
    """Name -> :class:`Experiment` lookup driving the CLI and the runner."""

    def __init__(self):
        self._experiments: Dict[str, Experiment] = {}
        self._loaded = False

    def register(self, experiment: Experiment) -> Experiment:
        name = experiment.name
        if not name:
            raise ValueError("experiment must set a non-empty name")
        if name in self._experiments:
            raise ValueError(f"experiment {name!r} already registered")
        self._experiments[name] = experiment
        return experiment

    def load_all(self) -> None:
        """Import every known experiment module (idempotent)."""
        if self._loaded:
            return
        self._loaded = True
        for mod in _EXPERIMENT_MODULES:
            importlib.import_module(f".{mod}", package=__package__)

    def get(self, name: str) -> Experiment:
        self.load_all()
        try:
            return self._experiments[name]
        except KeyError:
            raise KeyError(
                f"unknown experiment {name!r}; known: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        self.load_all()
        return sorted(self._experiments)

    def experiments(self) -> List[Experiment]:
        self.load_all()
        return [self._experiments[n] for n in self.names()]


#: the process-wide default registry; experiment modules register into it
REGISTRY = ExperimentRegistry()
register = REGISTRY.register
get_experiment = REGISTRY.get
experiment_names = REGISTRY.names


def deprecated_alias(impl: Callable[..., object], experiment: str, name: Optional[str] = None):
    """A deprecated public ``run_figX`` shim delegating to its impl function.

    The historical per-figure ``run_figX()`` entry points predate the
    experiment registry; the supported surface is ``repro.api.run(name)``
    (or ``REGISTRY.get(name)`` + the runner).  These shims keep old call
    sites working while steering them there via :class:`DeprecationWarning`.
    """
    alias = name or impl.__name__.lstrip("_")

    @functools.wraps(impl)
    def shim(*args, **kwargs):
        warnings.warn(
            f"{alias}() is deprecated; use repro.api.run({experiment!r}) — the "
            f"registered experiment runs the same code with caching, sharding "
            f"and serving support",
            DeprecationWarning,
            stacklevel=2,
        )
        return impl(*args, **kwargs)

    shim.__name__ = alias
    shim.__qualname__ = alias
    return shim


# ----------------------------------------------------------------------
# launching workloads
# ----------------------------------------------------------------------
def launch_specs(
    sim: Simulator,
    net: Network,
    specs: Iterable[FlowSpec],
    hosts: Sequence[Host],
    factory: CCFactory,
    group_of: Callable[[FlowSpec], int],
    mtu: int = 1000,
    noise=None,
    rto_ns: Optional[int] = None,
    on_receive_done=None,
    flow_id_start: int = 1,
) -> Tuple[List[Flow], List[FlowSender]]:
    """Bind workload specs to senders under ``factory``'s mode."""
    flows: List[Flow] = []
    senders: List[FlowSender] = []
    fid = flow_id_start
    for spec in specs:
        group = group_of(spec)
        src = hosts[spec.src_idx]
        dst = hosts[spec.dst_idx]
        flow = Flow(
            fid,
            src,
            dst,
            spec.size_bytes,
            priority=factory.data_priority(group),
            vpriority=factory.vpriority(group),
            start_ns=spec.start_ns,
            tag=spec.tag,
        )
        line_rate = net.bottleneck_rate_bps(src, dst)
        flow.deadline_ns = factory.deadline_for(spec.size_bytes, group, line_rate, spec.start_ns)
        cc = factory.make(flow, group)
        sender = FlowSender(
            sim,
            net,
            flow,
            cc,
            mtu=mtu,
            ack_priority=factory.ack_priority(group),
            noise=noise,
            rto_ns=rto_ns,
            on_receive_done=on_receive_done,
        )
        flows.append(flow)
        senders.append(sender)
        fid += 1
    return flows, senders


class FlowAdmitter:
    """Staged sender admission from a start-time-sorted :class:`FlowSpec` stream.

    The long-trace counterpart of :func:`launch_specs`: instead of binding
    every workload spec to a :class:`FlowSender` up front (millions of live
    sender/receiver/CC objects for a multi-second paper-scale trace), the
    admitter pulls specs from an iterator **sorted by** ``start_ns`` (the
    streaming-generator contract; violations raise) and materializes each
    sender only ``horizon_ns`` of virtual time before its start.  Completed
    flows are pruned from the host endpoint maps, so the live-object count
    tracks the *concurrent* flow population, not the trace length — and the
    hybrid driver's quiescence scan stays O(live), not O(total).

    Completion is observed sender-side (the last ACK, strictly after the
    receiver-side ``flow.done``): ``on_flow_done(flow)`` fires exactly once
    per flow, after which the admitter drops every reference to it.  Feed
    the callback a :class:`repro.analysis.StreamingStats` accumulator to
    keep result memory bounded too.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        spec_iter,
        hosts: Sequence[Host],
        factory: CCFactory,
        group_of: Callable[[FlowSpec], int],
        mtu: int = 1000,
        noise=None,
        rto_ns: Optional[int] = None,
        horizon_ns: int = 1_000_000,
        on_flow_done: Optional[Callable[[Flow], None]] = None,
        on_receive_done: Optional[Callable[[Flow], None]] = None,
        flow_id_start: int = 1,
        prune: bool = True,
    ):
        if horizon_ns < 0:
            raise ValueError("horizon_ns must be >= 0")
        self.sim = sim
        self.net = net
        self.hosts = hosts
        self.factory = factory
        self.group_of = group_of
        self.mtu = mtu
        self.noise = noise
        self.rto_ns = rto_ns
        self.horizon_ns = horizon_ns
        self.on_flow_done = on_flow_done
        self.on_receive_done = on_receive_done
        self.prune = prune
        self._iter = iter(spec_iter)
        self._next_spec: Optional[FlowSpec] = None
        self._next_fid = flow_id_start
        self._last_start_ns = -(1 << 62)
        self.exhausted = False
        self.n_admitted = 0
        self.n_done = 0
        self.live = 0
        #: high-water mark of concurrently-materialized flows
        self.live_peak = 0
        self._pump()

    # ------------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        """True once the stream is drained and every admitted flow finished."""
        return self.exhausted and self.n_done == self.n_admitted

    def done_fn(self) -> Callable[[], bool]:
        """Termination predicate for :func:`run_until_flows_done` loops."""
        return lambda: self.all_done

    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Admit every spec starting within the horizon; re-arm for the next."""
        sim = self.sim
        edge = sim.now + self.horizon_ns
        spec = self._next_spec
        self._next_spec = None
        while True:
            if spec is None:
                try:
                    spec = next(self._iter)
                except StopIteration:
                    self.exhausted = True
                    return
                if spec.start_ns < self._last_start_ns:
                    raise ValueError(
                        f"FlowSpec stream is not sorted by start_ns: "
                        f"{spec.start_ns} after {self._last_start_ns} "
                        f"(the streaming-generator contract)"
                    )
                self._last_start_ns = spec.start_ns
            if spec.start_ns > edge:
                self._next_spec = spec
                # wake exactly when this spec enters the admission window
                sim.at(spec.start_ns - self.horizon_ns, self._pump)
                return
            self._admit(spec)
            spec = None

    def _admit(self, spec: FlowSpec) -> None:
        factory = self.factory
        group = self.group_of(spec)
        src = self.hosts[spec.src_idx]
        dst = self.hosts[spec.dst_idx]
        flow = Flow(
            self._next_fid,
            src,
            dst,
            spec.size_bytes,
            priority=factory.data_priority(group),
            vpriority=factory.vpriority(group),
            start_ns=spec.start_ns,
            tag=spec.tag,
        )
        line_rate = self.net.bottleneck_rate_bps(src, dst)
        flow.deadline_ns = factory.deadline_for(spec.size_bytes, group, line_rate, spec.start_ns)
        cc = factory.make(flow, group)
        FlowSender(
            self.sim,
            self.net,
            flow,
            cc,
            mtu=self.mtu,
            ack_priority=factory.ack_priority(group),
            noise=self.noise,
            rto_ns=self.rto_ns,
            on_done=self._on_done,
            on_receive_done=self.on_receive_done,
        )
        self._next_fid += 1
        self.n_admitted += 1
        self.live += 1
        if self.live > self.live_peak:
            self.live_peak = self.live

    def _on_done(self, flow: Flow) -> None:
        self.n_done += 1
        self.live -= 1
        if self.prune:
            # both endpoints are finished (sender-side done implies the
            # receiver completed); unhooking them caps live-object count
            # and keeps late stray packets harmless (host dispatch drops
            # packets for unknown flow ids)
            flow.src.senders.pop(flow.flow_id, None)
            flow.dst.receivers.pop(flow.flow_id, None)
        if self.on_flow_done is not None:
            self.on_flow_done(flow)


def run_admitter(
    sim: Simulator,
    admitter: FlowAdmitter,
    hard_deadline_ns: int,
    check_every_ns: int = 1_000_000,
    driver=None,
) -> bool:
    """Run a staged-admission workload to completion or the deadline.

    The streaming analogue of :func:`run_until_flows_done`: termination is
    the admitter's O(1) counter predicate instead of an O(n_flows) scan.
    Pass a :class:`repro.fluid.HybridDriver` to interleave fluid epochs.
    """
    done = admitter.done_fn()
    if driver is not None:
        return driver.run_until_done(done, hard_deadline_ns)
    while sim.now < hard_deadline_ns:
        sim.run(until=min(sim.now + check_every_ns, hard_deadline_ns))
        if done():
            return True
        if sim.peek_time() is None:
            break
    return done()


def run_until_flows_done(
    sim: Simulator,
    flows: Sequence[Flow],
    hard_deadline_ns: int,
    check_every_ns: int = 1_000_000,
    driver=None,
) -> bool:
    """Run until all flows complete or the deadline passes. True if all done.

    Pass a :class:`repro.fluid.HybridDriver` as ``driver`` to let the run
    switch into fluid epochs when the fabric quiesces; ``None`` keeps the
    pure packet loop (byte-identical to previous releases).
    """
    if driver is not None:
        return driver.run_until_flows_done(flows, hard_deadline_ns)
    while sim.now < hard_deadline_ns:
        sim.run(until=min(sim.now + check_every_ns, hard_deadline_ns))
        if all(f.done for f in flows):
            return True
        if sim.peek_time() is None:
            break
    return all(f.done for f in flows)


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
def telemetry_section() -> Optional[dict]:
    """Snapshot of the active flight recorder, or ``None`` when telemetry is
    off.  Experiments embed this in their result dicts so every run carries
    its own observability data (event counts + metrics)."""
    rec = current_recorder()
    return rec.snapshot() if rec is not None else None


def attach_telemetry(result: dict) -> dict:
    """Add a ``"telemetry"`` key to ``result`` when a recorder is active.

    A no-op (and no new keys) when telemetry is disabled, so enabling the
    recorder never perturbs the simulation-facing part of a result dict.
    """
    snap = telemetry_section()
    if snap is not None:
        result["telemetry"] = snap
    return result


# ----------------------------------------------------------------------
# samplers
# ----------------------------------------------------------------------
class RateSampler:
    """Periodic goodput samples, grouped by a key function over senders."""

    def __init__(
        self,
        sim: Simulator,
        senders: Sequence[FlowSender],
        key: Callable[[FlowSender], object],
        interval_ns: int = 100 * MICROSECOND,
    ):
        self.sim = sim
        self.senders = list(senders)
        self.key = key
        self.interval_ns = interval_ns
        self._last: Dict[int, int] = {id(s): 0 for s in self.senders}
        #: key -> list of (time_ns, rate_bps)
        self.series: Dict[object, List[Tuple[int, float]]] = {}
        sim.after(interval_ns, self._tick)

    def _tick(self) -> None:
        per_key: Dict[object, int] = {}
        for s in self.senders:
            delta = s.acked_payload - self._last[id(s)]
            self._last[id(s)] = s.acked_payload
            k = self.key(s)
            per_key[k] = per_key.get(k, 0) + delta
        t = self.sim.now
        for k, delta in per_key.items():
            rate = delta * 8e9 / self.interval_ns
            self.series.setdefault(k, []).append((t, rate))
        self.sim.after(self.interval_ns, self._tick)

    def average_rate_bps(self, key: object, t_from: int = 0, t_to: int = 1 << 62) -> float:
        points = [r for (t, r) in self.series.get(key, []) if t_from <= t <= t_to]
        return sum(points) / len(points) if points else 0.0


class DelaySampler:
    """Periodic samples of a sender's most recent delay measurement."""

    def __init__(self, sim: Simulator, sender: FlowSender, interval_ns: int = 10 * MICROSECOND):
        self.sim = sim
        self.sender = sender
        self.interval_ns = interval_ns
        self.series: List[Tuple[int, int]] = []
        sim.after(interval_ns, self._tick)

    def _tick(self) -> None:
        self.series.append((self.sim.now, self.sender.last_rtt))
        self.sim.after(self.interval_ns, self._tick)

    def values(self, t_from: int = 0, t_to: int = 1 << 62) -> List[int]:
        return [d for (t, d) in self.series if t_from <= t <= t_to]
