"""Paper-scale reruns on the full k=6 / 320-host / 100 Gbps fabric (§6.1).

The seed repository ran the flow-scheduling figures on reduced fabrics
(k=4, 16 hosts) because a pure packet-level replay of the paper's 320-host
topology was compute-prohibitive (EXPERIMENTS.md caveats S1/S2).  These
experiments retire that caveat: they replay the *same* workloads on
:func:`repro.topology.paper_fabric` — the paper's actual scale — using the
hybrid fluid/packet core (:mod:`repro.fluid`) to skip the quiescent
stretches at fluid speed.

Three figure variants are registered:

* ``fig11_paper`` — Fig 11's FCT-vs-priority-count comparison (PrioPlus vs
  Physical*) at 320 hosts;
* ``fig11_long`` — the same comparison over a **multi-second trace**
  (``PAPER_LONG_CFG``: 2 s, paper-true flow sizes, streaming admission +
  P² reduction) so Swift's low-priority collapse has time to appear;
* ``fig16_paper`` — Fig 16's ACK-priority sensitivity (PrioPlus vs
  PrioPlus*) at 320 hosts.

Each point also reports the hybrid core's regime statistics (``"fluid"``
key) so results are auditable: how much virtual time ran fluid, how many
epochs, why each ended.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..topology import paper_fabric
from .common import Experiment, Mode, Point, register
from .flowsched import FlowSchedConfig, run_flowsched

__all__ = [
    "PAPER_LONG_CFG",
    "PAPER_SCALE_CFG",
    "Fig11LongExperiment",
    "Fig11PaperExperiment",
    "Fig16PaperExperiment",
    "run_paper_scale",
]

#: default knobs for a paper-scale point: full fabric, short trace.  The
#: duration is deliberately small (the fabric injects ~1 flow/µs at this
#: load) so a full mode sweep stays tractable; scale it up via cfg_kwargs.
PAPER_SCALE_CFG: Dict[str, object] = {
    "rate_bps": 100e9,
    "link_delay_ns": 1_000,
    "load": 0.5,
    "duration_ns": 60_000,
    "size_scale": 0.1,
    "seed": 42,
}

#: knobs for a *long* paper-scale point: full fabric, multi-second trace,
#: paper-true (unscaled) flow sizes.  The paper runs this scenario at 50 %
#: load; that injects ~17M flows/s into 320 hosts, which no core — fluid or
#: packet — replays in CI-compatible time, so the long variant trades load
#: for duration instead of scaling flow sizes down (the honest re-scope
#: recorded in EXPERIMENTS.md §S1): ~2 % of the paper's arrival rate over a
#: 2-second trace, enough that low-priority flows live through thousands of
#: preemption/restart cycles while a run stays inside the CI smoke budget.
PAPER_LONG_CFG: Dict[str, object] = {
    "rate_bps": 100e9,
    "link_delay_ns": 1_000,
    "load": 0.002,
    "duration_ns": 2_000_000_000,
    "size_scale": 1.0,
    "seed": 42,
}


def _paper_topology(cfg: FlowSchedConfig):
    def build(sim, switch_cfg):
        return paper_fabric(
            sim,
            rate_bps=cfg.rate_bps,
            link_delay_ns=cfg.link_delay_ns,
            switch_cfg=switch_cfg,
        )

    return build


def run_paper_scale(
    mode: str,
    n_priorities: int,
    cfg: Optional[FlowSchedConfig] = None,
    fluid: bool = True,
    fluid_config=None,
    streaming: bool = False,
) -> Dict[str, object]:
    """One flow-scheduling point on the 320-host fabric (hybrid by default).

    ``streaming=True`` selects the staged-admission / bounded-memory result
    path — required for multi-second traces, where materializing the whole
    workload up front would hold every sender live at once.
    """
    cfg = cfg or FlowSchedConfig(**PAPER_SCALE_CFG)
    result = run_flowsched(
        mode,
        n_priorities,
        cfg,
        topology=_paper_topology(cfg),
        fluid=fluid,
        fluid_config=fluid_config,
        streaming=streaming,
    )
    result["n_hosts"] = 320
    return result


class _PaperScaleExperiment(Experiment):
    """Shared machinery: a (mode, n_priorities) grid on the paper fabric."""

    def __init__(self, grid: Sequence[tuple], cfg_kwargs: Optional[Dict[str, object]] = None):
        self.grid = [(str(m), int(n)) for m, n in grid]
        self.cfg_kwargs = dict(cfg_kwargs if cfg_kwargs is not None else PAPER_SCALE_CFG)

    def points(self) -> List[Point]:
        seed = int(self.cfg_kwargs.get("seed", FlowSchedConfig().seed))
        return [
            Point(
                f"{mode}@{n}",
                {"mode": mode, "n_priorities": n, "cfg": dict(self.cfg_kwargs)},
                seed=seed,
            )
            for mode, n in self.grid
        ]

    def run_point(self, point: Point) -> dict:
        cfg = FlowSchedConfig(**point.config["cfg"])
        return run_paper_scale(point.config["mode"], point.config["n_priorities"], cfg)

    def reduce(self, results: Dict[str, dict]) -> Dict[str, object]:
        return {"rows": [results[f"{mode}@{n}"] for mode, n in self.grid]}


class Fig11PaperExperiment(_PaperScaleExperiment):
    """Fig 11 at paper scale: PrioPlus vs Physical* across priority counts."""

    name = "fig11_paper"
    description = "Fig 11 flow-scheduling FCT on the full 320-host k=6 fabric (hybrid core)"

    def __init__(self, cfg_kwargs: Optional[Dict[str, object]] = None):
        grid = [
            (Mode.PRIOPLUS, 4),
            (Mode.PHYSICAL_IDEAL, 4),
            (Mode.PRIOPLUS, 8),
            (Mode.PHYSICAL_IDEAL, 8),
        ]
        super().__init__(grid, cfg_kwargs)

    def quick(self) -> "Fig11PaperExperiment":
        kw = dict(self.cfg_kwargs, duration_ns=20_000)
        quick = Fig11PaperExperiment(kw)
        quick.grid = self.grid[:2]
        return quick


class Fig11LongExperiment(_PaperScaleExperiment):
    """Fig 11 on multi-second traces: the S1-retirement experiment.

    The seed repo's short traces let physical-priority baselines ride on
    switch backlog scheduling, masking Swift's slow post-starvation recovery
    (caveat S1).  This variant replays a 2-second, paper-true-size trace at
    320 hosts through the streaming admission + hybrid-fluid path and
    compares PrioPlus against both physical baselines at 8 priorities, where
    the paper's low-priority collapse claim lives.  Per-class percentiles in
    these rows are P² estimates (see ``repro.analysis.streaming``).
    """

    name = "fig11_long"
    description = (
        "Fig 11 on a 2s paper-true-size trace, 320 hosts, streaming + hybrid core"
    )

    def __init__(self, cfg_kwargs: Optional[Dict[str, object]] = None):
        grid = [
            (Mode.PRIOPLUS, 8),
            (Mode.PHYSICAL, 8),
            (Mode.PHYSICAL_IDEAL, 8),
        ]
        super().__init__(grid, cfg_kwargs if cfg_kwargs is not None else PAPER_LONG_CFG)

    def run_point(self, point: Point) -> dict:
        cfg = FlowSchedConfig(**point.config["cfg"])
        return run_paper_scale(
            point.config["mode"], point.config["n_priorities"], cfg, streaming=True
        )

    def quick(self) -> "Fig11LongExperiment":
        kw = dict(self.cfg_kwargs, duration_ns=100_000_000)
        quick = Fig11LongExperiment(kw)
        quick.grid = self.grid[:1]
        return quick


class Fig16PaperExperiment(_PaperScaleExperiment):
    """Fig 16 at paper scale: ACK-priority sensitivity on 320 hosts."""

    name = "fig16_paper"
    description = "Fig 16 ACK-priority sensitivity on the full 320-host k=6 fabric (hybrid core)"

    def __init__(self, cfg_kwargs: Optional[Dict[str, object]] = None):
        grid = [
            (Mode.PRIOPLUS, 8),
            (Mode.PRIOPLUS_SAME_ACK, 8),
        ]
        super().__init__(grid, cfg_kwargs)

    def quick(self) -> "Fig16PaperExperiment":
        kw = dict(self.cfg_kwargs, duration_ns=20_000)
        quick = Fig16PaperExperiment(kw)
        quick.grid = self.grid[:1]
        return quick


register(Fig11PaperExperiment())
register(Fig11LongExperiment())
register(Fig16PaperExperiment())
