"""Figure 9: delay-fluctuation management via flow-cardinality estimation.

Four flows on a 10 Gbps bottleneck with deliberately inflated step sizes to
emulate the fluctuations of numerous flows: Swift's W_AI is set to ~5x the
recommended value, and PrioPlus's W_LS to half the base BDP.  PrioPlus flows
use priority 6 (D_target 37 µs absolute in the testbed, D_limit +2.4 µs);
Swift uses target delay 37 µs.  The paper shows PrioPlus estimating the flow
cardinality after the first D_limit crossing and then keeping the observed
delay near target, while Swift keeps overshooting.

Metric: fraction of delay samples within the channel after convergence and
the standard deviation of delay.
"""

from __future__ import annotations

import math
from typing import Dict

from ..cc import Swift, SwiftParams
from ..core import ChannelConfig, PrioPlusCC, StartTier
from ..sim.engine import MICROSECOND, MILLISECOND, Simulator
from ..sim.switch import SwitchConfig
from ..topology import star
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .common import DelaySampler, FunctionExperiment, Mode, deprecated_alias, register

__all__ = ["run_fig9"]


def _run_fig9(
    mode: str = Mode.PRIOPLUS,
    n_flows: int = 4,
    rate: float = 10e9,
    duration_ns: int = 10 * MILLISECOND,
    w_ai_bytes: float = 750.0,
    seed: int = 1,
) -> Dict[str, float]:
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, n_flows, rate_bps=rate, link_delay_ns=1500, switch_cfg=cfg)
    channels = ChannelConfig(n_priorities=6)
    prio = 6

    size = int(rate * duration_ns / 8e9)
    flows, snds = [], []
    for i in range(n_flows):
        f = Flow(i + 1, senders[i], recv, size, priority=0, vpriority=prio, start_ns=0)
        if mode == Mode.PRIOPLUS:
            inner = Swift(SwiftParams(ai_bytes=w_ai_bytes, target_scaling=False))
            bdp = rate * 13 * MICROSECOND / 8e9  # ~base BDP at this scale
            cc = PrioPlusCC(
                inner,
                channels,
                vpriority=prio,
                tier=StartTier.MEDIUM,
                w_ls_bytes=bdp / 2,
                probe_first=False,
            )
        elif mode == Mode.SWIFT_TARGETS:
            cc = Swift(
                SwiftParams(
                    base_target_ns=channels.target_offset_ns(prio),
                    ai_bytes=w_ai_bytes,
                    target_scaling=False,
                )
            )
        else:
            raise ValueError(f"fig9 compares prioplus vs swift_targets, got {mode}")
        snds.append(FlowSender(sim, net, f, cc))
        flows.append(f)

    sampler = DelaySampler(sim, snds[0], interval_ns=20 * MICROSECOND)
    sim.run(until=duration_ns)

    base_rtt = snds[0].base_rtt
    d_target = channels.target_ns(prio, base_rtt)
    d_limit = channels.limit_ns(prio, base_rtt)
    settle = duration_ns // 3
    values = sampler.values(settle, duration_ns)
    if not values:
        raise RuntimeError("no delay samples collected")
    within = sum(1 for v in values if v <= d_limit) / len(values)
    mean = sum(values) / len(values)
    std = math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))
    return {
        "mode": mode,
        "frac_below_limit": within,
        "mean_delay_us": mean / 1e3,
        "std_delay_us": std / 1e3,
        "d_target_us": d_target / 1e3,
        "d_limit_us": d_limit / 1e3,
    }


register(
    FunctionExperiment(
        "fig9",
        {
            "prioplus": (_run_fig9, {"mode": Mode.PRIOPLUS, "seed": 1}),
            "swift_targets": (_run_fig9, {"mode": Mode.SWIFT_TARGETS, "seed": 1}),
        },
        description="delay-fluctuation management via flow-cardinality estimation",
    )
)


run_fig9 = deprecated_alias(_run_fig9, "fig9")
