"""Figure 10: PrioPlus micro-benchmarks (§6.1).

* **10a** — eight virtual priorities, many flows each, staggered starts and
  stops at 100 Gbps: strict yield on arrival of higher priority (O1) and
  instant reclaim when it leaves (O2).  Driven by the generic staircase
  runner (shared with Fig 8).
* **10b** — 300-flow incast, one priority (D_target = base + 20 µs): the
  cardinality estimator keeps the observed delay pinned near D_target.
* **10c** — ten high-priority flows preempt ten low-priority flows; with
  dual-RTT adaptive increase the delay settles at D_target without
  overshoot, while an every-RTT ablation overreacts.
* **10d** — five same-priority flows under scaled delay noise: the channel
  width needed for ≥ 98 % utilisation grows linearly with the noise scale.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from ..cc import Swift, SwiftParams
from ..core import ChannelConfig, PrioPlusCC, StartTier
from ..noise import paper_noise
from ..sim.engine import MICROSECOND, MILLISECOND, Simulator
from ..sim.switch import SwitchConfig
from ..topology import star
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .common import DelaySampler, FunctionExperiment, Mode, RateSampler, deprecated_alias, register
from .fig8_testbed import run_staircase

__all__ = ["run_fig10a", "run_fig10b", "run_fig10c", "run_fig10d"]


def _run_fig10a(
    n_priorities: int = 8,
    flows_per_prio: int = 30,
    rate: float = 100e9,
    stagger_ns: int = 5 * MILLISECOND,
    seed: int = 1,
) -> Dict[str, object]:
    """Eight-priority staircase at 100 Gbps."""
    return run_staircase(
        Mode.PRIOPLUS,
        priorities=tuple(range(1, n_priorities + 1)),
        rate=rate,
        stagger_ns=stagger_ns,
        flows_per_prio=flows_per_prio,
        seed=seed,
    )


def _run_fig10b(
    n_flows: int = 300,
    rate: float = 100e9,
    duration_ns: int = 4 * MILLISECOND,
    prio: int = 5,
    seed: int = 1,
) -> Dict[str, float]:
    """Incast: delay stays near D_target despite hundreds of flows."""
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=32 * 1024 * 1024)
    net, senders, recv = star(sim, n_flows, rate_bps=rate, link_delay_ns=1500, switch_cfg=cfg)
    channels = ChannelConfig(n_priorities=prio)
    size = int(rate * duration_ns / 8e9 / n_flows) + 50_000
    flows, snds = [], []
    for i in range(n_flows):
        f = Flow(i + 1, senders[i], recv, size, priority=0, vpriority=prio, start_ns=0)
        cc = PrioPlusCC(
            Swift(SwiftParams(target_scaling=False)),
            channels,
            vpriority=prio,
            tier=StartTier.MEDIUM,
            probe_first=False,
        )
        snds.append(FlowSender(sim, net, f, cc, noise=paper_noise()))
        flows.append(f)
    sampler = DelaySampler(sim, snds[0], interval_ns=20 * MICROSECOND)
    sim.run(until=duration_ns)
    base = snds[0].base_rtt
    d_target = channels.target_ns(prio, base)
    d_limit = channels.limit_ns(prio, base)
    settle = duration_ns // 3
    values = sampler.values(settle, duration_ns)
    mean = sum(values) / len(values)
    over = sum(1 for v in values if v > d_limit) / len(values)
    return {
        "mean_delay_us": mean / 1e3,
        "d_target_us": d_target / 1e3,
        "d_limit_us": d_limit / 1e3,
        "frac_above_limit": over,
        "mean_over_target_us": (mean - d_target) / 1e3,
        "nflow_estimate": max(getattr(s.cc, "nflow", 1.0) for s in snds),
    }


def _run_fig10c(
    dual_rtt: bool,
    n_each: int = 10,
    rate: float = 100e9,
    duration_ns: int = 3 * MILLISECOND,
    hi_start_ns: int = 1 * MILLISECOND,
    seed: int = 1,
) -> Dict[str, float]:
    """High-priority preemption with / without the dual-RTT guard."""
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=32 * 1024 * 1024)
    net, senders, recv = star(sim, 2 * n_each, rate_bps=rate, link_delay_ns=1500, switch_cfg=cfg)
    channels = ChannelConfig(n_priorities=4)
    lo_prio, hi_prio = 1, 4
    size = int(rate * duration_ns / 8e9 / n_each)
    snds = []
    for i in range(n_each):
        f = Flow(i + 1, senders[i], recv, size, priority=0, vpriority=lo_prio, start_ns=0)
        cc = PrioPlusCC(
            Swift(SwiftParams(target_scaling=False)), channels, vpriority=lo_prio,
            tier=StartTier.LOW, dual_rtt=dual_rtt,
        )
        snds.append(FlowSender(sim, net, f, cc))
    hi_snds = []
    for i in range(n_each):
        f = Flow(100 + i, senders[n_each + i], recv, size, priority=0, vpriority=hi_prio, start_ns=hi_start_ns)
        cc = PrioPlusCC(
            Swift(SwiftParams(target_scaling=False)), channels, vpriority=hi_prio,
            tier=StartTier.HIGH, dual_rtt=dual_rtt,
        )
        s = FlowSender(sim, net, f, cc)
        snds.append(s)
        hi_snds.append(s)
    sampler = RateSampler(sim, snds, key=lambda s: s.flow.vpriority, interval_ns=20 * MICROSECOND)
    delay_sampler = DelaySampler(sim, hi_snds[0], interval_ns=5 * MICROSECOND)
    sim.run(until=duration_ns)
    base = hi_snds[0].base_rtt
    d_target_hi = channels.target_ns(hi_prio, base)
    # takeover time: hi aggregate rate >= 90% of line
    takeover = None
    for t, r in sampler.series.get(hi_prio, []):
        if t > hi_start_ns and r >= 0.9 * rate:
            takeover = (t - hi_start_ns) / 1e3
            break
    # overshoot: delay above D_target after takeover
    window = delay_sampler.values(hi_start_ns + 200 * MICROSECOND, duration_ns)
    max_over = max((v - d_target_hi) for v in window) / 1e3 if window else 0.0
    # oscillation: std of hi aggregate rate after takeover
    rates = [r for (t, r) in sampler.series.get(hi_prio, []) if t > hi_start_ns + 500 * MICROSECOND]
    mean_r = sum(rates) / len(rates) if rates else 0.0
    std_r = math.sqrt(sum((r - mean_r) ** 2 for r in rates) / len(rates)) if rates else 0.0
    return {
        "dual_rtt": dual_rtt,
        "takeover_us": takeover if takeover is not None else float("inf"),
        "max_delay_overshoot_us": max_over,
        "hi_rate_std_share": std_r / rate,
        "hi_rate_mean_share": mean_r / rate,
    }


def _run_fig10d(
    noise_scales: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    n_flows: int = 5,
    rate: float = 100e9,
    duration_ns: int = 2 * MILLISECOND,
    util_goal: float = 0.99,
    seed: int = 1,
) -> Dict[float, float]:
    """Minimum channel-width noise budget B for >= util_goal utilisation.

    Returns {noise_scale: required_B_us}; the paper observes the requirement
    growing linearly with the noise magnitude.
    """
    ladder = [0.2 * k for k in range(1, 65)]  # 0.2 .. 12.8 us
    required: Dict[float, float] = {}
    start = 0
    for scale in sorted(noise_scales):
        budget = None
        # required width is monotone in the noise scale: resume the search
        # where the previous scale succeeded
        for idx in range(start, len(ladder)):
            util = _fig10d_util(scale, ladder[idx], n_flows, rate, duration_ns, seed)
            if util >= util_goal:
                budget = ladder[idx]
                start = idx
                break
        required[scale] = budget if budget is not None else float("inf")
    return required


def _fig10d_util(
    noise_scale: float, b_us: float, n_flows: int, rate: float, duration_ns: int, seed: int
) -> float:
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=32 * 1024 * 1024)
    net, senders, recv = star(sim, n_flows, rate_bps=rate, link_delay_ns=1500, switch_cfg=cfg)
    prio = 3
    # A is set small so the D_limit margin is dominated by the noise budget B
    # under test (the CC fluctuation of a handful of flows is ~tens of ns).
    channels = ChannelConfig(fluctuation_ns=200, noise_ns=int(b_us * 1000), n_priorities=prio)
    noise = paper_noise(scale=noise_scale)
    size = int(rate * duration_ns / 8e9)  # long-running
    snds = []
    for i in range(n_flows):
        f = Flow(i + 1, senders[i], recv, size, priority=0, vpriority=prio, start_ns=0)
        cc = PrioPlusCC(
            Swift(SwiftParams(target_scaling=False)), channels, vpriority=prio,
            tier=StartTier.MEDIUM, probe_first=False,
        )
        snds.append(FlowSender(sim, net, f, cc, noise=noise))
    sampler = RateSampler(sim, snds, key=lambda s: 0, interval_ns=50 * MICROSECOND)
    sim.run(until=duration_ns)
    settle = duration_ns // 4
    # normalise by achievable goodput (payload/wire ratio of the MTU)
    mtu = snds[0].mtu
    goodput_cap = rate * mtu / (mtu + 40)
    return sampler.average_rate_bps(0, settle, duration_ns) / goodput_cap


def _merge_fig10d(results: Dict[str, dict]) -> Dict[str, float]:
    """Merge per-scale single-entry dicts; keys become strings either way
    (float keys stringify identically through JSON and ``str``)."""
    merged: Dict[str, float] = {}
    for res in results.values():
        for k, v in res.items():
            merged[str(k)] = v
    return merged


register(
    FunctionExperiment(
        "fig10a",
        {"fig10a": (_run_fig10a, {"seed": 1})},
        description="eight-priority staircase at 100 Gbps (O1/O2)",
    )
)
register(
    FunctionExperiment(
        "fig10b",
        {"fig10b": (_run_fig10b, {"seed": 1})},
        description="300-flow incast: delay pinned near D_target",
    )
)
register(
    FunctionExperiment(
        "fig10c",
        {
            "dual_rtt": (_run_fig10c, {"dual_rtt": True, "seed": 1}),
            "every_rtt": (_run_fig10c, {"dual_rtt": False, "seed": 1}),
        },
        description="high-priority preemption with vs without the dual-RTT guard",
    )
)
register(
    FunctionExperiment(
        "fig10d",
        {
            f"scale{_s:g}": (_run_fig10d, {"noise_scales": (_s,), "seed": 1})
            for _s in (1.0, 2.0, 4.0, 8.0)
        },
        description="channel-width noise budget vs noise scale",
        reduce_fn=_merge_fig10d,
    )
)


run_fig10a = deprecated_alias(_run_fig10a, "fig10a")
run_fig10b = deprecated_alias(_run_fig10b, "fig10b")
run_fig10c = deprecated_alias(_run_fig10c, "fig10c")
run_fig10d = deprecated_alias(_run_fig10d, "fig10d")
