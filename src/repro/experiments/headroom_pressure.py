"""Fig 11's physical-degradation arm, isolated: headroom vs shared buffer.

The paper's Fig 11a shows real physical priority collapsing beyond ~6
queues: every lossless priority reserves PFC headroom on every port, the
shared pool shrinks, the dynamic ingress threshold drops, and PFC fires
earlier and more often — small flows pay the pauses.

The fat-tree CI runs don't pressure the buffer enough to show this, so this
experiment isolates it: an incast-heavy workload on one switch whose chip
buffer follows the Tomahawk4 4.4 MB/Tbps ratio, swept over the number of
lossless priorities.  PrioPlus needs only 2 queues regardless, so its line
is flat by construction; the measurement of interest is how the *physical*
configuration degrades as the priority count grows.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..analysis.fct import percentile
from ..noise import paper_noise
from ..sim.engine import MICROSECOND, MILLISECOND, Simulator
from ..sim.pfc import PfcConfig
from ..sim.switch import SwitchConfig
from ..topology import star
from .common import CCFactory, Experiment, Mode, Point, launch_specs, register, run_until_flows_done
from ..workloads import FlowSpec

__all__ = ["run_headroom_point", "run_headroom_sweep", "HeadroomSweepExperiment"]


def _workload(rng: random.Random, n_senders: int, duration_ns: int, rate: float) -> List[FlowSpec]:
    """Incast waves of small flows plus a few large background flows."""
    specs: List[FlowSpec] = []
    t = 0
    wave = 0
    while t < duration_ns:
        for i in range(n_senders):
            size = rng.choice((20_000, 30_000, 50_000))
            specs.append(FlowSpec(i, n_senders, size, t, tag=("wave", wave)))
        t += 200 * MICROSECOND
        wave += 1
    for i in range(0, n_senders, 4):
        specs.append(FlowSpec(i, n_senders, int(rate * duration_ns / 8e9 / 8), 0, tag="bg"))
    return specs


def run_headroom_point(
    mode: str,
    n_priorities: int,
    n_senders: int = 16,
    rate: float = 25e9,
    duration_ns: int = 2 * MILLISECOND,
    buffer_mb_per_tbps: float = 4.4,
    headroom_bytes: int = 8_000,
    seed: int = 13,
) -> Dict[str, float]:
    """One (mode, priority-count) point of the sweep."""
    sim = Simulator(seed)
    factory = CCFactory(mode, n_priorities=n_priorities)
    n_ports = n_senders + 1
    buffer_bytes = max(int(buffer_mb_per_tbps * 1024 * 1024 * (n_ports * rate / 1e12)), 128 * 1024)
    switch_cfg = SwitchConfig(
        n_queues=factory.n_queues(),
        buffer_bytes=buffer_bytes,
        headroom_per_port_per_prio=headroom_bytes,
        n_lossless=factory.n_queues(),
        ideal_headroom=factory.switch_config().ideal_headroom,
        # Xoff sized to the per-priority headroom, as in real lossless configs
        pfc=PfcConfig(enabled=True, xoff_bytes=headroom_bytes),
    )
    net, senders, recv = star(sim, n_senders, rate_bps=rate, link_delay_ns=1000, switch_cfg=switch_cfg)
    hosts = senders + [recv]
    rng = random.Random(seed)
    specs = _workload(rng, n_senders, duration_ns, rate)

    def group_of(spec) -> int:
        if spec.tag == "bg":
            return n_priorities - 1
        return hash(spec.tag) % max(1, n_priorities - 1)

    flows, _ = launch_specs(sim, net, specs, hosts, factory, group_of, noise=paper_noise())
    run_until_flows_done(sim, flows, duration_ns * 40)
    sw = net.switches[0]
    small = [f.fct_ns() for f in flows if f.done and f.tag != "bg"]
    return {
        "mode": mode,
        "n_priorities": n_priorities,
        "shared_pool_bytes": sw.buffer.shared_capacity,
        "pfc_pauses": float(net.total_pfc_pauses()),
        "drops": float(net.total_drops()),
        "small_mean_us": sum(small) / len(small) / 1e3 if small else float("nan"),
        "small_p99_us": percentile(small, 99) / 1e3 if small else float("nan"),
        "done": float(sum(1 for f in flows if f.done)),
        "total": float(len(flows)),
    }


def run_headroom_sweep(
    n_priorities_list: Sequence[int] = (2, 4, 6, 8),
    **kwargs,
) -> List[Dict[str, float]]:
    """Physical at each priority count + the flat PrioPlus reference."""
    rows = [run_headroom_point(Mode.PRIOPLUS, max(n_priorities_list), **kwargs)]
    for n in n_priorities_list:
        rows.append(run_headroom_point(Mode.PHYSICAL, n, **kwargs))
    return rows


class HeadroomSweepExperiment(Experiment):
    """The headroom-vs-shared-pool sweep, one runner point per (mode, count).

    Point order mirrors :func:`run_headroom_sweep`: the flat PrioPlus
    reference first, then Physical at each lossless-priority count.
    """

    name = "headroom"
    description = "PFC headroom vs shared buffer: physical degradation sweep"

    def __init__(
        self,
        n_priorities_list: Sequence[int] = (2, 4, 6, 8),
        point_kwargs: Dict[str, object] = None,
    ):
        self.n_priorities_list = tuple(int(n) for n in n_priorities_list)
        self.point_kwargs = dict(
            point_kwargs
            if point_kwargs is not None
            else {
                "n_senders": 32,
                "buffer_mb_per_tbps": 2.0,
                "headroom_bytes": 12_000,
                "duration_ns": 2_000_000,
            }
        )

    def _grid(self) -> List[tuple]:
        return [(Mode.PRIOPLUS, max(self.n_priorities_list))] + [
            (Mode.PHYSICAL, n) for n in self.n_priorities_list
        ]

    def points(self) -> List[Point]:
        seed = int(self.point_kwargs.get("seed", 13))
        return [
            Point(
                f"{mode}@{n}",
                {"mode": mode, "n_priorities": n, "kwargs": dict(self.point_kwargs)},
                seed=seed,
            )
            for mode, n in self._grid()
        ]

    def run_point(self, point: Point) -> dict:
        return run_headroom_point(
            point.config["mode"], point.config["n_priorities"], **point.config["kwargs"]
        )

    def reduce(self, results: Dict[str, dict]) -> Dict[str, object]:
        return {"rows": [results[f"{mode}@{n}"] for mode, n in self._grid()]}


register(HeadroomSweepExperiment())
