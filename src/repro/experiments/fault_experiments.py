"""Robustness experiments: virtual priority under faults (``fault_flap``,
``fault_degrade``).

The paper argues PrioPlus preserves strict virtual priorities under adverse
conditions (delay noise, traffic fluctuation, non-congestive interference);
these experiments push that question into operator territory: what happens
during *infrastructure* faults — a flapping spine link and a degraded
bottleneck — compared against the Swift-with-per-priority-targets and DCQCN
baselines?

Both scenarios run two priority groups whose demand is shaped by NIC speed:
the high-priority group's hosts attach at a quarter of the line rate (total
demand = half the fabric capacity), the low-priority group is backlogged at
line rate.  Healthy, both groups get about half the capacity each.  During a
50 %-capacity fault window the paper's claim predicts the high group retains
its demand (= the whole residual) while the low group backs off toward zero,
and everything reconverges within a bounded number of RTTs after repair.

* ``fault_flap`` — 2 ToR + 2 spines, each uplink at half rate; a
  :class:`~repro.faults.plan.FaultPlan` flaps the ``tor0<->spine0`` link, so
  one down window removes exactly half the cross-fabric capacity.  Traffic
  blackholes until the control plane's detection latency elapses and routes
  reconverge onto the surviving spine (senders recover via RTO).
* ``fault_degrade`` — star with the receiver downlink degraded to half rate
  plus wire corruption and delay spikes (``link_degrade``): same residual
  capacity, no rerouting, so it isolates the congestion-control reaction
  from the routing reaction.

Each point reports per-group goodput timelines, window averages, the fault
injector's stats, and three smoke-level invariants (asserted for PrioPlus in
``tests/test_faults.py``):

* ``high_retains_residual`` — high-priority goodput during the fault window
  is at least half the residual capacity;
* ``low_backs_off`` — low-priority goodput during the window drops below
  half its pre-fault level;
* ``reconverges`` — total goodput shortly after repair recovers to at least
  70 % of the pre-fault level.

Use :func:`export_fault_timelines` to dump the per-priority timelines as
long-format CSV via :mod:`repro.analysis.export`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..analysis.export import write_series_csv
from ..cc import Dcqcn
from ..faults import FaultInjector, FaultPlan, FaultSpec, Schedule
from ..sim.engine import MICROSECOND, MILLISECOND, Simulator
from ..sim.network import Network
from ..workloads.generators import FlowSpec
from .common import (
    CCFactory,
    Experiment,
    FunctionExperiment,
    Mode,
    RateSampler,
    attach_telemetry,
    launch_specs,
    register,
)

__all__ = ["run_fault_flap", "run_fault_degrade", "export_fault_timelines"]

_LINK_DELAY_NS = 1_000
_SAMPLE_NS = 50 * MICROSECOND

#: modes every fault point sweeps: PrioPlus vs the paper's deployable baselines
FAULT_MODES = ("prioplus", "swift_targets", "dcqcn")


class _DcqcnFactory(CCFactory):
    """DCQCN on the single-queue layout: ECN switch config, no deadlines."""

    def __init__(self, n_priorities: int = 2):
        # D2TCP's layout gives us a single ECN-marked data queue + ACK queue;
        # only the CC instance itself is swapped out.
        super().__init__(Mode.D2TCP, n_priorities=n_priorities)

    def make(self, flow, group):
        self._check_group(group)
        return Dcqcn()

    def deadline_for(self, flow_size, group, line_rate_bps, start_ns):
        return None


def _factory(mode: str, channels=None) -> CCFactory:
    if mode == "dcqcn":
        return _DcqcnFactory(n_priorities=2)
    if mode in (Mode.PRIOPLUS, Mode.SWIFT_TARGETS):
        return CCFactory(mode, n_priorities=2, channels=channels)
    raise ValueError(f"fault experiments compare {FAULT_MODES}, got {mode!r}")


def _launch_two_groups(
    sim: Simulator,
    net: Network,
    hosts,
    recv_idx: int,
    factory: CCFactory,
    n_high: int,
    n_low: int,
    high_demand_bps: float,
    low_demand_bps: float,
    duration_ns: int,
):
    """Backlogged flows for both groups, sized to outlast the run."""
    specs: List[FlowSpec] = []
    for i in range(n_high):
        size = int(high_demand_bps * duration_ns / 8e9 * 2)
        specs.append(FlowSpec(i, recv_idx, size, start_ns=0, tag="high"))
    for i in range(n_low):
        size = int(low_demand_bps * duration_ns / 8e9 * 2)
        specs.append(FlowSpec(n_high + i, recv_idx, size, start_ns=0, tag="low"))
    flows, senders = launch_specs(
        sim, net, specs, hosts, factory, group_of=lambda s: 0 if s.tag == "high" else 1
    )
    sampler = RateSampler(sim, senders, key=lambda s: s.flow.tag, interval_ns=_SAMPLE_NS)
    return flows, senders, sampler


def _window_rates(sampler: RateSampler, windows: Dict[str, Tuple[int, int]]) -> Dict[str, Dict[str, float]]:
    return {
        wname: {
            group: sampler.average_rate_bps(group, t0, t1) for group in ("high", "low")
        }
        for wname, (t0, t1) in windows.items()
    }


def _invariants(rates: Dict[str, Dict[str, float]], residual_bps: float) -> Dict[str, bool]:
    """Smoke-level robustness checks on the windowed goodput.

    ``high_retains_residual`` asks that during the degradation window the
    high-priority channel (half the flows) keeps at least ~its share of the
    residual capacity *and* stays ahead of the low channel — priority-blind
    baselines fail the second clause because low-priority demand crowds the
    recovering high flows out.  The 0.4 factor (rather than an exact 0.5
    share) absorbs the genuine detection+RTO outage at the start of the
    window and the 50 us sampling quantisation.
    """
    pre, during, post = rates["pre"], rates["during"], rates["post"]
    return {
        "high_retains_residual": (
            during["high"] >= 0.4 * residual_bps and during["high"] > during["low"]
        ),
        "low_backs_off": during["low"] <= 0.5 * pre["low"],
        "reconverges": (post["high"] + post["low"]) >= 0.7 * (pre["high"] + pre["low"]),
    }


def _result(
    mode: str,
    rate: float,
    residual_bps: float,
    windows: Dict[str, Tuple[int, int]],
    sampler: RateSampler,
    injector: FaultInjector,
    plan: FaultPlan,
) -> dict:
    rates = _window_rates(sampler, windows)
    result = {
        "mode": mode,
        "rate_bps": rate,
        "residual_bps": residual_bps,
        "windows": {k: list(v) for k, v in windows.items()},
        "rates": rates,
        "invariants": _invariants(rates, residual_bps),
        "series": {group: series for group, series in sorted(sampler.series.items())},
        "faults": injector.stats(),
        "plan": plan.to_dict(),
    }
    return attach_telemetry(result)


# ----------------------------------------------------------------------
# fault_flap: spine-link flap on a 2-ToR / 2-spine fabric
# ----------------------------------------------------------------------
def _flap_plan(flaps: int, seed: int) -> FaultPlan:
    return FaultPlan(
        [
            FaultSpec(
                "link_down",
                ["tor0", "spine0"],
                Schedule(
                    "flap",
                    at_ns=1 * MILLISECOND,
                    duration_ns=1 * MILLISECOND,
                    period_ns=3 * MILLISECOND,
                    count=flaps,
                ),
            )
        ],
        seed=seed,
        detection_ns=50 * MICROSECOND,
    )


def run_fault_flap(
    mode: str = Mode.PRIOPLUS,
    rate: float = 10e9,
    flaps: int = 2,
    seed: int = 1,
    channels=None,
) -> dict:
    """One mode through the spine-flap scenario; see the module docstring.

    ``channels`` overrides the delay-channel placement for PrioPlus modes
    (the :mod:`repro.tune` channel tuner passes tuned bands here).
    """
    sim = Simulator(seed)
    factory = _factory(mode, channels=channels)
    net = Network(sim, factory.switch_config())
    tor0 = net.add_switch("tor0")
    tor1 = net.add_switch("tor1")
    spine0 = net.add_switch("spine0")
    spine1 = net.add_switch("spine1")
    for tor in (tor0, tor1):
        net.connect(tor, spine0, rate / 2, _LINK_DELAY_NS)
        net.connect(tor, spine1, rate / 2, _LINK_DELAY_NS)
    hosts = []
    for i in range(2):
        h = net.add_host(f"hi{i}")
        net.connect(h, tor0, rate / 4, _LINK_DELAY_NS)
        hosts.append(h)
    for i in range(2):
        h = net.add_host(f"lo{i}")
        net.connect(h, tor0, rate, _LINK_DELAY_NS)
        hosts.append(h)
    recv = net.add_host("recv")
    net.connect(recv, tor1, rate, _LINK_DELAY_NS)
    hosts.append(recv)
    net.build_routes()

    plan = _flap_plan(flaps, seed)
    injector = FaultInjector(sim, net, plan).arm()

    duration_ns = (1 + 3 * (flaps - 1) + 2) * MILLISECOND
    flows, senders, sampler = _launch_two_groups(
        sim, net, hosts, len(hosts) - 1, factory,
        n_high=2, n_low=2,
        high_demand_bps=rate / 4, low_demand_bps=rate,
        duration_ns=duration_ns,
    )
    sim.run(until=duration_ns)

    # the first down window is [1, 2) ms; measure after detection (50 us) and
    # RTO recovery (<= 500 us) have played out, and again after restoration
    windows = {
        "pre": (int(0.4 * MILLISECOND), 1 * MILLISECOND),
        "during": (int(1.6 * MILLISECOND), 2 * MILLISECOND),
        "post": (int(2.6 * MILLISECOND), 3 * MILLISECOND),
    }
    return _result(mode, rate, rate / 2, windows, sampler, injector, plan)


# ----------------------------------------------------------------------
# fault_degrade: the star bottleneck drops to half rate + lossy wire
# ----------------------------------------------------------------------
def _degrade_plan(rate_factor: float, drop_prob: float, spike_ns: int, seed: int) -> FaultPlan:
    return FaultPlan(
        [
            FaultSpec(
                "link_degrade",
                ["core", "recv"],
                Schedule("oneshot", at_ns=1 * MILLISECOND, duration_ns=int(1.5 * MILLISECOND)),
                rate_factor=rate_factor,
                drop_prob=drop_prob,
                delay_spike_ns=spike_ns,
            )
        ],
        seed=seed,
        detection_ns=50 * MICROSECOND,
    )


def run_fault_degrade(
    mode: str = Mode.PRIOPLUS,
    rate: float = 10e9,
    rate_factor: float = 0.5,
    drop_prob: float = 0.0005,
    spike_ns: int = 2_000,
    seed: int = 1,
    channels=None,
) -> dict:
    """One mode through the degraded-bottleneck scenario."""
    sim = Simulator(seed)
    factory = _factory(mode, channels=channels)
    net = Network(sim, factory.switch_config())
    core = net.add_switch("core")
    hosts = []
    for i in range(2):
        h = net.add_host(f"hi{i}")
        net.connect(h, core, rate / 4, _LINK_DELAY_NS)
        hosts.append(h)
    for i in range(2):
        h = net.add_host(f"lo{i}")
        net.connect(h, core, rate, _LINK_DELAY_NS)
        hosts.append(h)
    recv = net.add_host("recv")
    net.connect(recv, core, rate, _LINK_DELAY_NS)
    hosts.append(recv)
    net.build_routes()

    plan = _degrade_plan(rate_factor, drop_prob, spike_ns, seed)
    injector = FaultInjector(sim, net, plan).arm()

    duration_ns = 4 * MILLISECOND
    flows, senders, sampler = _launch_two_groups(
        sim, net, hosts, len(hosts) - 1, factory,
        n_high=2, n_low=2,
        high_demand_bps=rate / 4, low_demand_bps=rate,
        duration_ns=duration_ns,
    )
    sim.run(until=duration_ns)

    # degrade window is [1, 2.5) ms; no blackhole, so margins are smaller
    windows = {
        "pre": (int(0.4 * MILLISECOND), 1 * MILLISECOND),
        "during": (int(1.4 * MILLISECOND), int(2.5 * MILLISECOND)),
        "post": (3 * MILLISECOND, 4 * MILLISECOND),
    }
    return _result(mode, rate, rate * rate_factor, windows, sampler, injector, plan)


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
def _reduce_fault(results: Mapping[str, dict]) -> dict:
    """Fold per-mode points: invariants table up front, full results kept."""
    return {
        "invariants": {name: r["invariants"] for name, r in results.items()},
        "faults": next(iter(results.values()))["faults"],
        "modes": dict(results),
    }


class FaultExperiment(FunctionExperiment):
    """A fault scenario sweep with a cheaper CI-scale ``--quick`` variant."""

    def __init__(self, name, spec, description="", reduce_fn=None, quick_spec=None):
        super().__init__(name, spec, description=description, reduce_fn=reduce_fn)
        self._quick_spec = quick_spec

    def quick(self) -> Experiment:
        if self._quick_spec is None:
            return self
        return FaultExperiment(
            self.name, self._quick_spec, description=self.description, reduce_fn=self._reduce_fn
        )


def export_fault_timelines(result: dict, out_dir, experiment: str = "fault") -> List[str]:
    """Write each mode's per-priority goodput timeline as long-format CSV.

    ``result`` is a reduced ``fault_flap``/``fault_degrade`` result (or a
    single point result).  Returns the written paths.
    """
    import os

    modes = result.get("modes") or {result.get("mode", "point"): result}
    paths = []
    for name, r in modes.items():
        path = os.path.join(str(out_dir), f"{experiment}_{r.get('mode', name)}_goodput.csv")
        write_series_csv(
            {group: [tuple(p) for p in series] for group, series in r["series"].items()},
            path,
            value_name="goodput_bps",
        )
        paths.append(path)
    return paths


register(
    FaultExperiment(
        "fault_flap",
        {m: (run_fault_flap, {"mode": m, "seed": 1}) for m in FAULT_MODES},
        description="per-priority goodput through a flapping spine link (50% residual capacity)",
        reduce_fn=_reduce_fault,
        quick_spec={m: (run_fault_flap, {"mode": m, "rate": 5e9, "flaps": 1, "seed": 1}) for m in FAULT_MODES},
    )
)

register(
    FaultExperiment(
        "fault_degrade",
        {m: (run_fault_degrade, {"mode": m, "seed": 1}) for m in FAULT_MODES},
        description="per-priority goodput through a half-rate, lossy, delay-spiking bottleneck",
        reduce_fn=_reduce_fault,
        quick_spec={m: (run_fault_degrade, {"mode": m, "rate": 5e9, "seed": 1}) for m in FAULT_MODES},
    )
)
