"""Figure 11: FCT vs number of priorities in the flow-scheduling scenario.

Sweeps the priority count for four systems — PrioPlus+Swift (virtual
priorities in one queue), Physical+Swift (real queues, PFC headroom consumes
buffer, max 8), Physical*+Swift (ideal queues) and Physical* w/o CC — and
reports mean/p99 FCT for all flows and per size class (total / small /
middle / large subplots a-d).

Paper shape to reproduce: PrioPlus tracks Physical* within ~10 % for small
and middle flows; real Physical degrades beyond ~6 priorities as headroom
starves the shared buffer and PFC fires; for large (low-priority) flows
PrioPlus beats Physical*+Swift because Swift collapses in starved queues
while PrioPlus relinquishes cleanly and linear-starts back.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .common import Experiment, Mode, Point, register
from .flowsched import FlowSchedConfig, run_flowsched

__all__ = ["run_fig11", "FIG11_MODES", "Fig11Experiment"]

FIG11_MODES = (
    Mode.PRIOPLUS,
    Mode.PHYSICAL,
    Mode.PHYSICAL_IDEAL,
    Mode.PHYSICAL_IDEAL_NOCC,
)


def run_fig11(
    n_priorities_list: Sequence[int] = (2, 4, 6, 8, 10, 12),
    modes: Sequence[str] = FIG11_MODES,
    cfg: Optional[FlowSchedConfig] = None,
) -> List[Dict[str, object]]:
    """Full sweep; entries where Physical cannot support the count are skipped."""
    rows: List[Dict[str, object]] = []
    for n in n_priorities_list:
        for mode in modes:
            if mode == Mode.PHYSICAL and n > 8:
                continue  # the protocol/hardware ceiling (§2.2)
            rows.append(run_flowsched(mode, n, cfg))
    return rows


def fct_row(result: Dict[str, object], size_class: str = "all", metric: str = "mean_us") -> float:
    fct = result.get("fct", {})
    rec = fct.get(size_class)
    if not rec or not rec.get("count"):
        return float("nan")  # absent or n=0 group: no defined percentile
    return rec[metric]


class Fig11Experiment(Experiment):
    """The Fig 11 (mode x priority-count) grid as independent runner points.

    Every cell of the sweep replays the identical seeded workload, so the
    grid parallelises perfectly; ``reduce`` flattens the cells back into the
    row list ``run_fig11`` produces, in the same sweep order.
    """

    name = "fig11"
    description = "flow-scheduling FCT vs number of priorities, four systems"

    def __init__(
        self,
        n_priorities_list: Sequence[int] = (2, 4, 6, 8, 10, 12),
        modes: Sequence[str] = FIG11_MODES,
        cfg_kwargs: Optional[Dict[str, object]] = None,
    ):
        self.n_priorities_list = tuple(int(n) for n in n_priorities_list)
        self.modes = list(modes)
        self.cfg_kwargs = dict(
            cfg_kwargs
            if cfg_kwargs is not None
            else {"rate_bps": 100e9, "duration_ns": 600_000, "size_scale": 0.1}
        )

    def _grid(self) -> List[tuple]:
        return [
            (n, mode)
            for n in self.n_priorities_list
            for mode in self.modes
            if not (mode == Mode.PHYSICAL and n > 8)  # protocol/hardware ceiling (§2.2)
        ]

    def points(self) -> List[Point]:
        seed = int(self.cfg_kwargs.get("seed", FlowSchedConfig().seed))
        return [
            Point(
                f"{mode}@{n}",
                {"mode": mode, "n_priorities": n, "cfg": dict(self.cfg_kwargs)},
                seed=seed,
            )
            for n, mode in self._grid()
        ]

    def run_point(self, point: Point) -> dict:
        cfg = FlowSchedConfig(**point.config["cfg"])
        return run_flowsched(point.config["mode"], point.config["n_priorities"], cfg)

    def reduce(self, results: Dict[str, dict]) -> Dict[str, object]:
        return {"rows": [results[f"{mode}@{n}"] for n, mode in self._grid()]}


register(Fig11Experiment())
