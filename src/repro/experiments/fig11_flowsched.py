"""Figure 11: FCT vs number of priorities in the flow-scheduling scenario.

Sweeps the priority count for four systems — PrioPlus+Swift (virtual
priorities in one queue), Physical+Swift (real queues, PFC headroom consumes
buffer, max 8), Physical*+Swift (ideal queues) and Physical* w/o CC — and
reports mean/p99 FCT for all flows and per size class (total / small /
middle / large subplots a-d).

Paper shape to reproduce: PrioPlus tracks Physical* within ~10 % for small
and middle flows; real Physical degrades beyond ~6 priorities as headroom
starves the shared buffer and PFC fires; for large (low-priority) flows
PrioPlus beats Physical*+Swift because Swift collapses in starved queues
while PrioPlus relinquishes cleanly and linear-starts back.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .common import Mode
from .flowsched import FlowSchedConfig, run_flowsched

__all__ = ["run_fig11", "FIG11_MODES"]

FIG11_MODES = (
    Mode.PRIOPLUS,
    Mode.PHYSICAL,
    Mode.PHYSICAL_IDEAL,
    Mode.PHYSICAL_IDEAL_NOCC,
)


def run_fig11(
    n_priorities_list: Sequence[int] = (2, 4, 6, 8, 10, 12),
    modes: Sequence[str] = FIG11_MODES,
    cfg: Optional[FlowSchedConfig] = None,
) -> List[Dict[str, object]]:
    """Full sweep; entries where Physical cannot support the count are skipped."""
    rows: List[Dict[str, object]] = []
    for n in n_priorities_list:
        for mode in modes:
            if mode == Mode.PHYSICAL and n > 8:
                continue  # the protocol/hardware ceiling (§2.2)
            rows.append(run_flowsched(mode, n, cfg))
    return rows


def fct_row(result: Dict[str, object], size_class: str = "all", metric: str = "mean_us") -> float:
    fct = result.get("fct", {})
    if size_class not in fct:
        return float("nan")
    return fct[size_class][metric]
