"""Figure 16 (Appendix A.3): ACK prioritisation sensitivity + HPCC baseline.

Replays the flow-scheduling scenario with

* ``PrioPlus*`` — ACKs travel in the *same* physical priority as data
  instead of the highest queue (reverse congestion can now distort RTTs);
* HPCC with physical priority queues.

Paper shape: PrioPlus* stays within ~10 % of PrioPlus; HPCC is ≥ 15 % worse
on mean FCT (≥ 11 % at p99) because it pins utilisation below capacity to
keep queues empty, starving medium/large flows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .common import Experiment, Mode, Point, deprecated_alias, register
from .flowsched import FlowSchedConfig, run_flowsched

__all__ = ["run_fig16", "FIG16_MODES", "Fig16Experiment"]

FIG16_MODES = (Mode.PRIOPLUS, Mode.PRIOPLUS_SAME_ACK, Mode.HPCC)


def _run_fig16(
    n_priorities: int = 8,
    modes: Sequence[str] = FIG16_MODES,
    cfg: Optional[FlowSchedConfig] = None,
) -> List[Dict[str, object]]:
    return [run_flowsched(mode, n_priorities, cfg) for mode in modes]


class Fig16Experiment(Experiment):
    """ACK-priority sensitivity + HPCC baseline, one runner point per mode."""

    name = "fig16"
    description = "PrioPlus* (data-priority ACKs) and HPCC on the flow-scheduling scenario"

    def __init__(
        self,
        n_priorities: int = 8,
        modes: Sequence[str] = FIG16_MODES,
        cfg_kwargs: Optional[Dict[str, object]] = None,
    ):
        self.n_priorities = int(n_priorities)
        self.modes = list(modes)
        self.cfg_kwargs = dict(
            cfg_kwargs
            if cfg_kwargs is not None
            else {"rate_bps": 100e9, "duration_ns": 500_000, "size_scale": 0.1}
        )

    def points(self) -> List[Point]:
        seed = int(self.cfg_kwargs.get("seed", FlowSchedConfig().seed))
        return [
            Point(
                mode,
                {"mode": mode, "n_priorities": self.n_priorities, "cfg": dict(self.cfg_kwargs)},
                seed=seed,
            )
            for mode in self.modes
        ]

    def run_point(self, point: Point) -> dict:
        cfg = FlowSchedConfig(**point.config["cfg"])
        return run_flowsched(point.config["mode"], point.config["n_priorities"], cfg)

    def reduce(self, results: Dict[str, dict]) -> Dict[str, object]:
        return {"rows": [results[mode] for mode in self.modes]}


register(Fig16Experiment())


run_fig16 = deprecated_alias(_run_fig16, "fig16")
