"""Figure 16 (Appendix A.3): ACK prioritisation sensitivity + HPCC baseline.

Replays the flow-scheduling scenario with

* ``PrioPlus*`` — ACKs travel in the *same* physical priority as data
  instead of the highest queue (reverse congestion can now distort RTTs);
* HPCC with physical priority queues.

Paper shape: PrioPlus* stays within ~10 % of PrioPlus; HPCC is ≥ 15 % worse
on mean FCT (≥ 11 % at p99) because it pins utilisation below capacity to
keep queues empty, starving medium/large flows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .common import Mode
from .flowsched import FlowSchedConfig, run_flowsched

__all__ = ["run_fig16", "FIG16_MODES"]

FIG16_MODES = (Mode.PRIOPLUS, Mode.PRIOPLUS_SAME_ACK, Mode.HPCC)


def run_fig16(
    n_priorities: int = 8,
    modes: Sequence[str] = FIG16_MODES,
    cfg: Optional[FlowSchedConfig] = None,
) -> List[Dict[str, object]]:
    return [run_flowsched(mode, n_priorities, cfg) for mode in modes]
