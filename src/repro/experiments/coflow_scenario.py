"""Coflow-scheduling scenario (Figs 12a, 12b, 15, 17, 18).

Cluster-computing traffic on a non-blocking multi-rack fabric: a 1:1 load
mix of shuffle coflows (synthetic Facebook-Hadoop shape) and file-request
incasts.  Jobs are sorted into 8 priority groups by total size (smaller =
higher priority).  The metric is the per-coflow **speedup ratio** of CCT
against the no-priority Swift baseline, reported for the high four and low
four priority groups, overall, and at the tail (p99, Fig 15).

Fig 17 re-runs the 70 % load point with PFC off and IRN-style loss recovery;
Fig 18 adds HPCC and Physical w/o CC.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.fct import percentile
from ..coflow import CoflowTracker, assign_coflow_groups
from ..noise import paper_noise
from ..sim.engine import MICROSECOND, MILLISECOND, Simulator
from ..topology import multi_rack
from ..workloads import CoflowSpec, FlowSpec, synthesize_coflows
from .common import (CCFactory, FlowAdmitter, Mode, launch_specs,
                     run_admitter, run_until_flows_done)

__all__ = ["CoflowConfig", "run_coflow_mode", "run_coflow_comparison", "speedup_summary"]

N_GROUPS = 8


class CoflowConfig:
    """Scale knobs for the coflow scenario."""

    def __init__(
        self,
        n_racks: int = 3,
        hosts_per_rack: int = 4,
        host_rate_bps: float = 100e9,
        core_rate_bps: float = 400e9,
        load: float = 0.7,
        duration_ns: int = 2 * MILLISECOND,
        mean_flow_bytes: int = 100_000,
        request_fanout: int = 4,
        request_piece_bytes: int = 40_000,
        seed: int = 7,
        mtu: int = 1000,
        link_delay_ns: int = 300,
        pfc_enabled: bool = True,
        lossy: bool = False,
        with_noise: bool = True,
    ):
        self.n_racks = n_racks
        self.hosts_per_rack = hosts_per_rack
        self.host_rate_bps = host_rate_bps
        self.core_rate_bps = core_rate_bps
        self.load = load
        self.duration_ns = duration_ns
        self.mean_flow_bytes = mean_flow_bytes
        self.request_fanout = request_fanout
        self.request_piece_bytes = request_piece_bytes
        self.seed = seed
        self.mtu = mtu
        self.link_delay_ns = link_delay_ns
        self.pfc_enabled = pfc_enabled
        self.lossy = lossy
        self.with_noise = with_noise

    @property
    def n_hosts(self) -> int:
        return self.n_racks * self.hosts_per_rack


def build_workload(cfg: CoflowConfig) -> Tuple[List[CoflowSpec], Dict[int, int]]:
    """Coflows + file-request jobs (as coflows) filling the byte budget 1:1."""
    rng = random.Random(cfg.seed)
    budget = int(cfg.load * cfg.n_hosts * cfg.host_rate_bps * cfg.duration_ns / 8e9)
    half = budget // 2

    shuffle: List[CoflowSpec] = []
    total = 0
    next_id = 0
    while total < half:
        batch = synthesize_coflows(
            rng,
            cfg.n_hosts,
            n_coflows=8,
            duration_ns=cfg.duration_ns,
            mean_flow_bytes=cfg.mean_flow_bytes,
        )
        for c in batch:
            c.coflow_id = next_id
            for fl in c.flows:
                fl.tag = ("coflow", next_id)
            next_id += 1
            shuffle.append(c)
            total += c.total_bytes
            if total >= half:
                break

    requests: List[CoflowSpec] = []
    total_req = 0
    while total_req < half:
        t = rng.randrange(max(1, cfg.duration_ns))
        dst = rng.randrange(cfg.n_hosts)
        sources = rng.sample([h for h in range(cfg.n_hosts) if h != dst], cfg.request_fanout)
        flows = [
            FlowSpec(s, dst, cfg.request_piece_bytes, t, tag=("coflow", next_id))
            for s in sources
        ]
        requests.append(CoflowSpec(next_id, flows, t))
        next_id += 1
        total_req += cfg.request_fanout * cfg.request_piece_bytes

    jobs = shuffle + requests
    groups = assign_coflow_groups(jobs, N_GROUPS)
    return jobs, groups


def run_coflow_mode(
    mode: str,
    cfg: CoflowConfig,
    jobs: List[CoflowSpec],
    groups: Dict[int, int],
    topology=None,
    streaming: bool = False,
    fluid: bool = False,
    fluid_config=None,
    admit_horizon_ns: int = 1_000_000,
) -> Dict[int, int]:
    """Run one mode over a pre-built workload; returns coflow_id -> CCT ns.

    ``topology`` (a callable ``(sim, switch_cfg) -> (net, hosts)``) overrides
    the default :func:`multi_rack` fabric — the paper-scale variants pass a
    :func:`repro.topology.paper_fabric` wrapper (``cfg.n_hosts`` must match
    the fabric's host count, since the workload indexes into it).
    ``streaming=True`` admits senders in stages sorted by start time
    (:class:`FlowAdmitter`) so live-object count tracks concurrent flows on
    multi-second traces; ``fluid=True`` attaches a hybrid driver.  CCT
    bookkeeping is identical on every path: the tracker observes
    receiver-side flow completions.
    """
    sim = Simulator(cfg.seed)
    factory = CCFactory(mode, n_priorities=N_GROUPS)
    link_bdp = cfg.host_rate_bps * 1000 / 8e9
    switch_cfg = factory.switch_config(
        buffer_bytes=32 * 1024 * 1024,  # §6.2: 32 MB to not starve physical prio
        headroom_per_port_per_prio=int(2 * link_bdp + 5 * cfg.mtu),
        pfc_enabled=cfg.pfc_enabled and not cfg.lossy,
    )
    if topology is not None:
        net, hosts = topology(sim, switch_cfg)
        if len(hosts) != cfg.n_hosts:
            raise ValueError(
                f"topology provides {len(hosts)} hosts but the workload was "
                f"built for cfg.n_hosts={cfg.n_hosts}"
            )
    else:
        net, hosts = multi_rack(
            sim,
            n_racks=cfg.n_racks,
            hosts_per_rack=cfg.hosts_per_rack,
            host_rate_bps=cfg.host_rate_bps,
            core_rate_bps=cfg.core_rate_bps,
            link_delay_ns=cfg.link_delay_ns,
            switch_cfg=switch_cfg,
        )
    tracker = CoflowTracker()
    specs: List[FlowSpec] = []
    for job in jobs:
        tracker.register(job.coflow_id, job.start_ns, len(job.flows))
        specs.extend(job.flows)

    noise = paper_noise() if cfg.with_noise else None
    rto = 100 * MICROSECOND if cfg.lossy else None
    group_of = lambda s: groups[s.tag[1]]  # noqa: E731
    deadline = cfg.duration_ns * 50
    if streaming:
        specs.sort(key=lambda s: s.start_ns)  # admitter contract
        driver = None
        admitter = FlowAdmitter(
            sim,
            net,
            specs,
            hosts,
            factory,
            group_of,
            mtu=cfg.mtu,
            noise=noise,
            rto_ns=rto,
            horizon_ns=admit_horizon_ns,
            on_receive_done=tracker.on_flow_done,
        )
        if fluid:
            from ..fluid import HybridDriver

            driver = HybridDriver(sim, net, fluid_config)
        run_admitter(sim, admitter, deadline, driver=driver)
        return tracker.all_ccts()
    flows, _ = launch_specs(
        sim,
        net,
        specs,
        hosts,
        factory,
        group_of=group_of,
        mtu=cfg.mtu,
        noise=noise,
        rto_ns=rto,
        on_receive_done=tracker.on_flow_done,
    )
    run_until_flows_done(sim, flows, deadline)
    return tracker.all_ccts()


def run_coflow_comparison(
    modes: Sequence[str],
    cfg: Optional[CoflowConfig] = None,
    baseline: str = Mode.SWIFT,
) -> Dict[str, object]:
    """Run baseline + modes on the identical workload; return speedups."""
    cfg = cfg or CoflowConfig()
    jobs, groups = build_workload(cfg)
    base_cct = run_coflow_mode(baseline, cfg, jobs, groups)
    out: Dict[str, object] = {"config": cfg, "n_jobs": len(jobs), "baseline": baseline}
    results = {}
    for mode in modes:
        cct = run_coflow_mode(mode, cfg, jobs, groups)
        results[mode] = speedup_summary(base_cct, cct, groups)
    out["speedups"] = results
    return out


def speedup_summary(
    base_cct: Dict[int, int], cct: Dict[int, int], groups: Dict[int, int]
) -> Dict[str, float]:
    """Mean/p99 speedup overall and split into high-4 / low-4 groups."""
    common = [cid for cid in base_cct if cid in cct]
    if not common:
        return {"overall": float("nan")}
    ratios = {cid: base_cct[cid] / cct[cid] for cid in common}
    all_r = list(ratios.values())
    hi = [r for cid, r in ratios.items() if groups[cid] < N_GROUPS // 2]
    lo = [r for cid, r in ratios.items() if groups[cid] >= N_GROUPS // 2]
    result = {
        "overall": sum(all_r) / len(all_r),
        "overall_p99_slowdown": percentile([1.0 / r for r in all_r], 99),
        "completed": len(common),
    }
    if hi:
        result["high4"] = sum(hi) / len(hi)
    if lo:
        result["low4"] = sum(lo) / len(lo)
    return result
