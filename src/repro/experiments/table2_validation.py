"""Table 2 / Figure 5, validated in simulation.

A background flow holds the bottleneck at 75 % utilisation (fixed window of
3/4 BDP), leaving a 25 % residual for the newcomer.  A fresh flow then joins with one of the three start
strategies; we record

* the **peak extra queue** at the bottleneck beyond the pre-join level —
  Table 2's "maximum extra buffer" column, and
* the **transfer delay** of a fixed-size payload relative to the line-rate
  start — Table 2's "bytes delayed" column, expressed in time.

Expected shape (Table 2's ordering): line-rate start buffers ~0.75 BDP
(everything beyond the 25 % residual lands in the queue), exponential about
one final doubling (~0.3 BDP), linear ~1-2 ramp steps (~1/n BDP), while the
completion delays order the other way.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..cc.base import CongestionControl
from ..core.start_strategies import EXPONENTIAL, LINE_RATE, LINEAR, StartRampCC
from ..sim.engine import Simulator
from ..sim.switch import SwitchConfig
from ..topology import star
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .common import FunctionExperiment, register

__all__ = ["run_table2_validation"]


def _one_strategy(
    strategy: str, n_rtts: int, rate: float, link_delay_ns: int, seed: int
) -> Tuple[float, int]:
    """Returns (peak extra queue in BDP, joining flow's FCT in ns)."""
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=16 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=rate, link_delay_ns=link_delay_ns, switch_cfg=cfg)
    sw = net.switches[0]
    bottleneck = sw.ports[net._port_index(sw, net.path_ports(senders[0], recv)[-1])]

    # background flow pinned at three quarters of the line rate
    base_rtt = net.base_rtt_ns(senders[0], recv)
    bdp = rate * base_rtt / 8e9
    bg = Flow(1, senders[0], recv, int(rate), start_ns=0)  # effectively endless
    FlowSender(sim, net, bg, CongestionControl(init_cwnd_bytes=0.75 * bdp))
    sim.run(until=20 * base_rtt)
    baseline_queue = bottleneck.total_bytes

    join = Flow(2, senders[1], recv, int(4 * bdp), start_ns=sim.now)
    FlowSender(sim, net, join, StartRampCC(strategy, n_rtts=n_rtts))

    peak = {"q": 0}
    step = max(base_rtt // 20, 100)

    def sample():
        extra = bottleneck.total_bytes - baseline_queue
        if extra > peak["q"]:
            peak["q"] = extra
        if not join.done:
            sim.after(step, sample)

    sim.after(step, sample)
    sim.run(until=sim.now + 400 * base_rtt)
    if not join.done:
        raise RuntimeError(f"joining flow did not complete under {strategy}")
    return peak["q"] / bdp, join.fct_ns()


def run_table2_validation(
    n_rtts: int = 8, rate: float = 10e9, link_delay_ns: int = 2_000, seed: int = 1
) -> Dict[str, Dict[str, float]]:
    """Measured peak-extra-buffer (BDP) and FCT per start strategy."""
    out: Dict[str, Dict[str, float]] = {}
    for strategy in (LINE_RATE, EXPONENTIAL, LINEAR):
        peak_bdp, fct = _one_strategy(strategy, n_rtts, rate, link_delay_ns, seed)
        out[strategy] = {"peak_extra_buffer_bdp": peak_bdp, "fct_ns": float(fct)}
    return out


def _table2_strategy(
    strategy: str, n_rtts: int = 8, rate: float = 10e9, link_delay_ns: int = 2_000, seed: int = 1
) -> Dict[str, float]:
    """One Table 2 row, shaped like ``run_table2_validation()[strategy]``."""
    peak_bdp, fct = _one_strategy(strategy, n_rtts, rate, link_delay_ns, seed)
    return {"peak_extra_buffer_bdp": peak_bdp, "fct_ns": float(fct)}


register(
    FunctionExperiment(
        "table2",
        {
            strategy: (_table2_strategy, {"strategy": strategy, "seed": 1})
            for strategy in (LINE_RATE, EXPONENTIAL, LINEAR)
        },
        description="start-strategy validation: peak extra buffer vs transfer delay",
    )
)
