"""Figure 12c: model-training speedup in a shared ML cluster.

Several data-parallel jobs (ResNet and VGG profiles) share a 2:1
oversubscribed leaf-spine fabric, their rings deliberately interleaved
across leaves so all-reduce traffic collides on the uplinks (the CASSINI
setting).  Prioritising each model's traffic interleaves the bursts:

* baseline — Swift, no prioritisation;
* PrioPlus — each model gets its own virtual priority in one queue;
* physical — each model gets its own physical queue.

Paper shape: PrioPlus accelerates *both* model families (+12 %/+15 %,
+13 % overall); physical priority speeds the favoured family (+16 %) but
*slows the lower-priority family* (−18 %) — strict starvation that PrioPlus
avoids thanks to fast reclaim of leftover bandwidth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..mlsim import RESNET50, VGG16, TrainingJob, scaled_model
from ..noise import paper_noise
from ..sim.engine import MILLISECOND, Simulator
from ..topology import leaf_spine
from .common import CCFactory, Experiment, Mode, Point, register
from ..transport.flow import Flow

__all__ = [
    "MlTrainConfig",
    "run_mltrain_mode",
    "run_mltrain_comparison",
    "MlTrainComparisonExperiment",
]


class MlTrainConfig:
    def __init__(
        self,
        n_resnet: int = 2,
        n_vgg: int = 2,
        hosts_per_job: int = 4,
        n_leaves: int = 2,
        hosts_per_leaf: int = 4,
        n_spines: int = 2,
        host_rate_bps: float = 25e9,
        oversubscription: float = 2.0,
        model_scale: float = 0.004,
        compute_scale: float = 1.0,
        duration_ns: int = 8 * MILLISECOND,
        seed: int = 11,
        mtu: int = 1000,
        link_delay_ns: int = 500,
        with_noise: bool = True,
    ):
        self.n_resnet = n_resnet
        self.n_vgg = n_vgg
        self.hosts_per_job = hosts_per_job
        self.n_leaves = n_leaves
        self.hosts_per_leaf = hosts_per_leaf
        self.n_spines = n_spines
        self.host_rate_bps = host_rate_bps
        self.oversubscription = oversubscription
        self.model_scale = model_scale
        # compute shrinks less than traffic so ResNet stays compute-heavy and
        # VGG communication-heavy (the property that makes interleaving pay)
        self.compute_scale = compute_scale
        self.duration_ns = duration_ns
        self.seed = seed
        self.mtu = mtu
        self.link_delay_ns = link_delay_ns
        self.with_noise = with_noise

    @property
    def n_jobs(self) -> int:
        return self.n_resnet + self.n_vgg


def _ring_hosts(cfg: MlTrainConfig, hosts: List, job_idx: int) -> List:
    """Spread each ring across leaves so all-reduce crosses the uplinks."""
    n = len(hosts)
    stride = max(1, cfg.hosts_per_leaf)
    return [hosts[(job_idx + k * stride) % n] for k in range(cfg.hosts_per_job)]


def run_mltrain_mode(mode: str, cfg: Optional[MlTrainConfig] = None) -> Dict[str, object]:
    """Train all jobs under one mode; returns iterations per job."""
    cfg = cfg or MlTrainConfig()
    sim = Simulator(cfg.seed)
    n_prios = cfg.n_jobs
    # collective flows are latency-sensitive and recur every phase: start
    # them with linear start, no probe (§4.4)
    factory = CCFactory(mode, n_priorities=max(n_prios, 2), probe_tiers=())
    switch_cfg = factory.switch_config(buffer_bytes=32 * 1024 * 1024)
    net, hosts = leaf_spine(
        sim,
        n_leaves=cfg.n_leaves,
        hosts_per_leaf=cfg.hosts_per_leaf,
        n_spines=cfg.n_spines,
        host_rate_bps=cfg.host_rate_bps,
        oversubscription=cfg.oversubscription,
        link_delay_ns=cfg.link_delay_ns,
        switch_cfg=switch_cfg,
    )
    noise = paper_noise() if cfg.with_noise else None

    def profile(base):
        scaled = scaled_model(base, cfg.model_scale)
        scaled.compute_ns = int(base.compute_ns * cfg.model_scale * cfg.compute_scale)
        return scaled

    jobs: List[Tuple[str, TrainingJob]] = []
    profiles = [("resnet", profile(RESNET50))] * cfg.n_resnet
    profiles += [("vgg", profile(VGG16))] * cfg.n_vgg
    fid = 1
    for j, (family, profile) in enumerate(profiles):
        # ResNet jobs take the higher priorities (paper: 4 higher to ResNet)
        group = j if j < cfg.n_resnet else j  # job index = priority group
        ring = _ring_hosts(cfg, hosts, j)

        def cc_factory(flow: Flow, group=group):
            return factory.make(flow, group)

        job = TrainingJob(
            sim,
            net,
            ring,
            profile,
            cc_factory,
            flow_id_start=fid,
            priority=factory.data_priority(group),
            vpriority=factory.vpriority(group),
            mtu=cfg.mtu,
            noise=noise,
            start_ns=0,
        )
        fid += 1_000_000
        jobs.append((family, job))

    sim.run(until=cfg.duration_ns)
    for _, job in jobs:
        job.stop()

    per_family: Dict[str, List[float]] = {}
    for family, job in jobs:
        per_family.setdefault(family, []).append(job.iterations_in_window(cfg.duration_ns))
    return {
        "mode": mode,
        "iters_per_job": {
            fam: sum(v) / len(v) for fam, v in per_family.items()
        },
        "total_iters": sum(sum(v) for v in per_family.values()),
    }


def run_mltrain_comparison(
    modes: Sequence[str] = (Mode.PRIOPLUS, Mode.PHYSICAL),
    cfg: Optional[MlTrainConfig] = None,
    baseline: str = Mode.SWIFT,
) -> Dict[str, object]:
    cfg = cfg or MlTrainConfig()
    base = run_mltrain_mode(baseline, cfg)
    out: Dict[str, object] = {"baseline": base}
    speedups: Dict[str, Dict[str, float]] = {}
    for mode in modes:
        res = run_mltrain_mode(mode, cfg)
        per = {}
        for fam, iters in res["iters_per_job"].items():
            base_iters = base["iters_per_job"].get(fam, 0.0)
            per[fam] = iters / base_iters if base_iters > 0 else float("nan")
        per["overall"] = (
            res["total_iters"] / base["total_iters"] if base["total_iters"] > 0 else float("nan")
        )
        speedups[mode] = per
    out["speedups"] = speedups
    return out


class MlTrainComparisonExperiment(Experiment):
    """Fig 12c's mode comparison, one runner point per mode.

    ``reduce`` recomputes the per-family and overall speedups exactly like
    :func:`run_mltrain_comparison`, so the experiment's output matches the
    legacy wrapper's shape.
    """

    name = "fig12c"
    description = "ML-training iteration speedups in a shared cluster"

    def __init__(
        self,
        modes: Sequence[str] = (Mode.PRIOPLUS, Mode.PHYSICAL),
        cfg_kwargs: Dict[str, object] = None,
        baseline: str = Mode.SWIFT,
    ):
        self.modes = list(modes)
        self.cfg_kwargs = dict(cfg_kwargs) if cfg_kwargs is not None else {}
        self.baseline = baseline

    def points(self) -> List[Point]:
        seed = int(self.cfg_kwargs.get("seed", MlTrainConfig().seed))
        return [
            Point(mode, {"mode": mode, "cfg": dict(self.cfg_kwargs)}, seed=seed)
            for mode in [self.baseline, *self.modes]
        ]

    def run_point(self, point: Point) -> dict:
        return run_mltrain_mode(point.config["mode"], MlTrainConfig(**point.config["cfg"]))

    def reduce(self, results: Dict[str, dict]) -> Dict[str, object]:
        base = results[self.baseline]
        out: Dict[str, object] = {"baseline": base}
        speedups: Dict[str, Dict[str, float]] = {}
        for mode in self.modes:
            res = results[mode]
            per = {}
            for fam, iters in res["iters_per_job"].items():
                base_iters = base["iters_per_job"].get(fam, 0.0)
                per[fam] = iters / base_iters if base_iters > 0 else float("nan")
            per["overall"] = (
                res["total_iters"] / base["total_iters"]
                if base["total_iters"] > 0
                else float("nan")
            )
            speedups[mode] = per
        out["speedups"] = speedups
        return out


register(MlTrainComparisonExperiment())
