"""One experiment runner per figure/table of the paper (see DESIGN.md)."""
