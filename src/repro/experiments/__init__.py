"""One experiment module per figure/table of the paper (see DESIGN.md).

Every module registers its experiments behind the uniform protocol in
:mod:`repro.experiments.common` -- ``Point`` / ``Experiment`` /
``FunctionExperiment`` -- into the module-level ``REGISTRY``.  The supported
way to run one is the stable facade::

    import repro.api as api

    result = api.run("fig10c", jobs=4)

The historical ``run_figX*`` functions are deprecated shims over the same
code and emit :class:`DeprecationWarning`; they will be removed once nothing
imports them (see docs/RUNNER.md).
"""
