"""One experiment module per figure/table of the paper (see DESIGN.md).

Every module registers its experiments behind the uniform protocol in
:mod:`repro.experiments.common` -- ``Point`` / ``Experiment`` /
``FunctionExperiment`` -- into the module-level ``REGISTRY``::

    from repro.experiments.common import get_experiment
    from repro.runner import run_experiment

    result = run_experiment(get_experiment("fig10c"), jobs=4)

The historical ``run_figX*`` functions remain as deprecated serial
wrappers over the same code (see docs/RUNNER.md).
"""
