"""Generic flow-scheduling scenario (§6.2): WebSearch traffic on a fat-tree.

Flows are grouped by size into ``n_priorities`` classes (smaller = higher
priority), approximating size-based scheduling algorithms (pFabric / PIAS
style).  The same workload (same seed) is replayed under every mode so FCT
comparisons are paired.

Used by Fig 11 (priority-count sweep), Fig 14 (per-priority WebSearch
breakdown), Fig 16 (PrioPlus* ACK priority + HPCC).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..analysis.fct import percentile
from ..core import StartTier
from ..noise import paper_noise
from ..sim.engine import MILLISECOND, Simulator
from ..topology import fat_tree
from ..workloads import EmpiricalCdf, poisson_flows, websearch
from .common import CCFactory, launch_specs, run_until_flows_done

__all__ = ["FlowSchedConfig", "run_flowsched", "size_group_boundaries"]


class FlowSchedConfig:
    """Scale knobs for the flow-scheduling scenario."""

    def __init__(
        self,
        k: int = 4,
        rate_bps: float = 10e9,
        link_delay_ns: int = 1000,
        load: float = 0.7,
        duration_ns: int = 3 * MILLISECOND,
        size_scale: float = 0.1,
        buffer_mb_per_tbps: float = 4.4,
        seed: int = 42,
        mtu: int = 1000,
        with_noise: bool = True,
        pfc_enabled: bool = True,
        rto_ns: Optional[int] = None,
        cdf_factory=websearch,
        channels=None,
    ):
        self.k = k
        self.rate_bps = rate_bps
        self.link_delay_ns = link_delay_ns
        self.load = load
        self.duration_ns = duration_ns
        self.size_scale = size_scale
        self.buffer_mb_per_tbps = buffer_mb_per_tbps
        self.seed = seed
        self.mtu = mtu
        self.with_noise = with_noise
        self.pfc_enabled = pfc_enabled
        self.rto_ns = rto_ns
        #: callable(scale) -> EmpiricalCdf; swap in hadoop()/ali_storage()
        self.cdf_factory = cdf_factory
        #: ChannelConfig override for delay-channel modes (repro.tune places
        #: tuned [D_target, D_limit] bands here); None = paper default
        self.channels = channels

    def buffer_bytes(self) -> int:
        """Chip buffer from the paper's 4.4 MB/Tbps Tomahawk4 ratio."""
        ports = self.k + self.k  # edge/agg switch port count upper bound
        capacity_tbps = ports * self.rate_bps / 1e12
        return max(int(self.buffer_mb_per_tbps * 1024 * 1024 * capacity_tbps), 256 * 1024)

    def headroom_bytes(self) -> int:
        """Per-port per-priority PFC headroom: ~2 link BDP + a few MTUs."""
        link_bdp = self.rate_bps * self.link_delay_ns / 8e9
        return int(2 * link_bdp + 5 * self.mtu)

    def size_classes(self) -> Sequence:
        s = self.size_scale
        return (
            ("small", 0, int(300_000 * s)),
            ("middle", int(300_000 * s), int(6_000_000 * s)),
            ("large", int(6_000_000 * s), 1 << 62),
        )


def size_group_boundaries(cdf: EmpiricalCdf, n_groups: int) -> List[float]:
    """Size thresholds splitting the workload into equal-probability groups."""
    return [cdf.quantile((i + 1) / n_groups) for i in range(n_groups - 1)]


def run_flowsched(
    mode: str,
    n_priorities: int,
    cfg: Optional[FlowSchedConfig] = None,
    big_buffer: bool = False,
    topology=None,
    fluid: bool = False,
    fluid_config=None,
) -> Dict[str, object]:
    """One mode x one priority count; returns per-size-class FCT stats.

    ``topology`` (a callable ``(sim, switch_cfg) -> (net, hosts)``) overrides
    the default ``fat_tree(k=cfg.k)`` fabric — the paper-scale experiments
    pass :func:`repro.topology.paper_fabric` here.  ``fluid=True`` attaches a
    :class:`repro.fluid.HybridDriver` (optionally configured by
    ``fluid_config``) and reports its regime statistics under ``"fluid"``.
    """
    cfg = cfg or FlowSchedConfig()
    sim = Simulator(cfg.seed)
    factory = CCFactory(mode, n_priorities=n_priorities, channels=cfg.channels)
    cdf = cfg.cdf_factory(cfg.size_scale)
    boundaries = size_group_boundaries(cdf, n_priorities)
    # §4.4: latency-sensitive (small-class) flows start without probing and
    # with an aggressive W_LS; throughput-class flows probe before starting.
    small_cut = cfg.size_classes()[0][2]
    middle_cut = cfg.size_classes()[1][2]

    def tier_of_group(group: int) -> str:
        upper = boundaries[group] if group < len(boundaries) else float("inf")
        if upper <= small_cut:
            return StartTier.HIGH
        if upper <= middle_cut:
            return StartTier.MEDIUM
        return StartTier.LOW

    factory = CCFactory(
        mode, n_priorities=n_priorities, channels=cfg.channels, tier_of_group=tier_of_group
    )
    switch_cfg = factory.switch_config(
        buffer_bytes=cfg.buffer_bytes() if not big_buffer else 32 * 1024 * 1024,
        headroom_per_port_per_prio=cfg.headroom_bytes(),
        pfc_enabled=cfg.pfc_enabled,
    )
    if topology is not None:
        net, hosts = topology(sim, switch_cfg)
    else:
        net, hosts = fat_tree(
            sim,
            k=cfg.k,
            rate_bps=cfg.rate_bps,
            link_delay_ns=cfg.link_delay_ns,
            switch_cfg=switch_cfg,
        )
    rng = random.Random(cfg.seed)
    specs = poisson_flows(
        rng, len(hosts), cdf, cfg.load, cfg.rate_bps, cfg.duration_ns
    )

    def group_of(spec) -> int:
        for g, b in enumerate(boundaries):
            if spec.size_bytes <= b:
                return g
        return n_priorities - 1

    noise = paper_noise() if cfg.with_noise else None
    flows, senders = launch_specs(
        sim, net, specs, hosts, factory, group_of, mtu=cfg.mtu, noise=noise, rto_ns=cfg.rto_ns
    )
    driver = None
    if fluid:
        from ..fluid import HybridDriver

        driver = HybridDriver(sim, net, fluid_config)
    deadline = cfg.duration_ns * 40
    all_done = run_until_flows_done(sim, flows, deadline, driver=driver)

    done_flows = [f for f in flows if f.done]
    result: Dict[str, object] = {
        "mode": mode,
        "n_priorities": n_priorities,
        "n_flows": len(flows),
        "n_done": len(done_flows),
        "all_done": all_done,
        "drops": net.total_drops(),
        "pfc_pauses": net.total_pfc_pauses(),
    }
    if driver is not None:
        result["fluid"] = dict(driver.stats, events=sim.events_processed)
    if not done_flows:
        return result
    fcts_all = [f.fct_ns() for f in done_flows]
    result["fct"] = {"all": _stats(fcts_all)}
    for name, lo, hi in cfg.size_classes():
        vals = [f.fct_ns() for f in done_flows if lo <= f.size_bytes < hi]
        if vals:
            result["fct"][name] = _stats(vals)
    # per-priority-group breakdown (Fig 14 uses this)
    per_group: Dict[int, List[float]] = {}
    for f in done_flows:
        g = group_of(_SizeOnly(f.size_bytes))
        per_group.setdefault(g, []).append(f.fct_ns())
    result["fct_by_group"] = {g: _stats(v) for g, v in per_group.items()}
    return result


class _SizeOnly:
    __slots__ = ("size_bytes",)

    def __init__(self, size_bytes: int):
        self.size_bytes = size_bytes


def _stats(values: List[float]) -> Dict[str, float]:
    return {
        "count": len(values),
        "mean_us": sum(values) / len(values) / 1e3,
        "p50_us": percentile(values, 50) / 1e3,
        "p99_us": percentile(values, 99) / 1e3,
    }
