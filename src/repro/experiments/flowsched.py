"""Generic flow-scheduling scenario (§6.2): WebSearch traffic on a fat-tree.

Flows are grouped by size into ``n_priorities`` classes (smaller = higher
priority), approximating size-based scheduling algorithms (pFabric / PIAS
style).  The same workload (same seed) is replayed under every mode so FCT
comparisons are paired.

Used by Fig 11 (priority-count sweep), Fig 14 (per-priority WebSearch
breakdown), Fig 16 (PrioPlus* ACK priority + HPCC).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..analysis.fct import percentile
from ..analysis.streaming import StreamingStats
from ..core import StartTier
from ..noise import paper_noise
from ..sim.engine import MILLISECOND, Simulator
from ..topology import fat_tree
from ..workloads import EmpiricalCdf, poisson_flows, poisson_flows_iter, websearch
from .common import (CCFactory, FlowAdmitter, launch_specs, run_admitter,
                     run_until_flows_done)

__all__ = ["FlowSchedConfig", "run_flowsched", "size_group_boundaries"]


class FlowSchedConfig:
    """Scale knobs for the flow-scheduling scenario."""

    def __init__(
        self,
        k: int = 4,
        rate_bps: float = 10e9,
        link_delay_ns: int = 1000,
        load: float = 0.7,
        duration_ns: int = 3 * MILLISECOND,
        size_scale: float = 0.1,
        buffer_mb_per_tbps: float = 4.4,
        seed: int = 42,
        mtu: int = 1000,
        with_noise: bool = True,
        pfc_enabled: bool = True,
        rto_ns: Optional[int] = None,
        cdf_factory=websearch,
        channels=None,
    ):
        self.k = k
        self.rate_bps = rate_bps
        self.link_delay_ns = link_delay_ns
        self.load = load
        self.duration_ns = duration_ns
        self.size_scale = size_scale
        self.buffer_mb_per_tbps = buffer_mb_per_tbps
        self.seed = seed
        self.mtu = mtu
        self.with_noise = with_noise
        self.pfc_enabled = pfc_enabled
        self.rto_ns = rto_ns
        #: callable(scale) -> EmpiricalCdf; swap in hadoop()/ali_storage()
        self.cdf_factory = cdf_factory
        #: ChannelConfig override for delay-channel modes (repro.tune places
        #: tuned [D_target, D_limit] bands here); None = paper default
        self.channels = channels

    def buffer_bytes(self) -> int:
        """Chip buffer from the paper's 4.4 MB/Tbps Tomahawk4 ratio."""
        ports = self.k + self.k  # edge/agg switch port count upper bound
        capacity_tbps = ports * self.rate_bps / 1e12
        return max(int(self.buffer_mb_per_tbps * 1024 * 1024 * capacity_tbps), 256 * 1024)

    def headroom_bytes(self) -> int:
        """Per-port per-priority PFC headroom: ~2 link BDP + a few MTUs."""
        link_bdp = self.rate_bps * self.link_delay_ns / 8e9
        return int(2 * link_bdp + 5 * self.mtu)

    def size_classes(self) -> Sequence:
        s = self.size_scale
        return (
            ("small", 0, int(300_000 * s)),
            ("middle", int(300_000 * s), int(6_000_000 * s)),
            ("large", int(6_000_000 * s), 1 << 62),
        )


def size_group_boundaries(cdf: EmpiricalCdf, n_groups: int) -> List[float]:
    """Size thresholds splitting the workload into equal-probability groups."""
    return [cdf.quantile((i + 1) / n_groups) for i in range(n_groups - 1)]


def run_flowsched(
    mode: str,
    n_priorities: int,
    cfg: Optional[FlowSchedConfig] = None,
    big_buffer: bool = False,
    topology=None,
    fluid: bool = False,
    fluid_config=None,
    streaming: bool = False,
    admit_horizon_ns: int = 1_000_000,
) -> Dict[str, object]:
    """One mode x one priority count; returns per-size-class FCT stats.

    ``topology`` (a callable ``(sim, switch_cfg) -> (net, hosts)``) overrides
    the default ``fat_tree(k=cfg.k)`` fabric — the paper-scale experiments
    pass :func:`repro.topology.paper_fabric` here.  ``fluid=True`` attaches a
    :class:`repro.fluid.HybridDriver` (optionally configured by
    ``fluid_config``) and reports its regime statistics under ``"fluid"``.

    ``streaming=True`` selects the long-trace path: the workload is pulled
    lazily from :func:`poisson_flows_iter` (identical draws, never
    materialized), senders are admitted in stages ``admit_horizon_ns`` ahead
    of their start time (:class:`FlowAdmitter`), and per-group FCT stats are
    reduced through bounded-memory P² sketches instead of lists.  The result
    record has the same shape (percentiles are P² estimates; the record also
    carries ``live_peak`` and ``streaming=True``); peak memory tracks the
    *concurrent* flow population, so multi-second traces are first-class.
    """
    cfg = cfg or FlowSchedConfig()
    sim = Simulator(cfg.seed)
    factory = CCFactory(mode, n_priorities=n_priorities, channels=cfg.channels)
    cdf = cfg.cdf_factory(cfg.size_scale)
    boundaries = size_group_boundaries(cdf, n_priorities)
    # §4.4: latency-sensitive (small-class) flows start without probing and
    # with an aggressive W_LS; throughput-class flows probe before starting.
    small_cut = cfg.size_classes()[0][2]
    middle_cut = cfg.size_classes()[1][2]

    def tier_of_group(group: int) -> str:
        upper = boundaries[group] if group < len(boundaries) else float("inf")
        if upper <= small_cut:
            return StartTier.HIGH
        if upper <= middle_cut:
            return StartTier.MEDIUM
        return StartTier.LOW

    factory = CCFactory(
        mode, n_priorities=n_priorities, channels=cfg.channels, tier_of_group=tier_of_group
    )
    switch_cfg = factory.switch_config(
        buffer_bytes=cfg.buffer_bytes() if not big_buffer else 32 * 1024 * 1024,
        headroom_per_port_per_prio=cfg.headroom_bytes(),
        pfc_enabled=cfg.pfc_enabled,
    )
    if topology is not None:
        net, hosts = topology(sim, switch_cfg)
    else:
        net, hosts = fat_tree(
            sim,
            k=cfg.k,
            rate_bps=cfg.rate_bps,
            link_delay_ns=cfg.link_delay_ns,
            switch_cfg=switch_cfg,
        )
    rng = random.Random(cfg.seed)

    def group_of(spec) -> int:
        for g, b in enumerate(boundaries):
            if spec.size_bytes <= b:
                return g
        return n_priorities - 1

    noise = paper_noise() if cfg.with_noise else None
    deadline = cfg.duration_ns * 40

    if streaming:
        spec_iter = poisson_flows_iter(
            rng, len(hosts), cdf, cfg.load, cfg.rate_bps, cfg.duration_ns
        )
        acc = _StreamingFct(cfg.size_classes(), group_of)
        admitter = FlowAdmitter(
            sim,
            net,
            spec_iter,
            hosts,
            factory,
            group_of,
            mtu=cfg.mtu,
            noise=noise,
            rto_ns=cfg.rto_ns,
            horizon_ns=admit_horizon_ns,
            on_flow_done=acc.add,
        )
        driver = None
        if fluid:
            from ..fluid import HybridDriver

            driver = HybridDriver(sim, net, fluid_config)
        all_done = run_admitter(sim, admitter, deadline, driver=driver)
        result: Dict[str, object] = {
            "mode": mode,
            "n_priorities": n_priorities,
            "n_flows": admitter.n_admitted,
            "n_done": admitter.n_done,
            "all_done": all_done,
            "drops": net.total_drops(),
            "pfc_pauses": net.total_pfc_pauses(),
            "streaming": True,
            "live_peak": admitter.live_peak,
        }
        if driver is not None:
            result["fluid"] = dict(driver.stats, events=sim.events_processed)
        result["fct"] = acc.fct_section()
        result["fct_by_group"] = acc.group_section(n_priorities)
        return result

    specs = poisson_flows(
        rng, len(hosts), cdf, cfg.load, cfg.rate_bps, cfg.duration_ns
    )
    flows, senders = launch_specs(
        sim, net, specs, hosts, factory, group_of, mtu=cfg.mtu, noise=noise, rto_ns=cfg.rto_ns
    )
    driver = None
    if fluid:
        from ..fluid import HybridDriver

        driver = HybridDriver(sim, net, fluid_config)
    all_done = run_until_flows_done(sim, flows, deadline, driver=driver)

    done_flows = [f for f in flows if f.done]
    result = {
        "mode": mode,
        "n_priorities": n_priorities,
        "n_flows": len(flows),
        "n_done": len(done_flows),
        "all_done": all_done,
        "drops": net.total_drops(),
        "pfc_pauses": net.total_pfc_pauses(),
    }
    if driver is not None:
        result["fluid"] = dict(driver.stats, events=sim.events_processed)
    if not done_flows:
        return result
    fcts_all = [f.fct_ns() for f in done_flows]
    result["fct"] = {"all": _stats(fcts_all)}
    for name, lo, hi in cfg.size_classes():
        vals = [f.fct_ns() for f in done_flows if lo <= f.size_bytes < hi]
        # empty size classes get the well-defined n=0 record, not a KeyError
        result["fct"][name] = _stats(vals)
    # per-priority-group breakdown (Fig 14 uses this); every group present,
    # n=0 when a group completed nothing
    per_group: Dict[int, List[float]] = {}
    for f in done_flows:
        g = group_of(_SizeOnly(f.size_bytes))
        per_group.setdefault(g, []).append(f.fct_ns())
    result["fct_by_group"] = {g: _stats(per_group.get(g, [])) for g in range(n_priorities)}
    return result


class _SizeOnly:
    __slots__ = ("size_bytes",)

    def __init__(self, size_bytes: int):
        self.size_bytes = size_bytes


class _StreamingFct:
    """Bounded-memory FCT accumulator fed one completion at a time.

    Mirrors the list-path result sections (``fct`` / ``fct_by_group``) but
    holds only O(size classes + priority groups) P² sketches, never the
    per-flow samples.
    """

    def __init__(self, size_classes: Sequence, group_of):
        self.all = StreamingStats()
        self._classes = [(name, lo, hi, StreamingStats()) for name, lo, hi in size_classes]
        self._groups: Dict[int, StreamingStats] = {}
        self._group_of = group_of

    def add(self, flow) -> None:
        fct = flow.fct_ns()
        self.all.add(fct)
        for _name, lo, hi, st in self._classes:
            if lo <= flow.size_bytes < hi:
                st.add(fct)
        g = self._group_of(_SizeOnly(flow.size_bytes))
        self._groups.setdefault(g, StreamingStats()).add(fct)

    def fct_section(self) -> Dict[str, Dict[str, object]]:
        out = {"all": self.all.as_dict()}
        for name, _lo, _hi, st in self._classes:
            out[name] = st.as_dict()
        return out

    def group_section(self, n_groups: int) -> Dict[int, Dict[str, object]]:
        empty = StreamingStats()
        return {g: self._groups.get(g, empty).as_dict() for g in range(n_groups)}


def _stats(values: List[float]) -> Dict[str, object]:
    """The per-group FCT record; a well-defined form for empty groups.

    An ``n == 0`` group (every flow of a size class unfinished at the
    deadline, or a priority group the workload never hit) reports
    ``count: 0`` with ``None`` metrics instead of raising
    :class:`ZeroDivisionError` — the shape :class:`StreamingStats.as_dict`
    also exports, so list and streaming reducers agree.
    """
    if not values:
        return {"count": 0, "mean_us": None, "p50_us": None, "p99_us": None}
    return {
        "count": len(values),
        "mean_us": sum(values) / len(values) / 1e3,
        "p50_us": percentile(values, 50) / 1e3,
        "p99_us": percentile(values, 99) / 1e3,
    }
