"""Online invariant auditor for the simulation core.

The auditor is the runtime counterpart of the golden-result battery: the
battery proves *that* behaviour is unchanged, the auditor explains *why* a
run is trustworthy by checking conservation and accounting invariants while
the simulation executes.  It follows the same zero-overhead-when-off design
as :mod:`repro.telemetry`: every hook site reads one attribute and checks one
flag::

    aud = self.audit
    if aud.enabled:
        aud.packet_dropped("buffer_shared", size)

Components snapshot ``sim.audit`` at construction time and :class:`Simulator`
adopts the module default, so the disabled path costs a single attribute
check (and the engine's event loop is not touched at all — the audited loop
is a separate method selected once per ``run()`` call).

Invariants (see docs/AUDIT.md for the full semantics):

1. **Packet conservation ledger** — every packet acquired from the pool is
   eventually delivered, dropped (with a reason) or corrupted; unaccounted
   releases and leaked packets are reconciled at :meth:`Auditor.finalize`.
2. **Buffer byte reconciliation** — ``shared_used`` / ``headroom_used``
   always match an independently-maintained shadow ledger, never go
   negative, never exceed capacity; at finalize they equal the bytes
   resident in the owning switch's port queues.
3. **PFC causality + deadlock watchdog** — RESUME never precedes (or
   doubles) its PAUSE, and a cycle of pauses older than
   ``deadlock_horizon_ns`` raises a diagnostic carrying the pause graph.
4. **Sender window accounting** — ``inflight_bytes`` equals the sum of
   sent-unacked payloads after every ACK/RTO/go-back-N event, and a sender
   with pending (re)transmissions always has a timer armed.
5. **Clock monotonicity** — no event executes at a time before the clock
   (checked per-event on the fused scheduling path by the audited run loop).

The auditor never feeds back into the simulation: it schedules no events,
draws from no RNG and mutates no component state, so an audited run produces
byte-identical results to an unaudited one (pinned by the golden battery's
``--audit`` mode).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AuditError",
    "AuditReport",
    "AuditViolation",
    "Auditor",
    "NULL_AUDITOR",
    "NullAuditor",
    "audit_scope",
    "current_auditor",
    "default_auditor",
    "set_default_auditor",
]

#: drop reasons the ledger recognises (free-form strings are still accepted;
#: these are the ones the simulator itself emits)
DROP_REASONS = (
    "buffer_shared",  # rejected by the shared pool (lossy, or headroom full)
    "buffer_headroom",  # lossless packet rejected by both pools
    "switch_dead",  # arrived at a rebooting switch
    "blackhole",  # routed to a down port inside the detection window
    "link_cut",  # queued on a port when the link was cut
)


class AuditError(AssertionError):
    """Raised at the violation site when the auditor runs in strict mode."""


class AuditViolation:
    """One invariant violation, recorded at the instant it was detected."""

    __slots__ = ("t", "invariant", "message")

    def __init__(self, t: int, invariant: str, message: str):
        self.t = t
        self.invariant = invariant
        self.message = message

    def to_dict(self) -> dict:
        return {"t": self.t, "invariant": self.invariant, "message": self.message}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AuditViolation t={self.t} {self.invariant}: {self.message}>"


class AuditReport:
    """Reconciled outcome of one audited run (JSON-safe via :meth:`to_dict`)."""

    #: violations kept verbatim; beyond this only the count grows
    MAX_RECORDED = 100

    def __init__(self, mode: str):
        self.mode = mode
        self.violations: List[AuditViolation] = []
        self.violation_count = 0
        #: invariant name -> number of checks performed
        self.checks: Dict[str, int] = {}
        #: packet-conservation ledger totals
        self.ledger: Dict[str, object] = {}
        self.finalized = False

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "ok": self.ok,
            "violation_count": self.violation_count,
            "violations": [v.to_dict() for v in self.violations],
            "checks": dict(sorted(self.checks.items())),
            "ledger": self.ledger,
        }


class NullAuditor:
    """Inert stand-in installed by default; hook sites only read ``enabled``."""

    enabled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullAuditor>"


#: the process-wide disabled auditor (safe to share: it holds no state)
NULL_AUDITOR = NullAuditor()


class Auditor:
    """Collects invariant checks from simulator hook sites.

    Parameters
    ----------
    mode:
        ``"strict"`` raises :class:`AuditError` at the violation site (the
        stack trace points at the buggy mutation); ``"warn"`` records the
        violation and lets the simulation continue.
    deadlock_horizon_ns:
        A cycle in the PFC pause graph whose every edge has been held longer
        than this raises the deadlock-watchdog diagnostic.
    recorder:
        Optional :class:`repro.telemetry.Recorder`; violations are mirrored
        onto its ``audit`` event channel so they land in JSONL exports.
    """

    enabled = True

    def __init__(
        self,
        mode: str = "strict",
        deadlock_horizon_ns: int = 50_000_000,
        recorder=None,
    ):
        if mode not in ("strict", "warn"):
            raise ValueError(f"audit mode must be 'strict' or 'warn', got {mode!r}")
        self.mode = mode
        self.deadlock_horizon_ns = deadlock_horizon_ns
        self.recorder = recorder
        self.report = AuditReport(mode)
        self._checks = self.report.checks

        # (1) packet conservation ledger
        self.acquired = 0
        self.released = 0
        self.delivered = 0
        self.delivered_bytes = 0
        self.corrupted = 0
        self.dropped: Dict[str, int] = {}
        self.dropped_total = 0

        # (2) buffer shadows: id(buffer) -> [shared, headroom]
        self._buf_shadow: Dict[int, List[int]] = {}
        self._buffers: List[object] = []

        # (3) PFC state: (switch, in_idx, prio) -> (since_ns, waiter, blocker)
        self._pfc_paused: Dict[Tuple[str, int, int], Tuple[int, str, str]] = {}
        self._deadlocks_reported = 0

        # registered components, walked by finalize()
        self._ports: List[object] = []
        self._switches: List[object] = []
        self._sims: List[object] = []

        # pool counters snapshot (leak detection baseline)
        self._pool = None
        self._pool_live0 = 0

    # ------------------------------------------------------------------
    # violation plumbing
    # ------------------------------------------------------------------
    def violation(self, t: int, invariant: str, message: str) -> None:
        """Record a violation; raise in strict mode."""
        report = self.report
        report.violation_count += 1
        if len(report.violations) < AuditReport.MAX_RECORDED:
            report.violations.append(AuditViolation(t, invariant, message))
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.audit_violation(t, invariant, message)
        if self.mode == "strict":
            raise AuditError(f"[audit:{invariant}] t={t}: {message}")

    def _count(self, invariant: str, n: int = 1) -> None:
        checks = self._checks
        checks[invariant] = checks.get(invariant, 0) + n

    # ------------------------------------------------------------------
    # component registration (called from constructors when audit is on)
    # ------------------------------------------------------------------
    def register_sim(self, sim) -> None:
        self._sims.append(sim)

    def register_port(self, port) -> None:
        self._ports.append(port)

    def register_switch(self, switch) -> None:
        self._switches.append(switch)

    def attach_pool(self, pool) -> None:
        """Snapshot the packet pool's live count as the leak baseline."""
        self._pool = pool
        self._pool_live0 = pool.live

    # ------------------------------------------------------------------
    # (1) packet conservation ledger
    # ------------------------------------------------------------------
    def packet_acquired(self) -> None:
        self.acquired += 1

    def packet_released(self) -> None:
        self.released += 1

    def packet_delivered(self, size: int) -> None:
        self.delivered += 1
        self.delivered_bytes += size

    def packet_dropped(self, reason: str, size: int) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + 1
        self.dropped_total += 1

    def packet_corrupted(self, size: int) -> None:
        self.corrupted += 1

    # ------------------------------------------------------------------
    # (2) buffer byte reconciliation
    # ------------------------------------------------------------------
    def _buffer_shadow(self, buf, d_shared: int, d_headroom: int) -> List[int]:
        shadow = self._buf_shadow.get(id(buf))
        if shadow is None:
            # late registration: seed the shadow from the pre-op state so a
            # buffer that carried traffic before the auditor was installed
            # reconciles from here on
            shadow = [buf.shared_used - d_shared, buf.headroom_used - d_headroom]
            self._buf_shadow[id(buf)] = shadow
            self._buffers.append(buf)
        return shadow

    def buffer_admit(self, t: int, buf, headroom: bool, size: int) -> None:
        """Called *after* a successful admit of ``size`` bytes."""
        self._count("buffer_bytes")
        d_shared, d_headroom = (0, size) if headroom else (size, 0)
        shadow = self._buffer_shadow(buf, d_shared, d_headroom)
        shadow[0] += d_shared
        shadow[1] += d_headroom
        self._buffer_check(t, buf, shadow)

    def buffer_release(self, t: int, buf, headroom: bool, size: int) -> None:
        """Called *after* ``size`` bytes were returned to a pool."""
        self._count("buffer_bytes")
        d_shared, d_headroom = (0, -size) if headroom else (-size, 0)
        shadow = self._buffer_shadow(buf, d_shared, d_headroom)
        shadow[0] += d_shared
        shadow[1] += d_headroom
        self._buffer_check(t, buf, shadow)

    def _buffer_check(self, t: int, buf, shadow: List[int]) -> None:
        name = getattr(buf, "name", "") or f"buffer@{id(buf):x}"
        if buf.shared_used != shadow[0] or buf.headroom_used != shadow[1]:
            self.violation(
                t,
                "buffer_bytes",
                f"{name}: accounting drifted from shadow ledger "
                f"(shared {buf.shared_used} != {shadow[0]} or "
                f"headroom {buf.headroom_used} != {shadow[1]})",
            )
        if buf.shared_used < 0 or buf.headroom_used < 0:
            self.violation(
                t,
                "buffer_bytes",
                f"{name}: negative occupancy (shared={buf.shared_used}, "
                f"headroom={buf.headroom_used})",
            )
        if buf.shared_used > buf.shared_capacity:
            self.violation(
                t,
                "buffer_bytes",
                f"{name}: shared pool over capacity "
                f"({buf.shared_used} > {buf.shared_capacity})",
            )
        if buf.headroom_used > buf.headroom_capacity:
            self.violation(
                t,
                "buffer_bytes",
                f"{name}: headroom over capacity "
                f"({buf.headroom_used} > {buf.headroom_capacity})",
            )

    # ------------------------------------------------------------------
    # (3) PFC causality + deadlock watchdog
    # ------------------------------------------------------------------
    @staticmethod
    def _node_of_port(port_name: str) -> str:
        # "switch3.p2" / "host0.nic" -> owning node name
        return port_name.rsplit(".", 1)[0] if "." in port_name else port_name

    def pfc_signal(
        self, t: int, switch: str, upstream: str, in_idx: int, prio: int, paused: bool
    ) -> None:
        """One PAUSE/RESUME emission by ``switch`` against ingress ``in_idx``."""
        self._count("pfc_causality")
        key = (switch, in_idx, prio)
        held = self._pfc_paused.get(key)
        if paused:
            if held is not None:
                self.violation(
                    t,
                    "pfc_causality",
                    f"{switch} in={in_idx} prio={prio}: PAUSE while already "
                    f"paused since t={held[0]} (double pause)",
                )
            waiter = self._node_of_port(upstream) if upstream else ""
            self._pfc_paused[key] = (t, waiter, switch)
        else:
            if held is None:
                self.violation(
                    t,
                    "pfc_causality",
                    f"{switch} in={in_idx} prio={prio}: RESUME without a "
                    f"preceding PAUSE",
                )
                return
            if t < held[0]:
                self.violation(
                    t,
                    "pfc_causality",
                    f"{switch} in={in_idx} prio={prio}: RESUME at t={t} "
                    f"precedes its PAUSE at t={held[0]}",
                )
            del self._pfc_paused[key]
        self._check_deadlock(t)

    def pfc_backlog(self, t: int, key, backlog_bytes: int) -> None:
        """Per-(ingress, priority) byte counter after an enqueue/dequeue."""
        self._count("pfc_backlog")
        if backlog_bytes < 0:
            self.violation(
                t, "pfc_causality", f"{key}: ingress backlog negative ({backlog_bytes})"
            )

    def _pause_graph(self, t: int, min_age_ns: int = 0):
        """Current pause edges ``waiter -> blocker`` at least ``min_age`` old."""
        edges: Dict[str, List[str]] = {}
        held = []
        for (switch, in_idx, prio), (since, waiter, blocker) in self._pfc_paused.items():
            if t - since < min_age_ns or not waiter:
                continue
            edges.setdefault(waiter, []).append(blocker)
            held.append((switch, in_idx, prio, since, waiter))
        return edges, held

    @staticmethod
    def _find_cycle(edges: Dict[str, List[str]]) -> Optional[List[str]]:
        WHITE, GREY, BLACK = 0, 1, 2
        color = {n: WHITE for n in edges}
        stack_path: List[str] = []

        def visit(node: str) -> Optional[List[str]]:
            color[node] = GREY
            stack_path.append(node)
            for nxt in edges.get(node, ()):
                c = color.get(nxt, WHITE)
                if c == GREY:
                    return stack_path[stack_path.index(nxt):] + [nxt]
                if c == WHITE and nxt in edges:
                    found = visit(nxt)
                    if found:
                        return found
            color[node] = BLACK
            stack_path.pop()
            return None

        for node in list(edges):
            if color[node] == WHITE:
                found = visit(node)
                if found:
                    return found
        return None

    def _check_deadlock(self, t: int) -> None:
        self._count("pfc_deadlock")
        edges, held = self._pause_graph(t, self.deadlock_horizon_ns)
        if not edges:
            return
        cycle = self._find_cycle(edges)
        if cycle is not None and not self._deadlocks_reported:
            self._deadlocks_reported += 1
            graph = "; ".join(
                f"{sw}[in={i},prio={p}] paused {w} since t={since}"
                for (sw, i, p, since, w) in held
            )
            self.violation(
                t,
                "pfc_deadlock",
                f"pause cycle {' -> '.join(cycle)} held beyond "
                f"{self.deadlock_horizon_ns}ns horizon; pause graph: {graph}",
            )

    # ------------------------------------------------------------------
    # (4) sender window accounting
    # ------------------------------------------------------------------
    def sender_event(self, t: int, sender) -> None:
        """Reconcile ``inflight_bytes`` after an ACK/RTO/go-back-N event."""
        self._count("sender_window")
        if sender.completed:
            return
        sent = sender.sent
        acked = sender.acked
        mtu = sender.mtu
        n = sender.n_packets
        expected = 0
        for i in range(n - 1):
            if sent[i] and not acked[i]:
                expected += mtu
        if n and sent[n - 1] and not acked[n - 1]:
            expected += sender._last_payload
        fid = sender.flow.flow_id
        if expected != sender.inflight_bytes:
            self.violation(
                t,
                "sender_window",
                f"flow {fid}: inflight_bytes={sender.inflight_bytes} but "
                f"sent-unacked payloads total {expected}",
            )
        if sender.inflight_bytes < 0:
            self.violation(
                t, "sender_window", f"flow {fid}: negative inflight ({sender.inflight_bytes})"
            )
        # liveness: pending work must always have a wake-up source armed —
        # an RTO, a pace timer, or an outstanding/armed probe.  This is the
        # invariant the historical _disarm_rto_if_idle bug broke (a probe ACK
        # disarmed the RTO while go-back-N retransmissions sat queued).
        if (
            sender._rto_ev is None
            and sender._pace_ev is None
            and sender._probe_ev is None
            and not sender.probe_outstanding
            and sender.inflight_bytes == 0
        ):
            retx_pending = any(not acked[s] for s in sender._retx_queue)
            if retx_pending:
                self.violation(
                    t,
                    "sender_window",
                    f"flow {fid}: retransmit queue non-empty with no timer "
                    f"armed (RTO wrongly disarmed — the flow can stall)",
                )

    def prioplus_relinquish(self, t: int, sender) -> None:
        """A relinquished flow must own a probe (its only path back)."""
        self._count("prioplus_probe")
        if sender._probe_ev is None and not sender.probe_outstanding:
            self.violation(
                t,
                "prioplus_probe",
                f"flow {sender.flow.flow_id}: relinquished without an armed "
                f"probe — the flow can never resume",
            )

    # ------------------------------------------------------------------
    # (5) clock monotonicity (called from Simulator._run_instrumented)
    # ------------------------------------------------------------------
    def clock_violation(self, event_time: int, now: int) -> None:
        self.violation(
            now,
            "clock",
            f"event scheduled at t={event_time} executed after the clock "
            f"reached {now} (events-in-past / heap corruption)",
        )

    def clock_checked(self, n: int) -> None:
        self._count("clock", n)

    # ------------------------------------------------------------------
    # finalize: deep reconciliation at end of run
    # ------------------------------------------------------------------
    def _resident_packets(self) -> Tuple[int, int]:
        """(packets in registered port queues, packets in pending events)."""
        try:
            from ..sim.packet import Packet
        except ImportError:  # pragma: no cover - audit used standalone
            return 0, 0
        queued = 0
        for port in self._ports:
            for queue in port.queues:
                queued += len(queue)
        in_events = 0
        for sim in self._sims:
            for entry in sim._heap:
                if len(entry) == 4:
                    args = entry[3]
                else:
                    ev = entry[2]
                    if ev.cancelled:
                        continue
                    args = ev.args
                for arg in args:
                    if isinstance(arg, Packet):
                        in_events += 1
        return queued, in_events

    def _finalize_ledger(self, t: int) -> None:
        self._count("packet_ledger")
        classified = self.delivered + self.dropped_total + self.corrupted
        if classified != self.released:
            self.violation(
                t,
                "packet_ledger",
                f"{self.released} packets released but {classified} classified "
                f"(delivered={self.delivered}, dropped={self.dropped_total}, "
                f"corrupted={self.corrupted}) — a release site is missing its "
                f"delivery/drop classification",
            )
        residual = self.acquired - self.released
        if residual < 0:
            self.violation(
                t,
                "packet_ledger",
                f"more releases ({self.released}) than acquisitions "
                f"({self.acquired}) — double release or foreign packet",
            )
        queued, in_events = self._resident_packets()
        if residual != queued + in_events:
            self.violation(
                t,
                "packet_ledger",
                f"{residual} packets unaccounted for but only {queued} resident "
                f"in queues and {in_events} in pending events — "
                f"{residual - queued - in_events} leaked",
            )
        pool = self._pool
        pool_live = None
        if pool is not None and pool.enabled:
            pool_live = pool.live - self._pool_live0
            if pool_live != residual:
                self.violation(
                    t,
                    "packet_ledger",
                    f"pool live-count delta ({pool_live}) disagrees with ledger "
                    f"residual ({residual}) — packets bypassed the pool",
                )
        self.report.ledger = {
            "acquired": self.acquired,
            "released": self.released,
            "delivered": self.delivered,
            "delivered_bytes": self.delivered_bytes,
            "corrupted": self.corrupted,
            "dropped": dict(sorted(self.dropped.items())),
            "dropped_total": self.dropped_total,
            "residual": residual,
            "resident_in_queues": queued,
            "resident_in_events": in_events,
            "pool_live_delta": pool_live,
        }

    def _finalize_buffers(self, t: int) -> None:
        for buf in self._buffers:
            self._buffer_check(t, buf, self._buf_shadow[id(buf)])
        for switch in self._switches:
            buf = switch.buffer
            if buf is None:
                continue
            self._count("buffer_bytes")
            resident = sum(p.total_bytes for p in switch.ports)
            charged = buf.shared_used + buf.headroom_used
            if charged != resident:
                self.violation(
                    t,
                    "buffer_bytes",
                    f"{switch.name}: buffer charges {charged} bytes but port "
                    f"queues hold {resident} bytes",
                )
            stats = switch.buffer.stats
            by_reason = sum(stats.dropped_by_reason.values())
            if stats.dropped != by_reason:
                self.violation(
                    t,
                    "buffer_bytes",
                    f"{switch.name}: stats.dropped={stats.dropped} but "
                    f"per-reason drops total {by_reason} (double/under-count)",
                )
        # switch drop stats must agree with the conservation ledger
        # reason-for-reason: a packet rejected by the shared pool and then by
        # headroom is ONE drop in both, so a legacy-style double count
        # (record_drop at each rejection) surfaces here.  link_cut drops are
        # port-level and never pass through record_drop.
        if self._switches:
            stats_by_reason: Dict[str, int] = {}
            for switch in self._switches:
                if switch.buffer is None:
                    continue
                for r, n in switch.buffer.stats.dropped_by_reason.items():
                    stats_by_reason[r] = stats_by_reason.get(r, 0) + n
            # sorted: set-union iteration order varies with string-hash
            # randomization, which made violation order differ run to run
            for r in sorted(set(stats_by_reason) | set(self.dropped)):
                if r == "link_cut":
                    continue
                self._count("drop_accounting")
                s, led = stats_by_reason.get(r, 0), self.dropped.get(r, 0)
                if s != led:
                    self.violation(
                        t,
                        "drop_accounting",
                        f"buffer stats record {s} '{r}' drops but the packet "
                        f"ledger classified {led} — drop double/under-count or "
                        f"reason mismatch between telemetry and ledger",
                    )

    def _finalize_ports(self, t: int) -> None:
        for port in self._ports:
            self._count("port_queues")
            qbytes_sum = sum(port.qbytes)
            if qbytes_sum != port.total_bytes:
                self.violation(
                    t,
                    "port_queues",
                    f"{port.name}: total_bytes={port.total_bytes} but per-queue "
                    f"bytes sum to {qbytes_sum}",
                )
            for q, queue in enumerate(port.queues):
                actual = sum(p.size for p in queue)
                if actual != port.qbytes[q]:
                    self.violation(
                        t,
                        "port_queues",
                        f"{port.name}: queue {q} holds {actual} bytes but "
                        f"qbytes records {port.qbytes[q]}",
                    )
                active = bool(port._active >> q & 1)
                if active != bool(queue):
                    self.violation(
                        t,
                        "port_queues",
                        f"{port.name}: active bitmask bit {q} is {active} but "
                        f"queue has {len(queue)} packets",
                    )

    def _finalize_sims(self, t: int) -> None:
        for sim in self._sims:
            self._count("clock")
            live = 0
            for entry in sim._heap:
                if len(entry) == 4 or not entry[2].cancelled:
                    live += 1
            if live != sim._live:
                self.violation(
                    t,
                    "clock",
                    f"simulator live-event counter {sim._live} disagrees with "
                    f"heap census {live}",
                )

    def finalize(self) -> AuditReport:
        """End-of-run reconciliation.  Idempotent; returns the report."""
        report = self.report
        if report.finalized:
            return report
        report.finalized = True
        t = max((sim.now for sim in self._sims), default=0)
        # a pause still held at the end is only a violation if it closes a
        # stale cycle; re-run the watchdog one last time
        if self._pfc_paused:
            self._check_deadlock(t)
        self._finalize_buffers(t)
        self._finalize_ports(t)
        self._finalize_sims(t)
        self._finalize_ledger(t)
        return report


# ----------------------------------------------------------------------
# process-wide default auditor, adopted by every new Simulator
# ----------------------------------------------------------------------
_default: object = NULL_AUDITOR


def set_default_auditor(auditor) -> None:
    """Install ``auditor`` as the default every new :class:`Simulator` (and
    the process packet pool) adopts.  Pass ``None`` to restore the inert
    :data:`NULL_AUDITOR`.  Install *before* building simulators/topologies:
    components snapshot the auditor at construction time."""
    global _default
    _default = auditor if auditor is not None else NULL_AUDITOR
    try:
        from ..sim.packet import PACKET_POOL
    except ImportError:  # pragma: no cover - during partial imports
        return
    PACKET_POOL.audit = _default
    if isinstance(_default, Auditor):
        _default.attach_pool(PACKET_POOL)


def default_auditor():
    """The auditor new simulators adopt (the null auditor when disabled)."""
    return _default


def current_auditor() -> Optional[Auditor]:
    """The active default :class:`Auditor`, or ``None`` when auditing is off."""
    return _default if getattr(_default, "enabled", False) else None


@contextmanager
def audit_scope(mode: str = "strict", **kwargs):
    """Install a fresh :class:`Auditor` for the ``with`` block.

    On clean exit the auditor is finalized (strict mode re-raises any
    reconciliation failure) and the previous default is restored::

        with audit_scope("strict") as aud:
            sim = Simulator(seed=1)   # adopts aud
            ...
        assert aud.report.ok
    """
    prev = _default if _default is not NULL_AUDITOR else None
    aud = Auditor(mode=mode, **kwargs)
    set_default_auditor(aud)
    try:
        yield aud
    except BaseException:
        set_default_auditor(prev)
        raise
    else:
        set_default_auditor(prev)
        aud.finalize()
