"""Online invariant auditing for the simulation core (see docs/AUDIT.md).

Usage::

    from repro.audit import audit_scope

    with audit_scope("strict") as aud:
        sim = Simulator(seed=1)       # adopts the auditor
        ...build topology, run...
    assert aud.report.ok

or through the runner/CLI: ``python -m repro run fig8 --audit=strict``.
"""

from .auditor import (
    AuditError,
    AuditReport,
    AuditViolation,
    Auditor,
    NULL_AUDITOR,
    NullAuditor,
    audit_scope,
    current_auditor,
    default_auditor,
    set_default_auditor,
)

__all__ = [
    "AuditError",
    "AuditReport",
    "AuditViolation",
    "Auditor",
    "NULL_AUDITOR",
    "NullAuditor",
    "audit_scope",
    "current_auditor",
    "default_auditor",
    "set_default_auditor",
]
