"""ML-cluster training traffic: ring all-reduce over simulated fabrics."""

from .allreduce import TrainingJob
from .models import RESNET50, VGG16, ModelProfile, scaled_model

__all__ = ["TrainingJob", "ModelProfile", "RESNET50", "VGG16", "scaled_model"]
