"""Model traffic profiles for the ML-training scenario (§6.2).

The paper generates ResNet and VGG data-parallel training traffic (via
Astra-sim) with ring all-reduce.  What the network sees per iteration is the
gradient volume exchanged and the compute gap between iterations; both are
captured here.  Sizes are the standard FP32 parameter counts (ResNet-50:
25.6 M params ≈ 102 MB; VGG-16: 138 M params ≈ 553 MB); compute times are
representative relative magnitudes (ResNet is compute-heavier per byte,
VGG is communication-dominated — the property that makes interleaving
their traffic profitable [Rajasekaran et al. 2022]).
"""

from __future__ import annotations

__all__ = ["ModelProfile", "RESNET50", "VGG16", "scaled_model"]


class ModelProfile:
    """Per-iteration traffic/compute profile of one data-parallel model."""

    __slots__ = ("name", "gradient_bytes", "compute_ns")

    def __init__(self, name: str, gradient_bytes: int, compute_ns: int):
        if gradient_bytes <= 0 or compute_ns < 0:
            raise ValueError("invalid model profile")
        self.name = name
        self.gradient_bytes = gradient_bytes
        self.compute_ns = compute_ns

    def __repr__(self) -> str:  # pragma: no cover
        return f"ModelProfile({self.name}, {self.gradient_bytes}B, {self.compute_ns}ns)"


RESNET50 = ModelProfile("resnet50", gradient_bytes=102_000_000, compute_ns=120_000_000)
VGG16 = ModelProfile("vgg16", gradient_bytes=553_000_000, compute_ns=80_000_000)


def scaled_model(base: ModelProfile, scale: float) -> ModelProfile:
    """Shrink a profile for CI-scale simulation (shape-preserving)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return ModelProfile(
        base.name,
        max(1, int(base.gradient_bytes * scale)),
        max(0, int(base.compute_ns * scale)),
    )
