"""Ring all-reduce traffic and the data-parallel training loop.

A :class:`TrainingJob` owns a ring of workers.  Each iteration is
``compute -> all-reduce -> next iteration``; the all-reduce is the standard
ring algorithm: the gradient is split into N chunks and exchanged in
2·(N−1) sequential phases, each phase being N simultaneous neighbour flows
of ``gradient/N`` bytes.  A phase starts only when the previous phase's
flows have all completed (the algorithmic dependency that couples training
speed to tail flow latency).

Training speed is reported as iterations completed in a fixed window —
exactly the paper's metric (footnote 7).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.engine import Simulator
from ..sim.host import Host
from ..sim.network import Network
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .models import ModelProfile

__all__ = ["TrainingJob"]


class TrainingJob:
    """One data-parallel model training over a ring of hosts."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        hosts: List[Host],
        model: ModelProfile,
        cc_factory: Callable[[Flow], object],
        flow_id_start: int,
        priority: int = 0,
        vpriority: int = 1,
        mtu: int = 1000,
        noise=None,
        start_ns: int = 0,
        max_iterations: Optional[int] = None,
    ):
        if len(hosts) < 2:
            raise ValueError("a ring needs at least two workers")
        self.sim = sim
        self.net = net
        self.hosts = hosts
        self.model = model
        self.cc_factory = cc_factory
        self.priority = priority
        self.vpriority = vpriority
        self.mtu = mtu
        self.noise = noise
        self.max_iterations = max_iterations
        self._next_flow_id = flow_id_start
        self.iterations_done = 0
        self.iteration_times_ns: List[int] = []
        self._iter_start = 0
        self._phase = 0
        self._phase_pending = 0
        self.n_phases = 2 * (len(hosts) - 1)
        self.chunk_bytes = max(1, model.gradient_bytes // len(hosts))
        self.stopped = False
        sim.at(max(start_ns, sim.now), self._begin_iteration)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """No new iterations start after this call (in-flight one finishes)."""
        self.stopped = True

    def _begin_iteration(self) -> None:
        if self.stopped:
            return
        self._iter_start = self.sim.now
        self.sim.after(self.model.compute_ns, self._begin_allreduce)

    def _begin_allreduce(self) -> None:
        self._phase = 0
        self._start_phase()

    def _start_phase(self) -> None:
        n = len(self.hosts)
        self._phase_pending = n
        for i in range(n):
            src = self.hosts[i]
            dst = self.hosts[(i + 1) % n]
            flow = Flow(
                self._next_flow_id,
                src,
                dst,
                self.chunk_bytes,
                priority=self.priority,
                vpriority=self.vpriority,
                start_ns=self.sim.now,
                tag=("mltrain", self.model.name, self.iterations_done, self._phase),
            )
            self._next_flow_id += 1
            cc = self.cc_factory(flow)
            FlowSender(
                self.sim,
                self.net,
                flow,
                cc,
                mtu=self.mtu,
                noise=self.noise,
                on_receive_done=self._on_flow_done,
            )

    def _on_flow_done(self, flow: Flow) -> None:
        self._phase_pending -= 1
        if self._phase_pending > 0:
            return
        self._phase += 1
        if self._phase < self.n_phases:
            self._start_phase()
            return
        # iteration complete
        self.iterations_done += 1
        self.iteration_times_ns.append(self.sim.now - self._iter_start)
        if self.max_iterations is not None and self.iterations_done >= self.max_iterations:
            return
        self._begin_iteration()

    # ------------------------------------------------------------------
    def iterations_in_window(self, window_ns: int) -> float:
        """Iterations per window, from the mean iteration time."""
        if not self.iteration_times_ns:
            return 0.0
        mean_iter = sum(self.iteration_times_ns) / len(self.iteration_times_ns)
        return window_ns / mean_iter
