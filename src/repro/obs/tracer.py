"""Causal packet tracing: deterministic sampling + per-hop latency breakdown.

A :class:`PacketTracer` follows individual packets end to end — host NIC →
switch egress ports → receiving host — and splits every hop's latency into

* **queueing**: time between enqueue and start of transmission, minus pause,
* **pause**: the part of the wait attributable to a PFC PAUSE asserted
  against the packet's physical priority class on that port,
* **serialization**: the wire time of the packet at the port's rate,
* **propagation**: the link's propagation delay (including any impairment
  delay spike, which stretches this component).

Because a packet hands off synchronously at every boundary (enqueue at the
next hop happens in the same event that delivers it), the per-hop components
of a delivered packet sum *exactly* to its end-to-end latency — pinned by
``tests/test_obs.py``.

Design rules (shared with :mod:`repro.telemetry` and :mod:`repro.audit`):

1. **Zero overhead when off.**  Hook sites read one attribute and check one
   flag; the per-packet guard is ``trc.enabled and pkt.trace is not None``,
   so untraced packets cost one extra comparison only while tracing is on
   and nothing at all when it is off.
2. **No feedback into the simulation.**  The tracer schedules no events and
   draws from no simulation RNG; packets are selected by a *deterministic
   hash* of ``(flow_id, seq)``, so enabling tracing leaves results
   byte-identical (golden battery ``--obs trace``).

Only sender-originated packets (DATA and PROBE) are traced; ACKs are control
traffic created inside the receiver and are not sampled.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

__all__ = [
    "HopRecord",
    "NULL_TRACER",
    "NullTracer",
    "PacketTrace",
    "PacketTracer",
    "current_tracer",
    "default_tracer",
    "set_default_tracer",
    "trace_scope",
]

_HASH_A = 2654435761  # Knuth multiplicative hash constants
_HASH_B = 2246822519


class HopRecord:
    """One traversed egress port: where the packet's time went on this hop."""

    __slots__ = ("port", "queue", "t_enq", "t_start_tx", "tx_ns", "prop_ns", "pause_ns")

    def __init__(self, port: str, queue: int, t_enq: int):
        self.port = port
        self.queue = queue
        self.t_enq = t_enq
        self.t_start_tx = 0
        self.tx_ns = 0
        self.prop_ns = 0
        self.pause_ns = 0

    @property
    def wait_ns(self) -> int:
        """Full time spent queued (pause + pure queueing)."""
        return self.t_start_tx - self.t_enq

    @property
    def queue_ns(self) -> int:
        """Queueing time net of PFC pause."""
        return self.wait_ns - self.pause_ns

    @property
    def total_ns(self) -> int:
        """Everything this hop contributed to the end-to-end latency."""
        return self.wait_ns + self.tx_ns + self.prop_ns

    def to_dict(self) -> dict:
        return {
            "port": self.port,
            "queue": self.queue,
            "t_enq": self.t_enq,
            "t_start_tx": self.t_start_tx,
            "queue_ns": self.queue_ns,
            "pause_ns": self.pause_ns,
            "tx_ns": self.tx_ns,
            "prop_ns": self.prop_ns,
        }


class PacketTrace:
    """The trace tag carried by a sampled packet (rides in ``pkt.trace``)."""

    __slots__ = ("trace_id", "flow_id", "seq", "kind", "size", "birth_ns", "end_ns",
                 "disposition", "hops", "open_hop")

    def __init__(self, trace_id: int, flow_id: int, seq: int, kind: int, size: int,
                 birth_ns: int):
        self.trace_id = trace_id
        self.flow_id = flow_id
        self.seq = seq
        self.kind = kind
        self.size = size
        self.birth_ns = birth_ns
        self.end_ns: Optional[int] = None
        #: ``delivered`` / ``dropped:<reason>`` / ``corrupted`` / ``in_flight``
        self.disposition = "in_flight"
        self.hops: List[HopRecord] = []
        self.open_hop: Optional[HopRecord] = None

    @property
    def e2e_ns(self) -> Optional[int]:
        return None if self.end_ns is None else self.end_ns - self.birth_ns

    def to_dict(self) -> dict:
        return {
            "trace": self.trace_id,
            "flow": self.flow_id,
            "seq": self.seq,
            "kind": self.kind,
            "size": self.size,
            "birth_ns": self.birth_ns,
            "end_ns": self.end_ns,
            "e2e_ns": self.e2e_ns,
            "disposition": self.disposition,
            "hops": [h.to_dict() for h in self.hops],
        }


class NullTracer:
    """Inert stand-in installed by default; hook sites only read ``enabled``."""

    enabled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullTracer>"


#: the process-wide disabled tracer (safe to share: it holds no state)
NULL_TRACER = NullTracer()


class PacketTracer:
    """Deterministically samples packets and records per-hop latency spans.

    Parameters
    ----------
    sample_every:
        On average one in ``sample_every`` (flow, seq) identities is traced,
        selected by a deterministic integer hash (never the simulation RNG).
        ``1`` traces everything.
    max_traces:
        Completed traces kept verbatim; beyond this only counters grow, so a
        long traced run cannot exhaust memory.
    """

    enabled = True

    def __init__(self, sample_every: int = 16, max_traces: int = 100_000):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self.max_traces = max_traces
        self.traces: List[PacketTrace] = []
        self.started = 0
        self.delivered = 0
        self.dropped = 0
        self.corrupted = 0
        self.overflow = 0  # completed traces discarded beyond max_traces
        self._next_id = 0
        self._live: Dict[int, PacketTrace] = {}
        # PFC pause ledger per (port, physical priority): closed intervals +
        # the currently-open pause start (None when not paused)
        self._pause_closed: Dict[Tuple[str, int], List[Tuple[int, int]]] = {}
        self._pause_open: Dict[Tuple[str, int], int] = {}
        self.finalized = False

    # ------------------------------------------------------------------
    # packet lifecycle (called from sender / port / switch / host hooks)
    # ------------------------------------------------------------------
    def maybe_start(self, pkt, now: int) -> None:
        """Attach a trace tag to ``pkt`` if its (flow, seq) hash is sampled."""
        h = (pkt.flow_id * _HASH_A) ^ ((pkt.seq + 1) * _HASH_B)
        h ^= h >> 13
        if (h & 0xFFFFFFFF) % self.sample_every:
            return
        self._next_id += 1
        trace = PacketTrace(self._next_id, pkt.flow_id, pkt.seq, pkt.kind, pkt.size, now)
        pkt.trace = trace
        self._live[trace.trace_id] = trace
        self.started += 1

    def enqueued(self, trace: PacketTrace, port: str, queue: int, now: int) -> None:
        """The packet entered an egress queue: a new hop opens."""
        trace.open_hop = HopRecord(port, queue, now)

    def start_tx(self, trace: PacketTrace, now: int, tx_ns: int, prop_ns: int,
                 phys_prio: int) -> None:
        """The packet started serialising: close the open hop's breakdown."""
        hop = trace.open_hop
        if hop is None:  # packet was enqueued before tracing began
            return
        hop.t_start_tx = now
        hop.tx_ns = tx_ns
        hop.prop_ns = prop_ns
        hop.pause_ns = self._pause_overlap(hop.port, phys_prio, hop.t_enq, now)
        trace.hops.append(hop)
        trace.open_hop = None

    def finish(self, trace: PacketTrace, now: int, disposition: str) -> None:
        """Terminal event: delivery, drop or wire corruption."""
        trace.end_ns = now
        trace.disposition = disposition
        if disposition == "delivered":
            self.delivered += 1
        elif disposition == "corrupted":
            self.corrupted += 1
        else:
            self.dropped += 1
        self._live.pop(trace.trace_id, None)
        if len(self.traces) < self.max_traces:
            self.traces.append(trace)
        else:
            self.overflow += 1

    # ------------------------------------------------------------------
    # PFC pause ledger (called from Port.set_paused — control path)
    # ------------------------------------------------------------------
    def pause_change(self, port: str, prio: int, paused: bool, now: int) -> None:
        key = (port, prio)
        if paused:
            self._pause_open.setdefault(key, now)
        else:
            since = self._pause_open.pop(key, None)
            if since is not None:
                self._pause_closed.setdefault(key, []).append((since, now))

    def _pause_overlap(self, port: str, prio: int, t0: int, t1: int) -> int:
        """Total PAUSE time on (port, prio) overlapping the window [t0, t1]."""
        key = (port, prio)
        total = 0
        for since, until in self._pause_closed.get(key, ()):
            lo = since if since > t0 else t0
            hi = until if until < t1 else t1
            if hi > lo:
                total += hi - lo
        since = self._pause_open.get(key)
        if since is not None:
            lo = since if since > t0 else t0
            if t1 > lo:
                total += t1 - lo
        return total

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close traces still in flight at end of run.  Idempotent."""
        if self.finalized:
            return
        self.finalized = True
        # deterministic order: trace ids are allocated in simulation order
        for trace_id in sorted(self._live):
            trace = self._live[trace_id]
            trace.disposition = "in_flight"
            if len(self.traces) < self.max_traces:
                self.traces.append(trace)
            else:
                self.overflow += 1
        self._live.clear()
        self.traces.sort(key=lambda tr: tr.trace_id)

    def snapshot(self) -> dict:
        """JSON-safe summary (embeddable in experiment result dicts)."""
        return {
            "corrupted": self.corrupted,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "in_flight": len(self._live),
            "overflow": self.overflow,
            "recorded": len(self.traces),
            "sample_every": self.sample_every,
            "started": self.started,
        }

    def write_spans_jsonl(self, path: str) -> int:
        """Stream every trace as JSONL: one line per hop span + one summary
        line per packet.  Incremental (constant memory) and flushed on close;
        returns the number of lines written."""
        self.finalize()
        lines = 0
        with open(path, "w") as fh:
            for tr in self.traces:
                for i, hop in enumerate(tr.hops):
                    obj = {"trace": tr.trace_id, "flow": tr.flow_id, "seq": tr.seq,
                           "hop": i}
                    obj.update(hop.to_dict())
                    fh.write(json.dumps(obj))
                    fh.write("\n")
                    lines += 1
                summary = tr.to_dict()
                del summary["hops"]
                summary["kind"] = "summary"
                summary["n_hops"] = len(tr.hops)
                fh.write(json.dumps(summary))
                fh.write("\n")
                lines += 1
            fh.flush()
        return lines


# ----------------------------------------------------------------------
# process-wide default tracer, adopted by every new Simulator
# ----------------------------------------------------------------------
_default: object = NULL_TRACER


def set_default_tracer(tracer) -> None:
    """Install ``tracer`` as the default every new :class:`Simulator` adopts.

    Pass ``None`` to restore the inert :data:`NULL_TRACER`.  Install *before*
    building simulators/topologies: components snapshot it at construction.
    """
    global _default
    _default = tracer if tracer is not None else NULL_TRACER


def default_tracer():
    """The tracer new simulators adopt (the null tracer when disabled)."""
    return _default


def current_tracer() -> Optional[PacketTracer]:
    """The active default :class:`PacketTracer`, or ``None`` when off."""
    return _default if getattr(_default, "enabled", False) else None


@contextmanager
def trace_scope(sample_every: int = 16, **kwargs):
    """Install a fresh :class:`PacketTracer` for the ``with`` block.

    The tracer is finalized on exit and the previous default restored::

        with trace_scope(sample_every=1) as trc:
            sim = Simulator(seed=1)   # adopts trc
            ...
        breakdown = trc.traces[0].hops
    """
    prev = _default if _default is not NULL_TRACER else None
    trc = PacketTracer(sample_every=sample_every, **kwargs)
    set_default_tracer(trc)
    try:
        yield trc
    finally:
        set_default_tracer(prev)
        trc.finalize()
