"""Engine self-profiler: wall-time and event counts per callback.

When enabled, the instrumented engine loop wraps every event dispatch in a
``perf_counter()`` pair and attributes the elapsed wall time to the
callback's qualified name (``Port._tx_done``, ``FlowSender._send_seq``, ...).
The result is a cheap flat profile of where a run's real time goes —
answering "which event type dominates?" without an external profiler.

Wall-clock measurements obviously differ run to run, but the profiler never
touches virtual time, the event queue, or the RNG, so simulation *results*
stay byte-identical (golden battery ``--obs profile``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = [
    "EngineProfiler",
    "NULL_PROFILER",
    "NullProfiler",
    "current_profiler",
    "default_profiler",
    "profile_scope",
    "set_default_profiler",
]


class NullProfiler:
    """Inert stand-in installed by default; hook sites only read ``enabled``."""

    enabled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullProfiler>"


#: the process-wide disabled profiler (safe to share: it holds no state)
NULL_PROFILER = NullProfiler()


class EngineProfiler:
    """Accumulates per-callback event counts and wall time."""

    enabled = True

    def __init__(self):
        #: qualname -> [count, total_seconds]
        self.stats: Dict[str, List[float]] = {}
        self.events = 0
        self.wall_s = 0.0
        self.finalized = False

    def record(self, fn, dt: float) -> None:
        """Attribute one dispatched event taking ``dt`` seconds to ``fn``."""
        name = getattr(fn, "__qualname__", None) or repr(fn)
        cell = self.stats.get(name)
        if cell is None:
            cell = self.stats[name] = [0, 0.0]
        cell[0] += 1
        cell[1] += dt
        self.events += 1
        self.wall_s += dt

    def finalize(self) -> None:
        """Idempotent; exists for symmetry with the other obs subsystems."""
        self.finalized = True

    def snapshot(self) -> dict:
        """JSON-safe profile, callbacks sorted by name for stable diffs."""
        callbacks = {}
        for name in sorted(self.stats):
            count, total = self.stats[name]
            callbacks[name] = {
                "count": count,
                "wall_s": total,
                "mean_us": (total / count * 1e6) if count else 0.0,
            }
        return {
            "callbacks": callbacks,
            "events": self.events,
            "wall_s": self.wall_s,
        }

    def top(self, n: int = 10) -> List[tuple]:
        """``[(name, count, wall_s), ...]`` sorted by wall time descending."""
        ranked = sorted(self.stats.items(), key=lambda kv: (-kv[1][1], kv[0]))
        return [(name, int(c), t) for name, (c, t) in ranked[:n]]


# ----------------------------------------------------------------------
# process-wide default profiler, adopted by every new Simulator
# ----------------------------------------------------------------------
_default: object = NULL_PROFILER


def set_default_profiler(profiler) -> None:
    """Install ``profiler`` as the default every new :class:`Simulator`
    adopts.  Pass ``None`` to restore the inert :data:`NULL_PROFILER`.
    Install *before* building simulators/topologies."""
    global _default
    _default = profiler if profiler is not None else NULL_PROFILER


def default_profiler():
    """The profiler new simulators adopt (the null one when disabled)."""
    return _default


def current_profiler() -> Optional[EngineProfiler]:
    """The active default :class:`EngineProfiler`, or ``None`` when off."""
    return _default if getattr(_default, "enabled", False) else None


@contextmanager
def profile_scope(**kwargs):
    """Install a fresh :class:`EngineProfiler` for the ``with`` block."""
    prev = _default if _default is not NULL_PROFILER else None
    prof = EngineProfiler(**kwargs)
    set_default_profiler(prof)
    try:
        yield prof
    finally:
        set_default_profiler(prev)
        prof.finalize()
