"""Time-series sampler: fixed-stride snapshots into bounded ring buffers.

A :class:`TimeSeriesSampler` takes periodic snapshots of simulation state —
per-port queue depth/backlog, per-buffer occupancy, per-flow rate and delay
estimates — at a fixed virtual-time stride, without scheduling a single
simulator event.  The instrumented engine loop (see
``Simulator._run_instrumented``) checks the sampler's next due time between
events and snapshots exactly when virtual time crosses a stride boundary.
Because the snapshot happens *between* events and the stride arithmetic is
pure, sampling leaves results byte-identical (golden battery ``--obs
sample``).

Rows accumulate into fixed-capacity ring buffers (oldest rows are dropped
and counted, so long runs can't exhaust memory) and export as CSV or JSONL.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = [
    "NULL_SAMPLER",
    "NullSampler",
    "TimeSeriesSampler",
    "current_sampler",
    "default_sampler",
    "sample_scope",
    "set_default_sampler",
]


class _Ring:
    """Append-only bounded ring; keeps the most recent ``capacity`` rows."""

    __slots__ = ("capacity", "rows", "dropped", "_start")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.rows: List[dict] = []
        self.dropped = 0
        self._start = 0  # logical index of rows[0] within the full series

    def append(self, row: dict) -> None:
        if len(self.rows) >= self.capacity:
            self.rows.pop(0)
            self.dropped += 1
            self._start += 1
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)


class NullSampler:
    """Inert stand-in installed by default; hook sites only read ``enabled``."""

    enabled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullSampler>"


#: the process-wide disabled sampler (safe to share: it holds no state)
NULL_SAMPLER = NullSampler()


class TimeSeriesSampler:
    """Periodic state snapshots at a fixed virtual-time stride.

    Parameters
    ----------
    stride_ns:
        Virtual time between snapshots.  Each row is stamped at the stride
        boundary it represents (``t - t % stride_ns``), so rows from repeated
        runs line up exactly.
    capacity:
        Per-ring row budget (ports, buffers and flows each get their own
        ring); the oldest rows are dropped (and counted) beyond it.
    """

    enabled = True

    def __init__(self, stride_ns: int = 100_000, capacity: int = 4096):
        if stride_ns < 1:
            raise ValueError(f"stride_ns must be >= 1, got {stride_ns}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.stride_ns = stride_ns
        self.capacity = capacity
        self.ports = _Ring(capacity)
        self.buffers = _Ring(capacity)
        self.flows = _Ring(capacity)
        self.regimes = _Ring(capacity)
        self.samples_taken = 0
        #: completed senders released after their final "done" row (keeps
        #: per-flow state bounded by *concurrent* flows on long traces)
        self.flows_pruned = 0
        self._ports: List[object] = []
        self._buffers: List[object] = []
        self._senders: List[object] = []
        #: last acked_payload per flow, for windowed goodput rates
        self._last_acked: Dict[int, int] = {}
        self._last_t: Optional[int] = None
        self.finalized = False

    # ------------------------------------------------------------------
    # registration (components self-register at construction when enabled)
    # ------------------------------------------------------------------
    def register_sim(self, sim) -> None:  # symmetry with the auditor; no-op
        pass

    def register_port(self, port) -> None:
        self._ports.append(port)

    def register_buffer(self, buffer) -> None:
        self._buffers.append(buffer)

    def register_sender(self, sender) -> None:
        self._senders.append(sender)

    # ------------------------------------------------------------------
    # sampling (driven by the instrumented engine loop)
    # ------------------------------------------------------------------
    def next_due(self, now: int) -> int:
        """First stride boundary strictly after ``now``."""
        return ((now // self.stride_ns) + 1) * self.stride_ns

    def sample(self, time: int) -> int:
        """Snapshot state as of stride boundary ``<= time``; returns the next
        due boundary.  Multiple crossed boundaries coalesce into one row set
        (queue state was constant across them — no events fired)."""
        boundary = time - time % self.stride_ns
        self.samples_taken += 1
        for port in self._ports:
            self.ports.append({
                "t": boundary,
                "port": port.name,
                "queued_pkts": sum(len(q) for q in port.queues),
                "backlog_bytes": port.total_bytes,
                "busy": int(port.busy),
                "paused_mask": sum(1 << p for p, v in enumerate(port.paused) if v),
            })
        for buf in self._buffers:
            self.buffers.append({
                "t": boundary,
                "buffer": buf.name,
                "shared_used": buf.shared_used,
                "headroom_used": buf.headroom_used,
            })
        dt = None if self._last_t is None else boundary - self._last_t
        live: List[object] = []
        for sender in self._senders:
            fid = sender.flow.flow_id
            acked = sender.acked_payload
            prev = self._last_acked.get(fid, 0)
            rate_bps = 0.0
            if dt:
                rate_bps = (acked - prev) * 8e9 / dt
            cc = sender.cc
            if sender.completed:
                state = "done"
            elif sender.stopped:
                state = "stopped"
            else:
                state = "running"
            self.flows.append({
                "t": boundary,
                "flow": fid,
                "acked_bytes": acked,
                "rate_bps": rate_bps,
                "state": state,
                "cwnd": getattr(cc, "cwnd", 0.0),
                "delay_ns": sender.last_rtt,
            })
            if state == "done":
                # the row just emitted is this flow's terminal row: release
                # the sender so tracked state scales with concurrent flows,
                # not the total flow count of a multi-second trace
                self._last_acked.pop(fid, None)
                self.flows_pruned += 1
            else:
                self._last_acked[fid] = acked
                live.append(sender)
        self._senders = live
        self._last_t = boundary
        return boundary + self.stride_ns

    def record_regime(self, t: int, mode: str, reason: str) -> None:
        """One hybrid-core regime switch (:mod:`repro.fluid.hybrid`).

        Event-driven, not stride-driven: switches are rare and their exact
        boundaries matter, so each is stored at its true timestamp."""
        self.regimes.append({"t": t, "mode": mode, "reason": reason})

    # ------------------------------------------------------------------
    # reporting / export
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Idempotent; releases component references so rings own the data."""
        if self.finalized:
            return
        self.finalized = True
        self._ports = []
        self._buffers = []
        self._senders = []

    def snapshot(self) -> dict:
        """JSON-safe summary (embeddable in experiment result dicts)."""
        return {
            "buffer_rows": len(self.buffers),
            "dropped_rows": (
                self.ports.dropped + self.buffers.dropped
                + self.flows.dropped + self.regimes.dropped
            ),
            "flow_rows": len(self.flows),
            "flows_pruned": self.flows_pruned,
            "port_rows": len(self.ports),
            "regime_rows": len(self.regimes),
            "samples_taken": self.samples_taken,
            "stride_ns": self.stride_ns,
        }

    def rows(self) -> List[dict]:
        """All rows tagged with a ``kind`` column, ordered by time then kind."""
        out = []
        for kind, ring in (("buffer", self.buffers), ("flow", self.flows),
                           ("port", self.ports), ("regime", self.regimes)):
            for row in ring.rows:
                tagged = {"kind": kind}
                tagged.update(row)
                out.append(tagged)
        out.sort(key=lambda r: (r["t"], r["kind"],
                                str(r.get("port") or r.get("buffer")
                                    or r.get("flow") or r.get("mode"))))
        return out

    def write(self, path: str) -> int:
        """Export all rows; format by extension (``.csv`` else JSONL).
        Returns the number of rows written."""
        rows = self.rows()
        if path.endswith(".csv"):
            return self._write_csv(path, rows)
        with open(path, "w") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True))
                fh.write("\n")
            fh.flush()
        return len(rows)

    def _write_csv(self, path: str, rows: List[dict]) -> int:
        cols: List[str] = ["kind", "t"]
        seen = set(cols)
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    cols.append(key)
        with open(path, "w") as fh:
            fh.write(",".join(cols))
            fh.write("\n")
            for row in rows:
                fh.write(",".join("" if row.get(c) is None else str(row.get(c, ""))
                                  for c in cols))
                fh.write("\n")
            fh.flush()
        return len(rows)


# ----------------------------------------------------------------------
# process-wide default sampler, adopted by every new Simulator
# ----------------------------------------------------------------------
_default: object = NULL_SAMPLER


def set_default_sampler(sampler) -> None:
    """Install ``sampler`` as the default every new :class:`Simulator`
    adopts.  Pass ``None`` to restore the inert :data:`NULL_SAMPLER`.
    Install *before* building simulators/topologies."""
    global _default
    _default = sampler if sampler is not None else NULL_SAMPLER


def default_sampler():
    """The sampler new simulators adopt (the null one when disabled)."""
    return _default


def current_sampler() -> Optional[TimeSeriesSampler]:
    """The active default :class:`TimeSeriesSampler`, or ``None`` when off."""
    return _default if getattr(_default, "enabled", False) else None


@contextmanager
def sample_scope(stride_ns: int = 100_000, **kwargs):
    """Install a fresh :class:`TimeSeriesSampler` for the ``with`` block."""
    prev = _default if _default is not NULL_SAMPLER else None
    smp = TimeSeriesSampler(stride_ns=stride_ns, **kwargs)
    set_default_sampler(smp)
    try:
        yield smp
    finally:
        set_default_sampler(prev)
        smp.finalize()
