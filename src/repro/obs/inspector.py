"""PrioPlus channel inspector: state-machine transcript + inversion detector.

The inspector answers "*why* did this flow land where it did": it records
every per-flow PrioPlus state-machine transition (``probe_wait``,
``linear_start``, ``cautious_restart``, ``relinquished``, plus the sender's
``running``/``done`` lifecycle), every per-RTT CC decision
(``linear_start_step``, ``adaptive_increase``, probe retries), and bins acked
bytes into fixed windows so the report can reconstruct channel occupancy over
time and flag **virtual-priority inversions** — a window in which a
lower-channel flow moved more bytes than a higher-channel flow that was
actively sending on a shared bottleneck.

Same contract as the Recorder/Auditor/PacketTracer: hook sites are one
attribute read plus one flag check, and the inspector never schedules events
or draws from the simulation RNG, so enabling it leaves results
byte-identical (golden battery ``--obs inspect``).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ChannelInspector",
    "NULL_INSPECTOR",
    "NullInspector",
    "current_inspector",
    "default_inspector",
    "inspect_scope",
    "set_default_inspector",
]

#: states in which a flow is actively pushing data into its channel
ACTIVE_STATES = frozenset(("running", "linear_start", "cautious_restart"))


class _FlowRecord:
    """Everything the inspector knows about one registered flow."""

    __slots__ = ("flow_id", "vpriority", "d_target_ns", "d_limit_ns", "tier",
                 "path_ports", "transitions", "cc_counts", "probes")

    def __init__(self, flow_id: int, vpriority: int, d_target_ns: int,
                 d_limit_ns: int, tier: str, path_ports: Tuple[str, ...]):
        self.flow_id = flow_id
        self.vpriority = vpriority
        self.d_target_ns = d_target_ns
        self.d_limit_ns = d_limit_ns
        self.tier = tier
        self.path_ports = path_ports
        self.transitions: List[Tuple[int, str]] = []
        self.cc_counts: Dict[str, int] = {}
        self.probes: Dict[str, int] = {}

    def state_at(self, t: int) -> Optional[str]:
        """Flow state in effect at time ``t`` (last transition at or before)."""
        state = None
        for when, s in self.transitions:
            if when > t:
                break
            state = s
        return state


class NullInspector:
    """Inert stand-in installed by default; hook sites only read ``enabled``."""

    enabled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullInspector>"


#: the process-wide disabled inspector (safe to share: it holds no state)
NULL_INSPECTOR = NullInspector()


class ChannelInspector:
    """Records PrioPlus channel behaviour for a structured post-run report.

    Parameters
    ----------
    window_ns:
        Width of the fixed windows acked bytes are binned into; occupancy and
        the inversion detector both operate at this granularity.
    """

    enabled = True

    def __init__(self, window_ns: int = 100_000):
        if window_ns < 1:
            raise ValueError(f"window_ns must be >= 1, got {window_ns}")
        self.window_ns = window_ns
        self.flows: Dict[int, _FlowRecord] = {}
        #: global transition log in simulation order: (t, flow_id, state)
        self.transitions: List[Tuple[int, int, str]] = []
        #: global CC-event log in simulation order: (t, flow_id, kind)
        self.cc_events: List[Tuple[int, int, str]] = []
        #: (flow_id, window_index) -> acked bytes in that window
        self._bins: Dict[Tuple[int, int], int] = {}
        self.max_ts = 0

    # ------------------------------------------------------------------
    # hooks (called from PrioPlusCC / FlowSender when enabled)
    # ------------------------------------------------------------------
    def register_flow(self, flow_id: int, vpriority: int, d_target_ns: int,
                      d_limit_ns: int, tier: str, path_ports) -> None:
        self.flows[flow_id] = _FlowRecord(
            flow_id, vpriority, d_target_ns, d_limit_ns, tier, tuple(path_ports)
        )

    def _flow(self, flow_id: int) -> _FlowRecord:
        rec = self.flows.get(flow_id)
        if rec is None:
            # flows outside PrioPlus (or registered late) still get a record
            rec = self.flows[flow_id] = _FlowRecord(flow_id, 0, 0, 0, "", ())
        return rec

    def transition(self, t: int, flow_id: int, state: str) -> None:
        if t > self.max_ts:
            self.max_ts = t
        self._flow(flow_id).transitions.append((t, state))
        self.transitions.append((t, flow_id, state))

    def cc_event(self, t: int, flow_id: int, kind: str) -> None:
        if t > self.max_ts:
            self.max_ts = t
        counts = self._flow(flow_id).cc_counts
        counts[kind] = counts.get(kind, 0) + 1
        self.cc_events.append((t, flow_id, kind))

    def probe(self, t: int, flow_id: int, kind: str) -> None:
        """``kind`` is ``"send"`` or ``"ack"`` (mirrors the telemetry channel)."""
        if t > self.max_ts:
            self.max_ts = t
        probes = self._flow(flow_id).probes
        probes[kind] = probes.get(kind, 0) + 1

    def ack(self, t: int, flow_id: int, acked_bytes: int) -> None:
        if not acked_bytes:
            return
        if t > self.max_ts:
            self.max_ts = t
        key = (flow_id, t // self.window_ns)
        self._bins[key] = self._bins.get(key, 0) + acked_bytes

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def occupancy(self) -> Dict[int, List[Tuple[int, int]]]:
        """Per virtual priority: ``[(t, active_flow_count), ...]`` steps.

        A flow occupies its channel while in an :data:`ACTIVE_STATES` state;
        ``probe_wait``/``relinquished``/``done`` vacate it.
        """
        deltas: Dict[int, Dict[int, int]] = {}
        for rec in self.flows.values():
            active = False
            for t, state in rec.transitions:
                now_active = state in ACTIVE_STATES
                if now_active == active:
                    continue
                active = now_active
                vp = deltas.setdefault(rec.vpriority, {})
                vp[t] = vp.get(t, 0) + (1 if now_active else -1)
        series: Dict[int, List[Tuple[int, int]]] = {}
        for vprio in sorted(deltas):
            count = 0
            steps = []
            for t in sorted(deltas[vprio]):
                count += deltas[vprio][t]
                steps.append((t, count))
            series[vprio] = steps
        return series

    def inversions(self) -> List[dict]:
        """Windows where a low-channel flow outpaced an active high-channel
        flow on a shared bottleneck (sorted by window, then flow ids)."""
        windows = sorted({w for (_fid, w) in self._bins})
        flows = sorted(self.flows.values(), key=lambda r: r.flow_id)
        found: List[dict] = []
        for w in windows:
            t0 = w * self.window_ns
            t1 = t0 + self.window_ns
            for hi in flows:
                if not hi.path_ports:
                    continue
                # the high flow must want bandwidth for the whole window
                if hi.state_at(t0) not in ACTIVE_STATES:
                    continue
                if hi.state_at(t1) not in ACTIVE_STATES:
                    continue
                hi_bytes = self._bins.get((hi.flow_id, w), 0)
                for lo in flows:
                    if lo.vpriority >= hi.vpriority or not lo.path_ports:
                        continue
                    if not set(lo.path_ports) & set(hi.path_ports):
                        continue
                    lo_bytes = self._bins.get((lo.flow_id, w), 0)
                    if lo_bytes > hi_bytes:
                        found.append({
                            "window_t_ns": t0,
                            "low_flow": lo.flow_id,
                            "low_vpriority": lo.vpriority,
                            "low_bytes": lo_bytes,
                            "high_flow": hi.flow_id,
                            "high_vpriority": hi.vpriority,
                            "high_bytes": hi_bytes,
                            "high_state": hi.state_at(t0),
                        })
        return found

    def report(self) -> dict:
        """Structured, JSON-safe report of everything observed."""
        flows = {}
        for fid in sorted(self.flows):
            rec = self.flows[fid]
            flows[str(fid)] = {
                "vpriority": rec.vpriority,
                "tier": rec.tier,
                "d_target_ns": rec.d_target_ns,
                "d_limit_ns": rec.d_limit_ns,
                "path_ports": list(rec.path_ports),
                "transitions": [[t, s] for t, s in rec.transitions],
                "cc_events": dict(sorted(rec.cc_counts.items())),
                "probes": dict(sorted(rec.probes.items())),
                "relinquishes": sum(1 for _, s in rec.transitions if s == "relinquished"),
            }
        occupancy = {
            str(vprio): [[t, n] for t, n in steps]
            for vprio, steps in self.occupancy().items()
        }
        return {
            "window_ns": self.window_ns,
            "flows": flows,
            "occupancy": occupancy,
            "inversions": self.inversions(),
            "transition_count": len(self.transitions),
            "max_ts": self.max_ts,
        }

    def write_report_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.report(), fh, indent=1, sort_keys=True)


# ----------------------------------------------------------------------
# process-wide default inspector, adopted by every new Simulator
# ----------------------------------------------------------------------
_default: object = NULL_INSPECTOR


def set_default_inspector(inspector) -> None:
    """Install ``inspector`` as the default every new :class:`Simulator`
    adopts.  Pass ``None`` to restore the inert :data:`NULL_INSPECTOR`.
    Install *before* building simulators/topologies."""
    global _default
    _default = inspector if inspector is not None else NULL_INSPECTOR


def default_inspector():
    """The inspector new simulators adopt (the null one when disabled)."""
    return _default


def current_inspector() -> Optional[ChannelInspector]:
    """The active default :class:`ChannelInspector`, or ``None`` when off."""
    return _default if getattr(_default, "enabled", False) else None


@contextmanager
def inspect_scope(window_ns: int = 100_000, **kwargs):
    """Install a fresh :class:`ChannelInspector` for the ``with`` block."""
    prev = _default if _default is not NULL_INSPECTOR else None
    insp = ChannelInspector(window_ns=window_ns, **kwargs)
    set_default_inspector(insp)
    try:
        yield insp
    finally:
        set_default_inspector(prev)
