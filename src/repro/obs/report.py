"""``python -m repro report``: aggregate obs artifacts into one HTML dashboard.

Takes the artifacts a run leaves behind — the runner's result JSON (with the
embedded profile), ``--sample`` time series, ``--trace-packets`` span JSONL and
``--inspect`` channel report — and renders a single static HTML file with
inline-SVG charts: per-flow rate and queue-depth time series, a per-hop
stacked latency breakdown, a PrioPlus state timeline and the engine profile
table.  Pure stdlib; the output opens in any browser with no network access.

    python -m repro quickstart --sample s.csv --trace-packets spans.jsonl \\
        --inspect ch.json --profile > result.json
    python -m repro report --result result.json --samples s.csv \\
        --spans spans.jsonl --channel ch.json --out dashboard.html
"""

from __future__ import annotations

import argparse
import html
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["build_dashboard", "report_main"]

# Categorical palette (validated light/dark, fixed slot order — see
# docs/TRACING.md; slots are assigned by sorted entity id, never cycled).
_SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                 "#e87ba4", "#008300", "#4a3aa7", "#e34948")
_SERIES_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
                "#d55181", "#008300", "#9085e9", "#e66767")

#: latency components in stacking order -> categorical slot index
_COMPONENTS = (("queue_ns", "queueing", 0), ("pause_ns", "PFC pause", 1),
               ("tx_ns", "serialization", 2), ("prop_ns", "propagation", 3))

#: PrioPlus states -> categorical slot index ("done" is inactivity: muted ink)
_STATE_SLOTS = {"running": 0, "linear_start": 2, "probe_wait": 3,
                "cautious_restart": 4, "relinquished": 1}

_W, _H = 720, 240
_ML, _MR, _MT, _MB = 64, 16, 12, 30


def _esc(s: object) -> str:
    return html.escape(str(s), quote=True)


def _fmt(v: float) -> str:
    """Compact figure: 1,284 / 12.9K / 4.2M."""
    a = abs(v)
    for div, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if a >= div:
            return f"{v / div:.1f}{suffix}"
    if v == int(v):
        return f"{int(v):,}"
    return f"{v:.1f}"


def _ticks(vmax: float, n: int = 4) -> List[float]:
    """Clean round tick values from 0 up to (at least) vmax."""
    if vmax <= 0:
        return [0.0, 1.0]
    raw = vmax / n
    mag = 10 ** max(0, len(str(int(raw))) - 1) if raw >= 1 else 1
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    ticks = [0.0]
    while ticks[-1] < vmax:
        ticks.append(round(ticks[-1] + step, 10))
    return ticks


class _Svg:
    """Accumulates SVG fragments for one chart frame."""

    def __init__(self, width: int = _W, height: int = _H):
        self.w, self.h = width, height
        self.parts: List[str] = []

    def line(self, x1, y1, x2, y2, stroke, width=1, cap="butt"):
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}" stroke-linecap="{cap}"/>'
        )

    def poly(self, pts: Sequence[Tuple[float, float]], stroke: str):
        d = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
        self.parts.append(
            f'<polyline points="{d}" fill="none" stroke="{stroke}" '
            f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        )

    def dot(self, x, y, fill, r=4, tip: Optional[str] = None):
        t = f' data-tip="{_esc(tip)}"' if tip else ""
        self.parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{fill}" '
            f'stroke="var(--surface)" stroke-width="2"{t}/>'
        )

    def rect(self, x, y, w, h, fill, rx=0.0, tip: Optional[str] = None):
        t = f' data-tip="{_esc(tip)}"' if tip else ""
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{max(w, 0):.1f}" '
            f'height="{h:.1f}" fill="{fill}" rx="{rx}"{t}/>'
        )

    def text(self, x, y, s, anchor="start", cls="lbl"):
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" text-anchor="{anchor}" '
            f'class="{cls}">{_esc(s)}</text>'
        )

    def hit(self, x, y, tip: str, r: int = 10):
        """Invisible hover target, larger than the mark it covers."""
        self.parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="transparent" '
            f'data-tip="{_esc(tip)}"/>'
        )

    def render(self) -> str:
        body = "".join(self.parts)
        return (f'<svg viewBox="0 0 {self.w} {self.h}" role="img" '
                f'preserveAspectRatio="xMidYMid meet">{body}</svg>')


def _frame(svg: _Svg, yticks: List[float], ymax: float, y_label: str,
           x0_ms: float, x1_ms: float) -> None:
    """Hairline gridlines + axis labels for a time-series frame."""
    for tv in yticks:
        y = _H - _MB - (tv / ymax) * (_H - _MT - _MB)
        svg.line(_ML, y, _W - _MR, y, "var(--grid)")
        svg.text(_ML - 6, y + 3.5, _fmt(tv), anchor="end", cls="tick")
    svg.line(_ML, _H - _MB, _W - _MR, _H - _MB, "var(--axis)")
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = _ML + frac * (_W - _ML - _MR)
        ms = x0_ms + frac * (x1_ms - x0_ms)
        svg.text(x, _H - _MB + 14, f"{ms:.2f}", anchor="middle", cls="tick")
    svg.text(_ML, _MT - 2, y_label, cls="tick")
    svg.text(_W - _MR, _H - _MB + 14, "ms", anchor="end", cls="tick")


def _legend(entries: List[Tuple[str, str]]) -> str:
    """Swatch + name rows; identity never rides on color alone."""
    items = "".join(
        f'<span class="key"><span class="sw" style="background:{color}"></span>'
        f"{_esc(name)}</span>"
        for name, color in entries
    )
    return f'<div class="legend">{items}</div>'


def _table(headers: List[str], rows: List[List[object]], summary: str) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (f"<details><summary>{_esc(summary)}</summary>"
            f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{body}</tbody></table></details>")


def _series_chart(series: Dict[str, List[Tuple[int, float]]], y_label: str,
                  unit_div: float, tip_unit: str) -> str:
    """Multi-series 2px line chart with end dots, hover targets and a table."""
    if not series:
        return ""
    names = sorted(series)
    shown = names[:8]
    ymax = max((v for n in shown for _, v in series[n]), default=0.0) / unit_div
    yticks = _ticks(ymax if ymax > 0 else 1.0)
    ymax = yticks[-1]
    tmax = max(t for n in shown for t, _ in series[n])
    tmin = min(t for n in shown for t, _ in series[n])
    span = max(tmax - tmin, 1)
    svg = _Svg()
    _frame(svg, yticks, ymax, y_label, tmin / 1e6, tmax / 1e6)

    def sx(t):
        return _ML + (t - tmin) / span * (_W - _ML - _MR)

    def sy(v):
        return _H - _MB - (v / unit_div) / ymax * (_H - _MT - _MB)

    for i, name in enumerate(shown):
        color = f"var(--s{i + 1})"
        pts = [(sx(t), sy(v)) for t, v in series[name]]
        svg.poly(pts, color)
        for t, v in series[name]:
            svg.hit(sx(t), sy(v),
                    f"{name} · {t / 1e6:.3f} ms · {_fmt(v / unit_div)}{tip_unit}")
        t_end, v_end = series[name][-1]
        svg.dot(sx(t_end), sy(v_end), color)
    # direct-label line ends only while they are few and separated
    if len(shown) <= 4:
        used: List[float] = []
        for i, name in enumerate(shown):
            t_end, v_end = series[name][-1]
            y = sy(v_end)
            if all(abs(y - u) > 12 for u in used):
                svg.text(sx(t_end) - 8, y - 8, name, anchor="end")
                used.append(y)
    note = "" if len(names) <= 8 else \
        f'<p class="note">showing 8 of {len(names)} series; the rest are in the table</p>'
    rows = [[n, len(series[n]), _fmt(max(v for _, v in series[n]) / unit_div),
             _fmt(series[n][-1][1] / unit_div)] for n in names]
    return (svg.render()
            + _legend([(n, f"var(--s{i + 1})") for i, n in enumerate(shown)])
            + note
            + _table(["series", "points", f"max ({y_label})", f"final ({y_label})"],
                     rows, "Data table"))


def _latency_chart(spans: List[dict]) -> str:
    """Mean per-hop stacked latency breakdown across delivered packets."""
    hops = [r for r in spans if "hop" in r]
    summaries = {r["trace"]: r for r in spans if r.get("kind") == "summary"}
    delivered = {t for t, s in summaries.items() if s["disposition"] == "delivered"}
    agg: Dict[Tuple[int, str], List[float]] = {}
    counts: Dict[Tuple[int, str], int] = {}
    for r in hops:
        if r["trace"] not in delivered:
            continue
        key = (r["hop"], r["port"])
        cell = agg.setdefault(key, [0.0] * len(_COMPONENTS))
        for i, (field, _, _) in enumerate(_COMPONENTS):
            cell[i] += r[field]
        counts[key] = counts.get(key, 0) + 1
    if not agg:
        return ""
    keys = sorted(agg)
    means = {k: [c / counts[k] / 1000.0 for c in agg[k]] for k in keys}  # µs
    total_max = max(sum(m) for m in means.values())
    bar_h, gap_v = 20, 14
    height = _MT + len(keys) * (bar_h + gap_v) + 26
    svg = _Svg(_W, height)
    xticks = _ticks(total_max)
    xmax = xticks[-1]
    label_w = 150
    for tv in xticks:
        x = label_w + tv / xmax * (_W - label_w - _MR)
        svg.line(x, _MT, x, height - 22, "var(--grid)")
        svg.text(x, height - 8, _fmt(tv), anchor="middle", cls="tick")
    svg.text(_W - _MR, height - 8, "µs", anchor="end", cls="tick")
    for row, key in enumerate(keys):
        hop_i, port = key
        y = _MT + row * (bar_h + gap_v)
        svg.text(label_w - 8, y + bar_h / 2 + 3.5, f"hop {hop_i} · {port}",
                 anchor="end")
        x = float(label_w)
        parts = means[key]
        for i, (_, comp_name, slot) in enumerate(_COMPONENTS):
            w = parts[i] / xmax * (_W - label_w - _MR)
            if w <= 0:
                continue
            last = all(p <= 0 for p in parts[i + 1:])
            tip = (f"{comp_name} · hop {hop_i} {port} · {parts[i]:.2f} µs mean "
                   f"({counts[key]} pkts)")
            # 2px surface gap between segments; rounded cap on the data end
            svg.rect(x, y, max(w - 2, 0.5), bar_h, f"var(--s{slot + 1})",
                     rx=4 if last else 0, tip=tip)
            x += w
        svg.text(x + 6, y + bar_h / 2 + 3.5, f"{sum(parts):.1f}")
    rows = [[f"hop {k[0]}", k[1], counts[k]] + [f"{v:.2f}" for v in means[k]]
            + [f"{sum(means[k]):.2f}"] for k in keys]
    return (svg.render()
            + _legend([(name, f"var(--s{slot + 1})")
                       for _, name, slot in _COMPONENTS])
            + _table(["hop", "port", "packets"]
                     + [f"{name} (µs)" for _, name, _ in _COMPONENTS]
                     + ["total (µs)"], rows, "Data table"))


def _timeline_chart(channel: dict) -> str:
    """Per-flow PrioPlus state timeline: one colored band per state interval."""
    flows = channel.get("flows", {})
    if not flows:
        return ""
    end_ts = max(channel.get("max_ts", 0), 1)
    fids = sorted(flows, key=lambda s: int(s))
    bar_h, gap_v = 18, 12
    height = _MT + len(fids) * (bar_h + gap_v) + 26
    svg = _Svg(_W, height)
    label_w = 120
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = label_w + frac * (_W - label_w - _MR)
        svg.line(x, _MT, x, height - 22, "var(--grid)")
        svg.text(x, height - 8, f"{frac * end_ts / 1e6:.2f}", anchor="middle",
                 cls="tick")
    svg.text(_W - _MR, height - 8, "ms", anchor="end", cls="tick")

    def sx(t):
        return label_w + t / end_ts * (_W - label_w - _MR)

    seen_states: List[str] = []
    for row, fid in enumerate(fids):
        rec = flows[fid]
        y = _MT + row * (bar_h + gap_v)
        svg.text(label_w - 8, y + bar_h / 2 + 3.5,
                 f"flow {fid} vp{rec.get('vpriority', '?')}", anchor="end")
        transitions = rec.get("transitions", [])
        for i, (t, state) in enumerate(transitions):
            if state == "done":
                continue
            t_next = transitions[i + 1][0] if i + 1 < len(transitions) else end_ts
            slot = _STATE_SLOTS.get(state)
            fill = f"var(--s{slot + 1})" if slot is not None else "var(--muted)"
            tip = f"flow {fid} · {state} · {t / 1e6:.3f}–{t_next / 1e6:.3f} ms"
            svg.rect(sx(t), y, max(sx(t_next) - sx(t) - 2, 0.5), bar_h, fill,
                     tip=tip)
            if state not in seen_states:
                seen_states.append(state)
    entries = [(s, f"var(--s{_STATE_SLOTS[s] + 1})") for s in
               sorted(seen_states, key=lambda s: _STATE_SLOTS.get(s, 9))
               if s in _STATE_SLOTS]
    rows = [[fid, flows[fid].get("vpriority"), flows[fid].get("tier"),
             " → ".join(s for _, s in flows[fid].get("transitions", []))]
            for fid in fids]
    return (svg.render() + _legend(entries)
            + _table(["flow", "vpriority", "tier", "transitions"], rows,
                     "Data table"))


def _profile_table(profile: dict) -> str:
    callbacks = profile.get("callbacks", {})
    if not callbacks:
        return ""
    ranked = sorted(callbacks.items(), key=lambda kv: -kv[1]["wall_s"])
    rows = [[name, f"{c['count']:,}", f"{c['wall_s'] * 1e3:.2f}",
             f"{c['mean_us']:.2f}"] for name, c in ranked]
    head = "".join(f"<th>{h}</th>" for h in
                   ("callback", "events", "wall (ms)", "mean (µs)"))
    body = "".join("<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row)
                   + "</tr>" for row in rows)
    return (f'<table class="profile"><thead><tr>{head}</tr></thead>'
            f"<tbody>{body}</tbody></table>")


def _stat_tiles(tiles: List[Tuple[str, str]]) -> str:
    out = "".join(
        f'<div class="tile"><div class="tl">{_esc(label)}</div>'
        f'<div class="tv">{_esc(value)}</div></div>'
        for label, value in tiles
    )
    return f'<div class="tiles">{out}</div>'


_CSS = """
.viz-root { color-scheme: light;
  --surface:#fcfcfb; --page:#f9f9f7; --ink:#0b0b0b; --ink2:#52514e;
  --muted:#898781; --grid:#e1e0d9; --axis:#c3c2b7;
  --s1:#2a78d6; --s2:#eb6834; --s3:#1baf7a; --s4:#eda100;
  --s5:#e87ba4; --s6:#008300; --s7:#4a3aa7; --s8:#e34948;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink); margin: 0; padding: 24px; }
@media (prefers-color-scheme: dark) { .viz-root { color-scheme: dark;
  --surface:#1a1a19; --page:#0d0d0d; --ink:#ffffff; --ink2:#c3c2b7;
  --muted:#898781; --grid:#2c2c2a; --axis:#383835;
  --s1:#3987e5; --s2:#d95926; --s3:#199e70; --s4:#c98500;
  --s5:#d55181; --s6:#008300; --s7:#9085e9; --s8:#e66767; } }
.viz-root h1 { font-size: 20px; font-weight: 600; margin: 0 0 2px; }
.viz-root h2 { font-size: 14px; font-weight: 600; margin: 0 0 8px; }
.viz-root .sub { color: var(--ink2); font-size: 12px; margin: 0 0 20px; }
.card { background: var(--surface); border: 1px solid rgba(128,128,128,.15);
  border-radius: 8px; padding: 16px; margin: 0 0 16px; max-width: 780px; }
svg { display: block; width: 100%; height: auto; }
.lbl { font-size: 11px; fill: var(--ink2); }
.tick { font-size: 10px; fill: var(--muted); font-variant-numeric: tabular-nums; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 16px; margin-top: 8px;
  font-size: 12px; color: var(--ink2); }
.key { display: inline-flex; align-items: center; gap: 6px; }
.sw { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
.note { font-size: 11px; color: var(--muted); margin: 6px 0 0; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 16px; }
.tile { background: var(--surface); border: 1px solid rgba(128,128,128,.15);
  border-radius: 8px; padding: 12px 18px; }
.tl { font-size: 11px; color: var(--ink2); }
.tv { font-size: 26px; font-weight: 600; }
details { margin-top: 8px; font-size: 12px; }
summary { cursor: pointer; color: var(--ink2); }
table { border-collapse: collapse; margin-top: 8px; font-size: 12px; }
th, td { text-align: left; padding: 3px 12px 3px 0; border-bottom: 1px solid
  var(--grid); font-variant-numeric: tabular-nums; }
th { color: var(--ink2); font-weight: 600; }
.profile { width: 100%; }
#tip { position: fixed; pointer-events: none; background: var(--ink);
  color: var(--surface); font-size: 11px; padding: 4px 8px; border-radius: 4px;
  display: none; z-index: 10; max-width: 320px; }
"""

_JS = """
(function () {
  var tip = document.getElementById('tip');
  document.addEventListener('mousemove', function (e) {
    var t = e.target.closest ? e.target.closest('[data-tip]') : null;
    if (t) {
      tip.textContent = t.getAttribute('data-tip');
      tip.style.display = 'block';
      tip.style.left = Math.min(e.clientX + 12, window.innerWidth - 330) + 'px';
      tip.style.top = (e.clientY + 14) + 'px';
    } else {
      tip.style.display = 'none';
    }
  });
})();
"""


def _load_jsonl(path: str) -> List[dict]:
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def _load_samples(path: str) -> List[dict]:
    if not path.endswith(".csv"):
        return _load_jsonl(path)
    rows: List[dict] = []
    with open(path) as fh:
        header = fh.readline().rstrip("\n").split(",")
        for line in fh:
            row: Dict[str, object] = {}
            for key, cell in zip(header, line.rstrip("\n").split(",")):
                if cell == "":
                    continue
                try:
                    row[key] = int(cell)
                except ValueError:
                    try:
                        row[key] = float(cell)
                    except ValueError:
                        row[key] = cell
            rows.append(row)
    return rows


def build_dashboard(result: Optional[dict] = None,
                    samples: Optional[List[dict]] = None,
                    spans: Optional[List[dict]] = None,
                    channel: Optional[dict] = None,
                    title: str = "repro run report") -> str:
    """Render the dashboard HTML from already-loaded artifacts."""
    sections: List[str] = []
    tiles: List[Tuple[str, str]] = []

    if result:
        profile = result.get("profile") or {}
        if profile.get("events"):
            tiles.append(("engine events", _fmt(profile["events"])))
            tiles.append(("sim wall time", f"{profile['wall_s'] * 1e3:.0f}ms"))
        traces = result.get("packet_traces") or {}
        if traces.get("recorded"):
            tiles.append(("packets traced", _fmt(traces["recorded"])))
    if channel:
        tiles.append(("state transitions", _fmt(channel.get("transition_count", 0))))
        tiles.append(("priority inversions", _fmt(len(channel.get("inversions", [])))))

    if samples:
        flow_series: Dict[str, List[Tuple[int, float]]] = {}
        port_series: Dict[str, List[Tuple[int, float]]] = {}
        for r in samples:
            if r.get("kind") == "flow":
                flow_series.setdefault(f"flow {r['flow']}", []).append(
                    (int(r["t"]), float(r.get("rate_bps", 0))))
            elif r.get("kind") == "port":
                port_series.setdefault(str(r["port"]), []).append(
                    (int(r["t"]), float(r.get("backlog_bytes", 0))))
        body = _series_chart(flow_series, "Gbit/s", 1e9, " Gbit/s")
        if body:
            sections.append(f'<div class="card"><h2>Per-flow goodput</h2>{body}</div>')
        body = _series_chart(port_series, "KB queued", 1e3, " KB")
        if body:
            sections.append(
                f'<div class="card"><h2>Port backlog</h2>{body}</div>')
        regime_rows = [r for r in samples if r.get("kind") == "regime"]
        if regime_rows:
            n_fluid = sum(1 for r in regime_rows if r.get("mode") == "fluid")
            tiles.append(("fluid epochs", _fmt(n_fluid)))
            rows = [[r["t"] / 1e6, str(r.get("mode", "")), str(r.get("reason", ""))]
                    for r in regime_rows]
            sections.append(
                '<div class="card"><h2>Hybrid regime switches</h2>'
                + _table(["t (ms)", "entered", "reason"], rows,
                         f"{len(regime_rows)} switches, {n_fluid} fluid epochs")
                + "</div>")

    if spans:
        body = _latency_chart(spans)
        if body:
            sections.append(
                '<div class="card"><h2>Per-hop latency breakdown '
                "(mean over delivered traced packets)</h2>" + body + "</div>")

    if channel:
        body = _timeline_chart(channel)
        if body:
            sections.append(
                f'<div class="card"><h2>PrioPlus state timeline</h2>{body}</div>')
        inv = channel.get("inversions", [])
        if inv:
            rows = [[i["window_t_ns"] / 1e6, i["low_flow"], i["low_vpriority"],
                     _fmt(i["low_bytes"]), i["high_flow"], i["high_vpriority"],
                     _fmt(i["high_bytes"]), i["high_state"]] for i in inv]
            sections.append(
                '<div class="card"><h2>Virtual-priority inversions</h2>'
                + _table(["window (ms)", "low flow", "low vp", "low bytes",
                          "high flow", "high vp", "high bytes", "high state"],
                         rows, f"{len(inv)} inversion windows") + "</div>")

    if result and result.get("profile"):
        body = _profile_table(result["profile"])
        if body:
            sections.append(
                f'<div class="card"><h2>Engine profile</h2>{body}</div>')

    empty = "" if sections else \
        '<div class="card"><p class="sub">No artifacts supplied — pass ' \
        "--samples / --spans / --channel / --result.</p></div>"
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f'<body class="viz-root"><h1>{_esc(title)}</h1>'
        '<p class="sub">generated by <code>python -m repro report</code></p>'
        + _stat_tiles(tiles) + "".join(sections) + empty
        + f'<div id="tip"></div><script>{_JS}</script></body></html>'
    )


def report_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Aggregate run artifacts into a static HTML dashboard.",
    )
    parser.add_argument("--result", metavar="PATH",
                        help="runner result JSON (python -m repro ... > out.json)")
    parser.add_argument("--samples", metavar="PATH",
                        help="time-series file from --sample (.csv or JSONL)")
    parser.add_argument("--spans", metavar="PATH",
                        help="per-hop span JSONL from --trace-packets")
    parser.add_argument("--channel", metavar="PATH",
                        help="channel report JSON from --inspect")
    parser.add_argument("--title", default="repro run report")
    parser.add_argument("--out", default="report.html", metavar="PATH")
    args = parser.parse_args(argv)

    if not (args.result or args.samples or args.spans or args.channel):
        parser.error("nothing to report: pass at least one of --result, "
                     "--samples, --spans, --channel")
    result = json.load(open(args.result)) if args.result else None
    samples = _load_samples(args.samples) if args.samples else None
    spans = _load_jsonl(args.spans) if args.spans else None
    channel = json.load(open(args.channel)) if args.channel else None
    page = build_dashboard(result=result, samples=samples, spans=spans,
                           channel=channel, title=args.title)
    with open(args.out, "w") as fh:
        fh.write(page)
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(report_main())
