"""Introspection layer: packet tracing, channel inspection, sampling, profiling.

Four independent subsystems, each following the Recorder/Auditor contract —
process-global default, snapshot-at-construction adoption, zero overhead when
off, and no feedback into simulation results:

* :mod:`repro.obs.tracer` — causal packet tracing with per-hop latency
  breakdown (queueing vs PFC pause vs serialization vs propagation),
* :mod:`repro.obs.inspector` — PrioPlus state-machine transcript, channel
  occupancy and virtual-priority-inversion detection,
* :mod:`repro.obs.sampler` — fixed-stride time series of queue depths,
  buffer occupancy and per-flow rates into bounded ring buffers,
* :mod:`repro.obs.profiler` — wall-time/event-count attribution per engine
  callback.

``repro.obs.report`` aggregates runner results, samples and traces into a
static HTML dashboard (``python -m repro report``).
"""

from .inspector import (
    ChannelInspector,
    NULL_INSPECTOR,
    NullInspector,
    current_inspector,
    default_inspector,
    inspect_scope,
    set_default_inspector,
)
from .profiler import (
    EngineProfiler,
    NULL_PROFILER,
    NullProfiler,
    current_profiler,
    default_profiler,
    profile_scope,
    set_default_profiler,
)
from .sampler import (
    NULL_SAMPLER,
    NullSampler,
    TimeSeriesSampler,
    current_sampler,
    default_sampler,
    sample_scope,
    set_default_sampler,
)
from .tracer import (
    HopRecord,
    NULL_TRACER,
    NullTracer,
    PacketTrace,
    PacketTracer,
    current_tracer,
    default_tracer,
    set_default_tracer,
    trace_scope,
)

__all__ = [
    "ChannelInspector",
    "EngineProfiler",
    "HopRecord",
    "NULL_INSPECTOR",
    "NULL_PROFILER",
    "NULL_SAMPLER",
    "NULL_TRACER",
    "NullInspector",
    "NullProfiler",
    "NullSampler",
    "NullTracer",
    "PacketTrace",
    "PacketTracer",
    "TimeSeriesSampler",
    "current_inspector",
    "current_profiler",
    "current_sampler",
    "current_tracer",
    "default_inspector",
    "default_profiler",
    "default_sampler",
    "default_tracer",
    "inspect_scope",
    "profile_scope",
    "sample_scope",
    "set_default_inspector",
    "set_default_profiler",
    "set_default_sampler",
    "set_default_tracer",
    "trace_scope",
]
