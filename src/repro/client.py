"""Synchronous client for the experiment-serving daemon.

:class:`ServeClient` speaks the versioned JSON protocol from
:mod:`repro.serve.protocol` over TCP or a unix socket, stdlib-only.  It is
the transport behind :mod:`repro.api`'s remote paths — application code
should normally go through ``repro.api`` rather than construct a client
directly.

Addresses: ``"host:port"`` for TCP, anything containing a path separator
(or prefixed ``"unix:"``) for a unix socket::

    client = ServeClient("127.0.0.1:8642")
    client = ServeClient("/tmp/repro.sock")
    client = ServeClient("unix:/tmp/repro.sock")

Streaming responses are plain iterators of decoded JSONL events; a dropped
connection can be resumed losslessly with ``stream(job_id, start=n)``
because the server keeps every job's full event log.
"""

from __future__ import annotations

import json
import socket
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

from .serve.protocol import (
    PROTOCOL_VERSION,
    JobStatus,
    ProtocolError,
    ServerStats,
    SubmitRequest,
    check_version,
)

__all__ = ["ServeClient", "ServeError", "parse_address"]


class ServeError(RuntimeError):
    """The server rejected a request or a job failed remotely."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


def parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[int, object]:
    """Normalize an address into ``(address_family, connect_arg)``."""
    if isinstance(address, tuple):
        return socket.AF_INET, address
    if address.startswith("unix:"):
        return socket.AF_UNIX, address[len("unix:"):]
    if "/" in address or address.startswith("."):
        return socket.AF_UNIX, address
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValueError(
            f"cannot parse server address {address!r}; want 'host:port', a "
            f"unix socket path, or 'unix:/path'"
        )
    return socket.AF_INET, (host or "127.0.0.1", int(port))


class ServeClient:
    """One server address; every call opens a short-lived connection."""

    def __init__(self, address: Union[str, Tuple[str, int]], timeout: float = 600.0):
        self.address = address
        self.family, self.connect_arg = parse_address(address)
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.socket(self.family, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.connect_arg)
        return sock

    def _send_request(self, sock: socket.socket, method: str, path: str, body: Optional[dict]):
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        host = (
            f"{self.connect_arg[0]}:{self.connect_arg[1]}"
            if self.family == socket.AF_INET
            else "localhost"
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        sock.sendall(head.encode("latin-1") + payload)

    @staticmethod
    def _read_head(fh) -> Tuple[int, Dict[str, str]]:
        status_line = fh.readline().decode("latin-1").strip()
        if not status_line:
            raise ServeError("server closed the connection before responding")
        try:
            status = int(status_line.split(" ", 2)[1])
        except (IndexError, ValueError):
            raise ServeError(f"malformed status line {status_line!r}") from None
        headers: Dict[str, str] = {}
        while True:
            line = fh.readline().decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    def _request_json(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        with self._connect() as sock:
            self._send_request(sock, method, path, body)
            fh = sock.makefile("rb")
            status, headers = self._read_head(fh)
            length = headers.get("content-length")
            raw = fh.read(int(length)) if length is not None else fh.read()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            raise ServeError(f"non-JSON response (HTTP {status})", status) from None
        if status >= 400:
            raise ServeError(
                str(payload.get("error", f"HTTP {status}")), status
            )
        return payload

    def _stream_jsonl(self, method: str, path: str, body: Optional[dict] = None) -> Iterator[dict]:
        sock = self._connect()
        try:
            self._send_request(sock, method, path, body)
            fh = sock.makefile("rb")
            status, _headers = self._read_head(fh)
            if status >= 400:
                raw = fh.read()
                try:
                    payload = json.loads(raw.decode("utf-8"))
                    message = str(payload.get("error", f"HTTP {status}"))
                except ValueError:
                    message = f"HTTP {status}"
                raise ServeError(message, status)
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                yield event
                # Job streams are close-delimited, but a worker process forked
                # while some *other* stream was open can inherit (and pin) this
                # connection's fd on the server side — so never rely on EOF:
                # the terminal event is the authoritative end of stream.
                if event.get("type") in ("done", "error"):
                    return
        finally:
            sock.close()

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request_json("GET", "/v1/health")

    def experiments(self) -> Dict[str, str]:
        return self._request_json("GET", "/v1/experiments")["experiments"]

    def server_status(self) -> ServerStats:
        return ServerStats.from_dict(self._request_json("GET", "/v1/status"))

    def job_status(self, job_id: str) -> JobStatus:
        return JobStatus.from_dict(self._request_json("GET", f"/v1/status?job={job_id}"))

    def cache_info(self) -> Optional[dict]:
        return self._request_json("GET", "/v1/cache")["cache"]

    def submit(
        self,
        experiment: str,
        quick: bool = False,
        faults: Optional[dict] = None,
        audit: Optional[str] = None,
        tag: str = "",
    ) -> str:
        """Submit without waiting; returns the job id."""
        request = SubmitRequest(
            experiment=experiment, quick=quick, faults=faults, audit=audit, tag=tag
        )
        payload = self._request_json("POST", "/v1/submit", request.to_dict())
        return str(payload["job_id"])

    def stream(self, job_id: str, start: int = 0) -> Iterator[dict]:
        """Replay a job's event log from index ``start``, then follow live.

        Yields version-stamped event dicts and ends after the terminal
        ``done``/``error`` event.  Reconnect after a dropped connection by
        calling again — with ``start=0`` for a full replay or the next
        unseen index to resume.
        """
        for event in self._stream_jsonl("GET", f"/v1/stream?job={job_id}&from={start}"):
            check_version(event, "stream event")
            yield event

    def result(self, job_id: str, wait: bool = True) -> dict:
        """The job's final reduced result; streams to completion if ``wait``.

        Raises :class:`ServeError` if the job failed (or, with
        ``wait=False``, if it is still running).
        """
        if wait:
            for event in self.stream(job_id):
                if event["type"] == "error":
                    raise ServeError(event["error"])
            # fall through to /v1/result for the canonical payload
        payload = self._request_json("GET", f"/v1/result?job={job_id}")
        return payload["result"]

    def run(
        self,
        experiment: str,
        quick: bool = False,
        faults: Optional[dict] = None,
        audit: Optional[str] = None,
        tag: str = "",
        on_progress: Optional[Callable[[str, str], None]] = None,
        report: Optional[dict] = None,
    ) -> dict:
        """Submit and stream to completion in one call; returns the result.

        ``on_progress`` mirrors :func:`repro.runner.run_experiment`'s
        callback signature ``(point_name, source)`` with source one of
        ``"cache"``/``"inflight"``/``"run"``.  ``report``, when given, is
        filled in place with the server-side run statistics.
        """
        request = SubmitRequest(
            experiment=experiment, quick=quick, faults=faults, audit=audit, tag=tag
        )
        result = None
        failed: Optional[str] = None
        for event in self._stream_jsonl("POST", "/v1/run", request.to_dict()):
            check_version(event, "stream event")
            kind = event["type"]
            if kind == "point" and on_progress is not None:
                on_progress(event["point"], event["source"])
            elif kind == "done":
                result = event["result"]
                if report is not None:
                    report.update(event.get("report", {}))
            elif kind == "error":
                failed = event["error"]
        if failed is not None:
            raise ServeError(failed)
        if result is None:
            raise ServeError("stream ended without a done event")
        return result

    def shutdown(self) -> None:
        """Ask the daemon to stop; in-flight work is dropped."""
        self._request_json("POST", "/v1/shutdown")


# keep the facade import sites short: repro.api.connect(...)
def connect(address: Union[str, Tuple[str, int]], timeout: float = 600.0) -> ServeClient:
    """Open a client for a running daemon and verify protocol compatibility."""
    client = ServeClient(address, timeout=timeout)
    payload = client.health()
    if payload.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"server at {address!r} speaks protocol {payload.get('version')!r}, "
            f"this client speaks {PROTOCOL_VERSION}"
        )
    return client
