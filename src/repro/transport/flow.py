"""Flow descriptor and completion record."""

from __future__ import annotations

from typing import List, Optional

__all__ = ["Flow", "AckInfo"]


class Flow:
    """One transfer: who sends how much to whom, at which priority.

    ``priority`` is the *physical* switch queue the flow's data packets use.
    ``vpriority`` is the virtual priority (PrioPlus channel index); for
    physical-priority baselines the two coincide.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size_bytes",
        "priority",
        "vpriority",
        "start_ns",
        "deadline_ns",
        "tag",
        "completion_ns",
        "sender_done_ns",
        "first_tx_ns",
        "retransmits",
        "probes_sent",
    )

    def __init__(
        self,
        flow_id: int,
        src,
        dst,
        size_bytes: int,
        priority: int = 0,
        vpriority: int = 0,
        start_ns: int = 0,
        deadline_ns: Optional[int] = None,
        tag: Optional[object] = None,
    ):
        if size_bytes <= 0:
            raise ValueError("flow size must be positive")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.priority = priority
        self.vpriority = vpriority
        self.start_ns = start_ns
        self.deadline_ns = deadline_ns
        #: free-form grouping handle (coflow id, model name, size class, ...)
        self.tag = tag
        #: receiver-side time the last data byte arrived (None until done)
        self.completion_ns: Optional[int] = None
        #: sender-side time the last ACK arrived
        self.sender_done_ns: Optional[int] = None
        self.first_tx_ns: Optional[int] = None
        self.retransmits = 0
        self.probes_sent = 0

    @property
    def done(self) -> bool:
        return self.completion_ns is not None

    def fct_ns(self) -> int:
        """Receiver-side flow completion time."""
        if self.completion_ns is None:
            raise RuntimeError(f"flow {self.flow_id} has not completed")
        return self.completion_ns - self.start_ns

    def ideal_fct_ns(self, bottleneck_bps: float, base_rtt_ns: int = 0) -> float:
        """size/bandwidth plus the propagation component, the paper's 'ideal FCT'."""
        return self.size_bytes * 8e9 / bottleneck_bps + base_rtt_ns

    def slowdown(self, bottleneck_bps: float, base_rtt_ns: int = 0) -> float:
        return self.fct_ns() / self.ideal_fct_ns(bottleneck_bps, base_rtt_ns)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Flow {self.flow_id} {self.size_bytes}B prio={self.priority} "
            f"vprio={self.vpriority} done={self.done}>"
        )


class AckInfo:
    """Everything a congestion-control algorithm may read from one ACK."""

    __slots__ = ("now", "delay_ns", "ecn", "acked_bytes", "int_hops", "seq", "is_probe", "cum_seq")

    def __init__(
        self,
        now: int,
        delay_ns: int,
        ecn: bool,
        acked_bytes: int,
        seq: int,
        int_hops: Optional[List] = None,
        is_probe: bool = False,
        cum_seq: int = 0,
    ):
        self.now = now
        self.delay_ns = delay_ns
        self.ecn = ecn
        self.acked_bytes = acked_bytes
        self.seq = seq
        self.int_hops = int_hops
        self.is_probe = is_probe
        self.cum_seq = cum_seq
