"""Reliable windowed transport driven by pluggable congestion control."""

from .flow import AckInfo, Flow
from .receiver import FlowReceiver
from .sender import DEFAULT_MTU, FlowSender

__all__ = ["Flow", "AckInfo", "FlowReceiver", "FlowSender", "DEFAULT_MTU"]
