"""Receiver endpoint: per-packet ACKs, probe echoes, completion detection."""

from __future__ import annotations


from ..sim.engine import Simulator
from ..sim.packet import (
    ACK,
    DATA,
    MIN_PACKET_BYTES,
    PACKET_POOL,
    PROBE,
    PROBE_ACK,
    Packet,
)
from .flow import Flow

__all__ = ["FlowReceiver"]


class FlowReceiver:
    """Receives one flow's data at its destination host.

    Emits one ACK per data packet.  The ACK echoes the data packet's send
    timestamp (for sender-side RTT), its ECN mark, and any INT telemetry, and
    carries a cumulative sequence number (lowest packet index not yet
    received) so the sender can fast-retransmit holes.
    """

    __slots__ = ("sim", "flow", "host", "n_packets", "received", "rx_count", "cum_seq", "ack_priority", "on_complete")

    def __init__(self, sim: Simulator, flow: Flow, n_packets: int, ack_priority: int):
        self.sim = sim
        self.flow = flow
        self.host = flow.dst
        self.n_packets = n_packets
        self.received = bytearray(n_packets)
        self.rx_count = 0
        self.cum_seq = 0
        self.ack_priority = ack_priority
        self.on_complete = None

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PROBE:
            self._echo(pkt, PROBE_ACK)
            return
        if pkt.kind != DATA:  # pragma: no cover - host dispatch guarantees this
            raise RuntimeError(f"receiver got unexpected packet kind {pkt.kind}")
        seq = pkt.seq
        if not self.received[seq]:
            self.received[seq] = 1
            self.rx_count += 1
            while self.cum_seq < self.n_packets and self.received[self.cum_seq]:
                self.cum_seq += 1
            if self.rx_count == self.n_packets and self.flow.completion_ns is None:
                self.flow.completion_ns = self.sim.now
                if self.on_complete is not None:
                    self.on_complete(self.flow)
        self._echo(pkt, ACK)

    def _echo(self, pkt: Packet, kind: int) -> None:
        ack = PACKET_POOL.acquire(
            kind,
            MIN_PACKET_BYTES,
            src=self.host.node_id,
            dst=pkt.src,
            flow_id=pkt.flow_id,
            seq=pkt.seq,
            priority=self.ack_priority,
            send_ts=self.sim.now,
        )
        ack.local_prio = self.host.local_ack_queue()
        ack.echo_ts = pkt.send_ts
        ack.ecn_echo = pkt.ecn
        ack.int_hops = pkt.int_hops
        ack.ack_seq = self.cum_seq
        self.host.send(ack)
