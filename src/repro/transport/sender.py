"""Windowed, reliable flow sender.

The sender owns the congestion window supplied by a pluggable congestion
control object, per-packet ACK processing (with sender-side delay
measurement plus additive noise), pacing for sub-MTU windows, fast
retransmit via cumulative-ACK duplicates, RTO recovery, and the
probe/stop/resume hooks PrioPlus needs (§4.2.1 of the paper).

Delay normalisation: probes are 64-byte frames and therefore have a smaller
unloaded RTT than MTU data packets.  All delays handed to the CC are
normalised to *data-packet equivalents* so one set of channel thresholds
applies to both (see ``_probe_base_adjust``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..obs.inspector import NULL_INSPECTOR
from ..obs.sampler import NULL_SAMPLER
from ..obs.tracer import NULL_TRACER
from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.packet import DATA, HEADER_BYTES, MIN_PACKET_BYTES, PACKET_POOL, PROBE, PROBE_ACK, Packet
from ..telemetry.recorder import NULL_RECORDER
from .flow import AckInfo, Flow
from .receiver import FlowReceiver

__all__ = ["FlowSender", "DEFAULT_MTU"]

#: Default payload bytes per packet (the paper's footnote 5 assumes 1 KB MTU).
DEFAULT_MTU = 1000

_DUP_THRESH = 3


class FlowSender:
    """Sends one flow from its source host, driven by a CC object."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        flow: Flow,
        cc,
        mtu: int = DEFAULT_MTU,
        ack_priority: Optional[int] = None,
        noise=None,
        rto_ns: Optional[int] = None,
        on_done: Optional[Callable[[Flow], None]] = None,
        on_receive_done: Optional[Callable[[Flow], None]] = None,
    ):
        self.sim = sim
        self.net = net
        self.flow = flow
        self.cc = cc
        self.mtu = mtu
        self.noise = noise
        self.on_done = on_done
        self.telemetry = getattr(sim, "telemetry", NULL_RECORDER)
        self.audit = sim.audit
        self.tracer = getattr(sim, "tracer", NULL_TRACER)
        self.inspector = getattr(sim, "inspector", NULL_INSPECTOR)
        smp = getattr(sim, "sampler", NULL_SAMPLER)
        if smp.enabled:
            smp.register_sender(self)

        self.n_packets = (flow.size_bytes + mtu - 1) // mtu
        self._last_payload = flow.size_bytes - (self.n_packets - 1) * mtu

        src, dst = flow.src, flow.dst
        if ack_priority is None:
            ack_priority = src.n_queues - 1
        self.ack_priority = ack_priority
        data_wire = mtu + HEADER_BYTES
        self.base_rtt = net.base_rtt_ns(src, dst, data_wire, MIN_PACKET_BYTES)
        probe_rtt = net.base_rtt_ns(src, dst, MIN_PACKET_BYTES, MIN_PACKET_BYTES)
        self._probe_base_adjust = self.base_rtt - probe_rtt
        self.line_rate_bps = net.bottleneck_rate_bps(src, dst)
        self.bdp_bytes = self.line_rate_bps * self.base_rtt / 8e9
        self.rto_ns = rto_ns if rto_ns is not None else max(16 * self.base_rtt, 500_000)

        # reliability state
        self.sent = bytearray(self.n_packets)
        self.acked = bytearray(self.n_packets)
        self.acked_count = 0
        self.acked_payload = 0
        self.next_new_seq = 0
        self.inflight_bytes = 0
        self._retx_queue: deque = deque()
        self._retx_pending = set()
        self._cum_watch = 0
        self._dup = 0
        self._retx_scan = 0

        # control state
        self.started = False
        self.stopped = False
        self.completed = False
        #: parked by a fluid epoch (repro.fluid.hybrid); CC state untouched
        self.fluid_held = False
        self.last_rtt = self.base_rtt
        self.next_send_time = 0
        self._pace_ev = None
        self._rto_ev = None
        self._last_activity = 0
        self._probe_ev = None
        self.probe_outstanding = False

        # wire up endpoints
        src.senders[flow.flow_id] = self
        self.receiver = FlowReceiver(sim, flow, self.n_packets, ack_priority)
        if on_receive_done is not None:
            self.receiver.on_complete = on_receive_done
        dst.receivers[flow.flow_id] = self.receiver

        cc.attach(self)
        sim.at(max(flow.start_ns, sim.now), self._start)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _start(self) -> None:
        self.started = True
        fd = self.sim.fluid_driver
        if fd is not None and fd.absorbing:
            # the fabric is in a fluid epoch: this flow is carried by the
            # fluid model until the next packet handoff
            fd.admit(self)
            return
        tel = self.telemetry
        if tel.enabled:
            tel.flow_state(self.sim.now, self.flow.flow_id, "running")
        insp = self.inspector
        if insp.enabled:
            insp.transition(self.sim.now, self.flow.flow_id, "running")
        self.cc.on_start()
        self.try_send()

    def _finish(self) -> None:
        self.completed = True
        self.flow.sender_done_ns = self.sim.now
        tel = self.telemetry
        if tel.enabled:
            tel.flow_state(self.sim.now, self.flow.flow_id, "done")
        insp = self.inspector
        if insp.enabled:
            insp.transition(self.sim.now, self.flow.flow_id, "done")
        for ev_name in ("_pace_ev", "_rto_ev", "_probe_ev"):
            ev = getattr(self, ev_name)
            if ev is not None:
                ev.cancel()
                setattr(self, ev_name, None)
        if self.on_done is not None:
            self.on_done(self.flow)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def payload_of(self, seq: int) -> int:
        return self._last_payload if seq == self.n_packets - 1 else self.mtu

    def _peek_next_seq(self) -> Optional[int]:
        while self._retx_queue:
            seq = self._retx_queue[0]
            if self.acked[seq]:
                self._retx_queue.popleft()
                self._retx_pending.discard(seq)
                continue
            return seq
        if self.next_new_seq < self.n_packets:
            return self.next_new_seq
        return None

    def try_send(self) -> None:
        """Send as much as window/pacing allow right now."""
        if self.stopped or self.completed or self.fluid_held:
            return
        sim = self.sim
        while True:
            seq = self._peek_next_seq()
            if seq is None:
                return
            payload = self.payload_of(seq)
            cwnd = self.cc.cwnd
            if cwnd >= self.mtu:
                if self.inflight_bytes + payload > cwnd:
                    return
            else:
                # sub-MTU window: at most one packet in flight, rate-paced
                if self.inflight_bytes > 0:
                    return
                if sim.now < self.next_send_time:
                    self._arm_pace(self.next_send_time)
                    return
            self._send_seq(seq)
            if cwnd < self.mtu:
                gap = int(self.last_rtt * self.mtu / max(cwnd, 1.0))
                self.next_send_time = sim.now + gap

    def _send_seq(self, seq: int) -> None:
        if self._retx_queue and self._retx_queue[0] == seq:
            self._retx_queue.popleft()
            self._retx_pending.discard(seq)
            self.flow.retransmits += 1
        else:
            self.next_new_seq = seq + 1
        payload = self.payload_of(seq)
        pkt = PACKET_POOL.acquire(
            DATA,
            payload + HEADER_BYTES,
            src=self.flow.src.node_id,
            dst=self.flow.dst.node_id,
            flow_id=self.flow.flow_id,
            seq=seq,
            priority=self.flow.priority,
            payload=payload,
            send_ts=self.sim.now,
        )
        pkt.local_prio = self.flow.src.local_data_queue(self.flow.vpriority)
        if getattr(self.cc, "needs_int", False):
            pkt.int_hops = []
        if not self.sent[seq]:
            self.sent[seq] = 1
            self.inflight_bytes += payload
        if self.flow.first_tx_ns is None:
            self.flow.first_tx_ns = self.sim.now
        trc = self.tracer
        if trc.enabled:
            trc.maybe_start(pkt, self.sim.now)
        self.flow.src.send(pkt)
        self._arm_rto()

    def _arm_pace(self, when: int) -> None:
        if self._pace_ev is not None:
            self._pace_ev.cancel()
        self._pace_ev = self.sim.at(when, self._pace_fire)

    def _pace_fire(self) -> None:
        self._pace_ev = None
        self.try_send()

    # ------------------------------------------------------------------
    # receiving ACKs / probe echoes
    # ------------------------------------------------------------------
    def on_packet(self, pkt: Packet) -> None:
        if self.completed:
            return
        raw_delay = self.sim.now - pkt.echo_ts
        if pkt.kind == PROBE_ACK:
            delay = raw_delay + self._probe_base_adjust
        else:
            delay = raw_delay
        if self.noise is not None:
            delay += self.noise.sample(self.sim.rng)
        self.last_rtt = delay

        if pkt.kind == PROBE_ACK:
            self.probe_outstanding = False
            self._disarm_rto_if_idle()
            info = AckInfo(self.sim.now, delay, pkt.ecn_echo, 0, pkt.seq, pkt.int_hops, is_probe=True)
            self.cc.on_probe_ack(info)
            tel = self.telemetry
            if tel.enabled:
                tel.probe(self.sim.now, self.flow.flow_id, "ack")
                tel.cwnd_update(self.sim.now, self.flow.flow_id, self.cc.cwnd, delay)
            insp = self.inspector
            if insp.enabled:
                insp.probe(self.sim.now, self.flow.flow_id, "ack")
            aud = self.audit
            if aud.enabled:
                aud.sender_event(self.sim.now, self)
            return

        seq = pkt.seq
        newly = 0
        if not self.acked[seq]:
            self.acked[seq] = 1
            self.acked_count += 1
            newly = self.payload_of(seq)
            if self.sent[seq]:
                # a packet presumed lost at RTO (sent flag cleared, window
                # already released) may still be delivered; don't deduct twice
                self.inflight_bytes -= newly
            self.acked_payload += newly
        self._fast_retx_check(pkt)
        info = AckInfo(
            self.sim.now, delay, pkt.ecn_echo, newly, seq, pkt.int_hops, cum_seq=pkt.ack_seq
        )
        self.cc.on_ack(info)
        tel = self.telemetry
        if tel.enabled:
            tel.cwnd_update(self.sim.now, self.flow.flow_id, self.cc.cwnd, delay)
        insp = self.inspector
        if insp.enabled:
            insp.ack(self.sim.now, self.flow.flow_id, newly)
        if self.acked_count == self.n_packets:
            self._finish()
            return
        self._arm_rto()
        self.try_send()
        aud = self.audit
        if aud.enabled:
            aud.sender_event(self.sim.now, self)

    def _fast_retx_check(self, pkt: Packet) -> None:
        cum = pkt.ack_seq
        if cum > self._cum_watch:
            self._cum_watch = cum
            self._dup = 0
            return
        if (
            cum == self._cum_watch
            and pkt.seq > cum
            and cum < self.n_packets
            and self.sent[cum]
            and not self.acked[cum]
        ):
            self._dup += 1
            if self._dup == _DUP_THRESH:
                self._queue_retx(cum)

    def _queue_retx(self, seq: int) -> None:
        if seq in self._retx_pending or self.acked[seq]:
            return
        self._retx_pending.add(seq)
        self._retx_queue.append(seq)

    # ------------------------------------------------------------------
    # RTO (lazy re-arm: the timer fires, checks recent activity, and only
    # acts when the flow has really been silent for a full RTO — this avoids
    # a cancel+reschedule pair of heap operations on every ACK)
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        self._last_activity = self.sim.now
        if self._rto_ev is None:
            self._rto_ev = self.sim.after(self.rto_ns, self._on_rto)

    def _disarm_rto_if_idle(self) -> None:
        # a queued retransmit with zero inflight still needs the timer: with
        # it disarmed the retx would sit until unrelated traffic kicked
        # try_send, stalling the flow (see tests/test_audit.py)
        if (
            self.inflight_bytes == 0
            and not self.probe_outstanding
            and not self._retx_queue
            and self._rto_ev is not None
        ):
            self._rto_ev.cancel()
            self._rto_ev = None

    def _on_rto(self) -> None:
        self._rto_ev = None
        if self.completed:
            return
        if self.fluid_held:
            # parked for a fluid epoch: the fluid model is delivering our
            # bytes (it refreshes _last_activity); check back in an RTO
            self._rto_ev = self.sim.after(self.rto_ns, self._on_rto)
            return
        since = self.sim.now - self._last_activity
        if since < self.rto_ns:
            self._rto_ev = self.sim.after(self.rto_ns - since, self._on_rto)
            return
        if self.probe_outstanding:
            # the probe died on the wire; resend it, but don't let it shadow
            # data-loss recovery below — a blackhole that ate the probe ate
            # the in-flight data too, and waiting another full RTO to notice
            # doubles the outage
            self.probe_outstanding = False
            self._send_probe()
            if self.inflight_bytes == 0:
                return
        if self.inflight_bytes == 0 and not self.stopped:
            # nothing outstanding: just resume sending
            self.try_send()
            return
        # retransmit the lowest sent-but-unacked packet
        while self._retx_scan < self.n_packets and self.acked[self._retx_scan]:
            self._retx_scan += 1
        if self._retx_scan < self.n_packets and self.sent[self._retx_scan]:
            self.cc.on_timeout()
            # go-back-N: a full RTO of silence means the pipe is dead, so
            # everything sent-but-unacked is presumed lost.  Release the
            # window those bytes were holding and queue them all — otherwise
            # each lost packet would cost its own RTO (one retransmit per
            # timeout with the rest still pinning cwnd), turning a short
            # blackhole into milliseconds of head-of-line stall.
            for seq in range(self._retx_scan, self.next_new_seq):
                if self.sent[seq] and not self.acked[seq]:
                    self.sent[seq] = 0
                    self.inflight_bytes -= self.payload_of(seq)
                    self._queue_retx(seq)
            if not self.stopped:
                self._send_seq_force(self._retx_scan)
                self.try_send()
        self._arm_rto()
        aud = self.audit
        if aud.enabled:
            aud.sender_event(self.sim.now, self)

    def _send_seq_force(self, seq: int) -> None:
        """Retransmit immediately, bypassing the window check."""
        if self._retx_queue and seq in self._retx_pending:
            # move it to the front so _send_seq pops it
            if self._retx_queue[0] != seq:
                self._retx_queue.remove(seq)
                self._retx_queue.appendleft(seq)
            self._send_seq(seq)

    # ------------------------------------------------------------------
    # fluid fast-path hooks (repro.fluid.hybrid)
    # ------------------------------------------------------------------
    def fluid_hold(self) -> None:
        """Park the sender for a fluid epoch.

        Unlike :meth:`stop_sending` this does not represent a CC decision:
        window and PrioPlus state are left untouched, and in-flight packets
        keep draining (the driver waits for ``inflight_bytes == 0``).
        """
        self.fluid_held = True
        if self._pace_ev is not None:
            self._pace_ev.cancel()
            self._pace_ev = None

    def fluid_release(self) -> None:
        """Resume packet-mode sending at a fluid→packet handoff."""
        self.fluid_held = False
        if not self.completed and not self.stopped:
            self.try_send()

    def fluid_advance(self, payload_budget: float, now: int) -> int:
        """Credit whole packets as sent-and-acked in one bulk step.

        Called by the fluid driver at each segment boundary while the
        network is empty and this sender is held: sequence state has no
        holes, so delivery is a contiguous slice extension on both
        endpoints.  Returns the payload bytes consumed (whole packets
        only — the fractional remainder stays with the driver).  Handles
        flow completion exactly like the packet path (receiver completion
        callback first, then sender finish).
        """
        a = self.next_new_seq
        n = self.n_packets
        if self.completed or a >= n:
            return 0
        last = n - 1
        b = min(last, a + int(payload_budget // self.mtu))
        consumed = (b - a) * self.mtu
        if b == last and payload_budget - consumed >= self._last_payload:
            consumed += self._last_payload
            b += 1
        if b == a:
            return 0
        ones = b"\x01" * (b - a)
        self.sent[a:b] = ones
        self.acked[a:b] = ones
        self.acked_count += b - a
        self.acked_payload += consumed
        self.next_new_seq = b
        self._cum_watch = b
        self._retx_scan = max(self._retx_scan, a)
        self._last_activity = now
        rcv = self.receiver
        rcv.received[a:b] = ones
        rcv.rx_count += b - a
        rcv.cum_seq = b
        if self.acked_count == n:
            flow = self.flow
            if flow.completion_ns is None:
                flow.completion_ns = now
                if rcv.on_complete is not None:
                    rcv.on_complete(flow)
            self._finish()
        return consumed

    # ------------------------------------------------------------------
    # PrioPlus hooks
    # ------------------------------------------------------------------
    def stop_sending(self) -> None:
        """Halt data transmission (in-flight packets keep draining)."""
        self.stopped = True
        if self._pace_ev is not None:
            self._pace_ev.cancel()
            self._pace_ev = None

    def resume_sending(self) -> None:
        self.stopped = False
        if not self.completed:
            self.try_send()

    def send_probe_after(self, delay_ns: int) -> None:
        """Schedule a single probe packet (replacing any pending one)."""
        if self._probe_ev is not None:
            self._probe_ev.cancel()
        self._probe_ev = self.sim.after(max(0, int(delay_ns)), self._send_probe)

    def _send_probe(self) -> None:
        self._probe_ev = None
        if self.completed:
            return
        pkt = PACKET_POOL.acquire(
            PROBE,
            MIN_PACKET_BYTES,
            src=self.flow.src.node_id,
            dst=self.flow.dst.node_id,
            flow_id=self.flow.flow_id,
            seq=0,
            priority=self.flow.priority,
            send_ts=self.sim.now,
        )
        pkt.local_prio = self.flow.src.local_data_queue(self.flow.vpriority)
        self.probe_outstanding = True
        self.flow.probes_sent += 1
        tel = self.telemetry
        if tel.enabled:
            tel.probe(self.sim.now, self.flow.flow_id, "send")
        insp = self.inspector
        if insp.enabled:
            insp.probe(self.sim.now, self.flow.flow_id, "send")
        trc = self.tracer
        if trc.enabled:
            trc.maybe_start(pkt, self.sim.now)
        self.flow.src.send(pkt)
        self._arm_rto()

    # ------------------------------------------------------------------
    @property
    def snd_nxt(self) -> int:
        """Next new packet index (Algorithm 1's sndNxt, packet-granular)."""
        return self.next_new_seq

    @property
    def remaining_bytes(self) -> int:
        return self.flow.size_bytes - self.acked_payload
