"""Coflow scheduling layer: size-based grouping and CCT tracking."""

from .scheduler import CoflowTracker, assign_coflow_groups, log_boundaries, size_group

__all__ = ["CoflowTracker", "assign_coflow_groups", "log_boundaries", "size_group"]
