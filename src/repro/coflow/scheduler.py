"""Coflow priority grouping and CCT accounting (§6.2).

The paper approximates clairvoyant coflow schedulers (Varys/Sincronia-style)
by sorting coflows into ``n_groups`` size classes — smaller total size gets
*higher* priority — and letting the priority mechanism under test (physical
queues or PrioPlus channels) enforce the ordering.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..transport.flow import Flow
from ..workloads.coflow_trace import CoflowSpec

__all__ = ["size_group", "assign_coflow_groups", "CoflowTracker"]


def size_group(size_bytes: int, boundaries: Sequence[int]) -> int:
    """Index of the first boundary >= size (0 = smallest class)."""
    for i, b in enumerate(boundaries):
        if size_bytes <= b:
            return i
    return len(boundaries)


def log_boundaries(sizes: Sequence[int], n_groups: int) -> List[int]:
    """Log-spaced group boundaries spanning the observed size range."""
    if n_groups < 1:
        raise ValueError("need at least one group")
    if not sizes:
        raise ValueError("no sizes to classify")
    lo, hi = max(1, min(sizes)), max(sizes)
    if lo >= hi or n_groups == 1:
        return []
    ratio = (hi / lo) ** (1.0 / n_groups)
    return [int(lo * ratio ** (i + 1)) for i in range(n_groups - 1)]


def assign_coflow_groups(coflows: Iterable[CoflowSpec], n_groups: int) -> Dict[int, int]:
    """coflow_id -> priority group (0 = highest priority = smallest size)."""
    coflows = list(coflows)
    sizes = [c.total_bytes for c in coflows]
    boundaries = log_boundaries(sizes, n_groups)
    return {c.coflow_id: size_group(c.total_bytes, boundaries) for c in coflows}


class CoflowTracker:
    """Collects per-coflow completion times as member flows finish."""

    def __init__(self):
        self._start: Dict[int, int] = {}
        self._pending: Dict[int, int] = {}
        self._done_at: Dict[int, int] = {}

    def register(self, coflow_id: int, start_ns: int, n_flows: int) -> None:
        self._start[coflow_id] = start_ns
        self._pending[coflow_id] = n_flows

    def on_flow_done(self, flow: Flow) -> None:
        tag = flow.tag
        if not (isinstance(tag, tuple) and len(tag) >= 2 and tag[0] == "coflow"):
            return
        cid = tag[1]
        if cid not in self._pending:
            return
        self._pending[cid] -= 1
        if self._pending[cid] == 0:
            self._done_at[cid] = flow.completion_ns

    def cct_ns(self, coflow_id: int) -> int:
        if coflow_id not in self._done_at:
            raise RuntimeError(f"coflow {coflow_id} has not completed")
        return self._done_at[coflow_id] - self._start[coflow_id]

    def completed_ids(self) -> List[int]:
        return sorted(self._done_at)

    def all_ccts(self) -> Dict[int, int]:
        return {cid: self.cct_ns(cid) for cid in self._done_at}
