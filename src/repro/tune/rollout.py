"""Vectorized candidate evaluation: serial in-process or over a WorkerFleet.

One candidate evaluation = one :class:`~repro.experiments.common.Point` of
:class:`TuneEvalExperiment`, so fleet rollouts reuse the runner's persistent
crash-tolerant pool (:class:`~repro.runner.scheduler.WorkerFleet`) and its
retry machinery unchanged.  Results are consumed in submission order and
:func:`~repro.tune.channel_env.evaluate_candidate` is a pure function of
its JSON arguments, so ``jobs=1`` and fleet rollouts are bit-identical
(pinned by ``tests/test_tune_optim.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..experiments.common import Experiment, Point
from .channel_env import evaluate_candidate

__all__ = ["TuneEvalExperiment", "RolloutBackend"]


class TuneEvalExperiment(Experiment):
    """One channel-placement evaluation per point (the fleet work unit).

    Point configs carry the full ``(spec, theta)`` pair, making each point
    self-describing and content-addressable; the experiment instance itself
    is stateless beyond the spec and pickles cheaply.
    """

    name = "tune_eval"
    description = "single PrioPlus channel-placement evaluation (repro.tune)"

    def __init__(self, spec_dict: dict):
        self.spec_dict = dict(spec_dict)

    def points(self) -> List[Point]:
        return []  # points are minted per generation by the search loop

    def point_for(self, theta: Sequence[float], generation: int, index: int) -> Point:
        return Point(
            f"g{generation}c{index}",
            {"spec": self.spec_dict, "theta": [float(v) for v in theta]},
            seed=int(self.spec_dict.get("seed", 0)),
        )

    def run_point(self, point: Point) -> dict:
        return evaluate_candidate(point.config["spec"], point.config["theta"])


class RolloutBackend:
    """Evaluates one generation of thetas; owns an optional WorkerFleet.

    ``jobs=1`` evaluates in-process.  ``jobs>1`` lazily spins up a
    :class:`WorkerFleet` (or uses a caller-provided one, e.g. the serve
    daemon's warm fleet) and fans the generation out, preserving candidate
    order.
    """

    def __init__(self, spec_dict: dict, jobs: int = 1, fleet=None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.exp = TuneEvalExperiment(spec_dict)
        self.jobs = jobs
        self._fleet = fleet
        self._owns_fleet = False

    def _ensure_fleet(self):
        if self._fleet is None:
            from ..runner.scheduler import WorkerFleet

            self._fleet = WorkerFleet(self.jobs)
            self._owns_fleet = True
        return self._fleet

    def evaluate(self, thetas: Sequence[Sequence[float]], generation: int) -> List[dict]:
        points = [self.exp.point_for(t, generation, i) for i, t in enumerate(thetas)]
        if self.jobs == 1 and self._fleet is None:
            return [self.exp.run_point(p) for p in points]
        fleet = self._ensure_fleet()
        futures = [fleet.submit(self.exp, p) for p in points]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._owns_fleet and self._fleet is not None:
            self._fleet.shutdown()
            self._fleet = None
            self._owns_fleet = False

    def __enter__(self) -> "RolloutBackend":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
