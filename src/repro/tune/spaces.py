"""Minimal stdlib space descriptions for :mod:`repro.tune`.

Gym-style environments describe their observation/action interfaces with
*spaces*.  The real ``gymnasium`` package is an optional extra (like numpy
for :mod:`repro.fluid`), so the core carries its own tiny, dependency-free
space classes with the same three operations everything here needs:
``contains``, ``sample`` and ``clip``.  The gymnasium adapter in
:mod:`repro.tune.env` converts these to ``gymnasium.spaces`` objects when
the package is present.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

__all__ = ["BoxSpace", "DictSpace"]


class BoxSpace:
    """A bounded box in R^n: per-dimension ``[low_i, high_i]`` intervals."""

    __slots__ = ("low", "high")

    def __init__(self, low: Sequence[float], high: Sequence[float]):
        if len(low) != len(high):
            raise ValueError(f"low has {len(low)} dims but high has {len(high)}")
        for i, (lo, hi) in enumerate(zip(low, high)):
            if lo > hi:
                raise ValueError(f"dimension {i}: low {lo} > high {hi}")
        self.low = [float(x) for x in low]
        self.high = [float(x) for x in high]

    @classmethod
    def scalar_bounds(cls, low: float, high: float, n: int) -> "BoxSpace":
        return cls([low] * n, [high] * n)

    @property
    def shape(self):
        return (len(self.low),)

    def contains(self, x: Sequence[float]) -> bool:
        if len(x) != len(self.low):
            return False
        return all(lo <= v <= hi for v, lo, hi in zip(x, self.low, self.high))

    def clip(self, x: Sequence[float]) -> List[float]:
        return [
            min(max(float(v), lo), hi)
            for v, lo, hi in zip(x, self.low, self.high)
        ]

    def sample(self, rng: random.Random) -> List[float]:
        return [rng.uniform(lo, hi) for lo, hi in zip(self.low, self.high)]

    def __repr__(self) -> str:  # pragma: no cover
        return f"BoxSpace(n={len(self.low)})"


class DictSpace:
    """Named sub-spaces; observations/actions are plain dicts of lists."""

    __slots__ = ("spaces",)

    def __init__(self, spaces: Dict[str, BoxSpace]):
        self.spaces = dict(spaces)

    def contains(self, x: dict) -> bool:
        if set(x) != set(self.spaces):
            return False
        return all(space.contains(x[name]) for name, space in self.spaces.items())

    def sample(self, rng: random.Random) -> dict:
        return {name: space.sample(rng) for name, space in self.spaces.items()}

    def __repr__(self) -> str:  # pragma: no cover
        return f"DictSpace({sorted(self.spaces)})"
