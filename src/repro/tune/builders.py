"""Ready-made :class:`~repro.tune.env.World` builders for :class:`CCEnv`.

Any deterministic zero-argument callable returning ``(sim, net, flows,
senders)`` works as a builder; these cover the common cases so tests, the
bench and quick experiments don't each reinvent a topology.
"""

from __future__ import annotations

import functools
from typing import Optional

from ..core.channels import ChannelConfig
from ..core.prioplus import PrioPlusCC
from ..cc.swift import Swift, SwiftParams
from ..sim.engine import Simulator
from ..sim.switch import SwitchConfig
from ..topology import star
from ..transport.flow import Flow
from ..transport.sender import FlowSender
from .env import World

__all__ = ["star_world", "star_builder"]


def star_world(
    n_flows: int = 4,
    kb: int = 60,
    seed: int = 1,
    rate_bps: float = 10e9,
    prioplus: bool = False,
    channels: Optional[ChannelConfig] = None,
) -> World:
    """N Swift flows through one bottleneck port; staggered virtual priorities.

    With ``prioplus=True`` each flow's Swift is wrapped in
    :class:`~repro.core.prioplus.PrioPlusCC` on the flow's virtual priority
    (cycling through ``channels.n_priorities``), so the env's
    per-vpriority occupancy observations and channel effects are live.
    """
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=4 * 1024 * 1024)
    net, hosts, recv = star(
        sim, n_flows, rate_bps=rate_bps, link_delay_ns=500, switch_cfg=cfg
    )
    channels = channels or ChannelConfig(n_priorities=max(2, min(n_flows, 8)))
    flows, senders = [], []
    for i in range(n_flows):
        vprio = 1 + i % channels.n_priorities if prioplus else i % 2
        flow = Flow(i + 1, hosts[i], recv, kb * 1000 + i, vpriority=vprio)
        cc = Swift(SwiftParams(target_scaling=False))
        if prioplus:
            cc = PrioPlusCC(cc, vpriority=vprio, channels=channels)
        senders.append(FlowSender(sim, net, flow, cc))
        flows.append(flow)
    return World(sim, net, flows, senders)


def star_builder(**kwargs):
    """Builder factory: ``CCEnv(star_builder(n_flows=8, seed=3), ...)``."""
    return functools.partial(star_world, **kwargs)
