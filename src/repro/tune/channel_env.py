"""Channel placement as a black-box search problem.

The paper fixes PrioPlus's delay channels uniformly: ``D_target^i =
BaseRtt + i*(A+B)``, ``D_limit^i = D_target^i + A/2 + B`` with hand-picked
``A = 3.2 µs``, ``B = 0.8 µs`` (§4.1).  Here the placement itself is the
decision variable.

**Parameterisation.**  A candidate is ``theta = [gap_1, width_1, ...,
gap_n, width_n]`` (ns): ``target_i = limit_{i-1} + gap_i`` and
``limit_i = target_i + width_i`` with ``limit_0 = 0``.  Any theta inside
the per-dimension bounds maps to a *valid* ordered non-overlapping band
list — the search space has no infeasible region, so optimizers never
waste evaluations on rejected configs.  The paper default is itself a
theta (``gap_1 = A+B``, ``width = A/2+B``, ``gap_{i>1} = A/2``), which
search loops use as the incumbent seed.

**Evaluation.**  :func:`evaluate_candidate` is a module-level pure
function of ``(spec_dict, theta)`` — picklable, so fleet workers evaluate
candidates bit-identically to the serial path.  Workloads:

* ``flowsched_micro`` — tiny fig11-style WebSearch run (~1 s/eval), the
  CI smoke workload; utility = -mean FCT (µs).
* ``flowsched`` — a fuller fig11-style run; utility = -mean FCT (µs).
* ``fault_flap`` — the spine-flap fault scenario; utility =
  high-priority goodput retained during the fault (Gbit/s).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.channels import PAPER_A_NS, PAPER_B_NS, ChannelConfig
from .spaces import BoxSpace

__all__ = [
    "TuneSpec",
    "WORKLOADS",
    "make_spec",
    "default_theta",
    "theta_to_bands",
    "theta_to_channels",
    "evaluate_candidate",
    "ChannelTuningEnv",
]

#: per-dimension bounds (ns): inter-channel gap and channel width
GAP_MIN_NS, GAP_MAX_NS = 200, 16_000
WIDTH_MIN_NS, WIDTH_MAX_NS = 200, 12_000


class TuneSpec:
    """What to tune: workload, channel count, evaluation scale, seed.

    JSON round-trips through :meth:`to_dict`/:meth:`from_dict` so specs
    travel inside experiment Point configs and search checkpoints.
    """

    __slots__ = ("workload", "n_priorities", "seed", "quick")

    def __init__(self, workload: str, n_priorities: int, seed: int = 0, quick: bool = False):
        if workload not in WORKLOADS:
            raise ValueError(f"unknown workload {workload!r}; choose from {sorted(WORKLOADS)}")
        if n_priorities < 1:
            raise ValueError("need at least one priority")
        self.workload = workload
        self.n_priorities = n_priorities
        self.seed = seed
        self.quick = quick

    def space(self) -> BoxSpace:
        low = [GAP_MIN_NS, WIDTH_MIN_NS] * self.n_priorities
        high = [GAP_MAX_NS, WIDTH_MAX_NS] * self.n_priorities
        return BoxSpace(low, high)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "n_priorities": self.n_priorities,
            "seed": self.seed,
            "quick": self.quick,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TuneSpec":
        return cls(
            data["workload"],
            data["n_priorities"],
            seed=data.get("seed", 0),
            quick=data.get("quick", False),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TuneSpec({self.workload!r}, n={self.n_priorities}, "
            f"seed={self.seed}, quick={self.quick})"
        )


def make_spec(
    workload: str,
    n_priorities: Optional[int] = None,
    seed: int = 0,
    quick: bool = False,
) -> TuneSpec:
    """Spec with the workload's natural channel count when not given."""
    if n_priorities is None:
        n_priorities = WORKLOADS[workload]["n_priorities"]
    return TuneSpec(workload, n_priorities, seed=seed, quick=quick)


def default_theta(n_priorities: int) -> List[float]:
    """The paper's uniform placement expressed as a theta vector."""
    pitch = PAPER_A_NS + PAPER_B_NS  # 4 µs
    width = PAPER_A_NS // 2 + PAPER_B_NS  # 2.4 µs
    theta: List[float] = [float(pitch), float(width)]
    for _ in range(n_priorities - 1):
        theta.extend([float(pitch - width), float(width)])
    return theta


def theta_to_bands(theta: Sequence[float]) -> List[Tuple[int, int]]:
    """Decode theta into ordered ``(target, limit)`` offset pairs.

    Values are clipped into the per-dimension bounds first, so any real
    vector (e.g. a Gaussian CEM sample) decodes to a valid placement.
    """
    if len(theta) % 2 != 0 or not theta:
        raise ValueError(f"theta must be [gap, width] pairs, got {len(theta)} values")
    bands: List[Tuple[int, int]] = []
    limit = 0
    for i in range(0, len(theta), 2):
        gap = int(round(min(max(theta[i], GAP_MIN_NS), GAP_MAX_NS)))
        width = int(round(min(max(theta[i + 1], WIDTH_MIN_NS), WIDTH_MAX_NS)))
        target = limit + gap
        limit = target + width
        bands.append((target, limit))
    return bands


def theta_to_channels(theta: Sequence[float], noise_ns: int = PAPER_B_NS) -> ChannelConfig:
    return ChannelConfig.from_bands(theta_to_bands(theta), noise_ns=noise_ns)


# ----------------------------------------------------------------------
# workload evaluators (module-level and pure: picklable for fleet workers)
# ----------------------------------------------------------------------
def _eval_flowsched(spec: dict, channels: ChannelConfig, scale: dict) -> dict:
    from ..experiments.common import Mode
    from ..experiments.flowsched import FlowSchedConfig, run_flowsched

    cfg = FlowSchedConfig(
        rate_bps=scale["rate_bps"],
        duration_ns=scale["duration_ns"],
        size_scale=scale["size_scale"],
        seed=spec.get("seed", 0) + 42,
        channels=channels,
    )
    res = run_flowsched(Mode.PRIOPLUS, spec["n_priorities"], cfg)
    fct = res.get("fct", {}).get("all")
    if not fct or not fct["count"]:
        return {"utility": float("-inf"), "metrics": {"n_done": res.get("n_done", 0)}}
    return {
        "utility": -fct["mean_us"],
        "metrics": {
            "mean_fct_us": fct["mean_us"],
            "p99_fct_us": fct["p99_us"],
            "n_done": res["n_done"],
            "all_done": res["all_done"],
        },
    }


def _eval_flowsched_micro(spec: dict, channels: ChannelConfig) -> dict:
    return _eval_flowsched(
        spec, channels, {"rate_bps": 40e9, "duration_ns": 200_000, "size_scale": 0.05}
    )


def _eval_flowsched_full(spec: dict, channels: ChannelConfig) -> dict:
    scale = (
        {"rate_bps": 40e9, "duration_ns": 200_000, "size_scale": 0.05}
        if spec.get("quick")
        else {"rate_bps": 10e9, "duration_ns": 1_000_000, "size_scale": 0.1}
    )
    return _eval_flowsched(spec, channels, scale)


def _eval_fault_flap(spec: dict, channels: ChannelConfig) -> dict:
    from ..experiments.common import Mode
    from ..experiments.fault_experiments import run_fault_flap

    res = run_fault_flap(
        Mode.PRIOPLUS,
        rate=10e9,
        flaps=1,
        seed=spec.get("seed", 0) + 1,
        channels=channels,
    )
    during = res["rates"]["during"]["high"]
    return {
        "utility": during / 1e9,
        "metrics": {
            "high_during_gbps": during / 1e9,
            "high_post_gbps": res["rates"]["post"]["high"] / 1e9,
            "low_during_gbps": res["rates"]["during"]["low"] / 1e9,
        },
    }


#: workload name -> {evaluator, natural channel count}
WORKLOADS: Dict[str, dict] = {
    "flowsched_micro": {"fn": _eval_flowsched_micro, "n_priorities": 4},
    "flowsched": {"fn": _eval_flowsched_full, "n_priorities": 4},
    "fault_flap": {"fn": _eval_fault_flap, "n_priorities": 2},
}


def evaluate_candidate(spec_dict: dict, theta: Sequence[float]) -> dict:
    """Score one placement: ``{"utility", "metrics", "bands"}`` (higher is better).

    Pure function of its arguments (all JSON-serialisable), evaluated
    identically in-process and in fleet workers — the serial-vs-fleet
    determinism test in ``tests/test_tune_optim.py`` relies on this.
    """
    workload = WORKLOADS[spec_dict["workload"]]
    channels = theta_to_channels(theta)
    out = workload["fn"](spec_dict, channels)
    out["bands"] = channels.bands()
    return out


class ChannelTuningEnv:
    """Gym-style view of the search problem: one episode = one evaluation.

    ``reset()`` returns the incumbent (paper-default) theta as the
    observation; ``step(theta)`` evaluates the candidate and terminates
    with ``reward = utility``.  This makes the channel tuner pluggable
    into any bandit/RL harness, while :mod:`repro.tune.search` drives the
    same evaluator directly for CEM/random search.
    """

    def __init__(self, spec: TuneSpec):
        self.spec = spec
        self.space = spec.space()
        self._last = None

    def reset(self, *, seed=None, options=None):
        obs = default_theta(self.spec.n_priorities)
        return obs, {"spec": self.spec.to_dict()}

    def step(self, theta: Sequence[float]):
        theta = self.space.clip(theta)
        result = evaluate_candidate(self.spec.to_dict(), theta)
        self._last = result
        return list(theta), result["utility"], True, False, result
