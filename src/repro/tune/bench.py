"""``BENCH_tune.json``: env stepping rate and serial-vs-fleet rollout throughput.

Two numbers matter for tuning/RL practicality:

* **env steps/sec** — how fast :class:`CCEnv` turns agent decisions around
  (snapshot-backed resets included), serial in-process;
* **rollout evals/sec** — candidate evaluations per second, serial vs
  fanned over a :class:`~repro.runner.scheduler.WorkerFleet`, which bounds
  search wall time.

Run via ``python -m repro tune --bench --out BENCH_tune.json`` (CI uploads
the artifact from the ``tune-smoke`` job).
"""

from __future__ import annotations

import time
from typing import Optional

from .builders import star_builder
from .channel_env import default_theta, make_spec
from .env import CCEnv
from .optim import RandomSearch
from .rollout import RolloutBackend

__all__ = ["run_tune_bench"]


def _bench_env(n_episodes: int) -> dict:
    env = CCEnv(
        star_builder(n_flows=4, kb=40, seed=3, prioplus=True), stride_ns=20_000
    )
    env.reset()  # builds + snapshots outside the timed region
    steps = 0
    sim_ns = 0
    t0 = time.perf_counter()
    for _ in range(n_episodes):
        env.reset()
        terminated = truncated = False
        while not (terminated or truncated):
            _obs, _r, terminated, truncated, info = env.step()
            steps += 1
        sim_ns += info["t_ns"]
    wall = time.perf_counter() - t0
    return {
        "episodes": n_episodes,
        "steps": steps,
        "wall_s": round(wall, 4),
        "steps_per_sec": round(steps / wall, 1),
        "sim_ns_per_wall_s": round(sim_ns / wall, 1),
    }


def _bench_rollout(spec, n_candidates: int, jobs: int) -> dict:
    opt = RandomSearch(spec.space(), seed=11, pop_size=n_candidates,
                       init_theta=default_theta(spec.n_priorities))
    pop = opt.ask()
    with RolloutBackend(spec.to_dict(), jobs=jobs) as backend:
        if jobs > 1:
            backend.evaluate(pop[:1], 0)  # spin the pool up outside the timing
        t0 = time.perf_counter()
        backend.evaluate(pop, 1)
        wall = time.perf_counter() - t0
    return {
        "candidates": n_candidates,
        "jobs": jobs,
        "wall_s": round(wall, 4),
        "evals_per_sec": round(n_candidates / wall, 3),
    }


def run_tune_bench(quick: bool = False, jobs: int = 2, log=None) -> dict:
    """Measure env and rollout throughput; returns the BENCH_tune payload."""
    say = log or (lambda msg: None)
    n_episodes = 3 if quick else 10
    n_candidates = 4 if quick else 8
    spec = make_spec("fault_flap", seed=0, quick=True)
    say(f"env: {n_episodes} episodes of the star world ...")
    env = _bench_env(n_episodes)
    say(f"env: {env['steps_per_sec']} steps/s")
    say(f"rollout: {n_candidates} candidates serial ...")
    serial = _bench_rollout(spec, n_candidates, jobs=1)
    say(f"rollout: {n_candidates} candidates over {jobs} workers ...")
    fleet = _bench_rollout(spec, n_candidates, jobs=jobs)
    speedup = round(fleet["evals_per_sec"] / serial["evals_per_sec"], 2)
    say(f"rollout: serial {serial['evals_per_sec']}/s, fleet {fleet['evals_per_sec']}/s "
        f"({speedup}x)")
    return {
        "bench": "tune",
        "quick": quick,
        "env": env,
        "rollout": {"serial": serial, "fleet": fleet, "speedup": speedup},
    }
