"""The checkpointed search loop tying spec + optimizer + rollouts together.

:func:`run_search` drives ask/tell generations until the evaluation budget
is spent, checkpointing the complete search state (optimizer distribution,
RNG, history, incumbent) to JSON after every generation — a killed search
resumes bit-identically from its checkpoint (pinned by
``tests/test_tune_optim.py``).

Generation 0 always evaluates the paper-default placement first (the
optimizer's ``init_theta`` incumbent), so the reported best can never be
worse than the default — the invariant the CI ``tune-smoke`` gate asserts.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Optional

from .channel_env import TuneSpec, default_theta, evaluate_candidate, theta_to_bands
from .optim import OPTIMIZERS
from .rollout import RolloutBackend

__all__ = ["run_search", "load_checkpoint"]


def _atomic_write_json(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    os.replace(tmp, path)


def load_checkpoint(path: str) -> Optional[dict]:
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def run_search(
    spec: TuneSpec,
    optimizer: str = "cem",
    budget: int = 24,
    pop_size: int = 6,
    seed: int = 0,
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
    resume: bool = True,
    fleet=None,
    log: Optional[Callable[[str], None]] = None,
) -> dict:
    """Tune channel placement for ``spec``; returns the tuned-vs-default report.

    ``budget`` counts candidate evaluations (generations are
    ``ceil(budget / pop_size)``).  ``jobs > 1`` fans each generation over a
    :class:`~repro.runner.scheduler.WorkerFleet`; ``fleet`` reuses an
    existing one (e.g. the serve daemon's).
    """
    if optimizer not in OPTIMIZERS:
        raise ValueError(f"unknown optimizer {optimizer!r}; choose from {sorted(OPTIMIZERS)}")
    say = log or (lambda msg: None)
    spec_dict = spec.to_dict()
    incumbent = default_theta(spec.n_priorities)

    ckpt = load_checkpoint(checkpoint_path) if (checkpoint_path and resume) else None
    if ckpt is not None:
        if ckpt["spec"] != spec_dict or ckpt["optimizer_state"]["optimizer"] != optimizer:
            raise ValueError(
                f"checkpoint {checkpoint_path} was written for spec "
                f"{ckpt['spec']} / optimizer {ckpt['optimizer_state']['optimizer']!r}; "
                f"delete it or match the arguments"
            )
        opt = OPTIMIZERS[optimizer].load(ckpt["optimizer_state"])
        history = ckpt["history"]
        default_record = ckpt["default"]
        say(f"resumed {optimizer} search at generation {opt.generation} "
            f"({opt.evaluations}/{budget} evaluations)")
    else:
        opt = OPTIMIZERS[optimizer](
            spec.space(), seed=seed, pop_size=pop_size, init_theta=incumbent
        )
        history = []
        default_record = None

    with RolloutBackend(spec_dict, jobs=jobs, fleet=fleet) as backend:
        while opt.evaluations < budget:
            generation = opt.generation
            pop = opt.ask()
            results = backend.evaluate(pop, generation)
            utilities = [r["utility"] for r in results]
            if generation == 0 and default_record is None:
                # ask() put the incumbent (paper default) at slot 0
                default_record = {
                    "theta": pop[0],
                    "utility": utilities[0],
                    "metrics": results[0]["metrics"],
                }
            opt.tell(pop, utilities)
            gen_best = max(range(len(pop)), key=lambda i: utilities[i])
            history.append(
                {
                    "generation": generation,
                    "utilities": utilities,
                    "gen_best_utility": utilities[gen_best],
                    "best_utility": opt.best_utility,
                }
            )
            say(
                f"gen {generation}: best {utilities[gen_best]:.4f}, "
                f"overall {opt.best_utility:.4f} "
                f"({opt.evaluations}/{budget} evaluations)"
            )
            if checkpoint_path:
                _atomic_write_json(
                    checkpoint_path,
                    {
                        "spec": spec_dict,
                        "budget": budget,
                        "seed": seed,
                        "optimizer_state": opt.state(),
                        "history": history,
                        "default": default_record,
                    },
                )

    if default_record is None:
        # zero-budget edge case: report the incumbent unevaluated
        default_record = {"theta": incumbent, "utility": None, "metrics": {}}
    best_theta = opt.best_theta if opt.best_theta is not None else incumbent
    best_eval = evaluate_candidate(spec_dict, best_theta)
    default_utility = default_record["utility"]
    improved = (
        default_utility is not None and best_eval["utility"] > default_utility
    )
    return {
        "spec": spec_dict,
        "optimizer": optimizer,
        "seed": seed,
        "pop_size": pop_size,
        "budget": budget,
        "evaluations": opt.evaluations,
        "generations": opt.generation,
        "default": dict(default_record, bands=theta_to_bands(default_record["theta"])),
        "best": {
            "theta": best_theta,
            "utility": best_eval["utility"],
            "metrics": best_eval["metrics"],
            "bands": best_eval["bands"],
        },
        "improved": improved,
        "improvement": (
            best_eval["utility"] - default_utility if default_utility is not None else None
        ),
        "history": history,
    }
