"""``python -m repro tune`` — the channel-tuning command line.

Three modes:

* **search** (default): one deterministic CEM/random search over a named
  workload, optionally fleet-parallel and checkpointed::

      python -m repro tune --workload flowsched_micro --budget 24 --pop 6
      python -m repro tune --workload fault_flap --optimizer random --jobs 4
      python -m repro tune --workload flowsched --checkpoint ck.json --out tuned.json

* **experiment** (``--experiment``): the registered ``tune_channels``
  experiment through :func:`repro.api.run` — cacheable, servable::

      python -m repro tune --experiment --quick
      python -m repro tune --experiment --server /tmp/repro.sock

* **bench** (``--bench``): emit ``BENCH_tune.json`` (env steps/sec,
  serial-vs-fleet rollout throughput)::

      python -m repro tune --bench --quick --out BENCH_tune.json
"""

from __future__ import annotations

import argparse
import json
import sys

from .channel_env import WORKLOADS, make_spec
from .optim import OPTIMIZERS

__all__ = ["tune_main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="Auto-tune PrioPlus [D_target, D_limit] delay channels (docs/TUNING.md).",
    )
    parser.add_argument(
        "--workload", default="flowsched_micro", choices=sorted(WORKLOADS),
        help="workload to tune for (default: flowsched_micro)",
    )
    parser.add_argument(
        "--optimizer", default="cem", choices=sorted(OPTIMIZERS),
        help="search algorithm (default: cem)",
    )
    parser.add_argument("--budget", type=int, default=24, metavar="N",
                        help="candidate evaluations (default: 24)")
    parser.add_argument("--pop", type=int, default=6, metavar="N",
                        help="population per generation (default: 6)")
    parser.add_argument("--n-priorities", type=int, default=None, metavar="N",
                        help="channel count (default: the workload's natural count)")
    parser.add_argument("--seed", type=int, default=0, help="search seed (default: 0)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fleet workers per generation (default: 1 = serial)")
    parser.add_argument("--checkpoint", metavar="FILE",
                        help="JSON search-state file; resumes if it exists")
    parser.add_argument("--out", metavar="FILE", help="write the result JSON here")
    parser.add_argument("--quick", action="store_true",
                        help="CI-scale evaluation of each candidate")
    parser.add_argument(
        "--assert-improves", action="store_true",
        help="exit 1 unless the tuned placement strictly beats the paper default",
    )
    parser.add_argument("--experiment", action="store_true",
                        help="run the registered tune_channels experiment instead")
    parser.add_argument("--server", metavar="ADDR",
                        help="with --experiment: run on a repro serve daemon")
    parser.add_argument("--bench", action="store_true",
                        help="measure env/rollout throughput (BENCH_tune.json)")
    return parser


def _emit(payload: dict, out: str | None) -> None:
    text = json.dumps(payload, indent=1, sort_keys=True)
    if out:
        with open(out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {out}", file=sys.stderr)
    else:
        print(text)


def tune_main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    say = lambda msg: print(msg, file=sys.stderr)  # noqa: E731

    if args.bench:
        from .bench import run_tune_bench

        payload = run_tune_bench(quick=args.quick, jobs=max(2, args.jobs), log=say)
        _emit(payload, args.out)
        return 0

    if args.experiment:
        from .. import api

        result = api.run(
            "tune_channels",
            quick=args.quick,
            jobs=1,
            server=args.server,
            progress=args.server is None,
        )
        _emit(result, args.out)
        if args.assert_improves and not result.get("verdict", False):
            say("FAIL: tuned placement did not beat the paper default on every workload")
            return 1
        return 0

    from .search import run_search

    spec = make_spec(
        args.workload, n_priorities=args.n_priorities, seed=args.seed, quick=args.quick
    )
    result = run_search(
        spec,
        optimizer=args.optimizer,
        budget=args.budget,
        pop_size=args.pop,
        seed=args.seed,
        jobs=args.jobs,
        checkpoint_path=args.checkpoint,
        log=say,
    )
    _emit(result, args.out)
    if args.assert_improves and not result["improved"]:
        say("FAIL: tuned placement did not beat the paper default "
            f"(default {result['default']['utility']}, best {result['best']['utility']})")
        return 1
    return 0
