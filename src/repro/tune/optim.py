"""Black-box optimizers for channel placement: CEM and random search.

Both speak ask/tell: ``ask()`` yields one generation of candidate thetas,
``tell(thetas, utilities)`` updates the search state (higher utility is
better).  Stdlib ``random.Random`` only, deterministically seeded — the
same seed replays the exact candidate sequence (pinned by
``tests/test_tune_optim.py``) — and the whole search state round-trips
through JSON (:meth:`state`/:meth:`load`) so searches checkpoint/resume
bit-identically.

When an ``init_theta`` incumbent is given (the paper-default placement),
generation 0 evaluates it first — the reported best can therefore never be
worse than the default, which the CI ``tune-smoke`` gate asserts.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Type

from .spaces import BoxSpace

__all__ = ["RandomSearch", "CEM", "OPTIMIZERS"]


def _rng_state_to_json(state) -> list:
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def _rng_state_from_json(state) -> tuple:
    version, internal, gauss_next = state
    return (version, tuple(internal), gauss_next)


class _Optimizer:
    """Shared ask/tell bookkeeping; subclasses implement the sampling."""

    name = "base"

    def __init__(
        self,
        space: BoxSpace,
        seed: int = 0,
        pop_size: int = 8,
        init_theta: Optional[Sequence[float]] = None,
    ):
        if pop_size < 2:
            raise ValueError("population size must be >= 2")
        self.space = space
        self.pop_size = pop_size
        self.rng = random.Random(seed)
        self.init_theta = list(init_theta) if init_theta is not None else None
        self.generation = 0
        self.evaluations = 0
        self.best_theta: Optional[List[float]] = None
        self.best_utility = float("-inf")

    # -- subclass hooks -------------------------------------------------
    def _sample(self) -> List[float]:
        raise NotImplementedError

    def _update(self, thetas: List[List[float]], utilities: List[float]) -> None:
        """Distribution update; default none (pure random search)."""

    # -- ask/tell -------------------------------------------------------
    def ask(self) -> List[List[float]]:
        pop = [self._sample() for _ in range(self.pop_size)]
        if self.generation == 0 and self.init_theta is not None:
            pop[0] = self.space.clip(self.init_theta)
        return pop

    def tell(self, thetas: List[List[float]], utilities: List[float]) -> None:
        if len(thetas) != len(utilities):
            raise ValueError("one utility per candidate")
        for theta, utility in zip(thetas, utilities):
            self.evaluations += 1
            if utility > self.best_utility:
                self.best_utility = utility
                self.best_theta = list(theta)
        self._update(thetas, utilities)
        self.generation += 1

    # -- checkpointing --------------------------------------------------
    def state(self) -> dict:
        return {
            "optimizer": self.name,
            "pop_size": self.pop_size,
            "space": {"low": self.space.low, "high": self.space.high},
            "rng": _rng_state_to_json(self.rng.getstate()),
            "init_theta": self.init_theta,
            "generation": self.generation,
            "evaluations": self.evaluations,
            "best_theta": self.best_theta,
            "best_utility": (
                self.best_utility if self.best_utility != float("-inf") else None
            ),
        }

    @classmethod
    def load(cls, state: dict) -> "_Optimizer":
        if state.get("optimizer") != cls.name:
            raise ValueError(
                f"checkpoint is for optimizer {state.get('optimizer')!r}, "
                f"not {cls.name!r}"
            )
        space = BoxSpace(state["space"]["low"], state["space"]["high"])
        opt = cls(space, pop_size=state["pop_size"], init_theta=state["init_theta"])
        opt._restore(state)
        return opt

    def _restore(self, state: dict) -> None:
        self.rng.setstate(_rng_state_from_json(state["rng"]))
        self.generation = state["generation"]
        self.evaluations = state["evaluations"]
        self.best_theta = state["best_theta"]
        self.best_utility = (
            state["best_utility"] if state["best_utility"] is not None else float("-inf")
        )


class RandomSearch(_Optimizer):
    """Uniform sampling over the box — the honest baseline optimizer."""

    name = "random"

    def _sample(self) -> List[float]:
        return self.space.sample(self.rng)


class CEM(_Optimizer):
    """Cross-entropy method: fit a diagonal Gaussian to the elite fraction.

    The sampling distribution starts at ``init_theta`` (or the box
    midpoint) with sigma = ``sigma_frac`` of each dimension's range, and
    contracts toward the elites each generation; a sigma floor of 1 % of
    the range keeps late generations exploring.
    """

    name = "cem"

    def __init__(
        self,
        space: BoxSpace,
        seed: int = 0,
        pop_size: int = 8,
        init_theta: Optional[Sequence[float]] = None,
        elite_frac: float = 0.3,
        sigma_frac: float = 0.25,
    ):
        super().__init__(space, seed=seed, pop_size=pop_size, init_theta=init_theta)
        self.elite_frac = elite_frac
        self.n_elite = max(2, int(round(elite_frac * pop_size)))
        ranges = [hi - lo for lo, hi in zip(space.low, space.high)]
        if init_theta is not None:
            self.mean = space.clip(init_theta)
        else:
            self.mean = [(lo + hi) / 2 for lo, hi in zip(space.low, space.high)]
        self.sigma = [sigma_frac * r for r in ranges]
        self._sigma_floor = [0.01 * r for r in ranges]

    def _sample(self) -> List[float]:
        return self.space.clip(
            [self.rng.gauss(m, s) for m, s in zip(self.mean, self.sigma)]
        )

    def _update(self, thetas: List[List[float]], utilities: List[float]) -> None:
        order = sorted(range(len(thetas)), key=lambda i: utilities[i], reverse=True)
        elites = [thetas[i] for i in order[: self.n_elite]]
        n = len(elites)
        self.mean = [sum(col) / n for col in zip(*elites)]
        self.sigma = [
            max(floor, (sum((x - m) ** 2 for x in col) / n) ** 0.5)
            for col, m, floor in zip(zip(*elites), self.mean, self._sigma_floor)
        ]

    def state(self) -> dict:
        out = super().state()
        out.update(
            {"elite_frac": self.elite_frac, "mean": self.mean, "sigma": self.sigma}
        )
        return out

    @classmethod
    def load(cls, state: dict) -> "CEM":
        if state.get("optimizer") != cls.name:
            raise ValueError(
                f"checkpoint is for optimizer {state.get('optimizer')!r}, not 'cem'"
            )
        space = BoxSpace(state["space"]["low"], state["space"]["high"])
        opt = cls(
            space,
            pop_size=state["pop_size"],
            init_theta=state["init_theta"],
            elite_frac=state["elite_frac"],
        )
        opt._restore(state)
        opt.mean = list(state["mean"])
        opt.sigma = list(state["sigma"])
        return opt


OPTIMIZERS: Dict[str, Type[_Optimizer]] = {
    RandomSearch.name: RandomSearch,
    CEM.name: CEM,
}
