"""Gym-style CC environment and black-box auto-tuning (ROADMAP item 3).

Three layers:

* :mod:`repro.tune.env` — :class:`CCEnv`, a gym-style environment stepping
  the DES between ACK batches / fixed strides, with snapshot-backed
  byte-identical ``reset()``, per-flow cwnd/rate actions through the
  ``cc.external`` hook, and goodput/FCT/fairness rewards.
* :mod:`repro.tune.channel_env` + :mod:`repro.tune.optim` — the channel
  tuner: PrioPlus ``[D_target, D_limit]`` placement as a black-box search
  problem (CEM / random search, stdlib RNG, deterministic).
* :mod:`repro.tune.search` + :mod:`repro.tune.rollout` — checkpointed
  search loops with serial or :class:`~repro.runner.scheduler.WorkerFleet`
  rollouts; surfaced as ``python -m repro tune`` and the registered
  ``tune_channels`` experiment.
"""

from .channel_env import (
    WORKLOADS,
    ChannelTuningEnv,
    TuneSpec,
    default_theta,
    evaluate_candidate,
    make_spec,
    theta_to_bands,
)
from .env import REWARDS, CCEnv, World, jain_index, make_gymnasium_env
from .builders import star_builder, star_world
from .optim import CEM, OPTIMIZERS, RandomSearch
from .search import run_search
from .spaces import BoxSpace, DictSpace

__all__ = [
    "CCEnv",
    "World",
    "REWARDS",
    "jain_index",
    "make_gymnasium_env",
    "BoxSpace",
    "DictSpace",
    "star_world",
    "star_builder",
    "TuneSpec",
    "WORKLOADS",
    "ChannelTuningEnv",
    "make_spec",
    "default_theta",
    "theta_to_bands",
    "evaluate_candidate",
    "CEM",
    "RandomSearch",
    "OPTIMIZERS",
    "run_search",
]
