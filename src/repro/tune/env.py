"""Gym-style congestion-control environment over the DES (ROADMAP item 3).

:class:`CCEnv` wraps a simulator world as an episodic environment with the
standard five-tuple step protocol (``obs, reward, terminated, truncated,
info``).  The pieces:

* **World**: a ``builder()`` callable constructs the episode's topology and
  flows and returns a :class:`World` (sim, network, flows, senders).  The
  first ``reset()`` builds once and captures a
  :class:`~repro.sim.snapshot.WorldSnapshot`; every reset materialises a
  fresh clone — byte-identical to a fresh build (pinned by
  ``tests/test_tune.py``) and far cheaper than rebuilding routes.
* **Stepping**: each ``step`` advances the DES either a fixed sim-time
  stride (``stride_ns``) or until ``ack_batch`` further ACKs have arrived
  at the senders, whichever the env was configured with.
* **Observations**: plain dicts of lists drawn live from the world —
  per-port backlog / PFC pause state, per-flow delay samples and window
  state, per-virtual-priority inflight occupancy, global drop/PFC
  counters.  Same series the telemetry sampler exports, read directly so
  worlds need no recorder hooks attached (see
  :class:`~repro.sim.snapshot.SnapshotHookError`).
* **Actions**: per-flow cwnd/rate overrides applied through the
  ``cc.external`` hook (:meth:`repro.cc.base.CongestionControl.external_override`).
* **Rewards**: goodput, negative-FCT, or fairness-weighted goodput
  utilities (:data:`REWARDS`).

``gymnasium`` is an optional extra (like numpy for ``repro[fluid]``):
:func:`make_gymnasium_env` returns a ``gymnasium.Env`` adapter when the
package is importable and raises a clear error otherwise.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from ..sim.snapshot import WorldSnapshot
from .spaces import BoxSpace

__all__ = ["World", "CCEnv", "REWARDS", "jain_index", "make_gymnasium_env"]


class World(NamedTuple):
    """Everything an episode needs, in snapshot-root order."""

    sim: object
    net: object
    flows: list
    senders: list


def jain_index(xs: Sequence[float]) -> float:
    """Jain's fairness index: 1 for equal shares, → 1/n as one share dominates."""
    xs = [x for x in xs if x > 0]
    if not xs:
        return 1.0
    s = sum(xs)
    return (s * s) / (len(xs) * sum(x * x for x in xs))


def _reward_goodput(env: "CCEnv", delta_acked: List[int], dt_ns: int) -> float:
    """Aggregate goodput over the step, in Gbit/s."""
    if dt_ns <= 0:
        return 0.0
    return sum(delta_acked) * 8.0 / dt_ns  # bytes/ns * 8 == Gbit/s


def _reward_neg_fct(env: "CCEnv", delta_acked: List[int], dt_ns: int) -> float:
    """-(unfinished flows x dt), in flow-microseconds.

    Summed over an episode this is minus the total flow-completion time of
    all flows (each flow contributes dt while unfinished), so maximising
    the return minimises mean FCT without waiting for episode end.
    """
    unfinished = sum(1 for f in env.world.flows if not f.done)
    return -unfinished * dt_ns / 1e3


def _reward_goodput_fairness(env: "CCEnv", delta_acked: List[int], dt_ns: int) -> float:
    """Goodput (Gbit/s) scaled by Jain fairness across active flows' shares."""
    return _reward_goodput(env, delta_acked, dt_ns) * jain_index(delta_acked)


#: name -> reward_fn(env, per-flow acked-byte deltas, dt_ns) -> float
REWARDS: Dict[str, Callable] = {
    "goodput": _reward_goodput,
    "neg_fct": _reward_neg_fct,
    "goodput_fairness": _reward_goodput_fairness,
}


class CCEnv:
    """Gym-style env: the DES advances between agent decisions.

    Parameters
    ----------
    builder:
        Zero-argument callable returning a :class:`World` (or a 4-tuple in
        the same order).  Must be deterministic for reproducible resets —
        seed its RNG from a constant or from ``builder_seed``-style closure
        state, not from wall clock.
    stride_ns / ack_batch:
        Exactly one stepping mode: advance a fixed sim-time stride, or run
        until ``ack_batch`` more ACKs have been counted across all senders
        (falling back to the next event horizon when the world goes idle).
    horizon_ns:
        Episode truncation bound on sim time (default 10 ms).
    reward:
        Key into :data:`REWARDS`, or a callable with the same signature.
    """

    metadata = {"render_modes": []}

    def __init__(
        self,
        builder: Callable[[], World],
        *,
        stride_ns: Optional[int] = None,
        ack_batch: Optional[int] = None,
        horizon_ns: int = 10_000_000,
        reward="goodput",
        allow_hooks: bool = False,
    ):
        if (stride_ns is None) == (ack_batch is None):
            raise ValueError("choose exactly one of stride_ns / ack_batch")
        if stride_ns is not None and stride_ns <= 0:
            raise ValueError("stride_ns must be positive")
        if ack_batch is not None and ack_batch <= 0:
            raise ValueError("ack_batch must be positive")
        self._builder = builder
        self.stride_ns = stride_ns
        self.ack_batch = ack_batch
        self.horizon_ns = horizon_ns
        self.allow_hooks = allow_hooks
        if callable(reward):
            self._reward_fn = reward
        else:
            try:
                self._reward_fn = REWARDS[reward]
            except KeyError:
                raise ValueError(
                    f"unknown reward {reward!r}; choose from {sorted(REWARDS)}"
                ) from None
        self._snapshot: Optional[WorldSnapshot] = None
        self.world: Optional[World] = None
        self._prev_acked: List[int] = []
        self._episode_steps = 0

    # ------------------------------------------------------------------
    # reset / step
    # ------------------------------------------------------------------
    def reset(self, *, seed=None, options=None):
        """Materialise a fresh world from the pristine snapshot.

        The first call builds the world once via ``builder`` and snapshots
        it; subsequent resets are a single deep copy.  ``seed`` is accepted
        for protocol compatibility but ignored: episode determinism comes
        from the builder, and byte-identical resets are the point.
        """
        if self._snapshot is None:
            built = self._builder()
            world = World(*built)
            self._snapshot = WorldSnapshot(
                world.sim,
                world.net,
                world.flows,
                world.senders,
                allow_hooks=self.allow_hooks,
            )
        self.world = World(*self._snapshot.materialize())
        self._prev_acked = [s.acked_payload for s in self.world.senders]
        self._episode_steps = 0
        return self._observe(), {"t_ns": self.world.sim.now}

    def step(self, action=None):
        if self.world is None:
            raise RuntimeError("call reset() before step()")
        world = self.world
        sim = world.sim
        if action:
            self._apply_action(action)
        t0 = sim.now
        acked0 = sum(s.acked_count for s in world.senders)
        if self.stride_ns is not None:
            sim.run(until=min(t0 + self.stride_ns, self.horizon_ns))
        else:
            # ACK-batch mode: drain events until enough ACKs (or idle/horizon).
            while sim.pending and sim.now < self.horizon_ns:
                nxt = sim.peek_time()
                if nxt is None or nxt > self.horizon_ns:
                    break
                sim.run(until=nxt)
                if sum(s.acked_count for s in world.senders) - acked0 >= self.ack_batch:
                    break
        dt_ns = sim.now - t0
        acked = [s.acked_payload for s in world.senders]
        delta = [a - p for a, p in zip(acked, self._prev_acked)]
        self._prev_acked = acked
        self._episode_steps += 1
        reward = self._reward_fn(self, delta, dt_ns)
        terminated = all(f.done for f in world.flows) or not sim.pending
        truncated = not terminated and sim.now >= self.horizon_ns
        info = {
            "t_ns": sim.now,
            "dt_ns": dt_ns,
            "step": self._episode_steps,
            "acked_delta_bytes": delta,
            "flows_done": sum(1 for f in world.flows if f.done),
        }
        return self._observe(), reward, terminated, truncated, info

    def close(self) -> None:
        self.world = None

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def _apply_action(self, action) -> None:
        """Apply per-flow overrides: ``{flow_index: {"cwnd_bytes"|"rate_bps": v}}``.

        A list aligned with ``world.senders`` (``None`` to skip a flow)
        works too.  Overrides go through ``cc.external_override`` and the
        sender is kicked so a grown window takes effect immediately rather
        than on the next ACK.
        """
        senders = self.world.senders
        if isinstance(action, dict):
            items = action.items()
        else:
            items = enumerate(action)
        for idx, override in items:
            if override is None:
                continue
            try:
                snd = senders[idx]
            except (IndexError, TypeError):
                raise ValueError(
                    f"action indexes flow {idx!r} but the world has "
                    f"{len(senders)} senders"
                ) from None
            unknown = set(override) - {"cwnd_bytes", "rate_bps"}
            if unknown:
                raise ValueError(
                    f"unknown override keys {sorted(unknown)} for flow {idx}; "
                    f"use cwnd_bytes and/or rate_bps"
                )
            snd.cc.external_override(
                cwnd_bytes=override.get("cwnd_bytes"),
                rate_bps=override.get("rate_bps"),
            )
            if not snd.completed and not snd.stopped and not snd.fluid_held:
                snd.try_send()

    def action_space_for(self, n_flows: Optional[int] = None) -> BoxSpace:
        """Per-flow cwnd bounds (bytes), from the live CCs' own clamps."""
        if self.world is None:
            self.reset()
        senders = self.world.senders if n_flows is None else self.world.senders[:n_flows]
        return BoxSpace(
            [s.cc.min_cwnd for s in senders],
            [s.cc.max_cwnd for s in senders],
        )

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def _ports(self):
        world = self.world
        for sw in world.net.switches:
            for port in sw.ports:
                yield port
        for host in world.net.hosts:
            if host.port is not None:
                yield host.port

    def _observe(self) -> dict:
        world = self.world
        net = world.net
        ports = list(self._ports())
        n_vprio = 1 + max((f.vpriority for f in world.flows), default=0)
        vprio_inflight = [0] * n_vprio
        for snd in world.senders:
            vprio_inflight[snd.flow.vpriority] += snd.inflight_bytes
        return {
            "t_ns": world.sim.now,
            "port_backlog_bytes": [p.total_bytes for p in ports],
            "port_paused": [int(any(p.paused)) for p in ports],
            "flow_delay_ns": [s.last_rtt for s in world.senders],
            "flow_cwnd_bytes": [s.cc.cwnd for s in world.senders],
            "flow_inflight_bytes": [s.inflight_bytes for s in world.senders],
            "flow_acked_bytes": [s.acked_payload for s in world.senders],
            "flow_done": [int(f.done) for f in world.flows],
            "vprio_inflight_bytes": vprio_inflight,
            "drops_total": net.total_drops(),
            "pfc_pauses_total": net.total_pfc_pauses(),
        }


# ----------------------------------------------------------------------
# optional gymnasium adapter
# ----------------------------------------------------------------------
def make_gymnasium_env(builder, **kwargs):
    """Wrap a :class:`CCEnv` as a ``gymnasium.Env`` (optional extra).

    Raises a clear error when gymnasium is not installed — the stdlib
    :class:`CCEnv` protocol is identical, so nothing in this repo needs
    the adapter; it exists for interop with external RL training stacks.
    """
    try:
        import gymnasium
    except ImportError:
        raise RuntimeError(
            "gymnasium is not installed; repro.tune's native CCEnv speaks "
            "the same reset/step protocol — use it directly, or install "
            "gymnasium to get this adapter"
        ) from None

    inner = CCEnv(builder, **kwargs)

    class _GymCCEnv(gymnasium.Env):
        metadata = CCEnv.metadata

        def reset(self, *, seed=None, options=None):
            return inner.reset(seed=seed, options=options)

        def step(self, action):
            return inner.step(action)

        def close(self):
            inner.close()

    return _GymCCEnv()
