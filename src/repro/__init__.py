"""repro: a full Python reproduction of PrioPlus (EuroSys 2025).

"Enabling Virtual Priority in Data Center Congestion Control" — Zhang et al.

The package contains a packet-level discrete-event datacenter network
simulator (:mod:`repro.sim`), the congestion-control baselines the paper
compares against (:mod:`repro.cc`), the PrioPlus enhancement itself
(:mod:`repro.core`), workload generators, the coflow and ML-training layers,
and one experiment runner per figure/table of the paper
(:mod:`repro.experiments`).

Quick taste::

    from repro import Simulator, star, Flow, FlowSender, Swift, SwiftParams
    from repro import ChannelConfig, PrioPlusCC

    sim = Simulator(seed=1)
    net, senders, recv = star(sim, n_senders=2, rate_bps=10e9)
    channels = ChannelConfig()
    flow = Flow(1, senders[0], recv, size_bytes=1_000_000, vpriority=2)
    cc = PrioPlusCC(Swift(SwiftParams(target_scaling=False)), channels, vpriority=2)
    FlowSender(sim, net, flow, cc)
    sim.run()
    print(flow.fct_ns() / 1e3, "us")
"""

from .cc import CongestionControl, D2tcp, Dcqcn, Dctcp, Hpcc, Ledbat, NoCC, Swift, SwiftParams, Timely
from .core import ChannelConfig, PrioPlusCC, StartTier
from .noise import LognormalNoise, NoNoise, UniformNoise, paper_noise
from .sim import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    Host,
    Network,
    PfcConfig,
    Simulator,
    Switch,
    SwitchConfig,
)
from .telemetry import Recorder, set_default_recorder
from .topology import fat_tree, leaf_spine, multi_rack, star
from .transport import DEFAULT_MTU, Flow, FlowSender

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "Network",
    "Host",
    "Switch",
    "SwitchConfig",
    "PfcConfig",
    "SECOND",
    "MILLISECOND",
    "MICROSECOND",
    "Flow",
    "FlowSender",
    "DEFAULT_MTU",
    "CongestionControl",
    "Swift",
    "SwiftParams",
    "Dctcp",
    "D2tcp",
    "Ledbat",
    "Hpcc",
    "NoCC",
    "Dcqcn",
    "Timely",
    "ChannelConfig",
    "PrioPlusCC",
    "StartTier",
    "LognormalNoise",
    "UniformNoise",
    "NoNoise",
    "paper_noise",
    "star",
    "fat_tree",
    "leaf_spine",
    "multi_rack",
    "Recorder",
    "set_default_recorder",
    "__version__",
]
