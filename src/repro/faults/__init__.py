"""Deterministic fault injection & chaos testing for the simulator.

Declare *what* breaks and *when* in a :class:`FaultPlan` (JSON-serialisable,
seeded, never wall-clock), then let a :class:`FaultInjector` apply it to a
built :class:`~repro.sim.network.Network` — or install it process-wide with
:func:`set_default_fault_plan` so any experiment picks it up (that is what
``python -m repro run <exp> --faults plan.json`` does).

See docs/FAULTS.md for the fault model, plan schema, and reconvergence
semantics.
"""

from .actors import (
    FaultActor,
    LinkDegradeActor,
    LinkDownActor,
    LinkImpairment,
    PfcStormActor,
    SwitchRebootActor,
    build_actor,
)
from .injector import FaultInjector
from .plan import (
    FAULT_KINDS,
    SCHEDULE_KINDS,
    FaultPlan,
    FaultSpec,
    Schedule,
    current_fault_plan,
    set_default_fault_plan,
)

__all__ = [
    "FAULT_KINDS",
    "SCHEDULE_KINDS",
    "FaultActor",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "LinkDegradeActor",
    "LinkDownActor",
    "LinkImpairment",
    "PfcStormActor",
    "Schedule",
    "SwitchRebootActor",
    "build_actor",
    "current_fault_plan",
    "set_default_fault_plan",
]
