"""Fault injector: schedules a plan's windows onto one simulator.

:meth:`FaultInjector.arm` does all the nondeterminism-sensitive work up
front: targets are resolved to actors, every schedule is expanded into
concrete ``(t_down, t_up)`` windows from a dedicated ``random.Random``
seeded by the plan, and plain allocation-free engine events
(``Simulator.call_at``) are queued for each edge.  After arming, the only
RNG the subsystem touches during the run is the per-spec impairment RNG,
which is driven by packet transmissions — deterministic in the event order.

Reconvergence model: route-affecting edges (``link_down``,
``switch_reboot`` — both inject *and* clear) do **not** rebuild routes
immediately.  The control plane notices ``plan.detection_ns`` later and only
then calls ``Network.rebuild_routes()`` (which also flushes the switches'
memoised ECMP picks), so traffic blackholes into the failed element for the
detection window, exactly as in a real fabric.  Each rebuild emits a
``reconverge`` telemetry event on the ``fault`` channel.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .actors import build_actor
from .plan import FaultPlan

__all__ = ["FaultInjector"]


class _Armed:
    """One spec bound to its actor and expanded windows."""

    __slots__ = ("spec", "actor", "windows")

    def __init__(self, spec, actor, windows):
        self.spec = spec
        self.actor = actor
        self.windows: List[Tuple[int, int]] = windows


class FaultInjector:
    """Applies one :class:`~repro.faults.plan.FaultPlan` to one network."""

    def __init__(self, sim, net, plan: FaultPlan):
        self.sim = sim
        self.net = net
        self.plan = plan
        self.armed: List[_Armed] = []
        self._is_armed = False
        #: pending route rebuilds (coalesces back-to-back detections)
        self._reconverge_due = 0
        self.injected = 0
        self.cleared = 0
        self.reconverges = 0
        self.dropped_at_inject = 0

    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Resolve targets, expand schedules, queue every fault edge.

        Idempotent; returns ``self`` for chaining.  Each spec gets its own
        derived RNG (plan seed + spec index) for schedule expansion and any
        wire impairment, so adding a spec never shifts another's draws.
        """
        if self._is_armed:
            return self
        self._is_armed = True
        sim = self.sim
        for i, spec in enumerate(self.plan.specs):
            rng = random.Random(self.plan.seed * 1_000_003 + i)
            actor = build_actor(self.net, spec, rng)
            windows = spec.schedule.windows(rng)
            entry = _Armed(spec, actor, windows)
            self.armed.append(entry)
            for t_down, t_up in windows:
                sim.call_at(t_down, self._inject, entry)
                sim.call_at(t_up, self._clear, entry)
        return self

    # ------------------------------------------------------------------
    def _inject(self, entry: _Armed) -> None:
        dropped = entry.actor.inject()
        self.injected += 1
        self.dropped_at_inject += dropped
        tel = self.sim.telemetry
        if tel.enabled:
            tel.fault(self.sim.now, entry.spec.kind, entry.spec.label(), "inject")
        if entry.actor.reroutes:
            self._schedule_reconverge()

    def _clear(self, entry: _Armed) -> None:
        entry.actor.clear()
        self.cleared += 1
        tel = self.sim.telemetry
        if tel.enabled:
            tel.fault(self.sim.now, entry.spec.kind, entry.spec.label(), "clear")
        if entry.actor.reroutes:
            self._schedule_reconverge()

    def _schedule_reconverge(self) -> None:
        """Route rebuild after detection latency, coalescing duplicates.

        Multiple edges inside one detection window produce one rebuild at
        the *latest* due time — the control plane converges on the final
        topology, not on every intermediate one.
        """
        due = self.sim.now + self.plan.detection_ns
        self._reconverge_due = due
        self.sim.call_at(due, self._reconverge, due)

    def _reconverge(self, due: int) -> None:
        if due != self._reconverge_due:
            return  # superseded by a later edge inside the detection window
        self.net.rebuild_routes()
        self.reconverges += 1
        tel = self.sim.telemetry
        if tel.enabled:
            tel.fault(self.sim.now, "routes", "fabric", "reconverge")

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Summary safe to embed in experiment results (JSON-stable)."""
        corrupted = delayed = 0
        for entry in self.armed:
            for imp in getattr(entry.actor, "impairments", ()):
                corrupted += imp.corrupted
                delayed += imp.delayed
        return {
            "plan_hash": self.plan.plan_hash(),
            "windows": sum(len(e.windows) for e in self.armed),
            "injected": self.injected,
            "cleared": self.cleared,
            "reconverges": self.reconverges,
            "dropped_at_inject": self.dropped_at_inject,
            "wire_corrupted": corrupted,
            "wire_delayed": delayed,
        }
