"""Declarative fault plans: typed specs + schedules, fully deterministic.

A :class:`FaultPlan` is data, not behaviour: a list of :class:`FaultSpec`
entries (what breaks) each carrying a :class:`Schedule` (when it breaks), plus
a plan-level RNG seed and the control plane's failure-detection latency.  The
plan round-trips through JSON (``to_dict``/``from_dict``, ``save``/``load``)
so it can ride the CLI (``--faults plan.json``), enter the runner's cache key
(:meth:`FaultPlan.plan_hash`), and cross process-pool boundaries.

Nothing here reads the wall clock.  Stochastic schedules are expanded into
concrete down/up windows *once*, at arm time, from a dedicated
``random.Random`` derived from the plan seed — so results are byte-identical
across repeat runs, worker counts, and telemetry on/off (the expansion never
interleaves with simulation-driven draws).

The process-wide *default plan* mirrors ``repro.telemetry``'s default
recorder: :func:`set_default_fault_plan` installs a plan that every
subsequently built :class:`~repro.sim.network.Network` arms automatically in
``build_routes()``.  This is how ``--faults`` applies to any experiment
without per-experiment plumbing.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "FAULT_KINDS",
    "SCHEDULE_KINDS",
    "FaultPlan",
    "FaultSpec",
    "Schedule",
    "current_fault_plan",
    "set_default_fault_plan",
]

#: every fault kind an actor exists for (see repro.faults.actors)
FAULT_KINDS: Tuple[str, ...] = ("link_down", "link_degrade", "switch_reboot", "pfc_storm")

#: supported schedule shapes
SCHEDULE_KINDS: Tuple[str, ...] = ("oneshot", "flap", "stochastic")


class Schedule:
    """When a fault is active: one-shot, periodic flap, or stochastic process.

    * ``oneshot`` — down at ``at_ns``, cleared ``duration_ns`` later.
    * ``flap`` — ``count`` cycles starting at ``at_ns``: down for
      ``duration_ns``, then up until the next ``period_ns`` boundary
      (``duration_ns < period_ns``).
    * ``stochastic`` — a renewal process from ``at_ns`` to ``until_ns``:
      exponential time-to-failure with mean ``mtbf_ns``, exponential repair
      with mean ``mttr_ns``, drawn from the RNG handed to :meth:`windows`.
    """

    __slots__ = ("kind", "at_ns", "duration_ns", "period_ns", "count", "until_ns", "mtbf_ns", "mttr_ns")

    def __init__(
        self,
        kind: str,
        at_ns: int = 0,
        duration_ns: int = 0,
        period_ns: int = 0,
        count: int = 1,
        until_ns: int = 0,
        mtbf_ns: int = 0,
        mttr_ns: int = 0,
    ):
        if kind not in SCHEDULE_KINDS:
            raise ValueError(f"unknown schedule kind {kind!r} (expected one of {SCHEDULE_KINDS})")
        if at_ns < 0:
            raise ValueError("at_ns must be non-negative")
        if kind in ("oneshot", "flap") and duration_ns <= 0:
            raise ValueError(f"{kind} schedule needs a positive duration_ns")
        if kind == "flap":
            if count < 1:
                raise ValueError("flap schedule needs count >= 1")
            if period_ns <= duration_ns:
                raise ValueError("flap needs period_ns > duration_ns (some up-time each cycle)")
        if kind == "stochastic":
            if mtbf_ns <= 0 or mttr_ns <= 0:
                raise ValueError("stochastic schedule needs positive mtbf_ns and mttr_ns")
            if until_ns <= at_ns:
                raise ValueError("stochastic schedule needs until_ns > at_ns")
        self.kind = kind
        self.at_ns = int(at_ns)
        self.duration_ns = int(duration_ns)
        self.period_ns = int(period_ns)
        self.count = int(count)
        self.until_ns = int(until_ns)
        self.mtbf_ns = int(mtbf_ns)
        self.mttr_ns = int(mttr_ns)

    # ------------------------------------------------------------------
    def windows(self, rng: random.Random) -> List[Tuple[int, int]]:
        """Concrete, non-overlapping ``(t_down, t_up)`` windows, sorted.

        ``rng`` is only consulted for ``stochastic`` schedules; expansion
        happens once at arm time so the draw order never depends on traffic.
        """
        if self.kind == "oneshot":
            return [(self.at_ns, self.at_ns + self.duration_ns)]
        if self.kind == "flap":
            return [
                (self.at_ns + i * self.period_ns, self.at_ns + i * self.period_ns + self.duration_ns)
                for i in range(self.count)
            ]
        out: List[Tuple[int, int]] = []
        t = self.at_ns
        while True:
            t += max(1, int(rng.expovariate(1.0 / self.mtbf_ns)))
            if t >= self.until_ns:
                break
            up = min(t + max(1, int(rng.expovariate(1.0 / self.mttr_ns))), self.until_ns)
            out.append((t, up))
            t = up
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        d: Dict[str, int] = {"kind": self.kind, "at_ns": self.at_ns}
        if self.kind in ("oneshot", "flap"):
            d["duration_ns"] = self.duration_ns
        if self.kind == "flap":
            d["period_ns"] = self.period_ns
            d["count"] = self.count
        if self.kind == "stochastic":
            d["until_ns"] = self.until_ns
            d["mtbf_ns"] = self.mtbf_ns
            d["mttr_ns"] = self.mttr_ns
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Schedule":
        return cls(**d)


class FaultSpec:
    """One fault: what breaks (kind + target) and when (:class:`Schedule`).

    Targets are resolved by *node name* at arm time, so a spec written for
    one topology applies to any fabric using the same names:

    * ``link_down`` / ``link_degrade`` — ``target`` is the two endpoint node
      names of a full-duplex link, e.g. ``["tor0", "spine1"]``;
    * ``switch_reboot`` — ``target`` is one switch name;
    * ``pfc_storm`` — ``target`` is the switch name; ``port`` picks the
      egress port index held paused and ``prio`` the paused priority class.

    ``link_degrade`` parameters: ``rate_factor`` scales link capacity (0.5 =
    half rate), ``drop_prob`` corrupts that fraction of packets on the wire,
    ``delay_spike_ns`` adds a uniform ``[0, N]`` per-packet delay (reusing
    the :mod:`repro.noise` uniform model) with FIFO order preserved.
    """

    __slots__ = ("kind", "target", "schedule", "rate_factor", "drop_prob", "delay_spike_ns", "port", "prio")

    def __init__(
        self,
        kind: str,
        target: Union[str, Sequence[str]],
        schedule: Schedule,
        rate_factor: float = 1.0,
        drop_prob: float = 0.0,
        delay_spike_ns: int = 0,
        port: int = 0,
        prio: int = 0,
    ):
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r} (expected one of {FAULT_KINDS})")
        if kind in ("link_down", "link_degrade"):
            if isinstance(target, str) or len(target) != 2:
                raise ValueError(f"{kind} target must be a pair of node names, got {target!r}")
            target = (str(target[0]), str(target[1]))
        else:
            if not isinstance(target, str):
                raise ValueError(f"{kind} target must be one node name, got {target!r}")
        if not 0.0 < rate_factor <= 1.0:
            raise ValueError("rate_factor must be in (0, 1]")
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        if delay_spike_ns < 0:
            raise ValueError("delay_spike_ns must be non-negative")
        if kind == "link_degrade" and rate_factor == 1.0 and drop_prob == 0.0 and delay_spike_ns == 0:
            raise ValueError("link_degrade with no degradation parameters is a no-op")
        self.kind = kind
        self.target = target
        self.schedule = schedule
        self.rate_factor = float(rate_factor)
        self.drop_prob = float(drop_prob)
        self.delay_spike_ns = int(delay_spike_ns)
        self.port = int(port)
        self.prio = int(prio)

    # ------------------------------------------------------------------
    def label(self) -> str:
        """Stable identity used in telemetry events and stats."""
        if self.kind in ("link_down", "link_degrade"):
            return f"{self.target[0]}<->{self.target[1]}"
        if self.kind == "pfc_storm":
            return f"{self.target}.p{self.port}/q{self.prio}"
        return self.target

    def to_dict(self) -> dict:
        d: Dict[str, object] = {
            "kind": self.kind,
            "target": list(self.target) if not isinstance(self.target, str) else self.target,
            "schedule": self.schedule.to_dict(),
        }
        if self.kind == "link_degrade":
            d["rate_factor"] = self.rate_factor
            d["drop_prob"] = self.drop_prob
            d["delay_spike_ns"] = self.delay_spike_ns
        if self.kind == "pfc_storm":
            d["port"] = self.port
            d["prio"] = self.prio
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        d = dict(d)
        d["schedule"] = Schedule.from_dict(d["schedule"])
        return cls(**d)


class FaultPlan:
    """An ordered list of :class:`FaultSpec` plus plan-wide knobs.

    ``seed`` drives every stochastic draw the subsystem makes (schedule
    expansion, wire corruption, delay spikes) through RNGs derived from it —
    wall-clock time is never consulted.  ``detection_ns`` models the control
    plane: after a topology-affecting fault (and after its repair) routes are
    only rebuilt ``detection_ns`` later, so in-flight traffic blackholes
    realistically in the interim.
    """

    __slots__ = ("specs", "seed", "detection_ns")

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0, detection_ns: int = 50_000):
        if detection_ns < 0:
            raise ValueError("detection_ns must be non-negative")
        self.specs: List[FaultSpec] = list(specs)
        self.seed = int(seed)
        self.detection_ns = int(detection_ns)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "detection_ns": self.detection_ns,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(
            specs=[FaultSpec.from_dict(s) for s in d.get("specs", [])],
            seed=d.get("seed", 0),
            detection_ns=d.get("detection_ns", 50_000),
        )

    def canonical(self) -> str:
        """Canonical JSON form — the basis of cache keys and golden pins."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def plan_hash(self) -> str:
        """Short content hash; enters the runner's result-cache key."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


# ----------------------------------------------------------------------
# process-wide default plan, armed by Network.build_routes()
# ----------------------------------------------------------------------
_default_plan: Optional[FaultPlan] = None


def set_default_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` so every subsequently built Network arms it.

    Pass ``None`` to disarm.  Mirrors ``telemetry.set_default_recorder``:
    install *before* building topologies — arming happens inside
    ``Network.build_routes()``.
    """
    global _default_plan
    _default_plan = plan


def current_fault_plan() -> Optional[FaultPlan]:
    """The plan new networks arm, or ``None`` when fault injection is off."""
    return _default_plan
