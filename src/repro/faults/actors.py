"""Fault actors: the mutations a :class:`~repro.faults.plan.FaultSpec` makes.

Each actor owns one target and exposes ``inject()`` / ``clear()`` plus a
``reroutes`` flag telling the injector whether the control plane must
rebuild routes after the event (after detection latency).  Actors are built
once at arm time — name resolution and port lookup happen there, so a typo
in a plan fails fast instead of mid-simulation.

:class:`LinkImpairment` is the wire-level half of ``link_degrade``: installed
on ``Port.impairment`` (one per direction, keeping per-direction FIFO state),
it sees every packet at transmit time and may corrupt it (``drop_prob``) or
delay it (uniform spike via :class:`repro.noise.UniformNoise`).  Delivery
times are clamped monotonically per direction so a degraded link never
reorders — it is still one piece of fibre.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..noise import UniformNoise

__all__ = [
    "FaultActor",
    "LinkDegradeActor",
    "LinkDownActor",
    "LinkImpairment",
    "PfcStormActor",
    "SwitchRebootActor",
    "build_actor",
]


class LinkImpairment:
    """Per-direction wire impairment installed on ``Port.impairment``.

    ``transmit(t2)`` is called by the port for every packet with the nominal
    delivery time and returns the actual one — or a negative value, meaning
    the packet was corrupted on the wire (the port releases it; serialisation
    time was still consumed, as on a real link).
    """

    __slots__ = ("rng", "drop_prob", "noise", "_last_delivery", "corrupted", "delayed")

    def __init__(self, rng: random.Random, drop_prob: float = 0.0, delay_spike_ns: int = 0):
        self.rng = rng
        self.drop_prob = drop_prob
        self.noise = UniformNoise(delay_spike_ns) if delay_spike_ns > 0 else None
        self._last_delivery = 0
        self.corrupted = 0
        self.delayed = 0

    def transmit(self, t2: int) -> int:
        if self.drop_prob > 0.0 and self.rng.random() < self.drop_prob:
            self.corrupted += 1
            return -1
        if self.noise is not None:
            spike = self.noise.sample(self.rng)
            if spike:
                self.delayed += 1
                t2 += spike
        # FIFO wire: a later transmission never overtakes an earlier one
        if t2 < self._last_delivery:
            t2 = self._last_delivery
        self._last_delivery = t2
        return t2


class FaultActor:
    """Base: one target, symmetric inject/clear, optional route impact."""

    #: does the control plane need to rebuild routes after inject/clear?
    reroutes = False

    def inject(self) -> int:
        """Apply the fault; returns packets dropped at the instant (or 0)."""
        raise NotImplementedError

    def clear(self) -> int:
        """Undo the fault; returns packets dropped at the instant (or 0)."""
        raise NotImplementedError


class LinkDownActor(FaultActor):
    """Binary fibre cut of a full-duplex link (both directions)."""

    reroutes = True

    def __init__(self, net, a, b):
        self.net = net
        self.a = a
        self.b = b

    def inject(self) -> int:
        return self.net.set_link_state(self.a, self.b, up=False)

    def clear(self) -> int:
        return self.net.set_link_state(self.a, self.b, up=True)


class LinkDegradeActor(FaultActor):
    """Rate scaling + wire corruption + delay spikes on one link.

    The link stays up (routes unchanged), it just gets worse: both
    directions' serialisation rate is scaled by ``rate_factor`` (the port's
    ``ns_per_byte`` setter invalidates its memoised tx times) and a
    :class:`LinkImpairment` is installed per direction.  Both directions
    share one RNG — draws interleave in deterministic event order.
    """

    def __init__(
        self,
        ports,
        rate_factor: float,
        drop_prob: float,
        delay_spike_ns: int,
        rng: random.Random,
    ):
        self.ports = list(ports)
        self.rate_factor = rate_factor
        self.drop_prob = drop_prob
        self.delay_spike_ns = delay_spike_ns
        self.rng = rng
        self._base_ns_per_byte: List[float] = []
        self.impairments: List[LinkImpairment] = []

    def inject(self) -> int:
        self._base_ns_per_byte = [p.ns_per_byte for p in self.ports]
        self.impairments = []
        for port in self.ports:
            if self.rate_factor < 1.0:
                port.ns_per_byte = port.ns_per_byte / self.rate_factor
            if self.drop_prob > 0.0 or self.delay_spike_ns > 0:
                imp = LinkImpairment(self.rng, self.drop_prob, self.delay_spike_ns)
                port.impairment = imp
                self.impairments.append(imp)
        return 0

    def clear(self) -> int:
        for port, base in zip(self.ports, self._base_ns_per_byte):
            port.ns_per_byte = base
            port.impairment = None
        return 0


class SwitchRebootActor(FaultActor):
    """Power-cycle one switch (see :meth:`repro.sim.switch.Switch.reboot`)."""

    reroutes = True

    def __init__(self, switch):
        self.switch = switch

    def inject(self) -> int:
        return self.switch.reboot()

    def clear(self) -> int:
        self.switch.power_on()
        return 0


class PfcStormActor(FaultActor):
    """Hold one priority paused on one egress port (a rogue PAUSE flood).

    Models a malfunctioning or malicious neighbour spraying PFC PAUSE frames:
    the victim port's class stays paused for the whole window regardless of
    real backlog, so congestion trees grow upstream of it.  Clearing resumes
    the class; the port re-kicks its scheduler itself.
    """

    def __init__(self, port, prio: int):
        self.port = port
        self.prio = prio

    def inject(self) -> int:
        self.port.set_paused(self.prio, True)
        return 0

    def clear(self) -> int:
        self.port.set_paused(self.prio, False)
        return 0


# ----------------------------------------------------------------------
def build_actor(net, spec, rng: random.Random) -> FaultActor:
    """Resolve ``spec``'s target against ``net`` and build its actor.

    Raises ``ValueError`` for unknown node names or out-of-range ports, at
    arm time rather than mid-run.
    """
    if spec.kind in ("link_down", "link_degrade"):
        a = _node_by_name(net, spec.target[0])
        b = _node_by_name(net, spec.target[1])
        ports = _link_ports(net, a, b)  # fail fast: the link must exist
        if spec.kind == "link_down":
            return LinkDownActor(net, a, b)
        return LinkDegradeActor(ports, spec.rate_factor, spec.drop_prob, spec.delay_spike_ns, rng)
    node = _node_by_name(net, spec.target)
    if spec.kind == "switch_reboot":
        if not hasattr(node, "reboot"):
            raise ValueError(f"switch_reboot target {spec.target!r} is not a switch")
        return SwitchRebootActor(node)
    # pfc_storm
    ports = getattr(node, "ports", None)
    if ports is not None:  # switch: per-index egress ports
        if not 0 <= spec.port < len(ports):
            raise ValueError(f"pfc_storm port {spec.port} out of range for {spec.target!r}")
        port = ports[spec.port]
    else:  # host NIC: the single attached port
        port = getattr(node, "port", None)
        if port is None:
            raise ValueError(f"pfc_storm target {spec.target!r} has no attached port")
    if not 0 <= spec.prio < port.n_queues:
        raise ValueError(f"pfc_storm prio {spec.prio} out of range for {spec.target!r}")
    return PfcStormActor(port, spec.prio)


def _node_by_name(net, name: str):
    for node in net.nodes:
        if node.name == name:
            return node
    known = ", ".join(sorted(n.name for n in net.nodes))
    raise ValueError(f"fault target {name!r} not found in network (nodes: {known})")


def _link_ports(net, a, b) -> Tuple:
    """Both directions' egress ports of the a<->b link."""
    ab = [port for port, peer in net._adj[a.node_id] if peer is b]
    ba = [port for port, peer in net._adj[b.node_id] if peer is a]
    if not ab or not ba:
        raise ValueError(f"no link between {a.name!r} and {b.name!r}")
    return (*ab, *ba)
