"""``python -m repro serve`` — the experiment-serving daemon.

A single-process asyncio server that accepts experiment requests over HTTP
(TCP or a unix socket), schedules their points across one persistent
crash-tolerant :class:`~repro.runner.scheduler.WorkerFleet`, dedupes work
against both the on-disk content-addressed cache and a live
:class:`~repro.serve.inflight.InflightTable`, and streams point-granular
progress as JSONL.  Many concurrent sweep clients, one warm fleet, zero
redundant simulation.

Endpoints (all JSON; streams are ``application/x-ndjson``, close-delimited):

================================  =============================================
``GET  /v1/health``               liveness + protocol version
``GET  /v1/experiments``          registered experiment names + descriptions
``GET  /v1/status``               whole-server :class:`ServerStats`
``GET  /v1/status?job=ID``        one job's :class:`JobStatus`
``GET  /v1/result?job=ID``        final reduced result (409 while running)
``GET  /v1/stream?job=ID&from=N`` replay the job's event log from index N, then
                                  follow live until ``done``/``error``
``POST /v1/submit``               :class:`SubmitRequest` body → ``{"job_id"}``
``POST /v1/run``                  submit + stream in one response
``GET  /v1/cache``                cache inspection (entries per experiment)
``POST /v1/shutdown``             stop the daemon
================================  =============================================

Determinism: a point executed here goes through exactly the same
``execute_point`` → JSON-normalize → cache pipeline as the batch runner, and
``reduce`` folds results in ``points()`` order — so a served result is
byte-identical to ``run_experiment(exp, jobs=1)``.  The event *order* within
a stream reflects completion order and is not deterministic; the result is.

Every job keeps its full event log in memory, which is what makes
``/v1/stream`` reconnectable: a client that lost its connection re-attaches
with ``from=<next index>`` (or 0 for a full replay) and misses nothing.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import threading
import time
from typing import AsyncIterator, Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from ..experiments.common import REGISTRY, Experiment, Point
from ..runner.cache import ResultCache, cache_key, json_safe
from ..runner.pool import _normalize
from ..runner.scheduler import RunnerError, WorkerFleet
from .inflight import InflightTable
from .protocol import (
    PROTOCOL_VERSION,
    JobStatus,
    ProtocolError,
    ServerStats,
    SubmitRequest,
    accepted_event,
    done_event,
    error_event,
    point_event,
)

__all__ = ["ExperimentServer", "BackgroundServer", "serve_main"]

_TERMINAL = ("done", "error")


class Job:
    """One accepted submit request and its replayable event log."""

    def __init__(self, job_id: str, request: SubmitRequest, exp: Experiment, points: List[Point]):
        self.job_id = job_id
        self.request = request
        self.exp = exp
        self.points = points
        self.state = "running"
        self.result: Optional[dict] = None
        self.report: Dict[str, object] = {}
        self.error: Optional[str] = None
        self.sources: Dict[str, int] = {"cache": 0, "inflight": 0, "run": 0}
        self.t0 = time.monotonic()
        self.wall_s = 0.0
        self.events: List[dict] = []
        self._changed = asyncio.Condition()

    async def append(self, event: dict) -> None:
        async with self._changed:
            self.events.append(event)
            self._changed.notify_all()

    async def follow(self, start: int = 0) -> AsyncIterator[dict]:
        """Replay the event log from ``start``, then follow live to the end."""
        i = max(0, start)
        while True:
            while i < len(self.events):
                event = self.events[i]
                i += 1
                yield event
                if event["type"] in _TERMINAL:
                    return
            async with self._changed:
                if i >= len(self.events):
                    await self._changed.wait()

    def status(self) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            experiment=self.request.experiment,
            state=self.state,
            points_total=len(self.points),
            points_done=sum(self.sources.values()),
            sources=dict(self.sources),
            tag=self.request.tag,
            wall_s=self.wall_s if self.state != "running" else time.monotonic() - self.t0,
            error=self.error,
        )


class ExperimentServer:
    """The daemon core: fleet + dedupe + job book-keeping + HTTP front end."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[str] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.25,
        registry=REGISTRY,
    ):
        self.registry = registry
        self.registry.load_all()
        self.fleet = WorkerFleet(
            jobs or os.cpu_count() or 1,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
        )
        # Fork the workers *now*, before any listening or connection sockets
        # exist.  Forked children inherit every open fd; a worker forked while
        # a close-delimited stream response is in flight would hold that
        # connection open forever (the client waits for an EOF that never
        # comes).  Warming the fleet pre-socket keeps worker fd tables clean.
        self.fleet.prewarm()
        self.cache = ResultCache(cache) if cache else None
        self.cache_dir = str(self.cache.root) if self.cache else None
        self.inflight = InflightTable()
        self.jobs: Dict[str, Job] = {}
        self._job_seq = 0
        self._job_tasks: set = set()
        self._t_start = time.monotonic()
        self._stopping: Optional[asyncio.Event] = None
        self._servers: List[asyncio.AbstractServer] = []
        #: lifetime point counters across all jobs
        self.points_total = 0
        self.cache_hits = 0
        self.executed = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> str:
        server = await asyncio.start_server(self._handle_conn, host=host, port=port)
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        return f"{bound[0]}:{bound[1]}"

    async def start_unix(self, path: str) -> str:
        server = await asyncio.start_unix_server(self._handle_conn, path=path)
        self._servers.append(server)
        return path

    async def run_until_stopped(self) -> None:
        self._stopping = asyncio.Event()
        await self._stopping.wait()
        await self.aclose()

    def request_stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    async def aclose(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        # the fleet's workers die with the daemon; pending tasks are dropped
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.fleet.shutdown(wait=False, cancel_futures=True)
        )

    def stats(self) -> ServerStats:
        return ServerStats(
            uptime_s=time.monotonic() - self._t_start,
            jobs_total=len(self.jobs),
            jobs_active=sum(1 for j in self.jobs.values() if j.state == "running"),
            points_total=self.points_total,
            cache_hits=self.cache_hits,
            inflight_hits=self.inflight.hits,
            executed=self.executed,
            worker_crashes=self.fleet.stats["crashes"],
            fleet_jobs=self.fleet.jobs,
            workers=self.fleet.worker_pids(),
            inflight_now=len(self.inflight),
            cache_dir=self.cache_dir,
        )

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def _make_job(self, request: SubmitRequest) -> Job:
        exp = self.registry.get(request.experiment)  # KeyError -> 404 upstream
        if request.quick:
            exp = exp.quick()
        points = list(exp.points())
        names = [p.name for p in points]
        if len(set(names)) != len(names):
            raise RunnerError(f"{exp.name}: duplicate point names in points()")
        self._job_seq += 1
        job = Job(f"job-{self._job_seq:06d}", request, exp, points)
        self.jobs[job.job_id] = job
        return job

    async def _start_job(self, request: SubmitRequest) -> Job:
        job = self._make_job(request)
        await job.append(
            accepted_event(job.job_id, request.experiment, len(job.points))
        )
        task = asyncio.get_running_loop().create_task(self._execute_job(job))
        # hold a strong reference: the loop keeps only a weak one, and a
        # mid-flight GC of the task would silently strand the job as "running"
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)
        return job

    async def _execute_job(self, job: Job) -> None:
        try:
            result, report = await self._run_points(job)
            job.result = result
            job.report = report
            job.state = "done"
            job.wall_s = time.monotonic() - job.t0
            await job.append(done_event(job.job_id, json_safe(result), report))
        except Exception as exc:
            job.state = "error"
            job.error = f"{type(exc).__name__}: {exc}"
            job.wall_s = time.monotonic() - job.t0
            await job.append(error_event(job.job_id, job.error))

    async def _run_points(self, job: Job):
        """The daemon-side twin of ``run_experiment``: cache → inflight → fleet.

        Must preserve the batch runner's determinism contract: every fresh
        result is JSON-normalized before it is cached, shared or reduced,
        and ``reduce`` sees the per-point results in ``points()`` order.
        """
        exp, request = job.exp, job.request
        faults_dict = json_safe(request.faults) if request.faults is not None else None
        extra = {"faults": faults_dict} if faults_dict is not None else None
        keys = {p.name: cache_key(exp.name, p, extra=extra) for p in job.points}
        if len(set(keys.values())) != len(job.points):
            raise RunnerError(
                f"{exp.name}: two points share a cache key — every point needs "
                f"a distinct (config, seed)"
            )
        results: Dict[str, dict] = {}
        audit_reports: Dict[str, dict] = {}

        async def record(point: Point, source: str, result: dict) -> None:
            results[point.name] = result
            job.sources[source] += 1
            self.points_total += 1
            if source == "cache":
                self.cache_hits += 1
            elif source == "run":
                self.executed += 1
            await job.append(
                point_event(
                    job.job_id, point.name, source,
                    sum(job.sources.values()), len(job.points),
                )
            )

        async def one(point: Point) -> None:
            key = keys[point.name]
            entry = self.cache.get(exp.name, key) if self.cache is not None else None
            if entry is not None:
                await record(point, "cache", entry["result"])
                return
            fut, owner = self.inflight.claim(key)
            if not owner:
                # someone else (this job or a concurrent one) is computing it
                await record(point, "inflight", await fut)
                return
            try:
                raw = await asyncio.wrap_future(
                    self.fleet.submit(exp, point, request.audit, faults_dict)
                )
            except RunnerError as exc:
                fut.set_exception(exc)
                fut.exception()  # mark retrieved: followers may or may not exist
                raise
            except Exception as exc:
                wrapped = RunnerError(
                    f"{exp.name}:{point.name} raised {type(exc).__name__}: {exc}"
                )
                wrapped.__cause__ = exc
                fut.set_exception(wrapped)
                fut.exception()
                raise wrapped
            finally:
                self.inflight.release(key)
            rep = raw.pop("audit", None) if isinstance(raw, dict) else None
            if rep is not None:
                audit_reports[point.name] = rep
            result = _normalize(raw)
            if self.cache is not None:
                self.cache.put(exp.name, key, point, result)
            fut.set_result(result)
            await record(point, "run", result)

        await asyncio.gather(*(one(p) for p in job.points))

        ordered = {p.name: results[p.name] for p in job.points}
        reduced = exp.reduce(ordered)
        if request.audit is not None and isinstance(reduced, dict):
            total_violations = sum(
                r["violation_count"] for r in audit_reports.values()
            )
            reduced["audit"] = {
                "mode": request.audit,
                "ok": total_violations == 0,
                "violation_count": total_violations,
                "points_audited": len(audit_reports),
                "points_cached": len(job.points) - job.sources["run"],
                "points": audit_reports,
            }
        report = {
            "experiment": exp.name,
            "points": len(job.points),
            "cache_hits": job.sources["cache"],
            "inflight_hits": job.sources["inflight"],
            "executed": job.sources["run"],
            "jobs": self.fleet.jobs,
            "wall_s": time.monotonic() - job.t0,
        }
        return reduced, report

    # ------------------------------------------------------------------
    # HTTP front end (hand-rolled HTTP/1.1 subset, Connection: close)
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, BrokenPipeError):
            pass  # client went away; jobs keep running, streams are replayable
        except Exception as exc:  # pragma: no cover - last-resort 500
            try:
                await self._respond_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_request(self, reader, writer) -> None:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return
        try:
            method, target, _ = request_line.split(" ", 2)
        except ValueError:
            await self._respond_json(writer, 400, {"error": "malformed request line"})
            return
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    await self._respond_json(writer, 400, {"error": "bad content-length"})
                    return
        body = await reader.readexactly(content_length) if content_length else b""
        parts = urlsplit(target)
        params = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        await self._route(writer, method.upper(), parts.path, params, body)

    async def _route(self, writer, method: str, path: str, params: Dict[str, str], body: bytes):
        if method == "GET" and path == "/v1/health":
            await self._respond_json(
                writer, 200, {"ok": True, "version": PROTOCOL_VERSION}
            )
        elif method == "GET" and path == "/v1/experiments":
            await self._respond_json(
                writer,
                200,
                {
                    "version": PROTOCOL_VERSION,
                    "experiments": {
                        e.name: e.description for e in self.registry.experiments()
                    },
                },
            )
        elif method == "GET" and path == "/v1/status":
            job_id = params.get("job")
            if job_id is None:
                await self._respond_json(writer, 200, self.stats().to_dict())
                return
            job = self.jobs.get(job_id)
            if job is None:
                await self._respond_json(writer, 404, {"error": f"unknown job {job_id!r}"})
                return
            await self._respond_json(writer, 200, job.status().to_dict())
        elif method == "GET" and path == "/v1/result":
            job = self.jobs.get(params.get("job", ""))
            if job is None:
                await self._respond_json(writer, 404, {"error": "unknown job"})
            elif job.state == "running":
                await self._respond_json(
                    writer, 409, {"error": f"job {job.job_id} still running"}
                )
            elif job.state == "error":
                await self._respond_json(
                    writer, 500, {"error": job.error, "job_id": job.job_id}
                )
            else:
                await self._respond_json(
                    writer,
                    200,
                    {
                        "version": PROTOCOL_VERSION,
                        "job_id": job.job_id,
                        "result": json_safe(job.result),
                        "report": job.report,
                    },
                )
        elif method == "GET" and path == "/v1/stream":
            job = self.jobs.get(params.get("job", ""))
            if job is None:
                await self._respond_json(writer, 404, {"error": "unknown job"})
                return
            start = int(params.get("from", 0))
            await self._stream_events(writer, job.follow(start))
        elif method == "GET" and path == "/v1/cache":
            info = self.cache.info() if self.cache is not None else None
            await self._respond_json(
                writer, 200, {"version": PROTOCOL_VERSION, "cache": info}
            )
        elif method == "POST" and path in ("/v1/submit", "/v1/run"):
            try:
                request = SubmitRequest.from_dict(json.loads(body.decode("utf-8")))
            except (ValueError, ProtocolError) as exc:
                await self._respond_json(writer, 400, {"error": str(exc)})
                return
            try:
                job = await self._start_job(request)
            except KeyError:
                await self._respond_json(
                    writer,
                    404,
                    {"error": f"unknown experiment {request.experiment!r}"},
                )
                return
            except RunnerError as exc:
                await self._respond_json(writer, 400, {"error": str(exc)})
                return
            if path == "/v1/submit":
                await self._respond_json(
                    writer,
                    202,
                    {
                        "version": PROTOCOL_VERSION,
                        "job_id": job.job_id,
                        "points_total": len(job.points),
                    },
                )
            else:
                await self._stream_events(writer, job.follow(0))
        elif method == "POST" and path == "/v1/shutdown":
            await self._respond_json(writer, 200, {"ok": True, "stopping": True})
            self.request_stop()
        else:
            await self._respond_json(
                writer, 404, {"error": f"no route {method} {path}"}
            )

    async def _respond_json(self, writer, status: int, payload: dict) -> None:
        body = (json.dumps(json_safe(payload)) + "\n").encode("utf-8")
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
                  409: "Conflict", 500: "Internal Server Error"}.get(status, "OK")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        writer.write(body)
        await writer.drain()

    async def _stream_events(self, writer, events: AsyncIterator[dict]) -> None:
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        async for event in events:
            writer.write((json.dumps(json_safe(event)) + "\n").encode("utf-8"))
            await writer.drain()


# ----------------------------------------------------------------------
# embedding: run a server on a background thread (tests, load harness)
# ----------------------------------------------------------------------
class BackgroundServer:
    """An :class:`ExperimentServer` on its own thread + event loop.

    The canonical way to embed the daemon in a test or harness process::

        with BackgroundServer(unix_path=sock, jobs=2, cache=dir) as srv:
            client = ServeClient(srv.address)
            ...

    ``srv.server`` is the live :class:`ExperimentServer` (read-only access
    from other threads is fine for counters; mutation must go through the
    protocol).
    """

    def __init__(
        self,
        unix_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **server_kwargs,
    ):
        self.server = ExperimentServer(**server_kwargs)
        self._unix_path = unix_path
        self._host, self._port = host, port
        self.address: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True, name="repro-serve")
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.address is None:
            raise RuntimeError("serve thread failed to start in time")
        return self

    def _run(self) -> None:
        async def main():
            try:
                if self._unix_path is not None:
                    self.address = await self.server.start_unix(self._unix_path)
                else:
                    self.address = await self.server.start_tcp(self._host, self._port)
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.run_until_stopped()

        asyncio.run(main())

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
            self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def serve_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Run the experiment-serving daemon: a warm worker fleet behind an "
            "HTTP API with content-addressed + in-flight dedupe (docs/SERVE.md)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="TCP bind host (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8642, help="TCP bind port (default: 8642)")
    parser.add_argument(
        "--unix", metavar="PATH", default=None,
        help="listen on a unix socket at PATH instead of TCP",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker fleet size (default: all cores)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="content-addressed result cache directory (strongly recommended)",
    )
    parser.add_argument("--max-retries", type=int, default=2, help="crash retries per point")
    parser.add_argument(
        "--retry-backoff", type=float, default=0.25, metavar="S",
        help="base crash-retry backoff in seconds",
    )
    args = parser.parse_args(argv)

    server = ExperimentServer(
        jobs=args.jobs,
        cache=args.cache,
        max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff,
    )

    async def main() -> None:
        if args.unix:
            address = await server.start_unix(args.unix)
            kind = "unix"
        else:
            address = await server.start_tcp(args.host, args.port)
            kind = "tcp"
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_stop)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        print(
            f"[serve] listening on {kind}:{address} "
            f"(fleet={server.fleet.jobs}, cache={server.cache_dir or 'off'})",
            file=sys.stderr,
            flush=True,
        )
        await server.run_until_stopped()

    asyncio.run(main())
    return 0
