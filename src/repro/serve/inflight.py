"""The in-flight dedupe table: one execution per content-addressed key.

The daemon checks three layers before simulating a point, in order:

1. the on-disk :class:`~repro.runner.cache.ResultCache` (results that
   finished in any process, ever);
2. this table (results currently being computed by *some* job in this
   server process);
3. the worker fleet (fresh execution).

Two overlapping sweeps that share points therefore share point
*executions*: the first claim for a key owns the execution and everyone
else awaits the same future.  Keys are the runner's cache keys
(``cache_key(experiment, point, extra={"faults": …})``), so dedupe
follows exactly the same identity rules as the disk cache — including
fault-plan isolation.

Single-event-loop discipline: all methods must be called from the
server's loop thread (the daemon is a plain asyncio program), which is
what makes claim/release race-free without locks.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Tuple

__all__ = ["InflightTable"]


class InflightTable:
    """``key -> future`` of point results currently being computed."""

    def __init__(self):
        self._table: Dict[str, asyncio.Future] = {}
        #: lifetime counters: ``claims`` counts first-owner registrations,
        #: ``hits`` counts deduped followers (a point someone else is running)
        self.claims = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._table)

    def claim(self, key: str) -> Tuple[asyncio.Future, bool]:
        """Return ``(future, owner)`` for ``key``.

        The first claimant becomes the *owner*: it must execute the point,
        resolve the future with the **normalized** result (so followers see
        exactly what the cache would have returned), and call
        :meth:`release` when done — success or failure.  Followers just
        await the future.
        """
        fut = self._table.get(key)
        if fut is not None:
            self.hits += 1
            return fut, False
        fut = asyncio.get_running_loop().create_future()
        self._table[key] = fut
        self.claims += 1
        return fut, True

    def release(self, key: str) -> None:
        """Drop ``key`` from the table (owner-side, after resolving it).

        Late followers that already hold the future keep it; new claimants
        for the same key after release go to the disk cache (on success)
        or re-execute (on failure) — a failed owner must not poison the
        key forever.
        """
        self._table.pop(key, None)
