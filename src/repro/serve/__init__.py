"""The experiment-serving daemon (``python -m repro serve``).

Long-running asyncio service over TCP or a unix socket: many concurrent
sweep clients, one persistent warm worker fleet, zero redundant simulation.
Work is deduped against the on-disk content-addressed cache *and* a live
in-flight table, so two overlapping sweeps share point executions.  See
``docs/SERVE.md`` for the architecture and the wire protocol; the stable
programmatic surface is :mod:`repro.api`.

Quick taste::

    python -m repro serve --unix /tmp/repro.sock --cache .repro-cache &
    python -m repro submit fig10c --server /tmp/repro.sock
"""

from .inflight import InflightTable
from .protocol import (
    PROTOCOL_VERSION,
    JobStatus,
    ProtocolError,
    ServerStats,
    SubmitRequest,
)
from .server import BackgroundServer, ExperimentServer, serve_main

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SubmitRequest",
    "JobStatus",
    "ServerStats",
    "InflightTable",
    "ExperimentServer",
    "BackgroundServer",
    "serve_main",
]
