"""Versioned request/response schema for the experiment-serving daemon.

Every payload that crosses the wire — submit requests, status snapshots,
streamed progress events — is one of the dataclasses below, serialized as
JSON and stamped with :data:`PROTOCOL_VERSION`.  Server, client, CLI and
the runner all share these types (re-exported through :mod:`repro.api`),
so the wire format is defined in exactly one place.

Versioning contract:

* every request and every response dict carries ``"version"``;
* a peer that receives a version it does not speak MUST reject the payload
  with :class:`ProtocolError` (the server maps it to HTTP 400 with an
  ``"error"`` body) rather than guess at field semantics;
* *unknown extra keys* are ignored on decode, so additive evolution within
  a version is safe; removals or semantic changes bump the version.

Streamed progress rides as JSONL (``application/x-ndjson``): one event
object per line, ``"type"`` discriminated — ``accepted``, ``point``,
``done``, ``error``.  The full event log of a job is replayable, which is
what makes client reconnect (`GET /v1/stream?job=…&from=N`) lossless.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SubmitRequest",
    "JobStatus",
    "ServerStats",
    "check_version",
    "accepted_event",
    "point_event",
    "done_event",
    "error_event",
]

#: the one protocol version this tree speaks
PROTOCOL_VERSION = 1

#: progress-event sources, in "how much work was saved" order
SOURCES = ("cache", "inflight", "run")


class ProtocolError(ValueError):
    """A payload failed schema or version validation."""


def check_version(payload: dict, what: str = "payload") -> None:
    """Reject any payload whose ``version`` is not :data:`PROTOCOL_VERSION`."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"{what}: expected a JSON object, got {type(payload).__name__}")
    version = payload.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"{what}: protocol version {version!r} not supported; "
            f"this peer speaks version {PROTOCOL_VERSION}"
        )


@dataclass(frozen=True)
class SubmitRequest:
    """A request to run one registered experiment (all of its points).

    ``faults`` is a :meth:`repro.faults.plan.FaultPlan.to_dict` payload (or
    ``None``); it enters every point's cache key exactly as in the batch
    runner, so faulted and healthy results never alias.  ``audit`` is
    ``"strict"``/``"warn"``/``None`` with :func:`repro.runner.run_experiment`
    semantics.  ``tag`` is an opaque client label echoed in status output.
    """

    experiment: str
    quick: bool = False
    faults: Optional[dict] = None
    audit: Optional[str] = None
    tag: str = ""
    version: int = PROTOCOL_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SubmitRequest":
        check_version(payload, "submit request")
        experiment = payload.get("experiment")
        if not isinstance(experiment, str) or not experiment:
            raise ProtocolError("submit request: 'experiment' must be a non-empty string")
        audit = payload.get("audit")
        if audit not in (None, "strict", "warn"):
            raise ProtocolError(
                f"submit request: audit must be 'strict', 'warn' or null, got {audit!r}"
            )
        faults = payload.get("faults")
        if faults is not None and not isinstance(faults, dict):
            raise ProtocolError("submit request: 'faults' must be a fault-plan object or null")
        return cls(
            experiment=experiment,
            quick=bool(payload.get("quick", False)),
            faults=faults,
            audit=audit,
            tag=str(payload.get("tag", "")),
        )


@dataclass(frozen=True)
class JobStatus:
    """Point-granular progress of one submitted job."""

    job_id: str
    experiment: str
    state: str  # "running" | "done" | "error"
    points_total: int
    points_done: int
    sources: Dict[str, int] = field(default_factory=dict)  # cache/inflight/run counts
    tag: str = ""
    wall_s: float = 0.0
    error: Optional[str] = None
    version: int = PROTOCOL_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "JobStatus":
        check_version(payload, "job status")
        return cls(
            job_id=str(payload["job_id"]),
            experiment=str(payload["experiment"]),
            state=str(payload["state"]),
            points_total=int(payload["points_total"]),
            points_done=int(payload["points_done"]),
            sources={str(k): int(v) for k, v in dict(payload.get("sources", {})).items()},
            tag=str(payload.get("tag", "")),
            wall_s=float(payload.get("wall_s", 0.0)),
            error=payload.get("error"),
        )


@dataclass(frozen=True)
class ServerStats:
    """Whole-server snapshot returned by ``GET /v1/status``."""

    uptime_s: float
    jobs_total: int
    jobs_active: int
    points_total: int
    cache_hits: int
    inflight_hits: int
    executed: int
    worker_crashes: int
    fleet_jobs: int
    workers: List[int] = field(default_factory=list)  # live worker PIDs
    inflight_now: int = 0
    cache_dir: Optional[str] = None
    version: int = PROTOCOL_VERSION

    @property
    def hit_ratio(self) -> float:
        """Fraction of requested points served without a fresh simulation."""
        if self.points_total == 0:
            return 0.0
        return (self.cache_hits + self.inflight_hits) / self.points_total

    def to_dict(self) -> dict:
        d = asdict(self)
        d["hit_ratio"] = self.hit_ratio
        return d

    @classmethod
    def from_dict(cls, payload: dict) -> "ServerStats":
        check_version(payload, "server stats")
        return cls(
            uptime_s=float(payload["uptime_s"]),
            jobs_total=int(payload["jobs_total"]),
            jobs_active=int(payload["jobs_active"]),
            points_total=int(payload["points_total"]),
            cache_hits=int(payload["cache_hits"]),
            inflight_hits=int(payload["inflight_hits"]),
            executed=int(payload["executed"]),
            worker_crashes=int(payload["worker_crashes"]),
            fleet_jobs=int(payload["fleet_jobs"]),
            workers=[int(p) for p in payload.get("workers", [])],
            inflight_now=int(payload.get("inflight_now", 0)),
            cache_dir=payload.get("cache_dir"),
        )


# ----------------------------------------------------------------------
# streamed progress events (JSONL lines; plain dicts, version-stamped)
# ----------------------------------------------------------------------
def accepted_event(job_id: str, experiment: str, points_total: int) -> dict:
    return {
        "type": "accepted",
        "version": PROTOCOL_VERSION,
        "job_id": job_id,
        "experiment": experiment,
        "points_total": points_total,
    }


def point_event(job_id: str, point: str, source: str, done: int, total: int) -> dict:
    if source not in SOURCES:
        raise ProtocolError(f"point event: unknown source {source!r}")
    return {
        "type": "point",
        "version": PROTOCOL_VERSION,
        "job_id": job_id,
        "point": point,
        "source": source,
        "done": done,
        "total": total,
    }


def done_event(job_id: str, result: dict, report: dict) -> dict:
    return {
        "type": "done",
        "version": PROTOCOL_VERSION,
        "job_id": job_id,
        "result": result,
        "report": report,
    }


def error_event(job_id: str, message: str) -> dict:
    return {
        "type": "error",
        "version": PROTOCOL_VERSION,
        "job_id": job_id,
        "error": message,
    }
