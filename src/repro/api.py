"""The stable public facade for running experiments (API v1).

Everything a user of this package needs for *executing* experiments —
locally or against a serving daemon — goes through this module.  The CLI
(``python -m repro``), ``scripts/run_all_experiments.py`` and the load-test
harness are all built on it; anything not exported here (runner internals,
server internals, per-figure ``run_figX`` functions) is an implementation
detail with no stability promise.  Requests and responses are the versioned
dataclasses from :mod:`repro.serve.protocol`, re-exported here, so the
programmatic surface and the wire protocol never drift apart.

Local (in-process, via the sharded runner)::

    import repro.api as api

    result = api.run("fig10c", jobs=4, cache=".repro-cache")
    names = api.experiments()
    info = api.cache_info(".repro-cache")

Remote (against ``python -m repro serve``)::

    result = api.run("fig10c", server="/tmp/repro.sock")

    job_id = api.submit("fig12", server="/tmp/repro.sock")
    for event in api.stream(job_id, server="/tmp/repro.sock"):
        print(event)
    result = api.result(job_id, server="/tmp/repro.sock")

The remote path produces byte-identical results to the local serial path:
the daemon executes points through the very same
``execute_point`` → normalize → cache pipeline as the batch runner.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Union

from .client import ServeClient, ServeError, connect
from .experiments.common import REGISTRY, Experiment
from .faults.plan import FaultPlan
from .runner import ResultCache, RunnerError, run_experiment
from .serve.protocol import (
    PROTOCOL_VERSION,
    JobStatus,
    ProtocolError,
    ServerStats,
    SubmitRequest,
)

__all__ = [
    # versioned schema (shared with the wire protocol)
    "PROTOCOL_VERSION",
    "SubmitRequest",
    "JobStatus",
    "ServerStats",
    "ProtocolError",
    # errors
    "RunnerError",
    "ServeError",
    # execution
    "run",
    "submit",
    "status",
    "stream",
    "result",
    # discovery + cache inspection
    "experiments",
    "describe",
    "get_experiment",
    "cache_info",
    "connect",
]

_ExperimentLike = Union[str, Experiment]


def get_experiment(experiment: _ExperimentLike, quick: bool = False) -> Experiment:
    """Resolve a registry name (or pass through an instance), quick-scaled."""
    exp = REGISTRY.get(experiment) if isinstance(experiment, str) else experiment
    return exp.quick() if quick else exp


def experiments(server: Optional[str] = None) -> List[str]:
    """Registered experiment names — from the local registry or a daemon."""
    if server is not None:
        return sorted(ServeClient(server).experiments())
    return REGISTRY.names()


def describe(server: Optional[str] = None) -> Dict[str, str]:
    """``{name: description}`` for every registered experiment."""
    if server is not None:
        return ServeClient(server).experiments()
    return {e.name: e.description for e in REGISTRY.experiments()}


def run(
    experiment: _ExperimentLike,
    quick: bool = False,
    jobs: int = 1,
    cache: Union[str, ResultCache, None] = None,
    progress: Union[bool, Callable[[str, str], None]] = False,
    faults: Union[str, FaultPlan, dict, None] = None,
    audit: Optional[str] = None,
    report: Optional[dict] = None,
    server: Optional[str] = None,
    tag: str = "",
    max_retries: int = 2,
    retry_backoff_s: float = 0.25,
) -> dict:
    """Run one experiment to completion and return its reduced result.

    With ``server=None`` this is the in-process sharded runner
    (:func:`repro.runner.run_experiment`): ``jobs`` worker processes,
    optional local ``cache`` directory.  With a ``server`` address the
    experiment runs on the daemon's warm fleet instead — ``jobs`` and
    ``cache`` are then the *server's* concern and must not be passed.

    ``progress`` may be ``True`` (stderr progress lines, local only) or a
    ``(point_name, source)`` callable; remotely the sources are
    ``"cache"``/``"inflight"``/``"run"``, locally ``"cache"``/``"run"``.
    """
    plan_dict = _faults_dict(faults)
    if server is not None:
        if jobs != 1 or cache is not None:
            raise ValueError(
                "jobs/cache are configured on the daemon, not per request; "
                "drop them or run locally (server=None)"
            )
        if not isinstance(experiment, str):
            raise ValueError(
                f"remote runs address experiments by registry name; pass "
                f"{experiment.name!r} instead of the instance"
            )
        on_progress = progress if callable(progress) else None
        return ServeClient(server).run(
            experiment,
            quick=quick,
            faults=plan_dict,
            audit=audit,
            tag=tag,
            on_progress=on_progress,
            report=report,
        )
    exp = get_experiment(experiment, quick=quick)
    return run_experiment(
        exp,
        jobs=jobs,
        cache=cache,
        progress=progress,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
        report=report,
        faults=FaultPlan.from_dict(plan_dict) if plan_dict is not None else None,
        audit=audit,
    )


def submit(
    experiment: str,
    server: str,
    quick: bool = False,
    faults: Union[str, FaultPlan, dict, None] = None,
    audit: Optional[str] = None,
    tag: str = "",
) -> str:
    """Submit an experiment to a daemon without waiting; returns the job id."""
    return ServeClient(server).submit(
        experiment, quick=quick, faults=_faults_dict(faults), audit=audit, tag=tag
    )


def status(
    server: str, job_id: Optional[str] = None
) -> Union[ServerStats, JobStatus]:
    """Whole-server stats, or one job's point-granular status."""
    client = ServeClient(server)
    if job_id is None:
        return client.server_status()
    return client.job_status(job_id)


def stream(job_id: str, server: str, start: int = 0) -> Iterator[dict]:
    """A job's JSONL event stream (replay from ``start``, then follow live)."""
    return ServeClient(server).stream(job_id, start=start)


def result(job_id: str, server: str, wait: bool = True) -> dict:
    """A job's final reduced result (streams to completion when ``wait``)."""
    return ServeClient(server).result(job_id, wait=wait)


def cache_info(
    cache: Union[str, ResultCache, None] = None, server: Optional[str] = None
) -> Optional[dict]:
    """Inspect a content-addressed result cache (local dir or the daemon's)."""
    if server is not None:
        return ServeClient(server).cache_info()
    if cache is None:
        return None
    store = cache if isinstance(cache, ResultCache) else ResultCache(cache)
    return store.info()


def _faults_dict(faults: Union[str, FaultPlan, dict, None]) -> Optional[dict]:
    """Canonicalize any accepted faults form into a JSON-safe plan dict."""
    if faults is None:
        return None
    if isinstance(faults, str):
        faults = FaultPlan.load(faults)
    if isinstance(faults, FaultPlan):
        return faults.to_dict()
    if isinstance(faults, dict):
        return FaultPlan.from_dict(faults).to_dict()  # validate early
    raise TypeError(f"faults must be a plan, dict, path or None, got {type(faults).__name__}")
