#!/usr/bin/env python3
"""Virtual priorities under a link failure: cut a core link mid-transfer.

A high- and a low-priority PrioPlus flow cross a k=4 fat-tree.  Halfway
through, the core link they are using is cut; ECMP reroutes around it and
the transport retransmits what was lost on the dead link.  Priorities hold
before and after the failure.

Run:  python examples/link_failure.py
"""

from repro import ChannelConfig, Flow, FlowSender, PrioPlusCC, Simulator, StartTier, Swift, SwiftParams, fat_tree
from repro.sim.switch import SwitchConfig


def main() -> None:
    sim = Simulator(seed=7)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9, switch_cfg=cfg)
    src, dst = hosts[0], hosts[-1]
    channels = ChannelConfig(n_priorities=8)

    low = Flow(1, src, dst, 2_000_000, vpriority=1, start_ns=0)
    high = Flow(2, hosts[1], dst, 800_000, vpriority=6, start_ns=200_000)
    FlowSender(sim, net, low,
               PrioPlusCC(Swift(SwiftParams(target_scaling=False)), channels, 1,
                          tier=StartTier.LOW), rto_ns=300_000)
    FlowSender(sim, net, high,
               PrioPlusCC(Swift(SwiftParams(target_scaling=False)), channels, 6,
                          tier=StartTier.HIGH), rto_ns=300_000)

    # cut the core link on the low flow's current path at t = 400 us
    path = net.path_ports(src, dst)
    agg_port = path[2]
    agg = next(s for s in net.switches if agg_port in s.ports)
    core = agg_port.peer

    def cut():
        dropped = net.set_link_state(agg, core, up=False)
        net.rebuild_routes()
        print(f"t={sim.now / 1e3:.0f}us: cut {agg.name} <-> {core.name} "
              f"({dropped} packets lost in queues); routes rebuilt")

    sim.after(400_000, cut)
    sim.run(until=2_000_000_000)

    print(f"high-priority flow: done={high.done}, FCT={high.fct_ns() / 1e3:.0f} us, "
          f"retransmits={high.retransmits}")
    print(f"low-priority flow:  done={low.done}, FCT={low.fct_ns() / 1e3:.0f} us, "
          f"retransmits={low.retransmits}")
    print("both completed over the surviving paths; priority held throughout")


if __name__ == "__main__":
    main()
