#!/usr/bin/env python3
"""Coflow scheduling with virtual priorities (the paper's §6.2 scenario).

Synthesises Hadoop-style shuffle coflows plus file-request incasts on a
multi-rack fabric, groups jobs into 8 size classes (smallest = highest
priority), and compares coflow completion times under

* Swift with no prioritisation (baseline),
* PrioPlus+Swift — 8 virtual priorities inside ONE switch queue,
* Swift with 8 physical priority queues.

Run:  python examples/coflow_scheduling.py   (~1 minute)
"""

from repro.experiments.coflow_scenario import CoflowConfig, run_coflow_comparison
from repro.experiments.common import Mode
from repro.experiments.report import print_table


def main() -> None:
    cfg = CoflowConfig(
        n_racks=2,
        hosts_per_rack=3,
        host_rate_bps=25e9,
        core_rate_bps=100e9,
        load=0.6,
        duration_ns=1_500_000,
        mean_flow_bytes=500_000,
        request_piece_bytes=300_000,
    )
    result = run_coflow_comparison([Mode.PRIOPLUS, Mode.PHYSICAL], cfg)
    rows = []
    for mode, s in result["speedups"].items():
        rows.append([
            mode,
            f"{s['overall']:.2f}x",
            f"{s.get('high4', float('nan')):.2f}x",
            f"{s.get('low4', float('nan')):.2f}x",
        ])
    print(f"jobs: {result['n_jobs']}   baseline: {result['baseline']}")
    print_table(
        ["mode", "overall CCT speedup", "small coflows (high-4)", "large coflows (low-4)"],
        rows,
        title="Coflow completion-time speedup vs unprioritised Swift",
    )
    print("\nPrioPlus delivers the prioritisation with a single physical queue;")
    print("the physical row needs 9 hardware queues (8 + ACK).")


if __name__ == "__main__":
    main()
