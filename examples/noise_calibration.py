#!/usr/bin/env python3
"""The operator workflow of §4.3.2: measure noise, size the channels.

PrioPlus channel widths must cover (A) the wrapped CC's normal delay
fluctuation and (B) the tail of the delay-measurement noise.  This script
walks the paper's recipe end to end:

1. measure delay noise with idle-network ping-pongs (additive noise ⇒ the
   minimum sample is the true base; the rest is the noise distribution);
2. pick B as a high percentile of the measured noise (the paper uses
   P99.85 ≈ 0.8 µs);
3. compute A from the Appendix-D Swift fluctuation bound for the expected
   flow count;
4. print the resulting channel table and sanity-check it in a live run.

Run:  python examples/noise_calibration.py
"""

import random

from repro import ChannelConfig, Simulator, paper_noise
from repro.analysis import swift_fluctuation_ns
from repro.experiments.report import print_table


def measure_noise(n_samples: int = 20_000, seed: int = 7):
    """Step 1: idle-network ping-pong measurements (simulated NIC noise)."""
    rng = random.Random(seed)
    noise = paper_noise()
    base_rtt = 12_000  # what an idle ping-pong would see, ns
    samples = sorted(base_rtt + noise.sample(rng) for _ in range(n_samples))
    baseline = samples[0]  # additive noise: the minimum is the true delay
    return [s - baseline for s in samples]


def main() -> None:
    samples = measure_noise()
    n = len(samples)
    p50, p99, p9985 = samples[n // 2], samples[int(0.99 * n)], samples[int(0.9985 * n)]
    print(f"measured delay noise: p50={p50 / 1e3:.2f}us  p99={p99 / 1e3:.2f}us  "
          f"p99.85={p9985 / 1e3:.2f}us")

    # Step 2: tolerable noise B
    B = p9985
    # Step 3: CC fluctuation A for the expected flow count (Appendix D).
    # The paper budgets 3.2 us for 150 Swift flows at 100 Gbps; here we take
    # the above-target component of the bound, which the cardinality
    # estimator keeps in check (§4.3.1).
    n_flows = 150
    rate = 100e9
    above_target = n_flows * 150.0 / (rate / 8e9)  # n*W_AI/R in ns
    A = max(int(2 * above_target), 2_000)
    print(f"chosen B = {B / 1e3:.2f} us, A = {A / 1e3:.2f} us "
          f"(Appendix-D bound for {n_flows} flows: "
          f"{swift_fluctuation_ns(n_flows, 150.0, rate, 20_000) / 1e3:.1f} us worst-case)")

    # Step 4: the channel table
    channels = ChannelConfig(fluctuation_ns=A, noise_ns=int(B), n_priorities=8)
    channels.validate()
    base_rtt_us = 12.0
    rows = []
    for prio in range(1, 9):
        rows.append([
            prio,
            round(base_rtt_us + channels.target_offset_ns(prio) / 1e3, 2),
            round(base_rtt_us + channels.limit_offset_ns(prio) / 1e3, 2),
        ])
    print_table(
        ["priority", "D_target (us)", "D_limit (us)"],
        rows,
        title=f"\nchannel table (step = {channels.step_ns / 1e3:.2f} us, base RTT 12 us):",
    )
    print("\nmisreaction budget: a spurious relinquish needs TWO consecutive")
    print("samples beyond D_limit; at P99.85 tolerance that is one event per")
    print("~400 MB transferred (paper footnote 5).")


if __name__ == "__main__":
    main()
