#!/usr/bin/env python3
"""Interleaving model-training traffic with virtual priorities (§6.2, Fig 12c).

Two ResNet and two VGG data-parallel jobs share a 2:1 oversubscribed
leaf-spine fabric, rings interleaved across leaves.  Each model's ring
all-reduce traffic gets its own priority.  The script reports training speed
(iterations in the window) per model family, relative to the unprioritised
Swift baseline, for PrioPlus and for physical priority queues.

Run:  python examples/ml_training.py   (~1 minute)
"""

from repro.experiments.common import Mode
from repro.experiments.mltrain import MlTrainConfig, run_mltrain_comparison
from repro.experiments.report import print_table


def main() -> None:
    cfg = MlTrainConfig(duration_ns=8_000_000)
    result = run_mltrain_comparison(cfg=cfg)
    base = result["baseline"]["iters_per_job"]
    print("baseline iterations/window:",
          {k: round(v, 2) for k, v in base.items()})
    rows = []
    for mode, s in result["speedups"].items():
        rows.append([
            mode,
            f"{s.get('resnet', float('nan')):.2f}x",
            f"{s.get('vgg', float('nan')):.2f}x",
            f"{s.get('overall', float('nan')):.2f}x",
        ])
    print_table(
        ["mode", "ResNet speedup", "VGG speedup", "overall"],
        rows,
        title="Training-speed speedup vs unprioritised Swift",
    )
    print("\nPhysical strict priority starves the lower-priority family (VGG);")
    print("PrioPlus reclaims leftover bandwidth quickly enough to hurt it less,")
    print("while still accelerating the favoured family.")


if __name__ == "__main__":
    main()
