#!/usr/bin/env python3
"""Quickstart: virtual priority with PrioPlus in ~40 lines.

Two flows share ONE physical switch queue on a 10 Gbps bottleneck.  A large
low-priority transfer starts first; a small high-priority transfer arrives
mid-way.  With PrioPlus the high-priority flow preempts the bandwidth almost
as if it had its own hardware priority queue — and the low-priority flow
reclaims the link the moment it finishes.

Run:  python examples/quickstart.py
"""

from repro import (
    ChannelConfig,
    Flow,
    FlowSender,
    PrioPlusCC,
    Simulator,
    StartTier,
    Swift,
    SwiftParams,
    star,
)

RATE = 10e9  # 10 Gbps bottleneck


def prioplus(channels: ChannelConfig, vpriority: int, tier: str) -> PrioPlusCC:
    """PrioPlus wraps a delay-based CC; here: Swift without target scaling."""
    return PrioPlusCC(
        Swift(SwiftParams(target_scaling=False)), channels, vpriority=vpriority, tier=tier
    )


def main() -> None:
    sim = Simulator(seed=1)
    net, senders, receiver = star(sim, n_senders=2, rate_bps=RATE, link_delay_ns=1500)
    channels = ChannelConfig(n_priorities=8)  # the paper's 4 us channels

    low = Flow(1, senders[0], receiver, size_bytes=2_000_000, vpriority=1, start_ns=0)
    high = Flow(2, senders[1], receiver, size_bytes=500_000, vpriority=6, start_ns=300_000)

    FlowSender(sim, net, low, prioplus(channels, 1, StartTier.LOW))
    s_high = FlowSender(sim, net, high, prioplus(channels, 6, StartTier.HIGH))

    sim.run(until=50_000_000)

    ideal_high = high.size_bytes * 8e9 / RATE + s_high.base_rtt
    print(f"high-priority flow: {high.fct_ns() / 1e3:8.1f} us "
          f"(ideal {ideal_high / 1e3:.1f} us -> {high.fct_ns() / ideal_high:.2f}x)")
    print(f"low-priority flow:  {low.fct_ns() / 1e3:8.1f} us "
          f"(yielded {low.tag or ''}{500_000 * 8e9 / RATE / 1e3:.0f} us of line time to the high flow)")
    print(f"probes sent by the low flow while yielding: {low.probes_sent}")
    assert high.fct_ns() < 1.5 * ideal_high, "high priority should be near-ideal"


if __name__ == "__main__":
    main()
