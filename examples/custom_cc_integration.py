#!/usr/bin/env python3
"""Integrating PrioPlus with a different delay-based CC (LEDBAT, §4.4).

PrioPlus is a *wrapper*: any CC that exposes ``target_delay_ns``,
``ai_bytes`` and ``set_target_scaling`` can gain virtual priority.  This
example wraps LEDBAT — a scavenger transport that normally supports only
"one priority below best effort" — and shows it suddenly supporting a
ladder of strict priorities, then does the same with a custom toy CC to
demonstrate the full integration surface.

Run:  python examples/custom_cc_integration.py
"""

from repro import ChannelConfig, Flow, FlowSender, Ledbat, PrioPlusCC, Simulator, StartTier, star
from repro.cc.base import CongestionControl
from repro.transport.flow import AckInfo

RATE = 10e9


class ToyDelayCC(CongestionControl):
    """Minimal delay-based CC implementing the PrioPlus integration surface.

    Window rule: +ai per RTT below target, multiplicative 0.85 above.
    """

    def __init__(self):
        super().__init__()
        self.target_delay_ns = 0  # set by PrioPlus to the channel target
        self.ai_bytes = 0.0  # adjusted by PrioPlus (cardinality / dual-RTT)

    def configure(self):
        self.target_delay_ns = self.base_rtt + 10_000
        self.ai_bytes = float(self.mtu)

    def set_target_scaling(self, enabled: bool):
        """No scaling heuristic to disable — present for the interface."""

    def on_ack(self, info: AckInfo):
        if info.acked_bytes <= 0:
            return
        if info.delay_ns < self.target_delay_ns:
            self.cwnd += self.ai_bytes * info.acked_bytes / max(self.cwnd, self.mtu)
        else:
            self.cwnd *= 0.85
        self.clamp()


def run(make_cc, label: str) -> None:
    sim = Simulator(seed=3)
    net, senders, receiver = star(sim, n_senders=2, rate_bps=RATE, link_delay_ns=1500)
    channels = ChannelConfig(n_priorities=8)
    low = Flow(1, senders[0], receiver, 2_000_000, vpriority=1, start_ns=0)
    high = Flow(2, senders[1], receiver, 500_000, vpriority=5, start_ns=300_000)
    FlowSender(sim, net, low, PrioPlusCC(make_cc(), channels, 1, tier=StartTier.LOW))
    s_hi = FlowSender(sim, net, high, PrioPlusCC(make_cc(), channels, 5, tier=StartTier.HIGH))
    sim.run(until=100_000_000)
    ideal_high = high.size_bytes * 8e9 / RATE + s_hi.base_rtt
    print(f"{label:24s} high FCT {high.fct_ns() / 1e3:7.1f} us "
          f"({high.fct_ns() / ideal_high:.2f}x ideal), low FCT {low.fct_ns() / 1e3:7.1f} us")


def main() -> None:
    print("PrioPlus wrapped around three different delay-based CCs:")
    from repro import Swift, SwiftParams

    run(lambda: Swift(SwiftParams(target_scaling=False)), "PrioPlus + Swift")
    run(lambda: Ledbat(), "PrioPlus + LEDBAT")
    run(lambda: ToyDelayCC(), "PrioPlus + ToyDelayCC")


if __name__ == "__main__":
    main()
