#!/usr/bin/env python3
"""Plan a datacenter's queue layout (§2.3): isolation outside, scheduling inside.

Three traffic classes share an 8-queue switch.  Physical queues isolate the
classes; PrioPlus channels provide scheduling *within* the classes that
need it.  The planner sizes each class's channel ladder from its expected
flow count and validates latency SLOs, then the script drives one planned
class end-to-end to show the plan working.

Run:  python examples/queue_planning.py
"""

from repro import Flow, FlowSender, Simulator, StartTier, Swift, SwiftParams, star
from repro.core import PrioPlusCC, TrafficClass, plan_queues
from repro.sim.switch import SwitchConfig


def main() -> None:
    plan = plan_queues(
        [
            TrafficClass("bulk-storage", n_virtual_priorities=8, expected_flows=300),
            TrafficClass("ml-training", n_virtual_priorities=4, expected_flows=64),
            TrafficClass("latency-rpc", n_virtual_priorities=4, expected_flows=32,
                         max_added_delay_ns=100_000),
        ],
        line_rate_bps=100e9,
        noise_tolerance_ns=800,
    )
    print(plan.describe())

    # drive the ml-training class: two of its virtual priorities share the
    # class's single physical queue
    channels = plan.channels_of["ml-training"]
    q = plan.physical_queue_of["ml-training"]
    sim = Simulator(seed=1)
    cfg = SwitchConfig(n_queues=plan.n_physical_queues, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    lo = Flow(1, senders[0], recv, 2_000_000, priority=q, vpriority=1, start_ns=0)
    hi = Flow(2, senders[1], recv, 500_000, priority=q, vpriority=4, start_ns=300_000)
    FlowSender(sim, net, lo, PrioPlusCC(Swift(SwiftParams(target_scaling=False)),
                                        channels, 1, tier=StartTier.LOW),
               ack_priority=plan.ack_queue)
    s_hi = FlowSender(sim, net, hi, PrioPlusCC(Swift(SwiftParams(target_scaling=False)),
                                               channels, 4, tier=StartTier.HIGH),
                      ack_priority=plan.ack_queue)
    sim.run(until=100_000_000)
    ideal = hi.size_bytes * 8e9 / 10e9 + s_hi.base_rtt
    print(f"\nml-training class on physical queue {q}:")
    print(f"  high virtual priority FCT: {hi.fct_ns() / 1e3:.1f} us ({hi.fct_ns() / ideal:.2f}x ideal)")
    print(f"  low  virtual priority FCT: {lo.fct_ns() / 1e3:.1f} us (yielded, then reclaimed)")


if __name__ == "__main__":
    main()
