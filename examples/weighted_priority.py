#!/usr/bin/env python3
"""Weighted virtual priority (§7 future work), prototyped.

Strict PrioPlus gives a preempted flow *zero* bandwidth.  The weighted
variant guarantees it a configurable residual share instead — useful when
"low priority" means "less", not "nothing".  This demo sweeps the weight
and shows the trade: the high-priority flow's FCT grows slightly as the
low-priority floor rises, while the low flow's FCT improves.

Run:  python examples/weighted_priority.py
"""

from repro import ChannelConfig, Flow, FlowSender, Simulator, StartTier, Swift, SwiftParams, star
from repro.core import WeightedPrioPlusCC, aggregate_floor_share
from repro.experiments.report import print_table

RATE = 10e9


def run(weight: float):
    sim = Simulator(seed=1)
    net, senders, recv = star(sim, 2, rate_bps=RATE, link_delay_ns=1000)
    ch = ChannelConfig(n_priorities=8)
    lo = Flow(1, senders[0], recv, 3_000_000, vpriority=1, start_ns=0)
    hi = Flow(2, senders[1], recv, 2_000_000, vpriority=5, start_ns=200_000)
    FlowSender(sim, net, lo, WeightedPrioPlusCC(
        Swift(SwiftParams(target_scaling=False)), ch, 1, weight=weight, tier=StartTier.LOW))
    FlowSender(sim, net, hi, WeightedPrioPlusCC(
        Swift(SwiftParams(target_scaling=False)), ch, 5, weight=weight, tier=StartTier.HIGH))
    sim.run(until=100_000_000)
    return hi.fct_ns() / 1e3, lo.fct_ns() / 1e3


def main() -> None:
    rows = []
    for weight in (0.0, 0.05, 0.1, 0.2, 0.4):
        hi_fct, lo_fct = run(weight)
        rows.append([weight, round(hi_fct, 1), round(lo_fct, 1)])
    print_table(
        ["weight", "high-prio FCT (us)", "low-prio FCT (us)"],
        rows,
        title="Weighted virtual priority: residual share vs strictness",
    )
    print("\npriority-inversion check (the paper's §7 concern): with weight 0.1")
    print("and 50 preempted flows against an estimate of 10, the lows could")
    print(f"hold {aggregate_floor_share(0.1, 50, 10.0):.0%} of the line — operators must size")
    print("weights against the cardinality estimate.")


if __name__ == "__main__":
    main()
