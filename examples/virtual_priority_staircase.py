#!/usr/bin/env python3
"""The Fig-8 staircase, with an ASCII bandwidth timeline.

Four virtual priorities (channels 3-6), two flows each, share ONE physical
queue.  Flows start lowest-priority-first and end in the same order, so the
"reigning" priority changes every interval.  The timeline shows each
priority's share of the bottleneck over time — a staircase up, then down.

Run:  python examples/virtual_priority_staircase.py
"""

from repro import ChannelConfig, Flow, FlowSender, PrioPlusCC, Simulator, StartTier, Swift, SwiftParams, star
from repro.experiments.common import RateSampler

RATE = 10e9
STAGGER_NS = 2_000_000
PRIORITIES = (3, 4, 5, 6)
FLOWS_PER_PRIO = 2


def main() -> None:
    sim = Simulator(seed=1)
    net, senders, receiver = star(
        sim, n_senders=len(PRIORITIES) * FLOWS_PER_PRIO, rate_bps=RATE, link_delay_ns=1500
    )
    channels = ChannelConfig(n_priorities=max(PRIORITIES))

    snds = []
    fid = 1
    for rank, prio in enumerate(PRIORITIES):
        size = int(RATE * 2 * STAGGER_NS / 8e9 / FLOWS_PER_PRIO)
        for j in range(FLOWS_PER_PRIO):
            host = senders[rank * FLOWS_PER_PRIO + j]
            flow = Flow(fid, host, receiver, size, vpriority=prio,
                        start_ns=rank * STAGGER_NS, tag=prio)
            fid += 1
            cc = PrioPlusCC(Swift(SwiftParams(target_scaling=False)), channels,
                            vpriority=prio, tier=StartTier.MEDIUM)
            snds.append(FlowSender(sim, net, flow, cc))

    sampler = RateSampler(sim, snds, key=lambda s: s.flow.tag, interval_ns=200_000)
    total = 2 * len(PRIORITIES) * STAGGER_NS
    sim.run(until=int(total * 1.3))

    print(f"{'time (ms)':>10} | " + " | ".join(f"prio {p}" for p in PRIORITIES) + " | share timeline")
    times = sorted({t for series in sampler.series.values() for t, _ in series})
    for t in times:
        shares = []
        for p in PRIORITIES:
            rate = dict(sampler.series.get(p, [])).get(t, 0.0)
            shares.append(rate / RATE)
        bar = ""
        for p, s in zip(PRIORITIES, shares):
            bar += str(p) * int(round(s * 20))
        cells = " | ".join(f"{s:6.2f}" for s in shares)
        print(f"{t / 1e6:>10.2f} | {cells} | {bar}")


if __name__ == "__main__":
    main()
