#!/usr/bin/env python3
"""Run every experiment at record scale and print the EXPERIMENTS.md tables.

This is the heavyweight companion to ``pytest benchmarks/``: larger sweeps,
more priority counts, both coflow loads, the full Fig 13 grid.  Expect
~10-20 minutes.

Usage:  python scripts/run_all_experiments.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import buffer_bandwidth_ratios, start_strategy_costs
from repro.experiments.common import Mode
from repro.experiments.coflow_scenario import run_coflow_comparison
from repro.experiments.fig3_micro import run_fig3a, run_fig3b, run_fig3c, run_fig3d
from repro.experiments.fig6_dualrtt import run_fig6
from repro.experiments.fig8_testbed import run_fig8
from repro.experiments.fig9_fluct import run_fig9
from repro.experiments.fig10_micro import run_fig10a, run_fig10b, run_fig10c, run_fig10d
from repro.experiments.fig12_coflow import ci_config
from repro.experiments.fig13_noncongestive import run_fig13
from repro.experiments.fig14_breakdown import normalize_to_physical, run_fig14
from repro.experiments.fig16_ack_hpcc import run_fig16
from repro.experiments.flowsched import FlowSchedConfig, run_flowsched
from repro.experiments.ablations import (
    run_cardinality_ablation,
    run_collision_avoidance_ablation,
    run_filter_ablation,
)
from repro.experiments.ecn_priority import run_ecn_priority
from repro.experiments.headroom_pressure import run_headroom_sweep
from repro.experiments.mltrain import MlTrainConfig, run_mltrain_comparison
from repro.experiments.report import print_table
from repro.experiments.table2_validation import run_table2_validation
from repro.sim.engine import MILLISECOND


def section(title: str):
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true", help="benchmark-scale instead of record-scale")
    args = parser.parse_args()
    quick = args.quick
    t_start = time.time()

    section("Fig 2 — buffer/bandwidth ratios")
    print_table(["chip", "year", "MB/Tbps"],
                [(n, y, round(r, 1)) for n, y, r in buffer_bandwidth_ratios()])

    section("Table 2 — start strategies (n = 8 RTTs)")
    costs = start_strategy_costs(8)
    print_table(["strategy", "bytes delayed (BDP)", "max extra buffer (BDP)"],
                [(k, v["bytes_delayed_bdp"], v["max_extra_buffer_bdp"]) for k, v in costs.items()])

    section("Fig 3 — existing CCs cannot do virtual priority")
    print("3a D2TCP:", run_fig3a(size_bytes=1_000_000))
    print("3b Swift+scaling:", run_fig3b(duration_ns=3 * MILLISECOND))
    print("3c Swift w/o scaling:", run_fig3c(n_low=100 if quick else 300, duration_ns=4 * MILLISECOND))
    print("3d min-rate trade-off:", run_fig3d())

    section("Fig 6 — dual-RTT observability")
    print(run_fig6())

    section("Fig 8 — testbed staircase (priorities 3-6)")
    stagger = (2 if quick else 4) * MILLISECOND
    for mode in (Mode.PRIOPLUS, Mode.SWIFT_TARGETS):
        r = run_fig8(mode, stagger_ns=stagger)
        print(f"{mode}: takeover_us={[round(t) for t in r['takeover_us']]} "
              f"reclaim_us={[round(t) for t in r['reclaim_us']]} "
              f"leak={r['max_leak_share']:.3f} util={r['utilization']:.3f}")

    section("Fig 9 — fluctuation management (inflated W_AI)")
    for mode in (Mode.PRIOPLUS, Mode.SWIFT_TARGETS):
        print(run_fig9(mode, duration_ns=(6 if quick else 10) * MILLISECOND))

    section("Fig 10 — micro-benchmarks")
    r = run_fig10a(
        n_priorities=4 if quick else 8,
        flows_per_prio=5 if quick else 15,
        rate=25e9 if quick else 100e9,
        stagger_ns=(1 if quick else 2) * MILLISECOND,
    )
    print("10a:", {k: r[k] for k in ("max_leak_share", "max_reclaim_us", "utilization")})
    print("10b:", run_fig10b(n_flows=60 if quick else 300, rate=25e9 if quick else 100e9,
                             duration_ns=3 * MILLISECOND))
    for dual in (True, False):
        print("10c dual=%s:" % dual,
              run_fig10c(dual, n_each=5 if quick else 10, rate=25e9 if quick else 100e9,
                         duration_ns=2 * MILLISECOND, hi_start_ns=700_000))
    print("10d:", run_fig10d(noise_scales=(1.0, 2.0, 4.0, 8.0), n_flows=3 if quick else 5,
                             rate=25e9, duration_ns=1_500_000))

    section("Fig 11 — flow scheduling FCT vs #priorities")
    cfg = FlowSchedConfig(rate_bps=100e9, duration_ns=(300_000 if quick else 600_000), size_scale=0.1)
    prios = (4, 8) if quick else (2, 4, 6, 8, 10, 12)
    rows = []
    for n in prios:
        for mode in (Mode.PRIOPLUS, Mode.PHYSICAL, Mode.PHYSICAL_IDEAL, Mode.PHYSICAL_IDEAL_NOCC):
            if mode == Mode.PHYSICAL and n > 8:
                continue
            r = run_flowsched(mode, n, cfg)
            fct = r["fct"]
            rows.append([
                n, mode, r["pfc_pauses"],
                round(fct["all"]["mean_us"], 1), round(fct["all"]["p99_us"], 1),
                round(fct.get("small", {}).get("mean_us", float("nan")), 1),
                round(fct.get("middle", {}).get("mean_us", float("nan")), 1),
                round(fct.get("large", {}).get("mean_us", float("nan")), 1),
            ])
            print(f"  ... n={n} {mode} done")
    print_table(["#prios", "mode", "pfc", "all mean", "all p99", "small", "middle", "large"], rows)

    section("Fig 12a/12b/15 — coflow speedups")
    for load in (0.4, 0.7):
        c = ci_config(load=load, duration_ns=(1_500_000 if quick else 2_500_000))
        res = run_coflow_comparison([Mode.PRIOPLUS, Mode.PHYSICAL], c)
        print(f"load={load} jobs={res['n_jobs']}")
        for mode, s in res["speedups"].items():
            print(f"  {mode}: {({k: round(v, 3) for k, v in s.items()})}")

    section("Fig 12c — ML training")
    res = run_mltrain_comparison(cfg=MlTrainConfig(duration_ns=(8 if quick else 16) * MILLISECOND))
    print("baseline iters:", {k: round(v, 2) for k, v in res["baseline"]["iters_per_job"].items()})
    for mode, s in res["speedups"].items():
        print(f"  {mode}: {({k: round(v, 3) for k, v in s.items()})}")

    section("Fig 13 — non-congestive delay grid")
    grid = run_fig13(
        tolerances_us=(10.0, 20.0, 30.0),
        ranges_us=(0.0, 8.0, 16.0, 24.0, 32.0, 40.0) if not quick else (0.0, 16.0, 40.0),
        stagger_ns=500_000,
    )
    for tol, series in grid.items():
        print(f"  tolerance {tol} us:", {k: round(v, 3) for k, v in series.items()})

    section("Fig 14 — per-priority-level breakdown")
    cfg14 = FlowSchedConfig(rate_bps=100e9, duration_ns=(400_000 if quick else 700_000),
                            size_scale=0.1, load=0.5)
    results = {}
    for mode in (Mode.PRIOPLUS, Mode.PHYSICAL_IDEAL, Mode.PHYSICAL_IDEAL_NOCC, Mode.D2TCP):
        results[mode] = run_fig14(mode, n_priorities=6 if quick else 12, cfg=cfg14)
        print(f"  ... {mode} done")
    norm = normalize_to_physical(results)
    for mode, cells in norm.items():
        print(f"  {mode}: " + ", ".join(f"{t}/{b}={v:.2f}" for (t, b), v in sorted(cells.items())))

    section("Fig 16 — PrioPlus* and HPCC (flow scheduling)")
    for r in run_fig16(cfg=FlowSchedConfig(rate_bps=100e9, duration_ns=(300_000 if quick else 500_000), size_scale=0.1)):
        print(f"  {r['mode']}: mean={r['fct']['all']['mean_us']:.1f}us p99={r['fct']['all']['p99_us']:.1f}us")

    section("Fig 17 — lossy environment (PFC off, IRN-style)")
    res = run_coflow_comparison([Mode.PRIOPLUS, Mode.PHYSICAL],
                                ci_config(load=0.7, duration_ns=1_500_000, lossy=True))
    for mode, s in res["speedups"].items():
        print(f"  {mode}: {({k: round(v, 3) for k, v in s.items()})}")

    section("Fig 18 — coflows with HPCC and Physical w/o CC")
    res = run_coflow_comparison([Mode.PRIOPLUS, Mode.HPCC, Mode.PHYSICAL_IDEAL_NOCC],
                                ci_config(load=0.7, duration_ns=1_500_000))
    for mode, s in res["speedups"].items():
        print(f"  {mode}: {({k: round(v, 3) for k, v in s.items()})}")

    section("Table 2 — empirical start-strategy validation")
    for name, v in run_table2_validation().items():
        print(f"  {name}: peak extra buffer {v['peak_extra_buffer_bdp']:.3f} BDP, "
              f"FCT {v['fct_ns'] / 1e3:.1f} us")

    section("Ablations — filter / cardinality / collision avoidance")
    for fc in (2, 1):
        print(" ", run_filter_ablation(fc))
    for ce in (True, False):
        print(" ", run_cardinality_ablation(ce))
    for ca in (True, False):
        print(" ", run_collision_avoidance_ablation(ca))

    section("Appendix B — per-priority ECN marking")
    print("  uniform:", run_ecn_priority(False))
    print("  per-priority:", run_ecn_priority(True))

    section("§2.2 — headroom vs shared pool")
    for r in run_headroom_sweep(n_priorities_list=(2, 4, 6, 8), n_senders=32,
                                buffer_mb_per_tbps=2.0, headroom_bytes=12_000,
                                duration_ns=2_000_000):
        print(f"  {r['mode']} n={r['n_priorities']}: shared={r['shared_pool_bytes'] // 1024}KB "
              f"pfc={int(r['pfc_pauses'])} small_p99={r['small_p99_us']:.0f}us")

    print(f"\nTotal wall time: {time.time() - t_start:.0f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
