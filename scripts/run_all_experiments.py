#!/usr/bin/env python3
"""Run every registered experiment through the parallel runner.

Each experiment's independent points are sharded across a process pool
(``--jobs``, default: all cores) and its reduced result is written to one
JSON artifact per experiment under ``--out``.  With ``--cache`` a rerun
skips every point whose result is already on disk, so an interrupted sweep
resumes where it stopped.

With ``--server`` the sweep runs against a ``python -m repro serve`` daemon
instead of local worker processes — the daemon's warm fleet, cache and
in-flight dedupe are shared with every other client (see docs/SERVE.md).

Usage:
    python scripts/run_all_experiments.py                       # everything, parallel
    python scripts/run_all_experiments.py --serial              # one process
    python scripts/run_all_experiments.py --only fig8,fig10c
    python scripts/run_all_experiments.py --cache .cache/repro --out results/
    python scripts/run_all_experiments.py --server /tmp/repro.sock

Expect tens of minutes for the full set; ``--only`` is the practical way to
iterate on one figure.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import repro.api as api
from repro.analysis import buffer_bandwidth_ratios, start_strategy_costs
from repro.experiments.report import print_table
from repro.runner import RunnerError
from repro.runner.cache import json_safe


def _analysis_tables() -> None:
    """The two pure-analysis tables that need no simulation."""
    print("Fig 2 — buffer/bandwidth ratios")
    print_table(
        ["chip", "year", "MB/Tbps"],
        [(n, y, round(r, 1)) for n, y, r in buffer_bandwidth_ratios()],
    )
    print("\nTable 2 — analytic start-strategy costs (n = 8 RTTs)")
    costs = start_strategy_costs(8)
    print_table(
        ["strategy", "bytes delayed (BDP)", "max extra buffer (BDP)"],
        [(k, v["bytes_delayed_bdp"], v["max_extra_buffer_bdp"]) for k, v in costs.items()],
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=os.cpu_count() or 1,
        metavar="N",
        help="worker processes per experiment (default: all cores)",
    )
    parser.add_argument(
        "--serial", action="store_true", help="run everything in this process (implies --jobs 1)"
    )
    parser.add_argument("--cache", metavar="DIR", help="content-addressed result cache directory")
    parser.add_argument(
        "--server",
        metavar="ADDR",
        help="run on a serving daemon (host:port or unix socket path) instead "
        "of local workers; --jobs/--cache are then the daemon's concern",
    )
    parser.add_argument(
        "--out", default="results", metavar="DIR", help="per-experiment JSON artifact directory"
    )
    parser.add_argument(
        "--only",
        metavar="NAMES",
        help="comma-separated experiment names to run (default: all registered)",
    )
    parser.add_argument(
        "--no-tables", action="store_true", help="skip the pure-analysis tables"
    )
    args = parser.parse_args()
    jobs = 1 if args.serial else max(1, args.jobs)

    names = api.experiments()
    if args.only:
        wanted = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = sorted(set(wanted) - set(names))
        if unknown:
            print(f"unknown experiments: {unknown}; known: {names}", file=sys.stderr)
            return 2
        names = wanted

    if not args.no_tables:
        _analysis_tables()

    os.makedirs(args.out, exist_ok=True)
    t_start = time.time()
    failures = []
    descriptions = api.describe()
    for name in names:
        report: dict = {}
        t0 = time.time()
        try:
            if args.server:
                result = api.run(name, server=args.server, report=report, tag="run_all")
            else:
                result = api.run(
                    name, jobs=jobs, cache=args.cache, progress=True, report=report
                )
        except (RunnerError, api.ServeError) as exc:
            failures.append(name)
            print(f"FAILED {name}: {exc}", file=sys.stderr)
            continue
        artifact = {
            "experiment": name,
            "description": descriptions.get(name, ""),
            "report": report,
            "result": json_safe(result),
        }
        path = os.path.join(args.out, f"{name}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"{name}: {report.get('points', '?')} points, "
            f"{report.get('cache_hits', 0)} cached, "
            f"{time.time() - t0:.1f}s -> {path}"
        )

    print(f"\nTotal wall time: {time.time() - t_start:.0f} s ({len(names)} experiments, jobs={jobs})")
    if failures:
        print(f"failed: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
