#!/usr/bin/env python3
"""Load-test the experiment-serving daemon and write ``BENCH_serve.json``.

Boots an embedded :class:`repro.serve.BackgroundServer` on a unix socket and
drives it through four phases:

1. **cold** — a sweep of quick experiments against an empty cache; every
   point is a fresh simulation.
2. **warm** — the identical sweep again; every point must come from the
   content-addressed cache.
3. **overlap** — N clients submit the *same uncached* sweep concurrently;
   the in-flight table must collapse the duplicate executions (combined
   cache+inflight hit ratio >= 0.5, the acceptance threshold).
4. **chaos** — a worker is SIGKILLed mid-request; the fleet rebuilds and the
   request must still succeed (crash-retry, never a client-visible failure).

Results are byte-compared against the serial in-process runner throughout —
the daemon must be a pure performance/dedupe layer, never a semantic one.

Usage:
    PYTHONPATH=src python scripts/load_test_serve.py
    PYTHONPATH=src python scripts/load_test_serve.py --clients 4 --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import statistics
import sys
import tempfile
import threading
import time

from repro import api
from repro.client import ServeClient, connect
from repro.experiments.common import REGISTRY, FunctionExperiment
from repro.runner.cache import json_safe
from repro.serve import BackgroundServer

#: quick sweeps used for the cold/warm phases
COLD_EXPERIMENTS = ("fig6", "fig3a", "fig3b")
#: a sweep kept out of the cold/warm phases so the overlap phase races on it
OVERLAP_EXPERIMENT = "fig9"


def _chaos_point(delay_s: float = 1.5, seed: int = 0):
    """A deliberately slow point, giving the harness time to kill its worker."""
    time.sleep(delay_s)
    return {"ok": True, "seed": seed}


def _percentiles(samples):
    if not samples:
        return {}
    ordered = sorted(samples)
    return {
        "n": len(ordered),
        "p50_s": ordered[len(ordered) // 2],
        "p99_s": ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))],
        "max_s": ordered[-1],
        "mean_s": statistics.fmean(ordered),
    }


def _timed_run(client, name, latencies, **kwargs):
    report = {}
    t0 = time.perf_counter()
    result = client.run(name, quick=True, report=report, **kwargs)
    latencies.append(time.perf_counter() - t0)
    return result, report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2, help="fleet size (default: 2)")
    parser.add_argument(
        "--clients", type=int, default=3, help="concurrent clients in the overlap phase"
    )
    parser.add_argument("--out", default="BENCH_serve.json", help="benchmark artifact path")
    parser.add_argument(
        "--skip-chaos", action="store_true", help="skip the SIGKILL worker-crash phase"
    )
    args = parser.parse_args()

    REGISTRY.load_all()
    REGISTRY.register(
        FunctionExperiment(
            "load_test_chaos",
            {"a": (_chaos_point, {"delay_s": 1.5, "seed": 0}),
             "b": (_chaos_point, {"delay_s": 1.5, "seed": 1})},
            description="slow points for the load harness's worker-kill phase",
        )
    )

    failures = []

    def check(ok: bool, what: str):
        print(("PASS " if ok else "FAIL ") + what, flush=True)
        if not ok:
            failures.append(what)

    bench = {"jobs": args.jobs, "clients": args.clients, "phases": {}}
    tmp = tempfile.mkdtemp(prefix="repro-serve-bench-")
    sock = os.path.join(tmp, "serve.sock")
    t_boot = time.perf_counter()
    with BackgroundServer(unix_path=sock, jobs=args.jobs, cache=os.path.join(tmp, "cache")) as srv:
        bench["boot_s"] = time.perf_counter() - t_boot
        client = connect(srv.address)

        # ---- phase 1: cold ------------------------------------------------
        cold_lat = []
        cold_results = {}
        t0 = time.perf_counter()
        for name in COLD_EXPERIMENTS:
            cold_results[name], report = _timed_run(client, name, cold_lat)
            check(report["executed"] == report["points"], f"cold {name}: all points executed")
        bench["phases"]["cold"] = {
            "wall_s": time.perf_counter() - t0,
            "latency": _percentiles(cold_lat),
        }

        # served results must be byte-identical to the serial local runner
        for name in COLD_EXPERIMENTS:
            local = api.run(name, quick=True)
            check(
                json.dumps(cold_results[name], sort_keys=True)
                == json.dumps(local, sort_keys=True),
                f"{name}: served result byte-identical to run_experiment",
            )

        # ---- phase 2: warm (cache fast path) ------------------------------
        warm_lat = []
        t0 = time.perf_counter()
        for name in COLD_EXPERIMENTS:
            result, report = _timed_run(client, name, warm_lat)
            check(report["cache_hits"] == report["points"], f"warm {name}: served from cache")
            check(result == cold_results[name], f"warm {name}: result unchanged")
        bench["phases"]["warm"] = {
            "wall_s": time.perf_counter() - t0,
            "latency": _percentiles(warm_lat),
        }

        # ---- phase 3: overlap (in-flight dedupe) --------------------------
        before = client.server_status()
        overlap_lat = []
        overlap_results = [None] * args.clients
        overlap_reports = [{} for _ in range(args.clients)]

        def sweep(i):
            overlap_results[i], overlap_reports[i] = _timed_run(
                ServeClient(srv.address), OVERLAP_EXPERIMENT, overlap_lat
            )

        threads = [threading.Thread(target=sweep, args=(i,)) for i in range(args.clients)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        after = client.server_status()

        points = after.points_total - before.points_total
        executed = after.executed - before.executed
        hits = (after.cache_hits - before.cache_hits) + (
            after.inflight_hits - before.inflight_hits
        )
        ratio = hits / points if points else 0.0
        n_points = len(api.get_experiment(OVERLAP_EXPERIMENT, quick=True).points())
        check(
            executed == n_points,
            f"overlap: {n_points} unique points executed once ({executed} ran)",
        )
        check(ratio >= 0.5, f"overlap: combined hit ratio {ratio:.2f} >= 0.5")
        check(
            all(r == overlap_results[0] for r in overlap_results),
            "overlap: every client saw the identical result",
        )
        local = api.run(OVERLAP_EXPERIMENT, quick=True)
        check(
            json.dumps(overlap_results[0], sort_keys=True) == json.dumps(local, sort_keys=True),
            f"overlap: {OVERLAP_EXPERIMENT} byte-identical to run_experiment",
        )
        bench["phases"]["overlap"] = {
            "wall_s": time.perf_counter() - t0,
            "clients": args.clients,
            "points_requested": points,
            "executed": executed,
            "hits": hits,
            "hit_ratio": ratio,
            "latency": _percentiles(overlap_lat),
        }

        # ---- phase 4: chaos (SIGKILL a worker mid-request) ----------------
        if not args.skip_chaos:
            crashes_before = client.server_status().worker_crashes
            chaos_box = {}

            def chaos_run():
                chaos_box["result"] = ServeClient(srv.address).run("load_test_chaos")

            runner = threading.Thread(target=chaos_run)
            t0 = time.perf_counter()
            runner.start()
            time.sleep(0.5)  # let the slow points land on workers
            victims = client.server_status().workers
            if victims:
                os.kill(victims[0], signal.SIGKILL)
            runner.join(timeout=120)
            crashed = client.server_status().worker_crashes - crashes_before
            check(not runner.is_alive(), "chaos: request completed after worker kill")
            check(
                chaos_box.get("result") == {"a": {"ok": True, "seed": 0},
                                            "b": {"ok": True, "seed": 1}},
                "chaos: killed-worker request still returned the right result",
            )
            check(crashed >= 1, f"chaos: fleet recorded the crash ({crashed})")
            bench["phases"]["chaos"] = {
                "wall_s": time.perf_counter() - t0,
                "worker_crashes": crashed,
            }

        stats = client.server_status()
        bench["server"] = {
            "points_total": stats.points_total,
            "cache_hits": stats.cache_hits,
            "inflight_hits": stats.inflight_hits,
            "executed": stats.executed,
            "worker_crashes": stats.worker_crashes,
            "hit_ratio": stats.hit_ratio,
        }

    bench["ok"] = not failures
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(json_safe(bench), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}", flush=True)
    if failures:
        print(f"{len(failures)} check(s) failed:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
