"""Noise-model tests (Fig 7 / Fig 13 inputs)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise import CompositeNoise, LognormalNoise, NoNoise, UniformNoise, paper_noise


def test_paper_noise_matches_reported_statistics():
    noise = paper_noise()
    rng = random.Random(1)
    xs = [noise.sample(rng) for _ in range(30_000)]
    mean = sum(xs) / len(xs)
    assert 200 <= mean <= 400  # paper: ~0.3 us
    xs.sort()
    assert xs[int(0.999 * len(xs))] <= 1_800  # <0.1% beyond ~1 us


def test_noise_is_additive_nonnegative():
    noise = paper_noise()
    rng = random.Random(2)
    assert all(noise.sample(rng) >= 0 for _ in range(1000))


def test_analytic_percentile_close_to_empirical():
    noise = paper_noise()
    rng = random.Random(3)
    xs = sorted(noise.sample(rng) for _ in range(50_000))
    emp_p99 = xs[int(0.99 * len(xs))]
    assert noise.percentile(0.99) == pytest.approx(emp_p99, rel=0.1)


def test_scaling_multiplies_samples():
    rng1, rng2 = random.Random(4), random.Random(4)
    base = LognormalNoise(scale=1.0)
    doubled = LognormalNoise(scale=2.0)
    xs = [base.sample(rng1) for _ in range(100)]
    ys = [doubled.sample(rng2) for _ in range(100)]
    assert sum(ys) == pytest.approx(2 * sum(xs), rel=0.02)


def test_mean_ns_formula():
    n = LognormalNoise(median_ns=250.0, sigma=0.45)
    rng = random.Random(5)
    emp = sum(n.sample(rng) for _ in range(50_000)) / 50_000
    assert n.mean_ns() == pytest.approx(emp, rel=0.05)


def test_uniform_noise_range():
    u = UniformNoise(1000)
    rng = random.Random(6)
    xs = [u.sample(rng) for _ in range(2000)]
    assert all(0 <= x <= 1000 for x in xs)
    assert max(xs) > 800
    assert UniformNoise(0).sample(rng) == 0


def test_uniform_percentile():
    assert UniformNoise(1000).percentile(0.5) == 500


def test_composite_sums_components():
    rng1, rng2 = random.Random(7), random.Random(7)
    comp = CompositeNoise(UniformNoise(100), UniformNoise(100))
    single = UniformNoise(100)
    # composite draws twice from the same stream
    a = comp.sample(rng1)
    b = single.sample(rng2) + single.sample(rng2)
    assert a == b


def test_no_noise():
    assert NoNoise().sample(random.Random()) == 0
    assert NoNoise().percentile(0.99) == 0.0


def test_invalid_parameters():
    with pytest.raises(ValueError):
        LognormalNoise(median_ns=0)
    with pytest.raises(ValueError):
        LognormalNoise(sigma=0)
    with pytest.raises(ValueError):
        UniformNoise(-1)
    with pytest.raises(ValueError):
        LognormalNoise().percentile(1.5)


@given(st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=50, deadline=None)
def test_property_percentile_monotone(p):
    n = paper_noise()
    assert n.percentile(p) <= n.percentile(min(p + 0.005, 0.995))
