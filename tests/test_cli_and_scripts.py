"""CLI (`python -m repro`) and packaging-surface tests."""

import json
import pathlib
import subprocess
import sys


from repro.__main__ import EXPERIMENTS, main


def test_list_experiments(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig8", "fig10b", "table2", "ecn-priority"):
        assert name in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "fig6" in capsys.readouterr().out


def test_unknown_experiment(capsys):
    assert main(["nope"]) == 2


def test_run_fig6_via_cli(capsys):
    assert main(["fig6"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["lag_rtts"] == 2.0


def test_every_registered_experiment_is_callable():
    for name, fn in EXPERIMENTS.items():
        assert callable(fn), name


def test_module_invocation_subprocess():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--list"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "fig3a" in result.stdout


def test_public_api_surface():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    # extensions are importable through repro.core


def test_run_subcommand_equals_bare_invocation(capsys):
    assert main(["run", "fig6"]) == 0
    via_run = capsys.readouterr().out
    assert main(["fig6"]) == 0
    assert capsys.readouterr().out == via_run


def test_jobs_flag_matches_serial_output(capsys):
    assert main(["run", "quickstart", "--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert main(["quickstart"]) == 0
    assert capsys.readouterr().out == parallel


def test_cache_flag_round_trip(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["run", "quickstart", "--cache", cache]) == 0
    cold = capsys.readouterr().out
    assert list((tmp_path / "cache" / "quickstart").glob("*.json"))
    assert main(["run", "quickstart", "--cache", cache]) == 0
    assert capsys.readouterr().out == cold


def test_experiments_compat_dict_runs_serially():
    result = EXPERIMENTS["fig6"]()
    assert result["lag_rtts"] == 2.0


def test_bench_with_tiny_suite(tmp_path):
    from repro.experiments.common import FunctionExperiment
    from repro.runner import run_bench, write_bench
    from repro.runner.bench import BENCH_SCHEMA
    from tests.test_runner import _echo

    suite = [FunctionExperiment("tiny", {"a": (_echo, {"x": 1, "seed": 0}),
                                         "b": (_echo, {"x": 2, "seed": 0})})]
    snapshot = run_bench(suite=suite, jobs=2)
    assert snapshot["schema"] == BENCH_SCHEMA
    assert snapshot["experiments"]["tiny"]["points"] == 2
    assert snapshot["totals"]["serial_s"] >= 0
    out = tmp_path / "BENCH_runner.json"
    write_bench(snapshot, str(out))
    assert json.loads(out.read_text())["schema"] == BENCH_SCHEMA


def test_run_all_experiments_script(tmp_path):
    root = pathlib.Path(__file__).resolve().parents[1]
    result = subprocess.run(
        [
            sys.executable,
            str(root / "scripts" / "run_all_experiments.py"),
            "--only", "quickstart",
            "--out", str(tmp_path),
            "--no-tables",
            "--serial",
        ],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=str(root),
    )
    assert result.returncode == 0, result.stderr
    artifact = json.loads((tmp_path / "quickstart.json").read_text())
    assert artifact["experiment"] == "quickstart"
    assert artifact["report"]["points"] == 1
    assert artifact["result"]["all_done"] is True

