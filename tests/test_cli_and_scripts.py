"""CLI (`python -m repro`) and packaging-surface tests."""

import json
import subprocess
import sys


from repro.__main__ import EXPERIMENTS, main


def test_list_experiments(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig8", "fig10b", "table2", "ecn-priority"):
        assert name in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "fig6" in capsys.readouterr().out


def test_unknown_experiment(capsys):
    assert main(["nope"]) == 2


def test_run_fig6_via_cli(capsys):
    assert main(["fig6"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["lag_rtts"] == 2.0


def test_every_registered_experiment_is_callable():
    for name, fn in EXPERIMENTS.items():
        assert callable(fn), name


def test_module_invocation_subprocess():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--list"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "fig3a" in result.stdout


def test_public_api_surface():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    # extensions are importable through repro.core

