"""Snapshot/restore determinism: a materialised clone continues byte-identically.

The property pinned here backs two features:

* cheap world ``reset()`` — build a topology once, snapshot it, and
  materialise per run instead of rebuilding (ROADMAP item 3);
* hybrid-core auditability — a fluid epoch's entry state can be
  checkpointed and replayed at packet level from the same instant.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.swift import Swift, SwiftParams
from repro.sim.engine import Simulator
from repro.sim.snapshot import fork_world, snapshot_world
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender


def _world(n_flows: int, kb: int, seed: int):
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=4 * 1024 * 1024)
    net, senders, recv = star(sim, n_flows, rate_bps=10e9, link_delay_ns=500, switch_cfg=cfg)
    flows, snds = [], []
    for i in range(n_flows):
        f = Flow(i + 1, senders[i], recv, kb * 1000 + i)
        snds.append(FlowSender(sim, net, f, Swift(SwiftParams(target_scaling=False))))
        flows.append(f)
    return sim, net, flows, snds


def _fingerprint(sim, flows, snds) -> tuple:
    """Everything observable that determinism is defined over."""
    return (
        sim.now,
        sim.events_processed,
        sim.rng.random(),
        tuple((f.done, f.fct_ns() if f.done else None) for f in flows),
        tuple((s.acked_payload, s.snd_nxt, s.cc.cwnd) for s in snds),
    )


def _run_out(sim, until=2_000_000_000):
    sim.run(until=until)
    return sim


@given(
    n_flows=st.integers(1, 4),
    kb=st.integers(2, 120),
    seed=st.integers(0, 2**31),
    prefix_events=st.integers(0, 4000),
)
@settings(max_examples=20, deadline=None)
def test_property_snapshot_restore_rerun_is_byte_identical(
    n_flows, kb, seed, prefix_events
):
    """snapshot → run → restore → rerun reproduces the original exactly."""
    sim, net, flows, snds = _world(n_flows, kb, seed)
    sim.run(max_events=prefix_events)  # arbitrary mid-flight instant

    snap = snapshot_world(sim, net, flows, snds)

    # run the original to completion
    _run_out(sim)
    want = _fingerprint(sim, flows, snds)

    # first clone: must land on the identical fingerprint
    sim2, _net2, flows2, snds2 = snap.materialize()
    _run_out(sim2)
    assert _fingerprint(sim2, flows2, snds2) == want

    # the snapshot is not consumed: a second clone agrees byte-for-byte
    sim3, _net3, flows3, snds3 = snap.materialize()
    _run_out(sim3)
    assert _fingerprint(sim3, flows3, snds3) == want


@given(n_flows=st.integers(1, 3), kb=st.integers(2, 60), seed=st.integers(0, 2**31))
@settings(max_examples=10, deadline=None)
def test_property_fork_world_isolates_the_clone(n_flows, kb, seed):
    """Running a fork never perturbs the original (and vice versa)."""
    sim, net, flows, snds = _world(n_flows, kb, seed)
    sim.run(max_events=500)

    sim2, _net2, flows2, snds2 = fork_world(sim, net, flows, snds)
    before = (sim.now, sim.events_processed)
    _run_out(sim2)  # drive only the clone
    assert (sim.now, sim.events_processed) == before  # original untouched

    _run_out(sim)
    assert _fingerprint(sim, flows, snds) == _fingerprint(sim2, flows2, snds2)


def test_snapshot_as_topology_reset_cache():
    """ROADMAP item 3: materialise-per-run beats rebuild-per-run and is
    deterministic — two runs from one pristine snapshot agree exactly."""
    sim, net, flows, snds = _world(3, 40, 7)
    snap = snapshot_world(sim, net, flows, snds)
    runs = []
    for _ in range(2):
        s, _n, fl, sn = snap.materialize()
        _run_out(s)
        runs.append(_fingerprint(s, fl, sn))
    assert runs[0] == runs[1]
    assert all(done for done, _ in runs[0][3])


# ----------------------------------------------------------------------
# live observability hooks: fail fast unless explicitly allowed
# ----------------------------------------------------------------------
def test_snapshot_with_live_recorder_fails_fast():
    import pytest

    from repro.sim.snapshot import SnapshotHookError
    from repro.telemetry.recorder import Recorder, set_default_recorder

    set_default_recorder(Recorder())
    try:
        sim, net, flows, snds = _world(1, 10, 0)
    finally:
        set_default_recorder(None)
    assert sim.telemetry.enabled
    with pytest.raises(SnapshotHookError, match="telemetry"):
        snapshot_world(sim, net, flows, snds)
    with pytest.raises(SnapshotHookError, match="allow_hooks=True"):
        fork_world(sim, net, flows, snds)


def test_snapshot_allow_hooks_gives_forks_independent_recorders():
    from repro.telemetry.recorder import Recorder, set_default_recorder

    set_default_recorder(Recorder())
    try:
        sim, net, flows, snds = _world(1, 10, 0)
    finally:
        set_default_recorder(None)
    sim2, _net2, _flows2, _snds2 = fork_world(sim, net, flows, snds, allow_hooks=True)
    assert sim2.telemetry is not sim.telemetry  # private copy, not a shared ring
    _run_out(sim2)
    assert sim2.telemetry.enabled
    # the original's recorder saw none of the fork's activity
    assert sim.events_processed == 0


def test_snapshot_with_inert_hooks_needs_no_opt_in():
    sim, net, flows, snds = _world(1, 10, 0)
    snap = snapshot_world(sim, net, flows, snds)  # all hooks are NULL singletons
    sim2, _net2, flows2, snds2 = snap.materialize()
    _run_out(sim2)
    assert all(f.done for f in flows2)
