"""Switch forwarding, routing, buffer/PFC integration, and Network math."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.packet import DATA, Packet
from repro.sim.pfc import PfcConfig
from repro.sim.switch import SwitchConfig, ecmp_hash
from repro.topology import fat_tree, leaf_spine, multi_rack, star


def test_star_delivers_between_hosts():
    sim = Simulator()
    net = Network(sim, SwitchConfig(n_queues=2))
    sw = net.add_switch()
    h1 = net.add_host()
    h2 = net.add_host()
    net.connect(h1, sw, 10e9, 100)
    net.connect(h2, sw, 10e9, 100)
    net.build_routes()
    p = Packet(DATA, 1000, src=h1.node_id, dst=h2.node_id, flow_id=1)
    h1.send(p)
    sim.run()
    assert h2.rx_packets == 1


def test_base_rtt_accounts_for_serialisation_and_propagation():
    sim = Simulator()
    net = Network(sim, SwitchConfig(n_queues=2))
    sw = net.add_switch()
    h1, h2 = net.add_host(), net.add_host()
    net.connect(h1, sw, 8e9, 1000)  # 1 byte/ns
    net.connect(h2, sw, 8e9, 1000)
    net.build_routes()
    rtt = net.base_rtt_ns(h1, h2, data_bytes=1000, ack_bytes=100)
    # forward: 2 hops x (1000 prop + 1000 tx); reverse: 2 x (1000 + 100)
    assert rtt == 2 * 2000 + 2 * 1100


def test_bottleneck_rate():
    sim = Simulator()
    net = Network(sim, SwitchConfig(n_queues=2))
    sw = net.add_switch()
    h1, h2 = net.add_host(), net.add_host()
    net.connect(h1, sw, 100e9, 100)
    net.connect(h2, sw, 10e9, 100)
    net.build_routes()
    assert net.bottleneck_rate_bps(h1, h2) == 10e9


def test_unroutable_packet_raises():
    sim = Simulator()
    net = Network(sim, SwitchConfig(n_queues=2))
    sw = net.add_switch()
    h1 = net.add_host()
    net.connect(h1, sw, 10e9, 100)
    net.build_routes()
    p = Packet(DATA, 100, src=h1.node_id, dst=999, flow_id=1)
    h1.send(p)
    with pytest.raises(RuntimeError):
        sim.run()


def test_switch_drops_when_buffer_full_lossy():
    sim = Simulator()
    cfg = SwitchConfig(n_queues=2, buffer_bytes=3000, pfc=PfcConfig(enabled=False))
    net = Network(sim, cfg)
    sw = net.add_switch()
    h1, h2 = net.add_host(), net.add_host()
    net.connect(h1, sw, 100e9, 100)
    net.connect(h2, sw, 1e9, 100)  # slow egress builds queue
    net.build_routes()
    for i in range(20):
        h1.send(Packet(DATA, 1000, src=h1.node_id, dst=h2.node_id, flow_id=1, seq=i))
    sim.run()
    assert sw.drops > 0
    assert h2.rx_packets + sw.drops == 20


def test_pfc_prevents_drops_with_headroom():
    sim = Simulator()
    cfg = SwitchConfig(
        n_queues=2,
        buffer_bytes=64_000,
        headroom_per_port_per_prio=8_000,
        pfc=PfcConfig(enabled=True, xoff_bytes=4_000, dynamic=False),
    )
    net = Network(sim, cfg)
    sw = net.add_switch()
    h1, h2 = net.add_host(), net.add_host()
    net.connect(h1, sw, 100e9, 100)
    net.connect(h2, sw, 1e9, 100)
    net.build_routes()
    for i in range(40):
        h1.send(Packet(DATA, 1000, src=h1.node_id, dst=h2.node_id, flow_id=1, seq=i))
    sim.run()
    assert sw.drops == 0
    assert sw.pfc_pause_count() > 0
    assert h2.rx_packets == 40


def test_ideal_headroom_does_not_shrink_shared_pool():
    sim = Simulator()
    cfg = SwitchConfig(
        n_queues=4, buffer_bytes=100_000, headroom_per_port_per_prio=10_000, ideal_headroom=True
    )
    net = Network(sim, cfg)
    sw = net.add_switch()
    h1, h2 = net.add_host(), net.add_host()
    net.connect(h1, sw, 10e9, 100)
    net.connect(h2, sw, 10e9, 100)
    net.build_routes()
    assert sw.buffer.shared_capacity == 100_000
    assert sw.buffer.headroom_capacity > 0


def test_real_headroom_shrinks_shared_pool():
    sim = Simulator()
    cfg = SwitchConfig(
        n_queues=4, buffer_bytes=100_000, headroom_per_port_per_prio=10_000, n_lossless=2
    )
    net = Network(sim, cfg)
    sw = net.add_switch()
    h1, h2 = net.add_host(), net.add_host()
    net.connect(h1, sw, 10e9, 100)
    net.connect(h2, sw, 10e9, 100)
    net.build_routes()
    # 2 ports x 2 lossless x 10k = 40k headroom
    assert sw.buffer.shared_capacity == 60_000


def test_ecmp_hash_deterministic_and_spread():
    a = ecmp_hash(1, 2)
    assert a == ecmp_hash(1, 2)
    values = {ecmp_hash(f, 7) % 4 for f in range(200)}
    assert values == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# topology builders
# ----------------------------------------------------------------------
def test_fat_tree_shape_k4():
    sim = Simulator()
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9)
    assert len(hosts) == 16
    assert len(net.switches) == 4 + 4 * 4  # 4 cores + (2 agg + 2 edge) x 4 pods
    # every host pair routable, same-pod and cross-pod
    rtt_same = net.base_rtt_ns(hosts[0], hosts[1])
    rtt_cross = net.base_rtt_ns(hosts[0], hosts[-1])
    assert rtt_cross > rtt_same


def test_fat_tree_rejects_odd_k():
    with pytest.raises(ValueError):
        fat_tree(Simulator(), k=3)


def test_fat_tree_hosts_per_edge_override():
    sim = Simulator()
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9, hosts_per_edge=[3, 1, 2, 2, 4, 1, 2, 2])
    assert len(hosts) == 17
    rtt = net.base_rtt_ns(hosts[0], hosts[-1])
    assert rtt > 0


def test_fat_tree_hosts_per_edge_validation():
    with pytest.raises(ValueError):
        fat_tree(Simulator(), k=4, hosts_per_edge=[2, 2, 2])  # wrong length
    with pytest.raises(ValueError):
        fat_tree(Simulator(), k=4, hosts_per_edge=[2, 2, 2, 2, 2, 2, 2, 0])


def test_paper_fabric_is_the_papers_scale():
    from repro.topology import paper_fabric
    from repro.topology.builders import PAPER_FABRIC_HOSTS

    sim = Simulator()
    net, hosts = paper_fabric(sim)
    assert len(hosts) == PAPER_FABRIC_HOSTS == 320
    # k=6 switching layers: 9 cores + 18 agg + 18 edge
    assert len(net.switches) == 9 + 18 + 18
    # base RTT across the core lands near the paper's ~12 µs figure
    rtt = net.base_rtt_ns(hosts[0], hosts[-1])
    assert 8_000 <= rtt <= 20_000
    # cross-fabric pairs are routable from both ends
    assert net.path_ports(hosts[0], hosts[-1])
    assert net.path_ports(hosts[-1], hosts[0])


def test_path_ports_flow_id_matches_packet_forwarding():
    """path_ports(flow_id=) must walk the exact ECMP path the packet takes."""
    sim = Simulator()
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9)
    src, dst = hosts[0], hosts[-1]
    for flow_id in (1, 2, 7, 40):
        path = net.path_ports(src, dst, flow_id=flow_id)
        before = [p.tx_packets_total for p in path]
        src.send(Packet(DATA, 1000, src=src.node_id, dst=dst.node_id, flow_id=flow_id))
        sim.run()
        after = [p.tx_packets_total for p in path]
        assert [b + 1 for b in before] == after, f"flow {flow_id} left the predicted path"
    # different flows between the same pair do spread over distinct paths
    paths = {tuple(id(p) for p in net.path_ports(src, dst, flow_id=f)) for f in range(40)}
    assert len(paths) > 1


def test_leaf_spine_oversubscription():
    sim = Simulator()
    net, hosts = leaf_spine(
        sim, n_leaves=2, hosts_per_leaf=4, n_spines=2, host_rate_bps=100e9, oversubscription=2.0
    )
    assert len(hosts) == 8
    # total uplink per leaf = 4 x 100G / 2 = 200G across 2 spines
    cross = net.bottleneck_rate_bps(hosts[0], hosts[-1])
    assert cross == pytest.approx(100e9)


def test_multi_rack_routes_and_core_rate():
    sim = Simulator()
    net, hosts = multi_rack(sim, n_racks=2, hosts_per_rack=3, host_rate_bps=10e9, core_rate_bps=40e9)
    assert len(hosts) == 6
    assert net.bottleneck_rate_bps(hosts[0], hosts[3]) == 10e9


def test_star_bottleneck_is_receiver_link():
    sim = Simulator()
    net, senders, recv = star(sim, 3, rate_bps=10e9)
    for s in senders:
        assert net.bottleneck_rate_bps(s, recv) == 10e9
