"""Host NIC local-queue scheduling and PFC interaction, end to end."""

from repro.cc.base import CongestionControl
from repro.sim.engine import Simulator
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender


def test_host_local_queue_mapping():
    sim = Simulator()
    cfg = SwitchConfig(n_queues=2)
    net, senders, recv = star(sim, 1, switch_cfg=cfg)
    host = senders[0]
    assert host.port.n_queues >= host.NIC_QUEUES
    assert host.local_data_queue(1) == 1
    assert host.local_data_queue(100) == host.port.n_queues - 2
    assert host.local_ack_queue() == host.port.n_queues - 1
    assert host.local_data_queue(0) == 0


def test_high_vpriority_overtakes_low_at_own_nic():
    """Two flows from the SAME host, same physical queue: the NIC serves the
    higher virtual priority first even while the low flow has a backlog."""
    sim = Simulator(1)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 1, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    host = senders[0]
    low = Flow(1, host, recv, 500_000, vpriority=1, start_ns=0)
    high = Flow(2, host, recv, 100_000, vpriority=6, start_ns=50_000)
    # both windows far above BDP: the NIC queue is the only scheduler
    FlowSender(sim, net, low, CongestionControl(init_cwnd_bytes=500_000))
    FlowSender(sim, net, high, CongestionControl(init_cwnd_bytes=100_000))
    sim.run(until=100_000_000)
    assert high.done and low.done
    # the high flow cuts the line: it must finish long before the low flow
    assert high.completion_ns < low.completion_ns
    # and not far from its stand-alone time plus the already-serialising data
    ideal_high = 100_000 * 8e9 / 10e9
    assert high.fct_ns() < 2.0 * ideal_high


def test_acks_always_jump_the_nic_queue():
    """A receiver that is also a busy sender must not delay its ACKs."""
    sim = Simulator(2)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    a, b = senders
    # b blasts a large transfer toward a...
    blast = Flow(1, b, recv, 2_000_000, vpriority=1)
    FlowSender(sim, net, blast, CongestionControl(init_cwnd_bytes=2_000_000))
    # ...while receiving a small flow whose ACKs b must emit through the
    # same NIC the blast is using
    small = Flow(2, a, b, 50_000, vpriority=1)
    FlowSender(sim, net, small, CongestionControl(init_cwnd_bytes=50_000))
    sim.run(until=100_000_000)
    assert small.done
    # if ACKs queued behind the 2 MB blast, the small flow would take the
    # blast's full serialisation time (~1.7 ms); with ACK-first local
    # scheduling it completes in a fraction of that
    assert small.fct_ns() < 400_000
