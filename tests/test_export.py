"""CSV export tests."""

import csv

import pytest

from repro.analysis import flatten_result, write_rows_csv, write_series_csv


def test_write_series_csv(tmp_path):
    series = {"hi": [(1000, 5.0), (2000, 6.0)], "lo": [(1000, 1.0)]}
    path = tmp_path / "out" / "series.csv"
    n = write_series_csv(series, path)
    assert n == 3
    with path.open() as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == ["key", "time_us", "value"]
    assert rows[1] == ["hi", "1.0", "5.0"]
    assert len(rows) == 4


def test_write_rows_csv_union_header(tmp_path):
    path = tmp_path / "rows.csv"
    n = write_rows_csv([{"a": 1, "b": 2}, {"a": 3, "c": 4}], path)
    assert n == 2
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert rows[0]["a"] == "1"
    assert rows[1]["c"] == "4"
    assert rows[0]["c"] == ""


def test_write_rows_csv_empty_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_rows_csv([], tmp_path / "x.csv")


def test_flatten_result_nested():
    flat = flatten_result({
        "mode": "prioplus",
        "fct": {"all": {"mean_us": 1.5}},
        "takeover_us": [10, 20],
        "weird": object(),
    })
    assert flat["mode"] == "prioplus"
    assert flat["fct.all.mean_us"] == 1.5
    assert flat["takeover_us.1"] == 20
    assert isinstance(flat["weird"], str)


def test_flatten_then_export_real_experiment(tmp_path):
    import repro.api as api

    flat = flatten_result(api.run("fig6"))
    n = write_rows_csv([flat], tmp_path / "fig6.csv")
    assert n == 1
