"""PowerTCP unit + integration tests."""

import pytest

from repro.cc import PowerTcp
from repro.sim.packet import IntHop
from repro.transport.flow import AckInfo

from tests.helpers import FakeSender


def make(**kw):
    cc = PowerTcp(**kw)
    cc.attach(FakeSender())
    return cc


def hop(qlen=0, tx=0, ts=0, rate=100e9):
    return IntHop(qlen, tx, ts, rate)


def test_gamma_validated():
    with pytest.raises(ValueError):
        PowerTcp(gamma=0)
    with pytest.raises(ValueError):
        PowerTcp(gamma=1.5)


def test_power_shrinks_window_on_growing_queue():
    cc = make()
    w0 = cc.cwnd
    cc.on_ack(AckInfo(0, cc.base_rtt, False, 1000, 0, int_hops=[hop(qlen=0, tx=0, ts=0)]))
    # queue grew fast and link transmitted at line rate: power >> 1
    cc.on_ack(AckInfo(24_000, cc.base_rtt, False, 1000, 1,
                      int_hops=[hop(qlen=500_000, tx=300_000, ts=24_000)]))
    assert cc.cwnd < w0
    assert cc.last_power > 1.0


def test_idle_path_grows_additively():
    cc = make()
    cc.cwnd = 10_000.0
    w0 = cc.cwnd
    cc.on_ack(AckInfo(0, cc.base_rtt, False, 1000, 0, int_hops=[hop(ts=0)]))
    cc.on_ack(AckInfo(24_000, cc.base_rtt, False, 1000, 1, int_hops=[hop(ts=24_000)]))
    assert cc.cwnd > w0


def test_no_int_no_reaction():
    cc = make()
    w0 = cc.cwnd
    cc.on_ack(AckInfo(0, cc.base_rtt, False, 1000, 0, int_hops=None))
    assert cc.cwnd == w0


def test_mode_integration():
    from repro.experiments.common import Mode
    from repro.experiments.flowsched import FlowSchedConfig, run_flowsched

    cfg = FlowSchedConfig(rate_bps=25e9, duration_ns=120_000, size_scale=0.05, seed=9)
    r = run_flowsched(Mode.POWERTCP, 4, cfg)
    assert r["all_done"]
