"""Unit tests for Algorithm 1 (PrioPlusCC) using a fake sender."""

import pytest

from repro.cc.swift import Swift, SwiftParams
from repro.core.channels import ChannelConfig
from repro.core.prioplus import W_LS_FRACTION, PrioPlusCC, StartTier
from repro.transport.flow import AckInfo

from tests.helpers import FakeSender


def make(vprio=2, tier=StartTier.MEDIUM, probe_first=False, **kwargs):
    channels = ChannelConfig(n_priorities=8)
    inner = Swift(SwiftParams(target_scaling=False))
    cc = PrioPlusCC(inner, channels, vpriority=vprio, tier=tier, probe_first=probe_first, **kwargs)
    sender = FakeSender()
    cc.attach(sender)
    return cc, sender


def ack(sender, delay, seq=None, acked=1000):
    return sender.ack(delay, seq=seq, acked=acked)


def test_vpriority_must_be_one_based():
    with pytest.raises(ValueError):
        PrioPlusCC(Swift(), ChannelConfig(), vpriority=0)


def test_attach_pins_inner_target_and_disables_scaling():
    cc, sender = make(vprio=3)
    assert cc.inner.params.target_scaling is False
    assert cc.inner.target_delay_ns == cc.d_target
    assert cc.d_target == sender.base_rtt + 3 * 4000
    assert cc.d_limit == cc.d_target + 2400


def test_w_ls_by_tier():
    for tier, frac in W_LS_FRACTION.items():
        cc, sender = make(tier=tier)
        assert cc.w_ls == pytest.approx(max(frac * sender.bdp_bytes, cc.inner.mtu))


def test_probe_first_default_by_tier():
    cc_hi, _ = make(tier=StartTier.HIGH, probe_first=None)
    cc_lo, _ = make(tier=StartTier.LOW, probe_first=None)
    assert not cc_hi.probe_first
    assert cc_lo.probe_first


def test_high_tier_starts_with_linear_start():
    cc, sender = make(tier=StartTier.HIGH, probe_first=False)
    cc.on_start()
    assert not sender.stopped
    assert cc.inner.cwnd == pytest.approx(cc.w_ls)


def test_probe_first_start_stops_and_probes():
    cc, sender = make(probe_first=True)
    cc.on_start()
    assert sender.stopped
    assert sender.probe_delays == [0]


# ----------------------------------------------------------------------
# noise filter: two consecutive crossings required (§4.3.1)
# ----------------------------------------------------------------------
def test_single_limit_crossing_is_filtered():
    cc, sender = make()
    cc.on_start()
    cc.on_ack(ack(sender, cc.d_limit + 1))
    assert not sender.stopped
    assert cc.relinquish_count == 0
    # a clean sample resets the counter
    cc.on_ack(ack(sender, cc.d_target))
    cc.on_ack(ack(sender, cc.d_limit + 1))
    assert not sender.stopped


def test_two_consecutive_crossings_relinquish():
    cc, sender = make()
    cc.on_start()
    cc.on_ack(ack(sender, cc.d_limit + 1))
    cc.on_ack(ack(sender, cc.d_limit + 1))
    assert sender.stopped
    assert cc.relinquish_count == 1
    assert len(sender.probe_delays) == 1


def test_acks_ignored_while_stopped():
    cc, sender = make()
    cc.on_start()
    cc.on_ack(ack(sender, cc.d_limit + 1))
    cc.on_ack(ack(sender, cc.d_limit + 1))
    stops = sender.stop_calls
    probes = len(sender.probe_delays)
    cc.on_ack(ack(sender, cc.d_limit + 1))
    assert sender.stop_calls == stops
    assert len(sender.probe_delays) == probes


# ----------------------------------------------------------------------
# probe scheduling: collision avoidance window (§4.2.1)
# ----------------------------------------------------------------------
def test_probe_delay_within_collision_avoidance_window():
    cc, sender = make()
    cc.on_start()
    delay = cc.d_limit + 5_000
    cc.on_ack(ack(sender, delay))
    cc.on_ack(ack(sender, delay))
    (probe_wait,) = sender.probe_delays
    lo = delay - cc.d_target
    assert lo <= probe_wait <= lo + sender.base_rtt


def test_probe_ack_still_congested_reschedules():
    cc, sender = make()
    cc.on_start()
    cc.on_ack(ack(sender, cc.d_limit + 1))
    cc.on_ack(ack(sender, cc.d_limit + 1))
    n = len(sender.probe_delays)
    cc.on_probe_ack(AckInfo(0, cc.d_limit + 500, False, 0, 0, is_probe=True))
    assert sender.stopped
    assert len(sender.probe_delays) == n + 1


def test_probe_ack_empty_path_linear_start_resume():
    cc, sender = make()
    cc.on_start()
    cc.on_ack(ack(sender, cc.d_limit + 1))
    cc.on_ack(ack(sender, cc.d_limit + 1))
    cc.on_probe_ack(AckInfo(0, sender.base_rtt, False, 0, 0, is_probe=True))
    assert not sender.stopped
    assert cc.inner.cwnd == pytest.approx(max(cc.w_ls / cc.nflow, cc.inner.min_cwnd))


def test_probe_ack_midrange_resumes_conservatively():
    cc, sender = make()
    cc.on_start()
    cc.on_ack(ack(sender, cc.d_limit + 1))
    cc.on_ack(ack(sender, cc.d_limit + 1))
    mid = (cc.d_target + sender.base_rtt) // 2
    cc.on_probe_ack(AckInfo(0, mid, False, 0, 0, is_probe=True))
    assert not sender.stopped
    assert cc.inner.cwnd == pytest.approx(cc.inner.mtu)


# ----------------------------------------------------------------------
# cardinality estimation (§4.3.1)
# ----------------------------------------------------------------------
def test_cardinality_estimated_on_relinquish():
    cc, sender = make()
    cc.on_start()
    cc.inner.cwnd = 10_000.0
    delay = cc.d_limit + 20_000
    cc.on_ack(ack(sender, delay))  # filtered; Swift may decrease meanwhile
    cwnd_at_relinquish = cc.inner.cwnd
    cc.on_ack(ack(sender, delay))
    expected = delay * (sender.line_rate_bps / 8e9) / cwnd_at_relinquish
    assert cc.nflow == pytest.approx(expected, rel=0.01)
    # the AI step is shared across the estimated flows
    assert cc.inner.ai_bytes == pytest.approx(cc.w_ai_origin / cc.nflow)


def test_cardinality_is_a_ratchet():
    cc, sender = make()
    cc.on_start()
    cc.inner.cwnd = 10_000.0
    big = cc.d_limit + 50_000
    cc.on_ack(ack(sender, big))
    cc.on_ack(ack(sender, big))
    high_estimate = cc.nflow
    # resume, then relinquish again: the estimate never shrinks (max ratchet)
    cc.on_probe_ack(AckInfo(0, sender.base_rtt, False, 0, 0, is_probe=True))
    cc.on_ack(ack(sender, cc.d_limit + 1))
    cc.on_ack(ack(sender, cc.d_limit + 1))
    assert cc.nflow >= high_estimate


def test_cardinality_disabled_by_ablation_flag():
    cc, sender = make(cardinality_estimation=False)
    cc.on_start()
    cc.inner.cwnd = 100.0
    cc.on_ack(ack(sender, cc.d_limit + 50_000))
    cc.on_ack(ack(sender, cc.d_limit + 50_000))
    assert cc.nflow == 1.0


def test_countdown_halves_cardinality_on_sustained_empty_path():
    cc, sender = make()
    cc.on_start()
    cc.nflow = 8.0
    cc.countdown = 2
    empty = sender.base_rtt
    # each empty-RTT linear-start tick decrements; after zero, halve
    for expected in (1, 0):
        cc.on_ack(ack(sender, empty))
        assert cc.countdown == expected
        sender.next_new_seq += 5  # advance an RTT boundary
    cc.on_ack(ack(sender, empty))
    assert cc.nflow == 4.0


# ----------------------------------------------------------------------
# linear start + dual-RTT adaptive increase (§4.2.2, §4.2.3)
# ----------------------------------------------------------------------
def test_linear_start_grows_w_ls_per_rtt():
    cc, sender = make(tier=StartTier.MEDIUM, probe_first=False)
    cc.on_start()
    w0 = cc.inner.cwnd
    cc.on_ack(ack(sender, sender.base_rtt))
    assert cc.inner.cwnd == pytest.approx(w0 + cc.w_ls / cc.nflow, rel=0.01)
    # same RTT: no second step
    w1 = cc.inner.cwnd
    cc.on_ack(AckInfo(sender.sim.now, sender.base_rtt, False, 1000, 0))
    assert cc.inner.cwnd == pytest.approx(w1 + 150.0 * 1000 / max(w1, 1000), rel=0.5)


def test_adaptive_increase_every_other_rtt():
    cc, sender = make(probe_first=False)
    cc.on_start()
    mid = cc.d_target - 1000  # between base and target
    base_ai = cc.inner.ai_bytes
    # first RTT boundary: dual_rtt_pass flips True -> AI widened
    cc.on_ack(ack(sender, mid))
    widened = cc.inner.ai_bytes
    assert widened > base_ai
    assert cc.adaptive_increases == 1
    # next RTT boundary: dual_rtt_pass flips False -> AI restored, no increase
    sender.next_new_seq += 5
    cc.on_ack(ack(sender, mid))
    assert cc.inner.ai_bytes == pytest.approx(cc.w_ai_origin / cc.nflow)
    assert cc.adaptive_increases == 1
    # third boundary: widened again
    sender.next_new_seq += 5
    cc.on_ack(ack(sender, mid))
    assert cc.adaptive_increases == 2


def test_adaptive_increase_step_capped_at_half_cwnd():
    cc, sender = make(probe_first=False)
    cc.on_start()
    cc.inner.cwnd = 10_000.0
    just_above_base = sender.base_rtt + cc.empty_eps + 1
    cc.on_ack(ack(sender, just_above_base))
    # ratio step would be huge; cap is cwnd/2
    assert cc.inner.ai_bytes <= cc.w_ai_origin / cc.nflow + 5_000.0 + 1


def test_every_rtt_ablation_increases_each_boundary():
    cc, sender = make(probe_first=False, dual_rtt=False)
    cc.on_start()
    mid = cc.d_target - 1000
    for i in range(3):
        cc.on_ack(ack(sender, mid))
        sender.next_new_seq += 5
    assert cc.adaptive_increases == 3


def test_cwnd_property_delegates_to_inner():
    cc, sender = make()
    cc.cwnd = 4321.0
    assert cc.inner.cwnd == 4321.0
    assert cc.cwnd == 4321.0
    assert cc.mtu == cc.inner.mtu
    assert cc.min_cwnd == cc.inner.min_cwnd


def test_timeout_delegates():
    cc, sender = make()
    cc.inner.cwnd = 10_000.0
    cc.on_timeout()
    assert cc.inner.cwnd < 10_000.0


# ----------------------------------------------------------------------
# property-based invariants under random delay sequences
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    st.lists(st.integers(min_value=0, max_value=200_000), min_size=1, max_size=120),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_property_invariants_under_random_delays(extra_delays, vprio):
    """For arbitrary delay samples: cwnd bounded, nflow >= 1, probe-only when
    stopped, thresholds never mutate."""
    cc, sender = make(vprio=vprio, probe_first=False)
    cc.on_start()
    d_target, d_limit = cc.d_target, cc.d_limit
    for extra in extra_delays:
        delay = sender.base_rtt + extra
        if sender.stopped:
            # while relinquished, the flow interacts via probe ACKs only
            cc.on_probe_ack(AckInfo(sender.sim.now, delay, False, 0, 0, is_probe=True))
        else:
            cc.on_ack(sender.ack(delay))
        assert cc.nflow >= 1.0
        assert cc.inner.min_cwnd <= cc.cwnd <= cc.inner.max_cwnd + 1e-6
        assert cc.countdown >= 0
        assert (cc.d_target, cc.d_limit) == (d_target, d_limit)
        if sender.stopped:
            assert sender.probe_delays, "stopped without a probe scheduled"


@given(st.lists(st.booleans(), min_size=4, max_size=60))
@settings(max_examples=40, deadline=None)
def test_property_filter_needs_consecutive_crossings(pattern):
    """A relinquish implies two consecutive over-limit samples occurred."""
    cc, sender = make(probe_first=False)
    cc.on_start()
    prev_over = False
    for over in pattern:
        if sender.stopped:
            break
        delay = cc.d_limit + 1 if over else cc.d_target
        cc.on_ack(sender.ack(delay))
        if sender.stopped:
            assert over and prev_over, "relinquished without two consecutive crossings"
        prev_over = over
