"""Introspection layer (repro.obs): tracer exactness, inspector transcript
fidelity, sampler determinism, profiler attribution, and the on/off
byte-identity contract all four subsystems share with the Recorder/Auditor."""

import json

import pytest

from repro.cc import Swift, SwiftParams
from repro.cc.base import CongestionControl
from repro.core import ChannelConfig, PrioPlusCC, StartTier
from repro.experiments.quickstart import run_quickstart
from repro.obs import (
    ChannelInspector,
    EngineProfiler,
    NULL_INSPECTOR,
    NULL_PROFILER,
    NULL_SAMPLER,
    NULL_TRACER,
    PacketTracer,
    TimeSeriesSampler,
    current_tracer,
    inspect_scope,
    profile_scope,
    sample_scope,
    set_default_inspector,
    set_default_profiler,
    set_default_sampler,
    set_default_tracer,
    trace_scope,
)
from repro.sim.engine import Simulator
from repro.sim.pfc import PfcConfig
from repro.sim.switch import SwitchConfig
from repro.telemetry import JsonlEventStream, Recorder, set_default_recorder
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender


@pytest.fixture(autouse=True)
def _reset_obs_defaults():
    """Never leak an installed obs subsystem into other tests."""
    yield
    set_default_tracer(None)
    set_default_inspector(None)
    set_default_sampler(None)
    set_default_profiler(None)
    set_default_recorder(None)


def _quickstart_scenario(sim):
    """The quickstart two-flow PrioPlus scenario, with handles kept."""
    net, senders, receiver = star(sim, n_senders=2, rate_bps=10e9, link_delay_ns=1500)
    channels = ChannelConfig(n_priorities=8)
    low = Flow(1, senders[0], receiver, size_bytes=600_000, vpriority=1, start_ns=0)
    high = Flow(2, senders[1], receiver, size_bytes=200_000, vpriority=6,
                start_ns=300_000)
    cc_low = PrioPlusCC(Swift(SwiftParams(target_scaling=False)), channels,
                        vpriority=1, tier=StartTier.LOW)
    cc_high = PrioPlusCC(Swift(SwiftParams(target_scaling=False)), channels,
                         vpriority=6, tier=StartTier.HIGH)
    FlowSender(sim, net, low, cc_low)
    FlowSender(sim, net, high, cc_high)
    return net, (low, high), (cc_low, cc_high)


# ----------------------------------------------------------------------
# defaults: everything off unless installed
# ----------------------------------------------------------------------
def test_null_defaults_adopted():
    sim = Simulator(1)
    assert sim.tracer is NULL_TRACER
    assert sim.inspector is NULL_INSPECTOR
    assert sim.sampler is NULL_SAMPLER
    assert sim.profiler is NULL_PROFILER
    for null in (NULL_TRACER, NULL_INSPECTOR, NULL_SAMPLER, NULL_PROFILER):
        assert null.enabled is False
    assert current_tracer() is None


def test_scopes_install_and_restore():
    with trace_scope(sample_every=4) as trc:
        assert current_tracer() is trc
        sim = Simulator(1)
        assert sim.tracer is trc
    assert current_tracer() is None
    assert trc.finalized


# ----------------------------------------------------------------------
# byte-identity: all four subsystems on at once change nothing
# ----------------------------------------------------------------------
def test_results_byte_identical_with_all_obs_on():
    base = run_quickstart(low_bytes=600_000, high_bytes=200_000)
    with trace_scope(sample_every=1), inspect_scope(), sample_scope(
            stride_ns=50_000), profile_scope():
        instrumented = run_quickstart(low_bytes=600_000, high_bytes=200_000)
    assert instrumented == base


# ----------------------------------------------------------------------
# tracer: per-hop spans sum exactly to end-to-end latency
# ----------------------------------------------------------------------
def test_span_components_sum_to_e2e():
    with trace_scope(sample_every=1) as trc:
        sim = Simulator(1)
        net, flows, _ = _quickstart_scenario(sim)
        sim.run(until=50_000_000)
    assert all(f.done for f in flows)
    delivered = [tr for tr in trc.traces if tr.disposition == "delivered"]
    assert len(delivered) > 100
    for tr in delivered:
        assert tr.hops, f"trace {tr.trace_id} delivered with no hops"
        assert sum(h.total_ns for h in tr.hops) == tr.e2e_ns
        assert tr.hops[0].t_enq == tr.birth_ns
        for hop in tr.hops:
            assert hop.queue_ns >= 0
            assert hop.pause_ns >= 0
            assert hop.tx_ns > 0
            assert hop.pause_ns <= hop.wait_ns


def test_sampling_is_deterministic_and_respects_rate():
    def run(sample_every):
        with trace_scope(sample_every=sample_every) as trc:
            sim = Simulator(1)
            _net, flows, _ = _quickstart_scenario(sim)
            sim.run(until=50_000_000)
        return trc

    a = run(4)
    b = run(4)
    assert [tr.to_dict() for tr in a.traces] == [tr.to_dict() for tr in b.traces]
    everything = run(1)
    assert 0 < a.started < everything.started
    # sample_every=1 traces every sender-originated packet
    assert everything.started == everything.delivered + everything.dropped \
        + everything.corrupted + everything.snapshot()["in_flight"]


def test_pause_time_attributed_to_paused_hop():
    with trace_scope(sample_every=1) as trc:
        sim = Simulator(13)
        cfg = SwitchConfig(n_queues=4, buffer_bytes=8 * 1024 * 1024)
        net, senders, recv = star(sim, 1, rate_bps=10e9, link_delay_ns=500,
                                  switch_cfg=cfg)
        f = Flow(1, senders[0], recv, 100_000, priority=0)
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=100_000),
                   rto_ns=10**12)
        bottleneck = net.path_ports(senders[0], recv)[-1]
        sim.at(20_000, bottleneck.set_paused, 0, True)
        sim.at(120_000, bottleneck.set_paused, 0, False)
        sim.run(until=1_000_000_000)
    assert f.done
    paused_hops = [h for tr in trc.traces for h in tr.hops
                   if h.port == bottleneck.name and h.pause_ns > 0]
    assert paused_hops, "no hop charged any PFC pause time"
    # a packet that sat through the whole window is charged (close to) all of it
    assert max(h.pause_ns for h in paused_hops) > 90_000
    for h in paused_hops:
        assert h.pause_ns <= h.wait_ns
        assert h.queue_ns == h.wait_ns - h.pause_ns


def test_spans_jsonl_roundtrip(tmp_path):
    with trace_scope(sample_every=8) as trc:
        sim = Simulator(1)
        _net, _flows, _ = _quickstart_scenario(sim)
        sim.run(until=50_000_000)
    path = tmp_path / "spans.jsonl"
    n = trc.write_spans_jsonl(str(path))
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(rows) == n
    summaries = [r for r in rows if r.get("kind") == "summary"]
    hops = [r for r in rows if "hop" in r]
    assert len(summaries) == len(trc.traces)
    assert len(hops) == sum(len(tr.hops) for tr in trc.traces)
    for s in summaries:
        if s["disposition"] == "delivered":
            mine = [r for r in hops if r["trace"] == s["trace"]]
            assert sum(r["queue_ns"] + r["pause_ns"] + r["tx_ns"] + r["prop_ns"]
                       for r in mine) == s["e2e_ns"]


def test_perfetto_gains_packet_process():
    from repro.telemetry import to_perfetto

    rec = Recorder()
    set_default_recorder(rec)
    try:
        with trace_scope(sample_every=8) as trc:
            sim = Simulator(1)
            _net, _flows, _ = _quickstart_scenario(sim)
            sim.run(until=50_000_000)
    finally:
        set_default_recorder(None)
    plain = to_perfetto(rec)
    traced = to_perfetto(rec, tracer=trc)
    packets = [e for e in traced["traceEvents"] if e.get("pid") == 6]
    assert not [e for e in plain["traceEvents"] if e.get("pid") == 6]
    x_spans = [e for e in packets if e.get("ph") == "X"]
    arrows = [e for e in packets if e.get("cat") == "packet_flow"]
    assert len(x_spans) == sum(len(tr.hops) for tr in trc.traces)
    assert len(arrows) == len(x_spans)
    assert {e["ph"] for e in arrows} == {"s", "t"}
    for e in x_spans:
        args = e["args"]
        assert set(args) == {"trace", "seq", "queue_ns", "pause_ns", "tx_ns",
                             "prop_ns"}


# ----------------------------------------------------------------------
# inspector: transcript fidelity
# ----------------------------------------------------------------------
def test_inspector_matches_telemetry_flow_state():
    rec = Recorder()
    set_default_recorder(rec)
    try:
        with inspect_scope() as insp:
            sim = Simulator(1)
            _net, flows, _ = _quickstart_scenario(sim)
            sim.run(until=50_000_000)
    finally:
        set_default_recorder(None)
    assert all(f.done for f in flows)
    # the inspector's global transcript is exactly the flow_state channel
    assert insp.transitions == rec.events["flow_state"]


def test_inspector_quickstart_transcript():
    with inspect_scope() as insp:
        sim = Simulator(1)
        _net, flows, ccs = _quickstart_scenario(sim)
        sim.run(until=50_000_000)
    assert all(f.done for f in flows)
    report = insp.report()
    low, high = report["flows"]["1"], report["flows"]["2"]
    assert low["vpriority"] == 1 and low["tier"] == StartTier.LOW
    assert high["vpriority"] == 6 and high["tier"] == StartTier.HIGH

    low_states = [s for _, s in low["transitions"]]
    high_states = [s for _, s in high["transitions"]]
    # lifecycle brackets every transcript
    assert low_states[0] == "running" and low_states[-1] == "done"
    assert high_states[0] == "running" and high_states[-1] == "done"
    # a LOW-tier flow must probe before entering its channel; a HIGH-tier
    # flow starts linearly right away, and never probes or relinquishes
    assert low_states[1] == "probe_wait"
    assert "linear_start" in low_states
    assert high_states[1] == "linear_start"
    assert "probe_wait" not in high_states and "relinquished" not in high_states

    cc_low, cc_high = ccs
    assert low["relinquishes"] == cc_low.relinquish_count
    assert low["cc_events"].get("linear_start_step", 0) == cc_low.linear_start_steps
    assert low["cc_events"].get("adaptive_increase", 0) == cc_low.adaptive_increases
    assert high["cc_events"].get("linear_start_step", 0) == cc_high.linear_start_steps
    assert high["cc_events"].get("adaptive_increase", 0) == cc_high.adaptive_increases
    assert low["probes"]["send"] == flows[0].probes_sent
    # every relinquish vacates the channel and re-entry needs a fresh probe
    if cc_low.relinquish_count:
        assert low["probes"]["send"] > 1
    assert low["path_ports"] and set(low["path_ports"]) & set(high["path_ports"])
    assert report["transition_count"] == len(low_states) + len(high_states)


def test_inversion_detector_positive_and_negative():
    insp = ChannelInspector(window_ns=100)
    insp.register_flow(1, vpriority=1, d_target_ns=0, d_limit_ns=0, tier="low",
                       path_ports=["sw.p0"])
    insp.register_flow(2, vpriority=6, d_target_ns=0, d_limit_ns=0, tier="high",
                       path_ports=["sw.p0"])
    insp.transition(0, 1, "running")
    insp.transition(0, 2, "running")
    # window [100, 200): the low-channel flow moves more bytes
    insp.ack(150, 1, 9_000)
    insp.ack(150, 2, 1_000)
    # high flow relinquishes after that window closes; the low flow keeps
    # moving bytes, but outpacing an inactive flow is not an inversion
    insp.transition(201, 2, "relinquished")
    insp.ack(350, 1, 9_000)
    found = insp.inversions()
    assert len(found) == 1
    inv = found[0]
    assert inv["window_t_ns"] == 100
    assert inv["low_flow"] == 1 and inv["high_flow"] == 2
    assert inv["low_bytes"] == 9_000 and inv["high_bytes"] == 1_000

    # no shared bottleneck => never an inversion
    other = ChannelInspector(window_ns=100)
    other.register_flow(1, 1, 0, 0, "low", ["sw.p0"])
    other.register_flow(2, 6, 0, 0, "high", ["sw.p1"])
    other.transition(0, 1, "running")
    other.transition(0, 2, "running")
    other.ack(150, 1, 9_000)
    other.ack(150, 2, 1_000)
    assert other.inversions() == []


def test_occupancy_steps():
    insp = ChannelInspector(window_ns=100)
    insp.register_flow(1, 3, 0, 0, "low", ["p"])
    insp.register_flow(2, 3, 0, 0, "low", ["p"])
    insp.transition(0, 1, "running")
    insp.transition(10, 1, "probe_wait")    # vacates
    insp.transition(20, 1, "linear_start")  # re-enters
    insp.transition(30, 2, "running")
    insp.transition(50, 1, "done")
    occ = insp.occupancy()
    assert occ == {3: [(0, 1), (10, 0), (20, 1), (30, 2), (50, 1)]}


def test_report_json_roundtrip(tmp_path):
    with inspect_scope() as insp:
        sim = Simulator(1)
        _net, _flows, _ = _quickstart_scenario(sim)
        sim.run(until=50_000_000)
    path = tmp_path / "channel.json"
    insp.write_report_json(str(path))
    on_disk = json.loads(path.read_text())
    assert on_disk == json.loads(json.dumps(insp.report()))


# ----------------------------------------------------------------------
# sampler: stride-aligned, deterministic, bounded
# ----------------------------------------------------------------------
def test_sampler_rows_are_stride_aligned_and_deterministic():
    def run():
        with sample_scope(stride_ns=50_000) as smp:
            sim = Simulator(1)
            _net, _flows, _ = _quickstart_scenario(sim)
            sim.run(until=50_000_000)
        return smp

    a, b = run(), run()
    rows = a.rows()
    assert rows and rows == b.rows()
    assert all(r["t"] % 50_000 == 0 for r in rows)
    kinds = {r["kind"] for r in rows}
    assert kinds == {"port", "buffer", "flow"}
    flow_rows = [r for r in rows if r["kind"] == "flow" and r["flow"] == 1]
    assert any(r["rate_bps"] > 0 for r in flow_rows)
    assert flow_rows[-1]["state"] == "done"
    port_rows = [r for r in rows if r["kind"] == "port"]
    assert any(r["backlog_bytes"] > 0 for r in port_rows)


def test_sampler_ring_bounds_memory():
    with sample_scope(stride_ns=10_000, capacity=8) as smp:
        sim = Simulator(1)
        _net, _flows, _ = _quickstart_scenario(sim)
        sim.run(until=50_000_000)
    assert len(smp.ports.rows) == 8
    assert smp.ports.dropped > 0
    assert smp.snapshot()["dropped_rows"] > 0
    # the ring keeps the most recent rows
    ts = [r["t"] for r in smp.ports.rows]
    assert ts == sorted(ts)


def test_sampler_csv_and_jsonl_export(tmp_path):
    with sample_scope(stride_ns=100_000) as smp:
        sim = Simulator(1)
        _net, _flows, _ = _quickstart_scenario(sim)
        sim.run(until=50_000_000)
    csv_path, jsonl_path = tmp_path / "s.csv", tmp_path / "s.jsonl"
    n_csv = smp.write(str(csv_path))
    n_jsonl = smp.write(str(jsonl_path))
    assert n_csv == n_jsonl == len(smp.rows())
    lines = csv_path.read_text().splitlines()
    header = lines[0].split(",")
    assert header[:2] == ["kind", "t"]
    assert len(lines) == n_csv + 1
    parsed = [json.loads(line) for line in jsonl_path.read_text().splitlines()]
    assert parsed == [json.loads(json.dumps(r, sort_keys=True)) for r in smp.rows()]


# ----------------------------------------------------------------------
# profiler: every event attributed
# ----------------------------------------------------------------------
def test_profiler_accounts_every_event():
    with profile_scope() as prof:
        sim = Simulator(1)
        _net, flows, _ = _quickstart_scenario(sim)
        sim.run(until=50_000_000)
    assert all(f.done for f in flows)
    assert prof.events == sim.events_processed
    snap = prof.snapshot()
    assert sum(c["count"] for c in snap["callbacks"].values()) == prof.events
    assert snap["wall_s"] >= 0
    assert list(snap["callbacks"]) == sorted(snap["callbacks"])
    top = prof.top(3)
    assert len(top) == 3
    assert top[0][2] >= top[1][2] >= top[2][2]
    # the hot callbacks of any packet run must show up by name
    assert any("receive" in name for name, _, _ in top) or \
        any("receive" in name for name in snap["callbacks"])


# ----------------------------------------------------------------------
# streaming JSONL exporter (satellite)
# ----------------------------------------------------------------------
def test_jsonl_event_stream(tmp_path):
    path = tmp_path / "events.jsonl"
    rec = Recorder()
    with JsonlEventStream(rec, str(path)) as stream:
        set_default_recorder(rec)
        try:
            sim = Simulator(1)
            _net, _flows, _ = _quickstart_scenario(sim)
            sim.run(until=50_000_000)
        finally:
            set_default_recorder(None)
        # counts work while streaming; iteration is refused loudly
        counts = rec.event_counts()
        assert counts and list(counts) == sorted(counts)
        with pytest.raises(RuntimeError):
            list(rec.events["cwnd"])
    assert stream.finalized
    assert stream.finalize() == stream.lines  # idempotent
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(rows) == stream.lines == sum(counts.values())
    assert {r["ch"] for r in rows} >= {"flow_state", "cwnd", "queue"}
    # timestamps appear in recording order per channel
    for ch in ("flow_state", "cwnd"):
        ts = [r["t"] for r in rows if r["ch"] == ch]
        assert ts == sorted(ts)
    # the recorder is detached and usable again after finalize
    assert rec.events["cwnd"] == []


def test_report_dashboard(tmp_path):
    from repro.obs.report import build_dashboard, report_main

    with trace_scope(sample_every=4) as trc, inspect_scope() as insp, \
            sample_scope(stride_ns=100_000) as smp, profile_scope() as prof:
        sim = Simulator(1)
        _net, _flows, _ = _quickstart_scenario(sim)
        sim.run(until=50_000_000)
    spans_path = tmp_path / "spans.jsonl"
    channel_path = tmp_path / "channel.json"
    samples_path = tmp_path / "samples.csv"
    result_path = tmp_path / "result.json"
    trc.write_spans_jsonl(str(spans_path))
    insp.write_report_json(str(channel_path))
    smp.write(str(samples_path))
    result_path.write_text(json.dumps({"profile": prof.snapshot()}))

    out = tmp_path / "dash.html"
    rc = report_main([
        "--result", str(result_path), "--samples", str(samples_path),
        "--spans", str(spans_path), "--channel", str(channel_path),
        "--out", str(out),
    ])
    assert rc == 0
    page = out.read_text()
    for section in ("Per-flow goodput", "Port backlog", "Per-hop latency",
                    "PrioPlus state timeline", "Engine profile", "<svg",
                    "data-tip", "legend"):
        assert section in page
    # marks never carry identity alone: every chart ships its table view
    assert page.count("Data table") >= 3
    # partial inputs still render (and the empty call refuses politely)
    partial = build_dashboard(channel=json.loads(channel_path.read_text()))
    assert "PrioPlus state timeline" in partial and "goodput" not in partial
    with pytest.raises(SystemExit):
        report_main(["--out", str(out)])


def test_event_counts_sorted():
    rec = Recorder()
    rec.flow_state(1, 1, "running")
    rec.queue_depth(2, "p", 0, 10, 10)
    rec.cwnd_update(3, 1, 1000.0, 5000)
    assert list(rec.event_counts()) == ["cwnd", "flow_state", "queue"]
